// Diurnal study: exercises this reproduction's further-work extensions
// (paper §IX-A) — a day-cycle traffic model and the mean-utilisation
// utility function — comparing how classic routing strategies track the
// optimal across a simulated day on NSFNet.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gddr"
	"gddr/internal/lp"
	"gddr/internal/routing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := gddr.NSFNet()
	rng := rand.New(rand.NewSource(5))
	params := gddr.DefaultDiurnalParams()
	params.Period = 8 // compressed day for a quick demo
	params.BaseTotal = 60000
	seq, err := gddr.Diurnal(params).Sequence(g.NumNodes(), params.Period, rng)
	if err != nil {
		return err
	}

	fmt.Println("NSFNet over one simulated day (8 timesteps):")
	fmt.Printf("%4s %12s %12s %14s %14s\n",
		"t", "U_max(opt)", "U_mean(opt)", "sp max-ratio", "sp mean-ratio")
	for t, dm := range seq {
		maxOpt, _, err := lp.OptimalMaxUtilization(g, dm)
		if err != nil {
			return err
		}
		meanOpt, _, err := lp.OptimalMeanUtilization(g, dm)
		if err != nil {
			return err
		}
		sp, err := routing.ShortestPath(g, dm)
		if err != nil {
			return err
		}
		fmt.Printf("%4d %12.4f %12.4f %14.4f %14.4f\n",
			t, maxOpt, meanOpt,
			sp.MaxUtilization/maxOpt, sp.MeanUtilization()/meanOpt)
	}
	fmt.Println("\nthe max-utilisation gap (column 4) is what a GDDR agent recovers;")
	fmt.Println("the mean-utilisation gap (column 5) shows shortest path is near-optimal")
	fmt.Println("for total load but far from optimal for worst-link congestion")
	return nil
}
