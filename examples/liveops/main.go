// Liveops: the network-operations lifecycle on the dynamic Engine — serve
// traffic, lose a link, watch the same GNN policy reroute on the mutated
// topology (the paper's generalisation claim exercised at serve time),
// re-provision capacity, attach a new PoP, and hot-swap the model from a
// checkpoint, all without dropping a request.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"gddr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	g := gddr.Abilene()

	// A cold-started GNN agent routes meaningfully thanks to the
	// capacity-aware warm start; train one (see examples/abilene) for the
	// full data-driven gains.
	agent, err := gddr.NewAgent(gddr.GNNPolicy, nil, gddr.WithMemory(3), gddr.WithGNNSize(16, 2))
	if err != nil {
		return err
	}
	engine, err := gddr.NewEngine(agent, g)
	if err != nil {
		return err
	}
	defer engine.Close()

	// Live traffic from the public generator surface: a sparse cyclical
	// bimodal workload.
	rng := rand.New(rand.NewSource(42))
	gen := gddr.Sparsified(gddr.Cyclical(gddr.Bimodal(gddr.DefaultBimodalParams()), 4), 0.7)
	seq, err := gen.Sequence(g.NumNodes(), 8, rng)
	if err != nil {
		return err
	}

	route := func(label string) error {
		dm := seq[0]
		d, err := engine.Route(ctx, dm)
		if err != nil {
			return err
		}
		st := engine.Stats()
		fmt.Printf("%-34s v%-2d %2d nodes %2d edges  MLU %.4f\n",
			label, st.TopologyVersion, st.Nodes, st.Edges, d.MaxUtilization)
		return nil
	}

	// Warm the demand history, then walk the operational timeline.
	for _, dm := range seq[:4] {
		if _, err := engine.Route(ctx, dm); err != nil {
			return err
		}
	}
	if err := route("steady state"); err != nil {
		return err
	}

	if err := engine.Apply(ctx, gddr.LinkDown{From: 0, To: 1}); err != nil {
		return err
	}
	if err := route("after link 0-1 failure"); err != nil {
		return err
	}

	if err := engine.Apply(ctx,
		gddr.LinkUp{From: 0, To: 1, Capacity: 9920},
		gddr.CapacityChange{From: 0, To: 1, Capacity: 4960},
	); err != nil {
		return err
	}
	if err := route("link restored at half capacity"); err != nil {
		return err
	}

	// Attach a new PoP; demands for the old 11-node matrix no longer fit,
	// so from here we route a grown matrix.
	if err := engine.Apply(ctx, gddr.NodeAdd{Name: "newpop", AttachTo: []int{3, 7}, Capacity: 9920}); err != nil {
		return err
	}
	grown := seq[1].WithNode()
	if _, err := engine.Route(ctx, grown); err != nil {
		return err
	}
	d, err := engine.Route(ctx, grown)
	if err != nil {
		return err
	}
	st := engine.Stats()
	fmt.Printf("%-34s v%-2d %2d nodes %2d edges  MLU %.4f\n",
		"after newpop joins", st.TopologyVersion, st.Nodes, st.Edges, d.MaxUtilization)

	// Hot model swap: checkpoint a differently-initialised agent and load
	// it into the running engine. In production the checkpoint comes from a
	// training job; the swap drains in-flight requests on the old policy.
	retrained, err := gddr.NewAgent(gddr.GNNPolicy, nil,
		gddr.WithMemory(3), gddr.WithGNNSize(16, 2), gddr.WithSeed(99))
	if err != nil {
		return err
	}
	var ckpt bytes.Buffer
	if err := retrained.Save(&ckpt); err != nil {
		return err
	}
	if err := engine.SwapCheckpoint(ctx, &ckpt); err != nil {
		return err
	}
	d, err = engine.Route(ctx, grown)
	if err != nil {
		return err
	}
	st = engine.Stats()
	fmt.Printf("%-34s v%-2d %2d nodes %2d edges  MLU %.4f\n",
		"after hot model swap", st.TopologyVersion, st.Nodes, st.Edges, d.MaxUtilization)

	// The engine's metrics registry is cumulative across every topology
	// rebuild and model swap above — the same registry gddr-serve exposes
	// on GET /metrics. Counters summarise the whole session; histograms
	// record the latency distributions of routing and reconfiguration.
	fmt.Println("\nsession metrics:")
	for _, p := range engine.Metrics().Snapshot() {
		switch p.Type {
		case "counter", "gauge":
			fmt.Printf("  %-42s %g\n", p.Name, p.Value)
		case "histogram":
			if p.Count > 0 {
				fmt.Printf("  %-42s count=%d mean=%.6f\n", p.Name, p.Count, p.Sum/float64(p.Count))
			}
		}
	}
	return nil
}
