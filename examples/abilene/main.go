// Abilene study: the paper's Figure 6 experiment at reduced scale — train
// the MLP baseline, the GNN policy, and the iterative GNN policy on the
// same Abilene workload and compare their held-out congestion ratios
// against shortest-path routing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"gddr"
)

func main() {
	steps := flag.Int("steps", 5000, "PPO training steps per policy")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()
	if err := run(*steps, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(steps int, seed int64) error {
	ctx := context.Background()
	train, test, err := gddr.AbileneScenario(3, 2, 30, 5, seed)
	if err != nil {
		return err
	}
	cache := gddr.NewOptimalCache()
	for _, s := range []*gddr.Scenario{train, test} {
		if _, err := gddr.Prewarm(ctx, s, cache); err != nil {
			return err
		}
	}

	sp, err := gddr.ShortestPathRatio(ctx, test, 3, cache)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %10s %12s %10s\n", "policy", "params", "train time", "ratio")
	fmt.Printf("%-16s %10s %12s %10.4f\n", "shortest-path", "-", "-", sp)

	for _, kind := range []gddr.PolicyKind{gddr.MLPPolicy, gddr.GNNPolicy, gddr.GNNIterativePolicy} {
		agent, err := gddr.NewAgent(kind, train,
			gddr.WithMemory(3),
			gddr.WithTotalSteps(steps),
			gddr.WithSeed(seed),
			gddr.WithGNNSize(16, 2))
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := agent.Train(ctx, train, cache); err != nil {
			return err
		}
		elapsed := time.Since(start).Round(time.Second)
		ratio, err := agent.Evaluate(ctx, test, cache)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %10d %12s %10.4f\n", kind, agent.NumParams(), elapsed, ratio)
	}
	fmt.Println("\nlower ratio is better; 1.0 = LP optimum with perfect future knowledge")
	return nil
}
