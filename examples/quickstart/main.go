// Quickstart: the v2 workflow end to end — train a GNN routing agent on
// the Abilene backbone, save and reload its parameters, then serve live
// routing decisions with the Router inference engine and compare them
// against shortest-path routing and the LP optimum. Runs in about a
// minute.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"gddr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. Workload: cyclical bimodal traffic on Abilene, 2 training
	//    sequences and 1 held-out test sequence.
	train, test, err := gddr.AbileneScenario(2, 1, 20, 5, 1)
	if err != nil {
		return err
	}

	// 2. Agent: the paper's GNN policy (encode-process-decode graph
	//    network) trained with PPO, composed with functional options.
	agent, err := gddr.NewAgent(gddr.GNNPolicy, train,
		gddr.WithMemory(3),
		gddr.WithTotalSteps(3000),
		gddr.WithGNNSize(16, 2))
	if err != nil {
		return err
	}
	fmt.Printf("GNN agent with %d parameters (independent of topology size)\n", agent.NumParams())

	// 3. Prewarm the LP cache concurrently, then train. The context
	//    cancels either phase at the next LP solve or PPO rollout.
	cache := gddr.NewOptimalCache()
	if _, err := gddr.Prewarm(ctx, train, cache); err != nil {
		return err
	}
	stats, err := agent.Train(ctx, train, cache)
	if err != nil {
		return err
	}
	if len(stats) > 0 {
		first, last := stats[0], stats[len(stats)-1]
		fmt.Printf("episode reward: %.1f (first) -> %.1f (last) over %d episodes\n",
			first.TotalReward, last.TotalReward, len(stats))
	}

	// 4. Evaluate on the held-out sequence. A ratio of 1.0 would match the
	//    multicommodity-flow LP optimum computed with perfect knowledge.
	agentRatio, err := agent.Evaluate(ctx, test, cache)
	if err != nil {
		return err
	}
	spRatio, err := gddr.ShortestPathRatio(ctx, test, 3, cache)
	if err != nil {
		return err
	}
	fmt.Printf("held-out mean U/U_opt: agent %.4f, shortest path %.4f (optimal = 1.0)\n",
		agentRatio, spRatio)

	// 5. Deploy: save the parameters, load them into a fresh agent, and
	//    wrap it as a thread-safe serving Router — the paper's "GNN as
	//    deployable router". Decisions carry edge weights, splitting
	//    ratios, and the resulting max link utilisation.
	var model bytes.Buffer
	if err := agent.Save(&model); err != nil {
		return err
	}
	served, err := gddr.NewAgent(gddr.GNNPolicy, nil,
		gddr.WithMemory(3),
		gddr.WithGNNSize(16, 2))
	if err != nil {
		return err
	}
	if err := served.Load(&model); err != nil {
		return err
	}
	router, err := gddr.NewRouter(served, gddr.Abilene())
	if err != nil {
		return err
	}
	defer router.Close()
	for _, dm := range test.Items[0].Sequences[0][:4] {
		d, err := router.Route(ctx, dm)
		if err != nil {
			return err
		}
		fmt.Printf("routed demand: max utilisation %.4f with gamma %.2f over %d destinations\n",
			d.MaxUtilization, d.Gamma, len(d.Splits))
	}
	// 6. Observability: every Router records its serving telemetry in a
	//    metrics registry (counters, gauges, latency histograms). The
	//    snapshot below is the same data `gddr-serve` exposes on /metrics
	//    in Prometheus format.
	fmt.Println("serving metrics:")
	for _, p := range router.Metrics().Snapshot() {
		switch p.Type {
		case "counter":
			fmt.Printf("  %-42s %g\n", p.Name, p.Value)
		case "histogram":
			if p.Count > 0 {
				fmt.Printf("  %-42s count=%d mean=%.6f\n", p.Name, p.Count, p.Sum/float64(p.Count))
			}
		}
	}
	return nil
}
