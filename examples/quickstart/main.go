// Quickstart: train a GNN routing agent on the Abilene backbone for a few
// thousand PPO steps and compare it against shortest-path routing and the
// LP optimum. Runs in about a minute.
package main

import (
	"fmt"
	"log"

	"gddr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Workload: cyclical bimodal traffic on Abilene, 2 training
	//    sequences and 1 held-out test sequence.
	train, test, err := gddr.AbileneScenario(2, 1, 20, 5, 1)
	if err != nil {
		return err
	}

	// 2. Agent: the paper's GNN policy (encode-process-decode graph
	//    network), trained with PPO.
	cfg := gddr.DefaultTrainConfig(gddr.GNNPolicy)
	cfg.Memory = 3
	cfg.TotalSteps = 3000
	cfg.GNN.Hidden = 16
	cfg.GNN.Steps = 2
	agent, err := gddr.NewAgent(cfg, train)
	if err != nil {
		return err
	}
	fmt.Printf("GNN agent with %d parameters (independent of topology size)\n", agent.NumParams())

	// 3. Train, sharing one LP cache between training and evaluation.
	cache := gddr.NewOptimalCache()
	stats, err := agent.Train(train, cache)
	if err != nil {
		return err
	}
	if len(stats) > 0 {
		first, last := stats[0], stats[len(stats)-1]
		fmt.Printf("episode reward: %.1f (first) -> %.1f (last) over %d episodes\n",
			first.TotalReward, last.TotalReward, len(stats))
	}

	// 4. Evaluate on the held-out sequence. A ratio of 1.0 would match the
	//    multicommodity-flow LP optimum computed with perfect knowledge.
	agentRatio, err := agent.Evaluate(test, cache)
	if err != nil {
		return err
	}
	spRatio, err := gddr.ShortestPathRatio(test, cfg.Memory, cache)
	if err != nil {
		return err
	}
	fmt.Printf("held-out mean U/U_opt: agent %.4f, shortest path %.4f (optimal = 1.0)\n",
		agentRatio, spRatio)
	return nil
}
