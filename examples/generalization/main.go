// Generalisation study: the paper's central claim — a single GNN policy
// trained on one set of topologies transfers, without retraining, to
// modified and entirely different topologies. This is impossible for the
// MLP baseline, whose input and output sizes are bound to one graph.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gddr"
	"gddr/internal/graph"
	"gddr/internal/traffic"
)

func main() {
	steps := flag.Int("steps", 4000, "PPO training steps")
	seed := flag.Int64("seed", 11, "random seed")
	flag.Parse()
	if err := run(*steps, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(steps int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	params := traffic.DefaultBimodal()
	newSeqs := func(g *gddr.Graph, n int) ([][]*gddr.DemandMatrix, error) {
		return traffic.Sequences(n, g.NumNodes(), 20, 5, params, rng)
	}

	// Train on Abilene plus one mutated variant.
	abilene := gddr.Abilene()
	mutated, err := graph.RandomMutation(abilene, 2, rng)
	if err != nil {
		return err
	}
	trainScenario := &gddr.Scenario{}
	for _, g := range []*gddr.Graph{abilene, mutated} {
		seqs, err := newSeqs(g, 2)
		if err != nil {
			return err
		}
		trainScenario.Add(g, seqs)
	}

	ctx := context.Background()
	agent, err := gddr.NewAgent(gddr.GNNPolicy, trainScenario,
		gddr.WithMemory(3),
		gddr.WithTotalSteps(steps),
		gddr.WithSeed(seed),
		gddr.WithGNNSize(16, 2))
	if err != nil {
		return err
	}
	cache := gddr.NewOptimalCache()
	fmt.Printf("training one GNN agent (%d params) on %d topologies...\n",
		agent.NumParams(), len(trainScenario.Items))
	if _, err := gddr.Prewarm(ctx, trainScenario, cache); err != nil {
		return err
	}
	if _, err := agent.Train(ctx, trainScenario, cache); err != nil {
		return err
	}

	// Transfer, zero extra training, to unseen topologies.
	fmt.Printf("\n%-28s %8s %8s %10s %10s\n", "unseen topology", "nodes", "edges", "agent", "sp")
	targets := []struct {
		name string
		g    *gddr.Graph
	}{
		{"abilene+1 mutation", mustMutate(abilene, 1, rng)},
		{"abilene+2 mutations", mustMutate(abilene, 2, rng)},
		{"nsfnet", gddr.NSFNet()},
		{"b4", gddr.B4()},
	}
	for _, tgt := range targets {
		seqs, err := newSeqs(tgt.g, 1)
		if err != nil {
			return err
		}
		s := gddr.NewScenario(tgt.g, seqs)
		agentRatio, err := agent.Evaluate(ctx, s, cache)
		if err != nil {
			return err
		}
		spRatio, err := gddr.ShortestPathRatio(ctx, s, agent.Config.Memory, cache)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %8d %8d %10.4f %10.4f\n",
			tgt.name, tgt.g.NumNodes(), tgt.g.NumEdges(), agentRatio, spRatio)
	}
	fmt.Println("\nthe same parameters route every topology; no retraining occurred")
	return nil
}

func mustMutate(g *gddr.Graph, count int, rng *rand.Rand) *gddr.Graph {
	m, err := graph.RandomMutation(g, count, rng)
	if err != nil {
		log.Fatal(err)
	}
	return m
}
