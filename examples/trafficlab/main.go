// Trafficlab: explore the traffic models and the optimality landscape
// without any learning — generate bimodal, gravity, and sparse demand
// matrices on several topologies and report how classic routing strategies
// compare to the multicommodity-flow LP optimum. Useful for understanding
// how much headroom a data-driven routing agent actually has.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gddr"
	"gddr/internal/lp"
	"gddr/internal/routing"
	"gddr/internal/topo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(17))
	fmt.Printf("%-10s %-10s %10s %10s %10s %12s\n",
		"topology", "traffic", "U_opt", "sp/opt", "ecmp/opt", "softmin1/opt")
	// The workloads come from the public generator surface; Sparsified
	// composes over any inner generator.
	generators := []struct {
		kind string
		gen  gddr.Generator
	}{
		{"bimodal", gddr.Bimodal(gddr.DefaultBimodalParams())},
		{"gravity", nil}, // sized per topology below
		{"sparse", gddr.Sparsified(gddr.Bimodal(gddr.DefaultBimodalParams()), 0.3)},
	}
	for _, name := range []string{"abilene", "nsfnet", "b4"} {
		g, err := topo.Named(name)
		if err != nil {
			return err
		}
		n := g.NumNodes()
		workloads := make([]struct {
			kind string
			dm   *gddr.DemandMatrix
		}, 0, len(generators))
		for _, spec := range generators {
			gen := spec.gen
			if gen == nil {
				gen = gddr.Gravity(400 * float64(n*n))
			}
			seq, err := gen.Sequence(n, 1, rng)
			if err != nil {
				return err
			}
			workloads = append(workloads, struct {
				kind string
				dm   *gddr.DemandMatrix
			}{spec.kind, seq[0]})
		}
		for _, w := range workloads {
			opt, _, err := lp.OptimalMaxUtilization(g, w.dm)
			if err != nil {
				return err
			}
			sp, err := routing.ShortestPath(g, w.dm)
			if err != nil {
				return err
			}
			ecmp, err := routing.InverseCapacityECMP(g, w.dm)
			if err != nil {
				return err
			}
			soft, err := routing.EvaluateWeights(g, w.dm, g.UnitWeights(), routing.DefaultGamma)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-10s %10.4f %10.4f %10.4f %12.4f\n",
				name, w.kind, opt,
				sp.MaxUtilization/opt, ecmp.MaxUtilization/opt, soft.MaxUtilization/opt)
		}
	}
	fmt.Println("\nratios > 1 are the headroom a learned routing can recover")
	return nil
}
