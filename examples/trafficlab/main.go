// Trafficlab: explore the traffic models and the optimality landscape
// without any learning — generate bimodal, gravity, and sparse demand
// matrices on several topologies and report how classic routing strategies
// compare to the multicommodity-flow LP optimum. Useful for understanding
// how much headroom a data-driven routing agent actually has.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gddr/internal/lp"
	"gddr/internal/routing"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(17))
	fmt.Printf("%-10s %-10s %10s %10s %10s %12s\n",
		"topology", "traffic", "U_opt", "sp/opt", "ecmp/opt", "softmin1/opt")
	for _, name := range []string{"abilene", "nsfnet", "b4"} {
		g, err := topo.Named(name)
		if err != nil {
			return err
		}
		n := g.NumNodes()
		workloads := []struct {
			kind string
			dm   *traffic.DemandMatrix
		}{
			{"bimodal", traffic.Bimodal(n, traffic.DefaultBimodal(), rng)},
			{"gravity", traffic.Gravity(n, 400*float64(n*n), rng)},
			{"sparse", traffic.Sparsify(traffic.Bimodal(n, traffic.DefaultBimodal(), rng), 0.3, rng)},
		}
		for _, w := range workloads {
			opt, _, err := lp.OptimalMaxUtilization(g, w.dm)
			if err != nil {
				return err
			}
			sp, err := routing.ShortestPath(g, w.dm)
			if err != nil {
				return err
			}
			ecmp, err := routing.InverseCapacityECMP(g, w.dm)
			if err != nil {
				return err
			}
			soft, err := routing.EvaluateWeights(g, w.dm, g.UnitWeights(), routing.DefaultGamma)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-10s %10.4f %10.4f %10.4f %12.4f\n",
				name, w.kind, opt,
				sp.MaxUtilization/opt, ecmp.MaxUtilization/opt, soft.MaxUtilization/opt)
		}
	}
	fmt.Println("\nratios > 1 are the headroom a learned routing can recover")
	return nil
}
