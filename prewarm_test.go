package gddr

import (
	"context"
	"testing"
)

func TestPrewarmFillsCache(t *testing.T) {
	ctx := context.Background()
	s := tinyScenario(t, 31) // 8 DMs, cycle 2 → 2 distinct matrices
	cache := NewOptimalCache()
	n, err := Prewarm(ctx, s, cache, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("prewarm computed %d optima, want 2 (cycle length)", n)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", cache.Len())
	}
	// Second call is a no-op.
	n2, err := Prewarm(ctx, s, cache, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("second prewarm recomputed %d optima", n2)
	}
}

func TestPrewarmValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Prewarm(ctx, &Scenario{}, NewOptimalCache(), WithWorkers(1)); err == nil {
		t.Fatal("empty scenario accepted")
	}
	if _, err := Prewarm(ctx, tinyScenario(t, 32), nil, WithWorkers(1)); err == nil {
		t.Fatal("nil cache accepted")
	}
}

func TestPrewarmDefaultWorkers(t *testing.T) {
	s := tinyScenario(t, 33)
	cache := NewOptimalCache()
	if _, err := Prewarm(context.Background(), s, cache); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("no optima computed with default workers")
	}
}

func TestPrewarmCancellation(t *testing.T) {
	s := tinyScenario(t, 35)
	cache := NewOptimalCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Prewarm(ctx, s, cache, WithWorkers(2)); err == nil {
		t.Fatal("cancelled prewarm reported success")
	}
	if cache.Len() != 0 {
		t.Fatalf("cancelled prewarm still computed %d optima", cache.Len())
	}
}

func TestPrewarmReportsProgress(t *testing.T) {
	s := tinyScenario(t, 36)
	cache := NewOptimalCache()
	var reports int
	_, err := Prewarm(context.Background(), s, cache, WithWorkers(2),
		WithProgress(func(p Progress) {
			if p.Stage != "prewarm" {
				t.Errorf("unexpected stage %q", p.Stage)
			}
			reports++
		}))
	if err != nil {
		t.Fatal(err)
	}
	if reports != cache.Len() {
		t.Fatalf("got %d progress reports for %d solves", reports, cache.Len())
	}
}

func TestPrewarmMatchesSequentialValues(t *testing.T) {
	s := tinyScenario(t, 34)
	concurrent := NewOptimalCache()
	if _, err := Prewarm(context.Background(), s, concurrent, WithWorkers(8)); err != nil {
		t.Fatal(err)
	}
	// The sequential fill must use the same canonical chain computation
	// (GetSeqContext) that prewarm uses: warm-started optima can differ from
	// cold ones in the last ulp, and the determinism contract is defined
	// over the chain.
	ctx := context.Background()
	sequential := NewOptimalCache()
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			for ti := range seq {
				if _, err := sequential.GetSeqContext(ctx, item.Graph, seq, ti); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			for ti := range seq {
				a, err := concurrent.GetSeqContext(ctx, item.Graph, seq, ti)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sequential.GetSeqContext(ctx, item.Graph, seq, ti)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("concurrent optimum %g != sequential %g", a, b)
				}
			}
		}
	}
}
