package gddr

import (
	"testing"
)

func TestPrewarmFillsCache(t *testing.T) {
	s := tinyScenario(t, 31) // 8 DMs, cycle 2 → 2 distinct matrices
	cache := NewOptimalCache()
	n, err := Prewarm(s, cache, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("prewarm computed %d optima, want 2 (cycle length)", n)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", cache.Len())
	}
	// Second call is a no-op.
	n2, err := Prewarm(s, cache, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("second prewarm recomputed %d optima", n2)
	}
}

func TestPrewarmValidation(t *testing.T) {
	if _, err := Prewarm(&Scenario{}, NewOptimalCache(), 1); err == nil {
		t.Fatal("empty scenario accepted")
	}
	if _, err := Prewarm(tinyScenario(t, 32), nil, 1); err == nil {
		t.Fatal("nil cache accepted")
	}
}

func TestPrewarmDefaultWorkers(t *testing.T) {
	s := tinyScenario(t, 33)
	cache := NewOptimalCache()
	if _, err := Prewarm(s, cache, 0); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("no optima computed with default workers")
	}
}

func TestPrewarmMatchesSequentialValues(t *testing.T) {
	s := tinyScenario(t, 34)
	concurrent := NewOptimalCache()
	if _, err := Prewarm(s, concurrent, 8); err != nil {
		t.Fatal(err)
	}
	sequential := NewOptimalCache()
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			for _, dm := range seq {
				if _, err := sequential.Get(item.Graph, dm); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			for _, dm := range seq {
				a, err := concurrent.Get(item.Graph, dm)
				if err != nil {
					t.Fatal(err)
				}
				b, err := sequential.Get(item.Graph, dm)
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("concurrent optimum %g != sequential %g", a, b)
				}
			}
		}
	}
}
