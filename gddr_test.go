package gddr

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"gddr/internal/traffic"
)

// tinyOptions returns experiment options small enough for unit tests.
func tinyOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:       3,
		TrainSteps: 60,
		TrainSeqs:  1,
		TestSeqs:   1,
		SeqLen:     8,
		Cycle:      2,
		Memory:     2,
		GNNHidden:  4,
		GNNSteps:   1,
	}
}

func tinyConfig(kind PolicyKind) TrainConfig {
	cfg := DefaultTrainConfig(kind)
	cfg.Memory = 2
	cfg.TotalSteps = 40
	cfg.GNN.Hidden = 4
	cfg.GNN.Steps = 1
	cfg.PPO.RolloutSteps = 20
	cfg.PPO.MiniBatch = 10
	cfg.MLPHidden = []int{16}
	return cfg
}

func tinyScenario(t *testing.T, seed int64) *Scenario {
	t.Helper()
	g := Abilene()
	rng := rand.New(rand.NewSource(seed))
	seqs, err := traffic.Sequences(1, g.NumNodes(), 8, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return NewScenario(g, seqs)
}

func TestScenarioValidate(t *testing.T) {
	s := tinyScenario(t, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Scenario{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty scenario accepted")
	}
	bad := NewScenario(Abilene(), [][]*DemandMatrix{{traffic.NewDemandMatrix(3)}})
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched demand size accepted")
	}
}

func TestAbileneScenario(t *testing.T) {
	train, test, err := AbileneScenario(2, 1, 10, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Items[0].Sequences) != 2 || len(test.Items[0].Sequences) != 1 {
		t.Fatal("wrong sequence split")
	}
	if len(train.Items[0].Sequences[0]) != 10 {
		t.Fatal("wrong sequence length")
	}
}

func TestShortestPathRatioAboveOne(t *testing.T) {
	s := tinyScenario(t, 2)
	ratio, err := ShortestPathRatio(context.Background(), s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 {
		t.Fatalf("shortest-path ratio %g < 1 impossible", ratio)
	}
}

func TestTrainEvaluateAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	ctx := context.Background()
	s := tinyScenario(t, 3)
	cache := NewOptimalCache()
	for _, kind := range []PolicyKind{MLPPolicy, GNNPolicy, GNNIterativePolicy} {
		agent, err := NewAgent(kind, s, WithConfig(tinyConfig(kind)))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if agent.NumParams() == 0 {
			t.Fatalf("%v: zero parameters", kind)
		}
		if _, err := agent.Train(ctx, s, cache); err != nil {
			t.Fatalf("%v train: %v", kind, err)
		}
		ratio, err := agent.Evaluate(ctx, s, cache)
		if err != nil {
			t.Fatalf("%v evaluate: %v", kind, err)
		}
		if ratio < 1 {
			t.Fatalf("%v: ratio %g < 1 impossible", kind, ratio)
		}
	}
}

func TestMLPRequiresSingleTopology(t *testing.T) {
	s := tinyScenario(t, 4)
	s.Add(NSFNet(), s.Items[0].Sequences) // invalid sizes but rejected earlier
	if _, err := NewAgent(MLPPolicy, s, WithConfig(tinyConfig(MLPPolicy))); err == nil {
		t.Fatal("MLP accepted a multi-topology scenario")
	}
}

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := tinyScenario(t, 5)
	cfg := tinyConfig(GNNPolicy)
	a1, err := NewAgent(GNNPolicy, s, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Different init seed; loading must override it.
	a2, err := NewAgent(GNNPolicy, s, WithConfig(cfg), WithSeed(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	cache := NewOptimalCache()
	r1, err := a1.Evaluate(ctx, s, cache)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Evaluate(ctx, s, cache)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("loaded agent evaluates differently: %g vs %g", r1, r2)
	}
}

func TestGNNParamCountTopologyIndependent(t *testing.T) {
	cfg := tinyConfig(GNNPolicy)
	a1, err := NewAgent(GNNPolicy, tinyScenario(t, 6), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	g := NSFNet()
	rng := rand.New(rand.NewSource(6))
	seqs, err := traffic.Sequences(1, g.NumNodes(), 8, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAgent(GNNPolicy, NewScenario(g, seqs), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if a1.NumParams() != a2.NumParams() {
		t.Fatalf("GNN params depend on topology: %d vs %d", a1.NumParams(), a2.NumParams())
	}
}

func TestExperimentRegistryLists(t *testing.T) {
	names := make(map[string]bool)
	for _, exp := range Experiments() {
		if exp.Name == "" || exp.Run == nil {
			t.Fatalf("registry holds malformed experiment %+v", exp)
		}
		names[exp.Name] = true
	}
	for _, want := range []string{"figure6", "figure7", "figure8", "baselines"} {
		if !names[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
	if err := RegisterExperiment(Experiment{Name: "figure6", Run: runFigure6}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := RunExperiment(context.Background(), "no-such-experiment"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Agent-construction options would be silently ignored by experiments,
	// so RunExperiment must reject them loudly.
	if _, err := RunExperiment(context.Background(), "baselines", WithPPO(DefaultTrainConfig(GNNPolicy).PPO)); err == nil {
		t.Error("agent-construction option accepted by RunExperiment")
	}
}

func TestRunExperimentFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	var sawTrain bool
	report, err := RunExperiment(context.Background(), "figure6",
		WithExperimentOptions(tinyOptions()),
		WithProgress(func(p Progress) {
			if p.Episode != nil {
				sawTrain = true
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if report.Experiment != "figure6" {
		t.Fatalf("report experiment %q", report.Experiment)
	}
	for _, name := range []string{"mlp_ratio", "gnn_ratio", "gnn_iterative_ratio", "shortest_path_ratio"} {
		v, ok := report.Metrics[name]
		if !ok {
			t.Fatalf("metric %s missing from %v", name, report.MetricNames())
		}
		if v < 1 {
			t.Fatalf("figure6 %s ratio %g < 1 impossible", name, v)
		}
	}
	if !sawTrain {
		t.Error("progress callback never saw a training episode")
	}
	data, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("report does not round-trip through JSON: %v", err)
	}
	if decoded.Metrics["gnn_ratio"] != report.Metrics["gnn_ratio"] {
		t.Fatal("JSON round-trip lost metrics")
	}
}

func TestRunExperimentFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	report, err := RunExperiment(context.Background(), "figure7", WithExperimentOptions(tinyOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Curves["mlp"]) == 0 || len(report.Curves["gnn"]) == 0 {
		t.Fatal("learning curves empty")
	}
	for _, st := range report.Curves["gnn"] {
		if st.TotalReward > 0 {
			t.Fatalf("positive episode reward %g impossible (rewards are -ratios)", st.TotalReward)
		}
	}
}

func TestRunExperimentFigure8(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	report, err := RunExperiment(context.Background(), "figure8", WithExperimentOptions(tinyOptions()))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mod_gnn_ratio", "diff_gnn_iterative_ratio", "mod_shortest_path_ratio"} {
		if report.Metrics[name] < 1 {
			t.Fatalf("figure8 ratios below 1: %v", report.Metrics)
		}
	}
}

func TestRunExperimentBaselines(t *testing.T) {
	report, err := RunExperiment(context.Background(), "baselines",
		WithExperimentOptions(tinyOptions()), WithTopology("nsfnet"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Options.Topology != "nsfnet" {
		t.Fatalf("topology option lost: %+v", report.Options)
	}
	for _, name := range []string{"shortest_path_ratio", "inverse_capacity_ecmp_ratio", "unit_softmin_ratio"} {
		if report.Metrics[name] < 1 {
			t.Fatalf("baseline %s ratio %g < 1 impossible", name, report.Metrics[name])
		}
	}
}

func TestTrainCancellation(t *testing.T) {
	s := tinyScenario(t, 40)
	cfg := tinyConfig(GNNPolicy)
	cfg.TotalSteps = 100000 // far more than a cancelled run can finish
	agent, err := NewAgent(GNNPolicy, s, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := agent.Train(ctx, s, NewOptimalCache()); err == nil {
		t.Fatal("cancelled training reported success")
	}
	if _, err := agent.Evaluate(ctx, s, NewOptimalCache()); err == nil {
		t.Fatal("cancelled evaluation reported success")
	}
}

func TestExperimentOptionPresets(t *testing.T) {
	d := DefaultExperimentOptions()
	p := PaperExperimentOptions()
	if p.TrainSteps != 500000 || p.SeqLen != 60 || p.Cycle != 10 || p.Memory != 5 {
		t.Fatalf("paper options drifted from the paper: %+v", p)
	}
	if d.TrainSteps >= p.TrainSteps {
		t.Fatal("default options should be scaled down")
	}
}

func TestSmoothLearningCurve(t *testing.T) {
	eps := []EpisodeStat{
		{Timestep: 10, TotalReward: -30},
		{Timestep: 20, TotalReward: -28},
		{Timestep: 110, TotalReward: -20},
		{Timestep: 120, TotalReward: -18},
	}
	curve, err := SmoothLearningCurve(eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("got %d windows want 2", len(curve))
	}
	if curve[0].Mean != -29 || curve[1].Mean != -19 {
		t.Fatalf("means %g %g want -29 -19", curve[0].Mean, curve[1].Mean)
	}
	if _, err := SmoothLearningCurve(nil, 2); err == nil {
		t.Fatal("empty curve accepted")
	}
	if _, err := SmoothLearningCurve(eps, 0); err == nil {
		t.Fatal("zero windows accepted")
	}
}
