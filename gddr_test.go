package gddr

import (
	"bytes"
	"math/rand"
	"testing"

	"gddr/internal/traffic"
)

// tinyOptions returns experiment options small enough for unit tests.
func tinyOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:       3,
		TrainSteps: 60,
		TrainSeqs:  1,
		TestSeqs:   1,
		SeqLen:     8,
		Cycle:      2,
		Memory:     2,
		GNNHidden:  4,
		GNNSteps:   1,
	}
}

func tinyConfig(kind PolicyKind) TrainConfig {
	cfg := DefaultTrainConfig(kind)
	cfg.Memory = 2
	cfg.TotalSteps = 40
	cfg.GNN.Hidden = 4
	cfg.GNN.Steps = 1
	cfg.PPO.RolloutSteps = 20
	cfg.PPO.MiniBatch = 10
	cfg.MLPHidden = []int{16}
	return cfg
}

func tinyScenario(t *testing.T, seed int64) *Scenario {
	t.Helper()
	g := Abilene()
	rng := rand.New(rand.NewSource(seed))
	seqs, err := traffic.Sequences(1, g.NumNodes(), 8, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return NewScenario(g, seqs)
}

func TestScenarioValidate(t *testing.T) {
	s := tinyScenario(t, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Scenario{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty scenario accepted")
	}
	bad := NewScenario(Abilene(), [][]*DemandMatrix{{traffic.NewDemandMatrix(3)}})
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched demand size accepted")
	}
}

func TestAbileneScenario(t *testing.T) {
	train, test, err := AbileneScenario(2, 1, 10, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Items[0].Sequences) != 2 || len(test.Items[0].Sequences) != 1 {
		t.Fatal("wrong sequence split")
	}
	if len(train.Items[0].Sequences[0]) != 10 {
		t.Fatal("wrong sequence length")
	}
}

func TestShortestPathRatioAboveOne(t *testing.T) {
	s := tinyScenario(t, 2)
	ratio, err := ShortestPathRatio(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 {
		t.Fatalf("shortest-path ratio %g < 1 impossible", ratio)
	}
}

func TestTrainEvaluateAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	s := tinyScenario(t, 3)
	cache := NewOptimalCache()
	for _, kind := range []PolicyKind{MLPPolicy, GNNPolicy, GNNIterativePolicy} {
		agent, err := NewAgent(tinyConfig(kind), s)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if agent.NumParams() == 0 {
			t.Fatalf("%v: zero parameters", kind)
		}
		if _, err := agent.Train(s, cache); err != nil {
			t.Fatalf("%v train: %v", kind, err)
		}
		ratio, err := agent.Evaluate(s, cache)
		if err != nil {
			t.Fatalf("%v evaluate: %v", kind, err)
		}
		if ratio < 1 {
			t.Fatalf("%v: ratio %g < 1 impossible", kind, ratio)
		}
	}
}

func TestMLPRequiresSingleTopology(t *testing.T) {
	s := tinyScenario(t, 4)
	s.Add(NSFNet(), s.Items[0].Sequences) // invalid sizes but rejected earlier
	if _, err := NewAgent(tinyConfig(MLPPolicy), s); err == nil {
		t.Fatal("MLP accepted a multi-topology scenario")
	}
}

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	s := tinyScenario(t, 5)
	cfg := tinyConfig(GNNPolicy)
	a1, err := NewAgent(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Seed = 999 // different init; loading must override it
	a2, err := NewAgent(cfg2, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	cache := NewOptimalCache()
	r1, err := a1.Evaluate(s, cache)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Evaluate(s, cache)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("loaded agent evaluates differently: %g vs %g", r1, r2)
	}
}

func TestGNNParamCountTopologyIndependent(t *testing.T) {
	cfg := tinyConfig(GNNPolicy)
	a1, err := NewAgent(cfg, tinyScenario(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	g := NSFNet()
	rng := rand.New(rand.NewSource(6))
	seqs, err := traffic.Sequences(1, g.NumNodes(), 8, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAgent(cfg, NewScenario(g, seqs))
	if err != nil {
		t.Fatal(err)
	}
	if a1.NumParams() != a2.NumParams() {
		t.Fatalf("GNN params depend on topology: %d vs %d", a1.NumParams(), a2.NumParams())
	}
}

func TestFigure6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	res, err := Figure6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"mlp": res.MLP, "gnn": res.GNN, "gnn-iterative": res.GNNIterative, "sp": res.ShortestPath,
	} {
		if v < 1 {
			t.Fatalf("figure 6 %s ratio %g < 1 impossible", name, v)
		}
	}
}

func TestFigure7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	res, err := Figure7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MLP) == 0 || len(res.GNN) == 0 {
		t.Fatal("learning curves empty")
	}
	for _, st := range res.GNN {
		if st.TotalReward > 0 {
			t.Fatalf("positive episode reward %g impossible (rewards are -ratios)", st.TotalReward)
		}
	}
}

func TestFigure8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	opts := tinyOptions()
	res, err := Figure8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModificationsGNN < 1 || res.DifferentGNNIter < 1 || res.ModificationsSP < 1 {
		t.Fatalf("figure 8 ratios below 1: %+v", res)
	}
}

func TestExperimentOptionPresets(t *testing.T) {
	d := DefaultExperimentOptions()
	p := PaperExperimentOptions()
	if p.TrainSteps != 500000 || p.SeqLen != 60 || p.Cycle != 10 || p.Memory != 5 {
		t.Fatalf("paper options drifted from the paper: %+v", p)
	}
	if d.TrainSteps >= p.TrainSteps {
		t.Fatal("default options should be scaled down")
	}
}

func TestSmoothLearningCurve(t *testing.T) {
	eps := []EpisodeStat{
		{Timestep: 10, TotalReward: -30},
		{Timestep: 20, TotalReward: -28},
		{Timestep: 110, TotalReward: -20},
		{Timestep: 120, TotalReward: -18},
	}
	curve, err := SmoothLearningCurve(eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("got %d windows want 2", len(curve))
	}
	if curve[0].Mean != -29 || curve[1].Mean != -19 {
		t.Fatalf("means %g %g want -29 -19", curve[0].Mean, curve[1].Mean)
	}
	if _, err := SmoothLearningCurve(nil, 2); err == nil {
		t.Fatal("empty curve accepted")
	}
	if _, err := SmoothLearningCurve(eps, 0); err == nil {
		t.Fatal("zero windows accepted")
	}
}
