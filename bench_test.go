// Benchmark harness regenerating every figure of the paper's evaluation
// (§VIII) plus the ablations called out in DESIGN.md and micro-benchmarks
// of each substrate. Figure benches print the same series the paper plots;
// scale them with GDDR_BENCH_STEPS (PPO steps per policy, default small so
// `go test -bench .` completes in minutes — see DESIGN.md substitution #5).
package gddr

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/gnn"
	"gddr/internal/graph"
	"gddr/internal/lp"
	"gddr/internal/mat"
	"gddr/internal/policy"
	"gddr/internal/routing"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

// benchSteps returns the training budget for figure benches.
func benchSteps() int {
	if s := os.Getenv("GDDR_BENCH_STEPS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 2000
}

func benchOptions() ExperimentOptions {
	opts := DefaultExperimentOptions()
	opts.TrainSteps = benchSteps()
	opts.TrainSeqs = 2
	opts.TestSeqs = 1
	opts.SeqLen = 20
	opts.Cycle = 5
	opts.Memory = 3
	opts.GNNHidden = 16
	opts.GNNSteps = 2
	return opts
}

// BenchmarkFigure6 regenerates the paper's Figure 6: mean max-utilisation
// ratio on held-out Abilene sequences for the MLP, GNN, and iterative GNN
// policies against the shortest-path dotted line.
func BenchmarkFigure6(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := Figure6(opts)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\nFigure 6 (steps=%d): policy -> mean U_agent/U_opt (lower is better)\n", opts.TrainSteps)
		fmt.Printf("  MLP            %8.4f\n", res.MLP)
		fmt.Printf("  GNN            %8.4f\n", res.GNN)
		fmt.Printf("  GNN Iterative  %8.4f\n", res.GNNIterative)
		fmt.Printf("  Shortest path  %8.4f (dotted line)\n", res.ShortestPath)
		b.ReportMetric(res.MLP, "mlp_ratio")
		b.ReportMetric(res.GNN, "gnn_ratio")
		b.ReportMetric(res.GNNIterative, "gnn_iter_ratio")
		b.ReportMetric(res.ShortestPath, "sp_ratio")
	}
}

// BenchmarkFigure7 regenerates the paper's Figure 7 learning curves:
// total reward per episode against cumulative timesteps for MLP and GNN.
func BenchmarkFigure7(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := Figure7(opts)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\nFigure 7 (steps=%d): reward per episode (higher is better)\n", opts.TrainSteps)
		for name, stats := range map[string][]EpisodeStat{"MLP": res.MLP, "GNN": res.GNN} {
			if len(stats) == 0 {
				continue
			}
			first, last := stats[0], stats[len(stats)-1]
			fmt.Printf("  %-4s episodes=%3d first=%8.2f last=%8.2f\n",
				name, len(stats), first.TotalReward, last.TotalReward)
			step := len(stats) / 8
			if step == 0 {
				step = 1
			}
			for j := 0; j < len(stats); j += step {
				fmt.Printf("    %-4s t=%6d reward=%8.2f\n", name, stats[j].Timestep, stats[j].TotalReward)
			}
		}
		if n := len(res.GNN); n > 0 {
			b.ReportMetric(res.GNN[n-1].TotalReward, "gnn_final_reward")
		}
		if n := len(res.MLP); n > 0 {
			b.ReportMetric(res.MLP[n-1].TotalReward, "mlp_final_reward")
		}
	}
}

// BenchmarkFigure8 regenerates the paper's Figure 8: generalisation of the
// GNN policies to modified and entirely different topologies.
func BenchmarkFigure8(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := Figure8(opts)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\nFigure 8 (steps=%d): mean U_agent/U_opt (lower is better)\n", opts.TrainSteps)
		fmt.Printf("  %-16s %14s %14s\n", "policy", "modifications", "different")
		fmt.Printf("  %-16s %14.4f %14.4f\n", "GNN", res.ModificationsGNN, res.DifferentGNN)
		fmt.Printf("  %-16s %14.4f %14.4f\n", "GNN Iterative", res.ModificationsGNNIter, res.DifferentGNNIter)
		fmt.Printf("  %-16s %14.4f %14.4f (dotted lines)\n", "Shortest path", res.ModificationsSP, res.DifferentSP)
		b.ReportMetric(res.ModificationsGNN, "mod_gnn_ratio")
		b.ReportMetric(res.DifferentGNN, "diff_gnn_ratio")
		b.ReportMetric(res.ModificationsGNNIter, "mod_iter_ratio")
		b.ReportMetric(res.DifferentGNNIter, "diff_iter_ratio")
	}
}

// BenchmarkAblationGamma sweeps the softmin spread γ with fixed inverse-
// capacity weights on Abilene (ablation A1): how much the translation's
// sharpness matters independent of learning.
func BenchmarkAblationGamma(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(1))
	dms := make([]*traffic.DemandMatrix, 5)
	opts := make([]float64, len(dms))
	for i := range dms {
		dms[i] = traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
		opt, _, err := lp.OptimalMaxUtilization(g, dms[i])
		if err != nil {
			b.Fatal(err)
		}
		opts[i] = opt
	}
	w := g.InverseCapacityWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nAblation A1: softmin gamma sweep on Abilene (inverse-capacity weights)\n")
		for _, gamma := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
			var sum float64
			for j, dm := range dms {
				res, err := routing.EvaluateWeights(g, dm, w, gamma)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.MaxUtilization / opts[j]
			}
			fmt.Printf("  gamma=%6.2f ratio=%.4f\n", gamma, sum/float64(len(dms)))
		}
	}
}

// BenchmarkAblationMessagePassing varies the GNN core's message-passing
// steps (ablation A2), reporting forward cost; reach is covered by tests.
func BenchmarkAblationMessagePassing(b *testing.B) {
	for _, steps := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			pol, err := policy.NewGNN(policy.GNNConfig{Memory: 3, Hidden: 16, Steps: steps}, rng)
			if err != nil {
				b.Fatal(err)
			}
			obs := benchObservation(b, env.FullAction, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := ad.NewTape()
				if _, _, err := pol.Forward(t, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemory varies the demand-history length (ablation A3),
// reporting the environment observation + policy forward cost per step.
func BenchmarkAblationMemory(b *testing.B) {
	for _, memory := range []int{1, 3, 5, 10} {
		b.Run(fmt.Sprintf("memory=%d", memory), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			pol, err := policy.NewGNN(policy.GNNConfig{Memory: memory, Hidden: 16, Steps: 2}, rng)
			if err != nil {
				b.Fatal(err)
			}
			obs := benchObservation(b, env.FullAction, memory)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := ad.NewTape()
				if _, _, err := pol.Forward(t, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchObservation builds one Abilene observation for policy benches.
func benchObservation(b *testing.B, mode env.Mode, memory int) *env.Observation {
	b.Helper()
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(4))
	seq, err := traffic.BimodalCyclical(g.NumNodes(), memory+3, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = memory
	cfg.Mode = mode
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	obs, err := e.Reset()
	if err != nil {
		b.Fatal(err)
	}
	return obs
}

// --- Substrate micro-benchmarks (S1-S4) ---

func BenchmarkLPSolveAbilene(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(5))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lp.OptimalMaxUtilization(g, dm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPSolveNSFNet(b *testing.B) {
	g := topo.NSFNet()
	rng := rand.New(rand.NewSource(6))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lp.OptimalMaxUtilization(g, dm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftminRoutingAbilene(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(7))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 0.5 + rng.Float64()*2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.EvaluateWeights(g, dm, w, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPathAbilene(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(8))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.ShortestPath(g, dm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 5, Hidden: 24, Steps: 3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b, env.FullAction, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ad.NewTape()
		if _, _, err := pol.Forward(t, obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGNNForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 5, Hidden: 24, Steps: 3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b, env.FullAction, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ad.NewTape()
		mean, value, err := pol.Forward(t, obs)
		if err != nil {
			b.Fatal(err)
		}
		loss := t.Add(t.SumAll(t.Square(mean)), t.SumAll(t.Square(value)))
		if err := t.Backward(loss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvStepFull(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(11))
	seq, err := traffic.BimodalCyclical(g.NumNodes(), 200, 5, traffic.DefaultBimodal(), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 3
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Reset(); err != nil {
		b.Fatal(err)
	}
	action := make([]float64, e.ActionDim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, done, err := e.Step(action)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			if _, err := e.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEnvStepIterative(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(12))
	seq, err := traffic.BimodalCyclical(g.NumNodes(), 50, 5, traffic.DefaultBimodal(), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 3
	cfg.Mode = env.IterativeAction
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Reset(); err != nil {
		b.Fatal(err)
	}
	action := []float64{0.1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, done, err := e.Step(action)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			if _, err := e.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGraphMutation(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.RandomMutation(g, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBimodalGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traffic.Bimodal(11, traffic.DefaultBimodal(), rng)
	}
}

func BenchmarkGNBlockApply(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	block, err := gnn.NewBlock("b",
		gnn.GraphSignature{NodeDim: 8, EdgeDim: 8, GlobalDim: 8},
		gnn.GraphSignature{NodeDim: 8, EdgeDim: 8, GlobalDim: 8}, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b, env.FullAction, 4)
	g := &gnn.Graphs{
		Nodes:     obs.NodeFeat,
		Edges:     randMatrix(obs.EdgeFeat.Rows, 8, rng),
		Globals:   randMatrix(1, 8, rng),
		Senders:   obs.Senders,
		Receivers: obs.Receivers,
	}
	g.Nodes = randMatrix(obs.NodeFeat.Rows, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ad.NewTape()
		block.Apply(t, gnn.Lift(t, g))
	}
}

func randMatrix(rows, cols int, rng *rand.Rand) *mat.Matrix {
	return mat.RandNormal(rows, cols, 1, rng)
}
