// Benchmark harness regenerating every figure of the paper's evaluation
// (§VIII) plus the ablations called out in DESIGN.md and micro-benchmarks
// of each substrate. Figure benches print the same series the paper plots;
// scale them with GDDR_BENCH_STEPS (PPO steps per policy, default small so
// `go test -bench .` completes in minutes — see DESIGN.md substitution #5).
package gddr

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/gnn"
	"gddr/internal/graph"
	"gddr/internal/lp"
	"gddr/internal/mat"
	"gddr/internal/policy"
	"gddr/internal/routing"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

// benchSteps returns the training budget for figure benches.
func benchSteps() int {
	if s := os.Getenv("GDDR_BENCH_STEPS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 2000
}

func benchOptions() ExperimentOptions {
	opts := DefaultExperimentOptions()
	opts.TrainSteps = benchSteps()
	opts.TrainSeqs = 2
	opts.TestSeqs = 1
	opts.SeqLen = 20
	opts.Cycle = 5
	opts.Memory = 3
	opts.GNNHidden = 16
	opts.GNNSteps = 2
	return opts
}

// benchExperiment regenerates one registered experiment per iteration and
// reports every scalar metric of its report.
func benchExperiment(b *testing.B, name string) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		report, err := RunExperiment(context.Background(), name, WithExperimentOptions(opts))
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s (steps=%d):\n%s", name, opts.TrainSteps, report.String())
		for _, metric := range report.MetricNames() {
			b.ReportMetric(report.Metrics[metric], metric)
		}
	}
}

// BenchmarkFigure6 regenerates the paper's Figure 6: mean max-utilisation
// ratio on held-out Abilene sequences for the MLP, GNN, and iterative GNN
// policies against the shortest-path dotted line.
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkFigure7 regenerates the paper's Figure 7 learning curves:
// total reward per episode against cumulative timesteps for MLP and GNN.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkFigure8 regenerates the paper's Figure 8: generalisation of the
// GNN policies to modified and entirely different topologies.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "figure8") }

// newBenchRouter builds a Router over an untrained GNN agent on Abilene
// plus a pool of demand matrices to route.
func newBenchRouter(b *testing.B, workers int) (*Router, []*DemandMatrix) {
	b.Helper()
	agent, err := NewAgent(GNNPolicy, nil, WithMemory(3), WithGNNSize(16, 2))
	if err != nil {
		b.Fatal(err)
	}
	g := topo.Abilene()
	router, err := NewRouter(agent, g, WithRouterWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	dms := make([]*DemandMatrix, 16)
	for i := range dms {
		dms[i] = traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	}
	return router, dms
}

// BenchmarkRouterRoute measures single-caller serving latency: one Route
// call per iteration, policy forward plus routing translation.
func BenchmarkRouterRoute(b *testing.B) {
	router, dms := newBenchRouter(b, 1)
	defer router.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := router.Route(ctx, dms[i%len(dms)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterRouteSteady is the serving fast-path gate: single-caller
// throughput under steady demand (the same matrix batch after batch, the
// regime the paper's cyclical workloads settle into), with the fast-path
// caches on versus off. Once the history window stabilises, the cached
// path answers without an observation build, forward pass, or softmin
// routing translation; CI requires it to be at least 2x faster than the
// uncached baseline at Abilene scale, while TestRouterCacheGoldenDecisions
// proves the decisions are bit-identical.
func BenchmarkRouterRouteSteady(b *testing.B) {
	// cache=on is the instrumented fast path (metrics are on by default);
	// metrics=off is the same path with instrumentation compiled out of the
	// router, the baseline for CI's 1.1x instrumentation-overhead gate.
	for _, variant := range []struct {
		name               string
		noCache, noMetrics bool
	}{
		{name: "cache=on"},
		{name: "cache=off", noCache: true},
		{name: "metrics=off", noMetrics: true},
	} {
		cached := !variant.noCache
		b.Run(variant.name, func(b *testing.B) {
			agent, err := NewAgent(GNNPolicy, nil, WithMemory(3), WithGNNSize(16, 2))
			if err != nil {
				b.Fatal(err)
			}
			g := topo.Abilene()
			cfg := resolveRouterConfig([]RouterOption{WithRouterWorkers(1)})
			cfg.noCache = variant.noCache
			cfg.noMetrics = variant.noMetrics
			router, err := newRouter(agent, g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer router.Close()
			rng := rand.New(rand.NewSource(22))
			dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
			ctx := context.Background()
			// Fill the history window so the steady state is reached before
			// timing starts.
			for i := 0; i < 4; i++ {
				if _, err := router.Route(ctx, dm); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := router.Route(ctx, dm); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if cached {
				stats := router.Stats()
				if stats.PolicyCacheHits == 0 || stats.StrategyHits == 0 {
					b.Fatalf("steady benchmark never hit the caches: %+v", stats)
				}
			}
		})
	}
}

// BenchmarkRouterRouteConcurrent measures 8-way concurrent serving
// throughput with a deliberately small worker pool, so simultaneous
// requests queue up and get batched onto shared forward passes.
func BenchmarkRouterRouteConcurrent(b *testing.B) {
	router, dms := newBenchRouter(b, 2)
	defer router.Close()
	ctx := context.Background()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := router.Route(ctx, dms[i%len(dms)]); err != nil {
				b.Error(err) // Fatal must not be called off the benchmark goroutine
				return
			}
			i++
		}
	})
	b.StopTimer()
	stats := router.Stats()
	if stats.Batches > 0 {
		b.ReportMetric(float64(stats.Requests)/float64(stats.Batches), "reqs/batch")
	}
}

// BenchmarkEngineApplyRoute is the serving-while-mutating gate: 8-way
// concurrent Route throughput with topology events flapping a link every
// few milliseconds (hundreds of events per second — far beyond any real
// operational rate), against the event-free baseline. Each event rebuilds,
// probe-validates, and drains a serving snapshot, so the route-and-events
// ns/op must stay within ~2x of the route-only ns/op.
func BenchmarkEngineApplyRoute(b *testing.B) {
	for _, churn := range []bool{false, true} {
		name := "route-only"
		if churn {
			name = "route-and-events"
		}
		b.Run(name, func(b *testing.B) {
			agent, err := NewAgent(GNNPolicy, nil, WithMemory(3), WithGNNSize(16, 2))
			if err != nil {
				b.Fatal(err)
			}
			g := topo.Abilene()
			engine, err := NewEngine(agent, g, WithRouterWorkers(2))
			if err != nil {
				b.Fatal(err)
			}
			defer engine.Close()
			rng := rand.New(rand.NewSource(21))
			dms := make([]*DemandMatrix, 16)
			for i := range dms {
				dms[i] = traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
			}
			ctx := context.Background()

			stop := make(chan struct{})
			flapped := make(chan int64, 1)
			if churn {
				// Flap one removable link for the whole benchmark.
				u, v, capacity := -1, -1, 0.0
				for _, e := range g.Edges() {
					if e.From > e.To {
						continue
					}
					if c, err := graph.RemoveLink(g, e.From, e.To); err == nil && c != nil {
						u, v, capacity = e.From, e.To, e.Capacity
						break
					}
				}
				if u < 0 {
					b.Fatal("no removable link on the benchmark topology")
				}
				go func() {
					var events int64
					defer func() { flapped <- events }()
					ticker := time.NewTicker(2 * time.Millisecond)
					defer ticker.Stop()
					for {
						select {
						case <-stop:
							return
						case <-ticker.C:
						}
						if err := engine.Apply(ctx, LinkDown{From: u, To: v}); err != nil {
							b.Error(err)
							return
						}
						if err := engine.Apply(ctx, LinkUp{From: u, To: v, Capacity: capacity}); err != nil {
							b.Error(err)
							return
						}
						events += 2
					}
				}()
			}
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := engine.Route(ctx, dms[i%len(dms)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			close(stop)
			if churn {
				b.ReportMetric(float64(<-flapped), "events")
			}
			stats := engine.Stats()
			if stats.Batches > 0 {
				b.ReportMetric(float64(stats.Requests)/float64(stats.Batches), "reqs/batch")
			}
		})
	}
}

// newBenchTenant boots one fleet tenant for the gateway benchmarks: a
// fresh untrained GNN agent on the named topology, one serving goroutine
// per replica and per-request forward passes (MaxBatch 1), so throughput
// differences between variants measure the replica axis alone rather than
// cross-request batching amortisation.
func newBenchTenant(b *testing.B, fleet *Fleet, id, topology string, replicas int) (*Tenant, []*DemandMatrix) {
	b.Helper()
	agent, err := NewAgent(GNNPolicy, nil, WithMemory(3), WithGNNSize(16, 2))
	if err != nil {
		b.Fatal(err)
	}
	g, err := topo.Named(topology)
	if err != nil {
		b.Fatal(err)
	}
	cfg := TenantConfig{
		Topology: topology,
		Replicas: replicas,
		Workers:  1,
		MaxBatch: 1,
		// Deep enough that the benchmark's own concurrency never sheds;
		// the overload variant overrides this.
		QueueDepth: 1024,
	}
	tenant, err := fleet.CreateWithAgent(id, cfg, agent, g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	dms := make([]*DemandMatrix, 16)
	for i := range dms {
		dms[i] = traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	}
	return tenant, dms
}

// BenchmarkFleetRouteConcurrent is the read-path scale-out gate: 8-way
// concurrent serving throughput through the fleet's admission gate at 1
// versus 4 read replicas of one tenant. Each replica is a single serving
// lane (one worker, per-request forwards), so the 4-replica variant has 4x
// the parallel compute; CI requires it to clear 2x the single-replica
// throughput on the 4-vCPU runners. The tenants=3 variant spreads the same
// concurrency across three tenants on distinct topologies, and the
// overloaded-sibling variant measures a quiet tenant's latency while a
// rate-limited sibling is saturated with traffic that sheds as
// ErrOverloaded — tenant isolation means the quiet ns/op stays in the same
// regime as the replicas=1 baseline.
func BenchmarkFleetRouteConcurrent(b *testing.B) {
	ctx := context.Background()
	for _, replicas := range []int{1, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			fleet := NewFleet()
			defer fleet.Close()
			tenant, dms := newBenchTenant(b, fleet, "bench", "abilene", replicas)
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := tenant.Route(ctx, dms[i%len(dms)]); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			if shed := tenant.shed.Value(); shed > 0 {
				b.Fatalf("benchmark traffic shed %d requests; the gate would be measuring admission, not replication", shed)
			}
		})
	}
	b.Run("tenants=3", func(b *testing.B) {
		fleet := NewFleet()
		defer fleet.Close()
		tenants := make([]*Tenant, 3)
		pools := make([][]*DemandMatrix, 3)
		for i, topology := range []string{"abilene", "nsfnet", "b4"} {
			tenants[i], pools[i] = newBenchTenant(b, fleet, topology, topology, 2)
		}
		var next int64
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := int(atomic.AddInt64(&next, 1)) % len(tenants)
			tenant, dms := tenants[w], pools[w]
			i := 0
			for pb.Next() {
				if _, err := tenant.Route(ctx, dms[i%len(dms)]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})
	b.Run("overloaded-sibling", func(b *testing.B) {
		fleet := NewFleet()
		defer fleet.Close()
		quiet, dms := newBenchTenant(b, fleet, "quiet", "abilene", 1)
		noisyAgent, err := NewAgent(GNNPolicy, nil, WithMemory(3), WithGNNSize(16, 2))
		if err != nil {
			b.Fatal(err)
		}
		noisy, err := fleet.CreateWithAgent("noisy", TenantConfig{
			Topology:   "abilene",
			Workers:    1,
			MaxBatch:   1,
			QueueDepth: 4,
			RateLimit:  1,
			Burst:      1,
		}, noisyAgent, topo.Abilene())
		if err != nil {
			b.Fatal(err)
		}
		// Saturate the noisy tenant for the whole measurement: far more
		// attempts per second than its rate limit admits, so nearly all of
		// them shed at the gate. The short pause keeps the hammer from
		// turning the benchmark into a raw CPU-contention test — real shed
		// traffic is bounded by client retry behaviour, not a spin loop.
		stop := make(chan struct{})
		done := make(chan struct{})
		for h := 0; h < 2; h++ {
			go func(seed int64) {
				dm := traffic.Bimodal(11, traffic.DefaultBimodal(), rand.New(rand.NewSource(seed)))
				for {
					select {
					case <-stop:
						done <- struct{}{}
						return
					default:
					}
					_, _ = noisy.Route(ctx, dm)
					time.Sleep(50 * time.Microsecond)
				}
			}(int64(h))
		}
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := quiet.Route(ctx, dms[i%len(dms)]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.StopTimer()
		close(stop)
		<-done
		<-done
		sheds := float64(noisy.shed.Value())
		if sheds == 0 {
			b.Fatal("the noisy tenant never shed; the isolation variant measured nothing")
		}
		b.ReportMetric(sheds, "sheds")
		if quietSheds := quiet.shed.Value(); quietSheds > 0 {
			b.Fatalf("quiet tenant shed %d requests; admission bled across tenants", quietSheds)
		}
	})
}

// BenchmarkAblationGamma sweeps the softmin spread γ with fixed inverse-
// capacity weights on Abilene (ablation A1): how much the translation's
// sharpness matters independent of learning.
func BenchmarkAblationGamma(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(1))
	dms := make([]*traffic.DemandMatrix, 5)
	opts := make([]float64, len(dms))
	for i := range dms {
		dms[i] = traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
		opt, _, err := lp.OptimalMaxUtilization(g, dms[i])
		if err != nil {
			b.Fatal(err)
		}
		opts[i] = opt
	}
	w := g.InverseCapacityWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fmt.Printf("\nAblation A1: softmin gamma sweep on Abilene (inverse-capacity weights)\n")
		for _, gamma := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
			var sum float64
			for j, dm := range dms {
				res, err := routing.EvaluateWeights(g, dm, w, gamma)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.MaxUtilization / opts[j]
			}
			fmt.Printf("  gamma=%6.2f ratio=%.4f\n", gamma, sum/float64(len(dms)))
		}
	}
}

// BenchmarkAblationMessagePassing varies the GNN core's message-passing
// steps (ablation A2), reporting forward cost; reach is covered by tests.
func BenchmarkAblationMessagePassing(b *testing.B) {
	for _, steps := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			pol, err := policy.NewGNN(policy.GNNConfig{Memory: 3, Hidden: 16, Steps: steps}, rng)
			if err != nil {
				b.Fatal(err)
			}
			obs := benchObservation(b, env.FullAction, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := ad.NewTape()
				if _, _, err := pol.Forward(t, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemory varies the demand-history length (ablation A3),
// reporting the environment observation + policy forward cost per step.
func BenchmarkAblationMemory(b *testing.B) {
	for _, memory := range []int{1, 3, 5, 10} {
		b.Run(fmt.Sprintf("memory=%d", memory), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			pol, err := policy.NewGNN(policy.GNNConfig{Memory: memory, Hidden: 16, Steps: 2}, rng)
			if err != nil {
				b.Fatal(err)
			}
			obs := benchObservation(b, env.FullAction, memory)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := ad.NewTape()
				if _, _, err := pol.Forward(t, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchObservation builds one Abilene observation for policy benches.
func benchObservation(b *testing.B, mode env.Mode, memory int) *env.Observation {
	b.Helper()
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(4))
	seq, err := traffic.BimodalCyclical(g.NumNodes(), memory+3, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = memory
	cfg.Mode = mode
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	obs, err := e.Reset()
	if err != nil {
		b.Fatal(err)
	}
	return obs
}

// --- Substrate micro-benchmarks (S1-S4) ---

func BenchmarkLPSolveAbilene(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(5))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lp.OptimalMaxUtilization(g, dm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPSolveNSFNet(b *testing.B) {
	g := topo.NSFNet()
	rng := rand.New(rand.NewSource(6))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lp.OptimalMaxUtilization(g, dm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftminRoutingAbilene(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(7))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 0.5 + rng.Float64()*2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.EvaluateWeights(g, dm, w, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPathAbilene(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(8))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.ShortestPath(g, dm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 5, Hidden: 24, Steps: 3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b, env.FullAction, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ad.NewTape()
		if _, _, err := pol.Forward(t, obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGNNForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 5, Hidden: 24, Steps: 3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b, env.FullAction, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ad.NewTape()
		mean, value, err := pol.Forward(t, obs)
		if err != nil {
			b.Fatal(err)
		}
		loss := t.Add(t.SumAll(t.Square(mean)), t.SumAll(t.Square(value)))
		if err := t.Backward(loss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvStepFull(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(11))
	seq, err := traffic.BimodalCyclical(g.NumNodes(), 200, 5, traffic.DefaultBimodal(), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 3
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Reset(); err != nil {
		b.Fatal(err)
	}
	action := make([]float64, e.ActionDim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, done, err := e.Step(action)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			if _, err := e.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEnvStepIterative(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(12))
	seq, err := traffic.BimodalCyclical(g.NumNodes(), 50, 5, traffic.DefaultBimodal(), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 3
	cfg.Mode = env.IterativeAction
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Reset(); err != nil {
		b.Fatal(err)
	}
	action := []float64{0.1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, done, err := e.Step(action)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			if _, err := e.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGraphMutation(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.RandomMutation(g, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBimodalGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traffic.Bimodal(11, traffic.DefaultBimodal(), rng)
	}
}

func BenchmarkGNBlockApply(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	block, err := gnn.NewBlock("b",
		gnn.GraphSignature{NodeDim: 8, EdgeDim: 8, GlobalDim: 8},
		gnn.GraphSignature{NodeDim: 8, EdgeDim: 8, GlobalDim: 8}, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	obs := benchObservation(b, env.FullAction, 4)
	g := &gnn.Graphs{
		Nodes:     obs.NodeFeat,
		Edges:     randMatrix(obs.EdgeFeat.Rows, 8, rng),
		Globals:   randMatrix(1, 8, rng),
		Senders:   obs.Senders,
		Receivers: obs.Receivers,
	}
	g.Nodes = randMatrix(obs.NodeFeat.Rows, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ad.NewTape()
		block.Apply(t, gnn.Lift(t, g))
	}
}

func randMatrix(rows, cols int, rng *rand.Rand) *mat.Matrix {
	return mat.RandNormal(rows, cols, 1, rng)
}
