package gddr

import (
	"strings"
	"testing"
)

func TestEventJSONRoundTrip(t *testing.T) {
	events := []Event{
		LinkDown{From: 2, To: 9},
		LinkUp{From: 0, To: 4, Capacity: 9920},
		CapacityChange{From: 1, To: 3, Capacity: 2480},
		NodeAdd{Name: "pop", AttachTo: []int{0, 5}, Capacity: 9920},
		NodeRemove{Node: 7},
	}
	for _, e := range events {
		data, err := MarshalEvent(e)
		if err != nil {
			t.Fatalf("%s: %v", e.Kind(), err)
		}
		if !strings.Contains(string(data), `"type":"`+e.Kind()+`"`) {
			t.Fatalf("%s: wire format missing type tag: %s", e.Kind(), data)
		}
		back, err := UnmarshalEvent(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Kind(), err)
		}
		again, err := MarshalEvent(back)
		if err != nil {
			t.Fatalf("%s: %v", e.Kind(), err)
		}
		if string(again) != string(data) {
			t.Fatalf("%s: round trip changed wire format: %s vs %s", e.Kind(), data, again)
		}
	}
}

func TestUnmarshalEventRejectsUnknownType(t *testing.T) {
	if _, err := UnmarshalEvent([]byte(`{"type":"flux_capacitor"}`)); err == nil {
		t.Fatal("unknown event type accepted")
	}
	if _, err := UnmarshalEvent([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestApplyEventsThreadsHistory(t *testing.T) {
	g := Abilene()
	hist := []*DemandMatrix{testDemand(g, 1), testDemand(g, 2)}
	n := g.NumNodes()

	// NodeAdd grows every history matrix; NodeRemove shrinks them back and
	// renumbers. Chain both to check threading through a sequence.
	g2, hist2, err := applyEvents(g, hist, []Event{
		NodeAdd{Name: "pop", AttachTo: []int{0, 1}, Capacity: 9920},
		NodeRemove{Node: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != n {
		t.Fatalf("nodes %d want %d", g2.NumNodes(), n)
	}
	for i, dm := range hist2 {
		if dm.N != n {
			t.Fatalf("history %d sized %d want %d", i, dm.N, n)
		}
		// Old node 1 became node 0 after removing node 0.
		if got, want := dm.At(0, 1), hist[i].At(1, 2); got != want {
			t.Fatalf("history %d not renumbered: (0,1)=%g want old (1,2)=%g", i, got, want)
		}
	}
	// Originals untouched.
	if hist[0].N != n || g.NumNodes() != n {
		t.Fatal("inputs modified")
	}

	// First invalid event rejects the whole sequence.
	if _, _, err := applyEvents(g, hist, []Event{LinkDown{From: 0, To: 0}}); err == nil {
		t.Fatal("invalid event accepted")
	}
	if _, _, err := applyEvents(g, hist, []Event{nil}); err == nil {
		t.Fatal("nil event accepted")
	}
}
