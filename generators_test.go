package gddr

import (
	"math/rand"
	"sync"
	"testing"

	"gddr/internal/traffic"
)

func validateSequence(t *testing.T, seq []*DemandMatrix, n, length int) {
	t.Helper()
	if len(seq) != length {
		t.Fatalf("sequence length %d want %d", len(seq), length)
	}
	for i, dm := range seq {
		if dm.N != n {
			t.Fatalf("matrix %d sized %d want %d", i, dm.N, n)
		}
		if err := dm.Validate(); err != nil {
			t.Fatalf("matrix %d: %v", i, err)
		}
	}
}

func TestGeneratorsProduceValidSequences(t *testing.T) {
	gens := map[string]Generator{
		"bimodal":    Bimodal(DefaultBimodalParams()),
		"gravity":    Gravity(4000),
		"diurnal":    Diurnal(DefaultDiurnalParams()),
		"sparsified": Sparsified(Bimodal(DefaultBimodalParams()), 0.3),
		"cyclical":   Cyclical(Gravity(4000), 4),
		"composed":   Sparsified(Cyclical(Bimodal(DefaultBimodalParams()), 3), 0.5),
	}
	for name, gen := range gens {
		rng := rand.New(rand.NewSource(1))
		seq, err := gen.Sequence(7, 12, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		validateSequence(t, seq, 7, 12)
	}
}

func TestCyclicalTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seq, err := Cyclical(Bimodal(DefaultBimodalParams()), 3).Sequence(5, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != seq[i%3] {
			t.Fatalf("timestep %d does not repeat base matrix %d", i, i%3)
		}
	}
}

func TestSparsifiedZeroes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dense, err := Bimodal(DefaultBimodalParams()).Sequence(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(3))
	sparse, err := Sparsified(Bimodal(DefaultBimodalParams()), 0.2).Sequence(8, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sparse[0].Total() >= dense[0].Total() {
		t.Fatalf("sparsified total %g not below dense %g", sparse[0].Total(), dense[0].Total())
	}
}

func TestDiurnalGeneratorPeriodicity(t *testing.T) {
	p := DefaultDiurnalParams()
	p.Period = 4
	p.BaseTotal = 1000
	rng := rand.New(rand.NewSource(4))
	seq, err := Diurnal(p).Sequence(6, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got, want := seq[i+4].Total(), seq[i].Total(); got != want {
			t.Fatalf("timestep %d total %g != timestep %d total %g", i+4, got, i, want)
		}
	}
}

func TestGeneratorRejectsBadDims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		gen  Generator
		n, l int
	}{
		{"tiny graph", Bimodal(DefaultBimodalParams()), 1, 5},
		{"zero length", Gravity(100), 5, 0},
		{"bad cycle", Cyclical(Gravity(100), 0), 5, 5},
		{"bad keep prob", Sparsified(Gravity(100), 1.5), 5, 5},
		{"bad total", Gravity(-1), 5, 5},
	}
	for _, c := range cases {
		if _, err := c.gen.Sequence(c.n, c.l, rng); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
	if _, err := GenerateSequences(nil, 1, 5, 5, rng); err == nil {
		t.Fatal("nil generator accepted")
	}
	if _, err := GenerateSequences(Gravity(100), 0, 5, 5, rng); err == nil {
		t.Fatal("zero count accepted")
	}
}

// TestAbileneScenarioMatchesInternalWorkload pins the generator surface to
// the internal workload it was promoted from: same seed, same matrices.
func TestAbileneScenarioMatchesInternalWorkload(t *testing.T) {
	g := Abilene()
	rng := rand.New(rand.NewSource(9))
	want, err := traffic.Sequences(2, g.NumNodes(), 12, 4, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(9))
	got, err := GenerateSequences(Cyclical(Bimodal(DefaultBimodalParams()), 4), 2, g.NumNodes(), 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	for s := range want {
		for i := range want[s] {
			for j, v := range want[s][i].Data {
				if got[s][i].Data[j] != v {
					t.Fatalf("sequence %d matrix %d entry %d: %g != %g", s, i, j, got[s][i].Data[j], v)
				}
			}
		}
	}
}

func TestNewGeneratedScenario(t *testing.T) {
	g := NSFNet()
	s, err := NewGeneratedScenario(g, Diurnal(DefaultDiurnalParams()), 2, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 1 || len(s.Items[0].Sequences) != 2 {
		t.Fatalf("unexpected scenario shape: %d items", len(s.Items))
	}
	// Multi-topology composition via AddGenerated.
	if err := s.AddGenerated(Abilene(), Gravity(4000), 1, 8, 12); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeneratedScenario(nil, Gravity(1), 1, 5, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func sequencesEqual(a, b [][]*DemandMatrix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].N != b[i][j].N {
				return false
			}
			for k := range a[i][j].Data {
				if a[i][j].Data[k] != b[i][j].Data[k] {
					return false
				}
			}
		}
	}
	return true
}

// TestGenerateSequencesSeededDeterministic checks the parallel-safe
// generation path: repeated runs are bit-identical, and sequence i's
// content depends only on (seed, i), not on how many sequences are drawn.
func TestGenerateSequencesSeededDeterministic(t *testing.T) {
	gen := Cyclical(Bimodal(DefaultBimodalParams()), 3)
	a, err := GenerateSequencesSeeded(gen, 4, 6, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSequencesSeeded(gen, 4, 6, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !sequencesEqual(a, b) {
		t.Fatal("seeded generation not deterministic")
	}
	one, err := GenerateSequencesSeeded(gen, 1, 6, 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !sequencesEqual(one, a[:1]) {
		t.Fatal("sequence content depends on the sequence count")
	}
	other, err := GenerateSequencesSeeded(gen, 2, 6, 9, 43)
	if err != nil {
		t.Fatal(err)
	}
	if sequencesEqual(other, a[:2]) {
		t.Fatal("different seeds produced identical sequences")
	}
	if _, err := GenerateSequencesSeeded(nil, 1, 6, 9, 1); err == nil {
		t.Fatal("nil generator accepted")
	}
	if _, err := GenerateSequencesSeeded(gen, 0, 6, 9, 1); err == nil {
		t.Fatal("zero count accepted")
	}
}

// TestSeededGeneratorForkRace is the regression test for the documented
// Generator/GenerateSequences concurrency hazard: parallel workers forking
// independent streams must neither race (caught by -race) nor change the
// sequences a single-threaded run would produce.
func TestSeededGeneratorForkRace(t *testing.T) {
	gen := Sparsified(Cyclical(Bimodal(DefaultBimodalParams()), 2), 0.7)
	base := NewSeededGenerator(gen, 7)

	// Single-threaded reference: fork per worker, generate sequentially.
	want := make([][]*DemandMatrix, 8)
	for w := range want {
		seq, err := base.Fork(int64(w)).Sequence(5, 6)
		if err != nil {
			t.Fatal(err)
		}
		want[w] = seq
	}

	got := make([][]*DemandMatrix, len(want))
	errs := make([]error, len(want))
	var wg sync.WaitGroup
	for w := range got {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w], errs[w] = base.Fork(int64(w)).Sequence(5, 6)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if !sequencesEqual(want, got) {
		t.Fatal("parallel forked generation diverged from sequential")
	}
}
