package gddr

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testTenantConfig is a small, fast tenant shape for lifecycle tests: the
// same tiny GNN testRouterAgent uses, cold-started per tenant.
func testTenantConfig(topology string) TenantConfig {
	return TenantConfig{Topology: topology, Memory: 2, GNNHidden: 8, GNNSteps: 1, MaxBatch: 4}
}

func TestFleetLifecycle(t *testing.T) {
	fleet := NewFleet()
	defer fleet.Close()
	ctx := context.Background()

	for _, tc := range []struct{ id, topology string }{
		{"beta", "nsfnet"},
		{"alpha", "abilene"},
		{"gamma", "b4"},
	} {
		if _, err := fleet.Create(tc.id, testTenantConfig(tc.topology)); err != nil {
			t.Fatalf("Create(%q): %v", tc.id, err)
		}
	}
	if got, want := fleet.List(), []string{"alpha", "beta", "gamma"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("List() = %v, want %v", got, want)
	}
	if fleet.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", fleet.Len())
	}

	if _, err := fleet.Create("alpha", testTenantConfig("abilene")); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate Create = %v, want ErrTenantExists", err)
	}
	if _, err := fleet.Create("Bad ID!", testTenantConfig("abilene")); err == nil {
		t.Fatal("Create with invalid id succeeded")
	}
	if _, err := fleet.Tenant("nope"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("Tenant(nope) = %v, want ErrNoTenant", err)
	}

	// Every tenant routes on its own topology: decision shapes follow the
	// tenant's graph, proving the engines are independent.
	for id, nodes := range map[string]int{"alpha": 11, "beta": 14, "gamma": 12} {
		tenant, err := fleet.Tenant(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := tenant.Snapshot().Nodes; got != nodes {
			t.Fatalf("tenant %q serves %d nodes, want %d", id, got, nodes)
		}
		g, err := tenantGraph(tenant)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tenant.Route(ctx, testDemand(g, 1)); err != nil {
			t.Fatalf("tenant %q Route: %v", id, err)
		}
	}

	// Delete closes the tenant's engine; holders of the old handle observe
	// ErrClosed, new lookups observe ErrNoTenant.
	beta, err := fleet.Tenant("beta")
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Delete("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Tenant("beta"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("Tenant(beta) after delete = %v, want ErrNoTenant", err)
	}
	if err := fleet.Delete("beta"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("double Delete = %v, want ErrNoTenant", err)
	}
	g := NSFNet()
	if _, err := beta.Route(ctx, testDemand(g, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Route on deleted tenant = %v, want ErrClosed", err)
	}

	fleet.Close()
	if _, err := fleet.Create("late", testTenantConfig("abilene")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create after Close = %v, want ErrClosed", err)
	}
	if fleet.Len() != 0 {
		t.Fatalf("Len() after Close = %d, want 0", fleet.Len())
	}
}

// tenantGraph recovers the tenant's serving graph for demand generation.
func tenantGraph(tenant *Tenant) (*Graph, error) {
	return tenant.Engine().Graph(), nil
}

func TestFleetMaxTenants(t *testing.T) {
	fleet := NewFleet(WithMaxTenants(1))
	defer fleet.Close()
	if _, err := fleet.Create("one", testTenantConfig("abilene")); err != nil {
		t.Fatal(err)
	}
	_, err := fleet.Create("two", testTenantConfig("nsfnet"))
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("Create past the tenant bound = %v, want capacity error", err)
	}
}

func TestTenantConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  TenantConfig
		want string // "" means valid
	}{
		{"sparse config defaults", TenantConfig{Topology: "abilene"}, ""},
		{"full config", testTenantConfig("geant"), ""},
		{"missing topology", TenantConfig{}, "topology"},
		{"unknown topology", TenantConfig{Topology: "arpanet"}, "arpanet"},
		{"unknown policy", TenantConfig{Topology: "abilene", Policy: "transformer"}, "transformer"},
		{"negative memory", TenantConfig{Topology: "abilene", Memory: -1}, "memory"},
		{"negative replicas", TenantConfig{Topology: "abilene", Replicas: -2}, "replicas"},
		{"negative rate", TenantConfig{Topology: "abilene", RateLimit: -1}, "rate_limit"},
		{"negative queue", TenantConfig{Topology: "abilene", QueueDepth: -3}, "queue_depth"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestTenantConfigDefaults(t *testing.T) {
	cfg := TenantConfig{Topology: "abilene", RateLimit: 2.5}.withDefaults()
	if cfg.Policy != "gnn" || cfg.Memory != 3 || cfg.GNNHidden != 16 || cfg.GNNSteps != 2 {
		t.Fatalf("policy defaults not applied: %+v", cfg)
	}
	if cfg.Replicas != 1 || cfg.MaxBatch != 16 || cfg.QueueDepth != defaultQueueDepth {
		t.Fatalf("engine defaults not applied: %+v", cfg)
	}
	if cfg.Burst != 3 { // ceil(2.5): the bucket must admit at least the rate
		t.Fatalf("Burst = %d, want ceil(RateLimit) = 3", cfg.Burst)
	}
	if unlimited := (TenantConfig{Topology: "abilene"}).withDefaults(); unlimited.Burst != 0 {
		t.Fatal("Burst defaulted without a rate limit")
	}
}

// TestFleetAdmissionQueueFull drives the admission queue to saturation
// deterministically: the white-box test occupies every in-flight slot
// itself, so the next Route must shed with ErrOverloaded without touching
// the engine.
func TestFleetAdmissionQueueFull(t *testing.T) {
	fleet := NewFleet()
	defer fleet.Close()
	cfg := testTenantConfig("abilene")
	cfg.QueueDepth = 2
	tenant, err := fleet.CreateWithAgent("hot", cfg, testRouterAgent(t), Abilene())
	if err != nil {
		t.Fatal(err)
	}
	g := Abilene()
	ctx := context.Background()

	tenant.adm.slots <- struct{}{}
	tenant.adm.slots <- struct{}{}
	if _, err := tenant.Route(ctx, testDemand(g, 1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Route with a full admission queue = %v, want ErrOverloaded", err)
	}
	if got := tenant.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	<-tenant.adm.slots
	if _, err := tenant.Route(ctx, testDemand(g, 1)); err != nil {
		t.Fatalf("Route after freeing a slot: %v", err)
	}
	if got := tenant.admitted.Value(); got != 1 {
		t.Fatalf("admitted counter = %d, want 1", got)
	}
	<-tenant.adm.slots
	if got := len(tenant.adm.slots); got != 0 {
		t.Fatalf("%d admission slots leaked", got)
	}
}

// TestFleetRateLimit exhausts a one-token bucket with a negligible refill
// rate: the first request spends the burst, the second must shed — and must
// release its admission slot on the way out.
func TestFleetRateLimit(t *testing.T) {
	fleet := NewFleet()
	defer fleet.Close()
	cfg := testTenantConfig("abilene")
	cfg.RateLimit = 1e-9
	cfg.Burst = 1
	tenant, err := fleet.CreateWithAgent("limited", cfg, testRouterAgent(t), Abilene())
	if err != nil {
		t.Fatal(err)
	}
	g := Abilene()
	ctx := context.Background()

	if _, err := tenant.Route(ctx, testDemand(g, 1)); err != nil {
		t.Fatalf("first Route within burst: %v", err)
	}
	if _, err := tenant.Route(ctx, testDemand(g, 2)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Route past the rate limit = %v, want ErrOverloaded", err)
	}
	if got := len(tenant.adm.slots); got != 0 {
		t.Fatalf("shed request leaked %d admission slots", got)
	}
	if got := tenant.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

// TestEngineReplicasBitIdentical routes the same demand sequence through a
// single-replica and a 4-replica engine in lockstep: round-robin spreads
// consecutive requests across different replicas, so equality at every step
// proves the replicas share one coherent demand history rather than each
// observing a fraction of the traffic.
func TestEngineReplicasBitIdentical(t *testing.T) {
	agent := testRouterAgent(t)
	g := Abilene()
	single, err := NewEngine(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	multi, err := NewEngine(agent, g, WithReplicas(4))
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()

	if got := multi.Snapshot().Replicas; got != 4 {
		t.Fatalf("Snapshot().Replicas = %d, want 4", got)
	}
	ctx := context.Background()
	for i := int64(0); i < 8; i++ {
		dm := testDemand(g, i)
		want, err := single.Route(ctx, dm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := multi.Route(ctx, dm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: replicated decision diverged from single-replica engine", i)
		}
	}
}

// TestEngineReplicasRepublishOnApply proves a topology event republishes
// the whole replica set: the version advances, the replica count is intact,
// and decisions still match a single-replica engine that absorbed the same
// event.
func TestEngineReplicasRepublishOnApply(t *testing.T) {
	agent := testRouterAgent(t)
	g := Abilene()
	single, err := NewEngine(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	multi, err := NewEngine(agent, g, WithReplicas(3))
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()

	ctx := context.Background()
	event := CapacityChange{From: 0, To: 1, Capacity: 1234}
	if err := single.Apply(ctx, event); err != nil {
		t.Fatal(err)
	}
	if err := multi.Apply(ctx, event); err != nil {
		t.Fatal(err)
	}
	snap := multi.Snapshot()
	if snap.Version != 2 || snap.Replicas != 3 {
		t.Fatalf("Snapshot() after Apply = %+v, want version 2 with 3 replicas", snap)
	}
	if got := multi.Stats().Replicas; got != 3 {
		t.Fatalf("Stats().Replicas = %d, want 3", got)
	}
	for i := int64(0); i < 4; i++ {
		dm := testDemand(g, i)
		want, err := single.Route(ctx, dm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := multi.Route(ctx, dm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d after Apply: replicated decision diverged", i)
		}
	}
}

// steadyDecision computes the reference decision a steady demand converges
// to on (agent, g) after the given events: once the history window holds
// only dm, the decision is a pure function of (weights, topology, window),
// so any replica serving the same state must reproduce it bit-for-bit.
func steadyDecision(t *testing.T, agent *Agent, g *Graph, dm *DemandMatrix, events ...Event) *Decision {
	t.Helper()
	e, err := NewEngine(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if len(events) > 0 {
		if err := e.Apply(ctx, events...); err != nil {
			t.Fatal(err)
		}
	}
	var d *Decision
	for i := 0; i < 3; i++ { // memory=2: step 3 sees the saturated window
		if d, err = e.Route(ctx, dm); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestFleetRouteStress is the -race stress test: concurrent Route traffic
// across a 3-replica tenant interleaved with capacity flaps, checkpoint
// swaps of identical weights, and sibling tenant create/delete churn. With
// a steady demand every decision is a pure function of the published
// snapshot, so each observed decision must be bit-identical to one of the
// two single-replica references (pre- and post-flap) — anything else means
// a half-published replica set, a torn history, or cross-tenant bleed.
func TestFleetRouteStress(t *testing.T) {
	agent := testRouterAgent(t)
	g := Abilene()
	dm := testDemand(g, 42)
	up := CapacityChange{From: 0, To: 1, Capacity: 1000}
	down := CapacityChange{From: 0, To: 1, Capacity: 250}

	refUp := steadyDecision(t, agent, g, dm, up)
	refDown := steadyDecision(t, agent, g, dm, down)
	if reflect.DeepEqual(refUp, refDown) {
		t.Fatal("capacity flap does not change the reference decision; the stress test would prove nothing")
	}

	fleet := NewFleet()
	defer fleet.Close()
	cfg := testTenantConfig("abilene")
	cfg.Replicas = 3
	cfg.QueueDepth = 256
	tenant, err := fleet.CreateWithAgent("hot", cfg, agent, g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := tenant.Apply(ctx, up); err != nil {
		t.Fatal(err)
	}
	// Saturate the shared history window before racing: every decision
	// from here on sees window [dm, dm].
	for i := 0; i < 2; i++ {
		if _, err := tenant.Route(ctx, dm); err != nil {
			t.Fatal(err)
		}
	}

	checkpoint := new(bytes.Buffer)
	if err := agent.SaveCheckpoint(checkpoint); err != nil {
		t.Fatal(err)
	}
	ckptBytes := checkpoint.Bytes()

	routesPerWorker, flaps, swaps, churns := 120, 12, 6, 6
	if testing.Short() {
		routesPerWorker, flaps, swaps, churns = 40, 6, 3, 3
	}

	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		divergent atomic.Int64
		torn      atomic.Int64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < routesPerWorker; i++ {
				d, err := tenant.Route(ctx, dm)
				if err != nil {
					t.Errorf("stress Route: %v", err)
					return
				}
				if !reflect.DeepEqual(d, refUp) && !reflect.DeepEqual(d, refDown) {
					divergent.Add(1)
				}
				if snap := tenant.Snapshot(); snap.Replicas != 3 {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // capacity flapper: alternates the two reference topologies
		defer wg.Done()
		for i := 0; i < flaps; i++ {
			event := down
			if i%2 == 1 {
				event = up
			}
			if err := tenant.Apply(ctx, event); err != nil {
				t.Errorf("stress Apply: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // swapper: hot-swaps the identical checkpoint
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if err := tenant.SwapCheckpoint(ctx, bytes.NewReader(ckptBytes)); err != nil {
				t.Errorf("stress SwapCheckpoint: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // churner: sibling tenants come and go under the same fleet
		defer wg.Done()
		churnAgent := testRouterAgent(t)
		for i := 0; i < churns; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sibling, err := fleet.CreateWithAgent("churn", testTenantConfig("nsfnet"), churnAgent, NSFNet())
			if err != nil {
				t.Errorf("stress Create: %v", err)
				return
			}
			if _, err := sibling.Route(ctx, testDemand(NSFNet(), int64(i))); err != nil {
				t.Errorf("stress sibling Route: %v", err)
				return
			}
			if err := fleet.Delete("churn"); err != nil {
				t.Errorf("stress Delete: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)

	if n := divergent.Load(); n > 0 {
		t.Errorf("%d concurrent decisions matched neither single-replica reference", n)
	}
	if n := torn.Load(); n > 0 {
		t.Errorf("%d requests observed a half-published replica set", n)
	}
	if _, err := fleet.Tenant("hot"); err != nil {
		t.Errorf("hot tenant lost during churn: %v", err)
	}
}

func TestParseFleetFile(t *testing.T) {
	parse := func(s string) (*FleetFile, error) { return ParseFleetFile(strings.NewReader(s)) }

	file, err := parse(`{
		"default": "prod",
		"tenants": {
			"prod":    {"topology": "abilene", "replicas": 4, "rate_limit": 500},
			"staging": {"topology": "nsfnet"}
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if file.Default != "prod" || len(file.Tenants) != 2 {
		t.Fatalf("parsed %+v, want explicit default prod with 2 tenants", file)
	}
	if file.Tenants["prod"].Replicas != 4 || file.Tenants["prod"].RateLimit != 500 {
		t.Fatalf("prod config lost fields: %+v", file.Tenants["prod"])
	}

	file, err = parse(`{"tenants": {"default": {"topology": "abilene"}, "aaa": {"topology": "b4"}}}`)
	if err != nil {
		t.Fatal(err)
	}
	if file.Default != "default" {
		t.Fatalf("Default = %q, want the tenant literally named default", file.Default)
	}

	file, err = parse(`{"tenants": {"zulu": {"topology": "abilene"}, "alpha": {"topology": "b4"}}}`)
	if err != nil {
		t.Fatal(err)
	}
	if file.Default != "alpha" {
		t.Fatalf("Default = %q, want first sorted id alpha", file.Default)
	}

	for name, bad := range map[string]string{
		"empty tenants":         `{"tenants": {}}`,
		"missing default":       `{"default": "gone", "tenants": {"a": {"topology": "abilene"}}}`,
		"unknown top field":     `{"tenants": {"a": {"topology": "abilene"}}, "extra": 1}`,
		"unknown config field":  `{"tenants": {"a": {"topology": "abilene", "shards": 9}}}`,
		"invalid tenant id":     `{"tenants": {"Bad ID!": {"topology": "abilene"}}}`,
		"invalid tenant config": `{"tenants": {"a": {"topology": "arpanet"}}}`,
	} {
		if _, err := parse(bad); err == nil {
			t.Errorf("%s: ParseFleetFile accepted %s", name, bad)
		}
	}
}

func TestFleetBoot(t *testing.T) {
	file, err := ParseFleetFile(strings.NewReader(`{
		"tenants": {
			"east": {"topology": "abilene", "memory": 2, "gnn_hidden": 8, "gnn_steps": 1},
			"west": {"topology": "nsfnet", "memory": 2, "gnn_hidden": 8, "gnn_steps": 1}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet()
	defer fleet.Close()
	if err := fleet.Boot(file); err != nil {
		t.Fatal(err)
	}
	if got, want := fleet.List(), []string{"east", "west"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("List() = %v, want %v", got, want)
	}
	ctx := context.Background()
	for id, g := range map[string]*Graph{"east": Abilene(), "west": NSFNet()} {
		tenant, err := fleet.Tenant(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tenant.Route(ctx, testDemand(g, 3)); err != nil {
			t.Fatalf("tenant %q Route: %v", id, err)
		}
	}
}

// TestAdmissionTokenBucketConcurrent is the lockguard audit of the tenant
// admission path (tokens/last are mu-guarded, tenant.go) turned into a -race
// regression test: many goroutines hammer takeToken while the invariants the
// lock protects are asserted. The audit found every tokens/last access
// already under mu — this test keeps it that way: any future out-of-lock
// read or write trips the race detector in CI's `go test -race`.
func TestAdmissionTokenBucketConcurrent(t *testing.T) {
	cfg := TenantConfig{Topology: "abilene", RateLimit: 1000, Burst: 8}.withDefaults()
	a := newAdmission(cfg)
	const workers = 8
	const perWorker = 200
	var admitted atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if a.takeToken() {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	// The bucket can never admit more than its initial burst plus what the
	// elapsed wall time refilled (generous +1 slop for the fractional token
	// in flight when the clock was read).
	limit := cfg.Burst + int(elapsed*cfg.RateLimit) + 1
	if got := admitted.Load(); got < 1 || got > int64(limit) {
		t.Fatalf("admitted %d of %d attempts, want within [1, %d]", got, workers*perWorker, limit)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tokens > a.burst {
		t.Fatalf("tokens %g exceeds burst %g after concurrent refills", a.tokens, a.burst)
	}
}
