package gddr

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"gddr/internal/nn"
	"gddr/internal/rl"
)

// CheckpointFormat is the version of the training-checkpoint wire format.
const CheckpointFormat = 1

// TrainCheckpoint is a durable snapshot of a training run at an update
// boundary: the originating configuration, every parameter tensor, the Adam
// moments, the per-worker random streams and environment states, the
// step/episode counters, and the learning curve so far. Restoring it (see
// ResumeAgent) and training to the original budget is bit-identical to the
// uninterrupted run for the same scenario and (Seed, Workers) pair.
type TrainCheckpoint struct {
	Format int         `json:"format"`
	Algo   AlgoKind    `json:"algo"`
	Config TrainConfig `json:"config"`
	// ScenarioDigest fingerprints the scenario the run trained on, so a
	// resume against a different scenario is rejected instead of silently
	// corrupting the episode stream.
	ScenarioDigest string          `json:"scenario_digest,omitempty"`
	Params         []nn.ParamState `json:"params"`
	Train          *rl.TrainState  `json:"train,omitempty"`
	Curve          []EpisodeStat   `json:"curve,omitempty"`
}

// Checkpoint captures the agent's current training state. It is consistent
// with the last completed update: collections aborted by cancellation are
// not part of it.
func (a *Agent) Checkpoint() (*TrainCheckpoint, error) {
	st, err := a.trainer.State()
	if err != nil {
		return nil, err
	}
	return &TrainCheckpoint{
		Format:         CheckpointFormat,
		Algo:           a.Config.Algo,
		Config:         a.Config,
		ScenarioDigest: a.digest,
		Params:         nn.CaptureParams(a.trainer.Params()),
		Train:          st,
		Curve:          a.Curve(),
	}, nil
}

// SaveCheckpoint writes the agent's training checkpoint as JSON.
func (a *Agent) SaveCheckpoint(w io.Writer) error {
	cp, err := a.Checkpoint()
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(cp)
}

// WriteCheckpointFile writes the checkpoint atomically: to a temp file in
// the target directory, then renamed over path, so a crash mid-write never
// corrupts the previous checkpoint.
func (a *Agent) WriteCheckpointFile(path string) error {
	cp, err := a.Checkpoint()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if err := json.NewEncoder(tmp).Encode(cp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads and validates a checkpoint written by
// SaveCheckpoint/WriteCheckpointFile.
func LoadCheckpoint(r io.Reader) (*TrainCheckpoint, error) {
	var cp TrainCheckpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("gddr: decode checkpoint: %w", err)
	}
	if cp.Format != CheckpointFormat {
		return nil, fmt.Errorf("gddr: unsupported checkpoint format %d (want %d)", cp.Format, CheckpointFormat)
	}
	if len(cp.Params) == 0 {
		return nil, fmt.Errorf("gddr: checkpoint carries no parameters")
	}
	if cp.Train != nil && string(cp.Algo) != cp.Train.Algo {
		return nil, fmt.Errorf("gddr: checkpoint algorithm %q does not match training state %q", cp.Algo, cp.Train.Algo)
	}
	return &cp, nil
}

// LoadCheckpointFile is LoadCheckpoint over a file path.
func LoadCheckpointFile(path string) (*TrainCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

// ResumeAgent reconstructs an agent from a checkpoint: the architecture is
// rebuilt from the checkpointed TrainConfig, the parameters and optimiser
// moments are restored into it (validated by name and shape, so a
// checkpoint cannot be loaded into a mismatched architecture), and the
// training state is staged for the next Train/ResumeTraining call, which
// continues the run bit-identically. Options are applied on top of the
// checkpointed config — safe for runtime concerns (WithProgress,
// WithCheckpointPath, extending WithTotalSteps). Changing the architecture
// or the worker count is rejected; a WithSeed override has no effect on
// the continuation, because every random stream is restored from the
// checkpointed state rather than re-derived from the seed.
func ResumeAgent(cp *TrainCheckpoint, scenario *Scenario, opts ...Option) (*Agent, error) {
	if cp == nil {
		return nil, fmt.Errorf("gddr: nil checkpoint")
	}
	merged := append([]Option{WithConfig(cp.Config)}, opts...)
	agent, err := NewAgent(cp.Config.Policy, scenario, merged...)
	if err != nil {
		return nil, err
	}
	if err := nn.RestoreParams(cp.Params, agent.trainer.Params()); err != nil {
		return nil, fmt.Errorf("gddr: checkpoint does not match the rebuilt architecture: %w", err)
	}
	if cp.Train != nil {
		if w := len(cp.Train.WorkerStates); w > 0 && agent.Config.Workers != 0 && agent.Config.Workers != w {
			return nil, fmt.Errorf("gddr: checkpoint was collected with %d rollout workers, config asks for %d (worker count is part of the determinism contract)",
				w, agent.Config.Workers)
		}
		agent.pending = cp.Train
	}
	agent.curve = append([]EpisodeStat(nil), cp.Curve...)
	agent.digest = cp.ScenarioDigest
	return agent, nil
}

// scenarioDigest fingerprints a scenario's structure and demand values so a
// checkpoint can detect a mismatched resume: graphs (nodes, edges,
// capacities) and every demand matrix's bits feed an FNV-64a hash.
func scenarioDigest(s *Scenario) string {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeInt(len(s.Items))
	for _, item := range s.Items {
		writeInt(item.Graph.NumNodes())
		writeInt(item.Graph.NumEdges())
		for ei := 0; ei < item.Graph.NumEdges(); ei++ {
			e := item.Graph.Edge(ei)
			writeInt(e.From)
			writeInt(e.To)
			writeFloat(e.Capacity)
		}
		writeInt(len(item.Sequences))
		for _, seq := range item.Sequences {
			writeInt(len(seq))
			for _, dm := range seq {
				writeInt(dm.N)
				for _, v := range dm.Data {
					writeFloat(v)
				}
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
