package gddr

import (
	"fmt"
	"math/rand"
	"sync"

	"gddr/internal/rng"
	"gddr/internal/traffic"
)

// Generator produces demand-matrix sequences: the public traffic-generation
// surface, promoted from internal/traffic so every demand model of the
// paper's evaluation (and this reproduction's extensions) is constructible
// by callers and composable — e.g. Sparsified(Cyclical(Bimodal(p), 10),
// 0.3) is a sparse cyclical bimodal workload. Generators are stateless:
// all variation comes from the rng, so a sequence is reproducible from the
// seed.
//
// Generators are NOT safe for concurrent use: every generator draws from
// the one *rand.Rand the caller passes in (and *rand.Rand is not
// synchronised for this use), so concurrent Sequence or GenerateSequences
// calls sharing an rng race on it and destroy seed-reproducibility. Give
// each goroutine its own seeded rng — that is also what keeps parallel
// generation deterministic. SeededGenerator (Fork one stream per
// goroutine) and GenerateSequencesSeeded (one derived stream per sequence)
// package that pattern.
type Generator interface {
	// Sequence draws length demand matrices for an n-node topology, in
	// timestep order, consuming randomness from rng.
	Sequence(n, length int, rng *rand.Rand) ([]*DemandMatrix, error)
}

// DiurnalParams configures the Diurnal generator (re-exported from
// internal/traffic).
type DiurnalParams = traffic.DiurnalParams

// DefaultBimodalParams returns the paper's example bimodal parameters.
func DefaultBimodalParams() BimodalParams { return traffic.DefaultBimodal() }

// DefaultDiurnalParams returns a 24-step day with a 3x peak.
func DefaultDiurnalParams() DiurnalParams { return traffic.DefaultDiurnal() }

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(n, length int, rng *rand.Rand) ([]*DemandMatrix, error)

// Sequence implements Generator.
func (f GeneratorFunc) Sequence(n, length int, rng *rand.Rand) ([]*DemandMatrix, error) {
	return f(n, length, rng)
}

// Bimodal generates independent bimodal demand matrices each timestep —
// the paper's elephant-flow model (§VIII-B) without temporal structure.
func Bimodal(p BimodalParams) Generator {
	return GeneratorFunc(func(n, length int, rng *rand.Rand) ([]*DemandMatrix, error) {
		if err := checkSequenceDims(n, length); err != nil {
			return nil, err
		}
		seq := make([]*DemandMatrix, length)
		for i := range seq {
			seq[i] = traffic.Bimodal(n, p, rng)
		}
		return seq, nil
	})
}

// Gravity generates independent gravity-model demand matrices with the
// given total demand each timestep.
func Gravity(total float64) Generator {
	return GeneratorFunc(func(n, length int, rng *rand.Rand) ([]*DemandMatrix, error) {
		if err := checkSequenceDims(n, length); err != nil {
			return nil, err
		}
		if total <= 0 {
			return nil, fmt.Errorf("gddr: gravity total must be positive, got %g", total)
		}
		seq := make([]*DemandMatrix, length)
		for i := range seq {
			seq[i] = traffic.Gravity(n, total, rng)
		}
		return seq, nil
	})
}

// Diurnal generates a day-cycle workload: one fixed gravity structure whose
// total demand follows a sinusoid with one peak per period (this
// reproduction's §IX-A extension).
func Diurnal(p DiurnalParams) Generator {
	return GeneratorFunc(func(n, length int, rng *rand.Rand) ([]*DemandMatrix, error) {
		return traffic.DiurnalSequence(n, length, p, rng)
	})
}

// Sparsified zeroes each off-diagonal entry of the inner generator's
// matrices independently with probability 1-keepProb, modelling sparse
// traffic.
func Sparsified(inner Generator, keepProb float64) Generator {
	return GeneratorFunc(func(n, length int, rng *rand.Rand) ([]*DemandMatrix, error) {
		if keepProb < 0 || keepProb > 1 {
			return nil, fmt.Errorf("gddr: keep probability %g outside [0,1]", keepProb)
		}
		seq, err := inner.Sequence(n, length, rng)
		if err != nil {
			return nil, err
		}
		for i, dm := range seq {
			seq[i] = traffic.Sparsify(dm, keepProb, rng)
		}
		return seq, nil
	})
}

// Cyclical draws cycle base matrices from the inner generator and repeats
// them to the requested length (x_i = D_{i mod cycle}) — the temporal
// regularity the paper's data-driven premise relies on (§III).
// Cyclical(Bimodal(p), cycle) is exactly the paper's main workload.
func Cyclical(inner Generator, cycle int) Generator {
	return GeneratorFunc(func(n, length int, rng *rand.Rand) ([]*DemandMatrix, error) {
		if cycle <= 0 {
			return nil, fmt.Errorf("gddr: cycle must be positive, got %d", cycle)
		}
		if err := checkSequenceDims(n, length); err != nil {
			return nil, err
		}
		base, err := inner.Sequence(n, cycle, rng)
		if err != nil {
			return nil, err
		}
		seq := make([]*DemandMatrix, length)
		for i := range seq {
			seq[i] = base[i%cycle]
		}
		return seq, nil
	})
}

// GenerateSequences draws count independent sequences from gen (the shape
// the paper's 7-train/3-test split uses). Like Generator.Sequence it
// consumes randomness from the single rng and is not safe for concurrent
// use; callers that generate in parallel must use one seeded rng per
// goroutine.
func GenerateSequences(gen Generator, count, n, length int, rng *rand.Rand) ([][]*DemandMatrix, error) {
	if gen == nil {
		return nil, fmt.Errorf("gddr: nil generator")
	}
	if count < 1 {
		return nil, fmt.Errorf("gddr: sequence count must be >= 1, got %d", count)
	}
	out := make([][]*DemandMatrix, count)
	for i := range out {
		seq, err := gen.Sequence(n, length, rng)
		if err != nil {
			return nil, err
		}
		out[i] = seq
	}
	return out, nil
}

// SeededGenerator couples a Generator with a private deterministic random
// stream, fixing the documented concurrency hazard of the bare Generator
// surface (every generator draws from the one *rand.Rand the caller passes
// in, so goroutines sharing one rng race and destroy seed-reproducibility).
// Each goroutine owns its own SeededGenerator — take one with
// NewSeededGenerator and hand workers independent streams with Fork:
//
//	base := gddr.NewSeededGenerator(gen, seed)
//	for w := 0; w < workers; w++ {
//	        go produce(base.Fork(int64(w))) // no shared rng, reproducible
//	}
//
// A SeededGenerator is itself not safe for concurrent use (sequential
// Sequence calls advance its private stream); Fork is what crosses
// goroutines.
type SeededGenerator struct {
	gen  Generator
	seed int64
	r    *rand.Rand
}

// NewSeededGenerator binds gen to a private stream seeded with seed.
func NewSeededGenerator(gen Generator, seed int64) *SeededGenerator {
	return &SeededGenerator{gen: gen, seed: seed, r: rand.New(rand.NewSource(rng.DeriveSeed(seed, 0)))}
}

// Fork derives an independent, reproducible generator stream: forking the
// same (seed, stream) pair always yields the same sequence of draws,
// regardless of what the parent has generated, so parallel workers can
// fork by worker index and stay deterministic.
func (s *SeededGenerator) Fork(stream int64) *SeededGenerator {
	return NewSeededGenerator(s.gen, rng.DeriveSeed(s.seed, 1+uint64(stream)))
}

// Sequence draws the next sequence from the private stream.
func (s *SeededGenerator) Sequence(n, length int) ([]*DemandMatrix, error) {
	return s.gen.Sequence(n, length, s.r)
}

// GenerateSequencesSeeded draws count independent sequences from gen, each
// seeded from (seed, index) and generated concurrently — the parallel-safe
// alternative to GenerateSequences. Because sequence i's stream depends
// only on (seed, i), the result is deterministic, independent of count and
// of scheduling, and identical to generating the sequences one at a time.
// The generator itself must be stateless (all built-in generators are).
func GenerateSequencesSeeded(gen Generator, count, n, length int, seed int64) ([][]*DemandMatrix, error) {
	if gen == nil {
		return nil, fmt.Errorf("gddr: nil generator")
	}
	if count < 1 {
		return nil, fmt.Errorf("gddr: sequence count must be >= 1, got %d", count)
	}
	out := make([][]*DemandMatrix, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := NewSeededGenerator(gen, seed).Fork(int64(i))
			out[i], errs[i] = g.Sequence(n, length)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NewGeneratedScenario builds a single-topology scenario by drawing seqs
// sequences of length seqLen from gen, seeded deterministically.
func NewGeneratedScenario(g *Graph, gen Generator, seqs, seqLen int, seed int64) (*Scenario, error) {
	s := &Scenario{}
	if err := s.AddGenerated(g, gen, seqs, seqLen, seed); err != nil {
		return nil, err
	}
	return s, nil
}

// AddGenerated appends a topology with seqs generated sequences of length
// seqLen, seeded deterministically per call.
func (s *Scenario) AddGenerated(g *Graph, gen Generator, seqs, seqLen int, seed int64) error {
	if g == nil {
		return fmt.Errorf("gddr: generated scenario needs a graph")
	}
	rng := rand.New(rand.NewSource(seed))
	sequences, err := GenerateSequences(gen, seqs, g.NumNodes(), seqLen, rng)
	if err != nil {
		return err
	}
	s.Add(g, sequences)
	return nil
}

func checkSequenceDims(n, length int) error {
	if n < 2 {
		return fmt.Errorf("gddr: generator needs >= 2 nodes, got %d", n)
	}
	if length < 1 {
		return fmt.Errorf("gddr: sequence length must be >= 1, got %d", length)
	}
	return nil
}
