package gddr

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"gddr/internal/env"
	"gddr/internal/metrics"
	"gddr/internal/nn"
	"gddr/internal/policy"
	"gddr/internal/rl"
	"gddr/internal/rng"
	"gddr/internal/routing"
)

// AlgoKind selects the training algorithm.
type AlgoKind string

// Training algorithms. The empty string behaves as PPOAlgo so existing
// configs keep training with PPO.
const (
	PPOAlgo AlgoKind = rl.AlgoPPO
	A2CAlgo AlgoKind = rl.AlgoA2C
)

// ParseAlgo parses a training-algorithm name.
func ParseAlgo(s string) (AlgoKind, error) {
	switch s {
	case "", "ppo":
		return PPOAlgo, nil
	case "a2c":
		return A2CAlgo, nil
	default:
		return "", fmt.Errorf("gddr: unknown training algorithm %q", s)
	}
}

// TrainConfig configures agent construction and training.
type TrainConfig struct {
	Policy     PolicyKind `json:"policy"`
	Algo       AlgoKind   `json:"algo,omitempty"` // ppo (default) or a2c
	Memory     int        `json:"memory"`         // demand history length m (paper: 5)
	Gamma      float64    `json:"gamma"`          // softmin γ for non-iterative policies
	TotalSteps int        `json:"total_steps"`    // environment steps of training
	Seed       int64      `json:"seed"`
	PPO        PPOConfig  `json:"ppo"`
	A2C        A2CConfig  `json:"a2c"`
	GNN        GNNConfig  `json:"gnn"`        // used by GNN policies
	MLPHidden  []int      `json:"mlp_hidden"` // hidden layer sizes of the MLP baseline
	// CapacityAware warm-starts the action-to-weight mapping around
	// inverse-capacity base weights (see env.Config.CapacityAware and
	// DESIGN.md substitution #5).
	CapacityAware bool `json:"capacity_aware"`
	// Workers is the number of parallel rollout-collection workers
	// (default 1). The worker count is part of the determinism contract:
	// results are bit-identical for a given (Seed, Workers) pair, and a
	// checkpoint records it so a resumed run cannot silently change it.
	Workers int `json:"workers,omitempty"`
	// CheckpointEvery writes a training checkpoint to CheckpointPath every
	// given number of environment steps (rounded up to update boundaries);
	// zero disables periodic checkpoints.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// CheckpointPath is the file periodic checkpoints are written to
	// (atomically, via a temp file and rename).
	CheckpointPath string `json:"checkpoint_path,omitempty"`
	// Sampler selects how multi-topology scenarios sample their member per
	// episode (uniform, weighted, size-weighted, or curriculum schedules
	// that anneal from small to large graphs). Zero value: uniform.
	Sampler SamplerSpec `json:"sampler,omitempty"`
}

// DefaultTrainConfig returns the tuned defaults of this reproduction
// (standing in for the paper's OpenTuner search; see DESIGN.md
// substitution #6).
func DefaultTrainConfig(kind PolicyKind) TrainConfig {
	cfg := TrainConfig{
		Policy:        kind,
		Algo:          PPOAlgo,
		Memory:        5,
		Gamma:         routing.DefaultGamma,
		TotalSteps:    20000,
		Seed:          1,
		PPO:           rl.DefaultConfig(),
		A2C:           rl.DefaultA2CConfig(),
		GNN:           policy.DefaultGNNConfig(5),
		MLPHidden:     []int{128, 128},
		CapacityAware: true,
		Workers:       1,
	}
	if kind == policy.GNNIterativeKind {
		// Iterative actions influence later observations within a demand-
		// matrix round and are rewarded only at the round's final step, so
		// credit must flow backwards across the |E| iterations: an
		// undiscounted return with a long GAE horizon.
		cfg.PPO.Discount = 1
		cfg.PPO.GAELambda = 0.98
		cfg.A2C.Discount = 1
		cfg.A2C.GAELambda = 0.98
	}
	return cfg
}

// Agent is a trained routing agent.
type Agent struct {
	Kind     PolicyKind
	Config   TrainConfig
	policy   policy.Policy
	trainer  rl.Algorithm
	progress ProgressFunc
	registry *metrics.Registry // nil unless WithMetrics was given
	met      *trainMetrics

	curve   []EpisodeStat  // cumulative learning curve across Train calls
	pending *rl.TrainState // checkpoint state awaiting the next Train call
	digest  string         // fingerprint of the scenario last trained on
}

// trainMetrics holds the training-loop instruments. All names follow the
// gddr_train_* contract (see DESIGN.md).
type trainMetrics struct {
	steps          *metrics.Counter
	updates        *metrics.Counter
	episodes       *metrics.Counter
	episodeReward  *metrics.Gauge
	episodeRatio   *metrics.Gauge
	stepsPerSecond *metrics.Gauge
	policyLoss     *metrics.Gauge
	valueLoss      *metrics.Gauge
	collectSeconds *metrics.Histogram
	updateSeconds  *metrics.Histogram
	ckptSeconds    *metrics.Histogram
}

func newTrainMetrics(reg *metrics.Registry) *trainMetrics {
	// Collect/update spans run milliseconds to minutes; start the latency
	// buckets at 1ms instead of the serving default's 1µs.
	spanBuckets := metrics.ExpBuckets(1e-3, 2, 20)
	return &trainMetrics{
		steps:          reg.Counter("gddr_train_steps_total", "Cumulative environment steps trained."),
		updates:        reg.Counter("gddr_train_updates_total", "Completed gradient updates."),
		episodes:       reg.Counter("gddr_train_episodes_total", "Finished training episodes."),
		episodeReward:  reg.Gauge("gddr_train_episode_reward", "Total reward of the last finished episode."),
		episodeRatio:   reg.Gauge("gddr_train_episode_mean_ratio", "Mean U_agent/U_opt of the last finished episode."),
		stepsPerSecond: reg.Gauge("gddr_train_steps_per_second", "Environment-step throughput of the last update (collect + update wall clock)."),
		policyLoss:     reg.Gauge("gddr_train_policy_loss", "Policy (surrogate) loss of the last minibatch."),
		valueLoss:      reg.Gauge("gddr_train_value_loss", "Value loss of the last minibatch."),
		collectSeconds: reg.Histogram("gddr_train_collect_seconds", "Rollout collection wall-clock per update.", spanBuckets),
		updateSeconds:  reg.Histogram("gddr_train_update_seconds", "Gradient update wall-clock per update.", spanBuckets),
		ckptSeconds:    reg.Histogram("gddr_train_checkpoint_write_seconds", "Checkpoint write latency.", spanBuckets),
	}
}

// Metrics returns the registry the agent records training telemetry into,
// or nil when the agent was built without WithMetrics.
func (a *Agent) Metrics() *metrics.Registry { return a.registry }

// NewAgent constructs an untrained agent of the given architecture, with
// options layered over DefaultTrainConfig(kind) — e.g.
//
//	agent, err := gddr.NewAgent(gddr.GNNPolicy, scenario,
//	        gddr.WithMemory(3), gddr.WithTotalSteps(5000),
//	        gddr.WithProgress(report))
//
// Use WithConfig to start from an explicit TrainConfig instead. The
// scenario is needed only by the MLP policy to size its fixed input and
// output layers; GNN agents accept a nil scenario.
func NewAgent(kind PolicyKind, scenario *Scenario, opts ...Option) (*Agent, error) {
	s := newSettings(kind).apply(opts)
	cfg := s.cfg
	cfg.Policy = kind // the kind argument wins over WithConfig
	if cfg.Algo == "" {
		cfg.Algo = PPOAlgo
	}
	if cfg.Memory < 1 {
		return nil, fmt.Errorf("gddr: memory must be >= 1, got %d", cfg.Memory)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("gddr: rollout workers must be >= 0, got %d", cfg.Workers)
	}
	// Parameter initialisation draws from a serialisable rng stream so the
	// whole run — init included — is a pure function of cfg.Seed.
	rnd := rand.New(rng.New(cfg.Seed))
	var pol policy.Policy
	var err error
	switch cfg.Policy {
	case policy.MLPKind:
		if scenario == nil || len(scenario.Items) != 1 {
			return nil, fmt.Errorf("gddr: the MLP policy requires exactly one topology (got %d); it cannot generalise", countItems(scenario))
		}
		g := scenario.Items[0].Graph
		pol, err = policy.NewMLP(cfg.Memory, g.NumNodes(), g.NumEdges(), cfg.MLPHidden, rnd)
	case policy.GNNKind:
		gcfg := cfg.GNN
		gcfg.Memory = cfg.Memory
		pol, err = policy.NewGNN(gcfg, rnd)
	case policy.GNNIterativeKind:
		gcfg := cfg.GNN
		gcfg.Memory = cfg.Memory
		pol, err = policy.NewGNNIterative(gcfg, rnd)
	default:
		return nil, fmt.Errorf("gddr: unknown policy kind %v", cfg.Policy)
	}
	if err != nil {
		return nil, err
	}
	var trainer rl.Algorithm
	switch cfg.Algo {
	case PPOAlgo:
		trainer, err = rl.NewTrainer(pol, cfg.PPO, cfg.Seed)
	case A2CAlgo:
		trainer, err = rl.NewA2CTrainer(pol, cfg.A2C, cfg.Seed)
	default:
		return nil, fmt.Errorf("gddr: unknown training algorithm %q", cfg.Algo)
	}
	if err != nil {
		return nil, err
	}
	a := &Agent{
		Kind:     cfg.Policy,
		Config:   cfg,
		policy:   pol,
		trainer:  trainer,
		progress: s.progress,
		registry: s.metrics,
	}
	if a.registry != nil {
		a.met = newTrainMetrics(a.registry)
	}
	return a, nil
}

func countItems(s *Scenario) int {
	if s == nil {
		return 0
	}
	return len(s.Items)
}

// envConfig derives the environment configuration for the agent.
func (a *Agent) envConfig() env.Config {
	mode := env.FullAction
	if a.Kind == policy.GNNIterativeKind {
		mode = env.IterativeAction
	}
	gamma := a.Config.Gamma
	if gamma <= 0 {
		gamma = routing.DefaultGamma
	}
	return env.Config{
		Memory:        a.Config.Memory,
		Gamma:         gamma,
		Mode:          mode,
		WeightScale:   2,
		CapacityAware: a.Config.CapacityAware,
	}
}

// trainEnv expands the scenario into the multi-environment the trainer's
// rollout workers clone: members in scenario order, episode sampling per
// Config.Sampler, bound to ctx.
func (a *Agent) trainEnv(ctx context.Context, scenario *Scenario, cache *OptimalCache) (*env.MultiEnv, error) {
	envs, err := scenario.envs(a.envConfig(), cache)
	if err != nil {
		return nil, err
	}
	for _, e := range envs {
		e.SetContext(ctx)
	}
	sampler, err := a.Config.Sampler.Build(envs)
	if err != nil {
		return nil, err
	}
	return env.NewMultiSampled(envs, sampler, a.Config.Seed+1)
}

// Train runs the configured algorithm (PPO by default) on the scenario
// until Config.TotalSteps cumulative environment steps and returns the
// learning curve so far (including any history restored from a
// checkpoint). Rollouts are collected by Config.Workers parallel workers;
// results are bit-identical for a given (Seed, Workers) pair. When the
// agent carries checkpoint state (see ResumeAgent), training resumes from
// it bit-identically with the uninterrupted run. Cancellation of ctx is
// honoured at every rollout boundary and before every LP solve; the agent
// keeps the parameters of the last completed update, and a checkpoint
// written after cancellation describes that update boundary. The LP cache
// may be shared across calls; pass nil for a private one.
func (a *Agent) Train(ctx context.Context, scenario *Scenario, cache *OptimalCache) ([]EpisodeStat, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := scenario.Validate(); err != nil {
		return nil, err
	}
	if a.Config.TotalSteps < 1 {
		return nil, fmt.Errorf("gddr: TotalSteps must be positive, got %d", a.Config.TotalSteps)
	}
	if a.Config.CheckpointEvery > 0 && a.Config.CheckpointPath == "" {
		return nil, fmt.Errorf("gddr: CheckpointEvery is set but CheckpointPath is empty")
	}
	// A continuation — whether from staged checkpoint state or a repeated
	// Train call on the same agent — must stay on the scenario the episode
	// stream started on; a silent swap would corrupt it.
	digest := scenarioDigest(scenario)
	continuing := a.pending != nil || a.trainer.Timesteps() > 0
	if continuing && a.digest != "" && a.digest != digest {
		return nil, fmt.Errorf("gddr: scenario does not match the one this run trained on (digest %s, expected %s); build a new agent to train on a different scenario", digest, a.digest)
	}
	a.digest = digest
	if cache == nil {
		cache = NewOptimalCache()
	}
	if a.registry != nil {
		cache.Instrument(a.registry)
	}
	menv, err := a.trainEnv(ctx, scenario, cache)
	if err != nil {
		return nil, err
	}
	workers := a.Config.Workers
	if workers < 1 {
		workers = 1
	}
	if a.pending != nil {
		if err := a.trainer.Restore(a.pending, menv); err != nil {
			return nil, err
		}
		a.pending = nil
	}
	lastCkpt := a.trainer.Timesteps()
	hooks := rl.Hooks{
		OnEpisode: func(st rl.EpisodeStat) {
			a.curve = append(a.curve, st)
			if a.met != nil {
				a.met.episodes.Inc()
				a.met.episodeReward.Set(st.TotalReward)
				a.met.episodeRatio.Set(st.MeanRatio)
			}
			if a.progress != nil {
				a.progress(Progress{
					Stage:   "train",
					Step:    st.Timestep,
					Total:   a.Config.TotalSteps,
					Episode: &st,
				})
			}
		},
	}
	if a.met != nil {
		hooks.OnUpdateStat = func(us rl.UpdateStat) {
			a.met.steps.Add(int64(us.Steps))
			a.met.updates.Inc()
			a.met.policyLoss.Set(us.PolicyLoss)
			a.met.valueLoss.Set(us.ValueLoss)
			a.met.collectSeconds.Observe(us.CollectSeconds)
			a.met.updateSeconds.Observe(us.UpdateSeconds)
			if total := us.CollectSeconds + us.UpdateSeconds; total > 0 {
				a.met.stepsPerSecond.Set(float64(us.Steps) / total)
			}
		}
	}
	if a.Config.CheckpointEvery > 0 {
		hooks.OnUpdate = func(step int) error {
			if step-lastCkpt < a.Config.CheckpointEvery {
				return nil
			}
			lastCkpt = step
			//gddr:allow determinism wall-clock spent writing the checkpoint feeds metrics only, never results
			start := time.Now()
			werr := a.WriteCheckpointFile(a.Config.CheckpointPath)
			if a.met != nil {
				//gddr:allow determinism checkpoint-write latency histogram, observability only
				a.met.ckptSeconds.Observe(time.Since(start).Seconds())
			}
			return werr
		}
	}
	err = a.trainer.TrainWorkers(ctx, menv, a.Config.TotalSteps, workers, hooks)
	if err != nil {
		return nil, fmt.Errorf("gddr: training %v policy: %w", a.Kind, err)
	}
	return a.Curve(), nil
}

// ResumeTraining continues a checkpointed run (see ResumeAgent) on the
// scenario, which must match the one the checkpoint was taken on. It is
// Train with an explicit guard that there is checkpoint state to resume.
func (a *Agent) ResumeTraining(ctx context.Context, scenario *Scenario, cache *OptimalCache) ([]EpisodeStat, error) {
	if a.pending == nil {
		return nil, fmt.Errorf("gddr: agent carries no checkpoint state to resume; use Train")
	}
	return a.Train(ctx, scenario, cache)
}

// Curve returns a copy of the learning curve accumulated so far, including
// history restored from a checkpoint — useful for persisting partial
// results after a cancelled run. The result is never nil, so it always
// serialises as a JSON array.
func (a *Agent) Curve() []EpisodeStat {
	return append([]EpisodeStat{}, a.curve...)
}

// TrainedSteps returns the cumulative environment steps trained so far.
func (a *Agent) TrainedSteps() int { return a.trainer.Timesteps() }

// Evaluate runs the agent deterministically over every sequence of the
// scenario once and returns the mean per-timestep U_agent/U_opt ratio
// (lower is better; 1.0 matches the LP optimum). Cancellation of ctx is
// honoured between sequences and before every LP solve.
func (a *Agent) Evaluate(ctx context.Context, scenario *Scenario, cache *OptimalCache) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := scenario.Validate(); err != nil {
		return 0, err
	}
	if cache == nil {
		cache = NewOptimalCache()
	}
	envs, err := scenario.envs(a.envConfig(), cache)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i, e := range envs {
		e.SetContext(ctx)
		ratio, err := rl.Evaluate(ctx, a.policy, e, 1)
		if err != nil {
			return 0, err
		}
		sum += ratio
		if a.progress != nil {
			a.progress(Progress{Stage: "evaluate", Step: i + 1, Total: len(envs)})
		}
	}
	return sum / float64(len(envs)), nil
}

// Save writes the agent's parameters as JSON.
func (a *Agent) Save(w io.Writer) error {
	return nn.SaveParams(w, a.trainer.Params())
}

// Load restores parameters saved by Save into an agent constructed with the
// same TrainConfig.
func (a *Agent) Load(r io.Reader) error {
	return nn.LoadParams(r, a.trainer.Params())
}

// NumParams returns the trainable parameter count (the paper's scalability
// argument: fixed for GNN policies regardless of topology size).
func (a *Agent) NumParams() int {
	return nn.CountParams(a.trainer.Params())
}
