package gddr

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"gddr/internal/env"
	"gddr/internal/nn"
	"gddr/internal/policy"
	"gddr/internal/rl"
	"gddr/internal/routing"
)

// TrainConfig configures agent construction and PPO training.
type TrainConfig struct {
	Policy     PolicyKind
	Memory     int     // demand history length m (paper: 5)
	Gamma      float64 // softmin γ for non-iterative policies
	TotalSteps int     // environment steps of PPO training
	Seed       int64
	PPO        PPOConfig
	GNN        GNNConfig // used by GNN policies
	MLPHidden  []int     // hidden layer sizes of the MLP baseline
	// CapacityAware warm-starts the action-to-weight mapping around
	// inverse-capacity base weights (see env.Config.CapacityAware and
	// DESIGN.md substitution #5).
	CapacityAware bool
}

// DefaultTrainConfig returns the tuned defaults of this reproduction
// (standing in for the paper's OpenTuner search; see DESIGN.md
// substitution #6).
func DefaultTrainConfig(kind PolicyKind) TrainConfig {
	cfg := TrainConfig{
		Policy:        kind,
		Memory:        5,
		Gamma:         routing.DefaultGamma,
		TotalSteps:    20000,
		Seed:          1,
		PPO:           rl.DefaultConfig(),
		GNN:           policy.DefaultGNNConfig(5),
		MLPHidden:     []int{128, 128},
		CapacityAware: true,
	}
	if kind == policy.GNNIterativeKind {
		// Iterative actions influence later observations within a demand-
		// matrix round and are rewarded only at the round's final step, so
		// credit must flow backwards across the |E| iterations: an
		// undiscounted return with a long GAE horizon.
		cfg.PPO.Discount = 1
		cfg.PPO.GAELambda = 0.98
	}
	return cfg
}

// Agent is a trained routing agent.
type Agent struct {
	Kind     PolicyKind
	Config   TrainConfig
	policy   policy.Policy
	trainer  *rl.Trainer
	progress ProgressFunc
}

// NewAgent constructs an untrained agent of the given architecture, with
// options layered over DefaultTrainConfig(kind) — e.g.
//
//	agent, err := gddr.NewAgent(gddr.GNNPolicy, scenario,
//	        gddr.WithMemory(3), gddr.WithTotalSteps(5000),
//	        gddr.WithProgress(report))
//
// Use WithConfig to start from an explicit TrainConfig instead. The
// scenario is needed only by the MLP policy to size its fixed input and
// output layers; GNN agents accept a nil scenario.
func NewAgent(kind PolicyKind, scenario *Scenario, opts ...Option) (*Agent, error) {
	s := newSettings(kind).apply(opts)
	cfg := s.cfg
	cfg.Policy = kind // the kind argument wins over WithConfig
	if cfg.Memory < 1 {
		return nil, fmt.Errorf("gddr: memory must be >= 1, got %d", cfg.Memory)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var pol policy.Policy
	var err error
	switch cfg.Policy {
	case policy.MLPKind:
		if scenario == nil || len(scenario.Items) != 1 {
			return nil, fmt.Errorf("gddr: the MLP policy requires exactly one topology (got %d); it cannot generalise", countItems(scenario))
		}
		g := scenario.Items[0].Graph
		pol, err = policy.NewMLP(cfg.Memory, g.NumNodes(), g.NumEdges(), cfg.MLPHidden, rng)
	case policy.GNNKind:
		gcfg := cfg.GNN
		gcfg.Memory = cfg.Memory
		pol, err = policy.NewGNN(gcfg, rng)
	case policy.GNNIterativeKind:
		gcfg := cfg.GNN
		gcfg.Memory = cfg.Memory
		pol, err = policy.NewGNNIterative(gcfg, rng)
	default:
		return nil, fmt.Errorf("gddr: unknown policy kind %v", cfg.Policy)
	}
	if err != nil {
		return nil, err
	}
	trainer, err := rl.NewTrainer(pol, cfg.PPO, rng)
	if err != nil {
		return nil, err
	}
	return &Agent{
		Kind:     cfg.Policy,
		Config:   cfg,
		policy:   pol,
		trainer:  trainer,
		progress: s.progress,
	}, nil
}

func countItems(s *Scenario) int {
	if s == nil {
		return 0
	}
	return len(s.Items)
}

// envConfig derives the environment configuration for the agent.
func (a *Agent) envConfig() env.Config {
	mode := env.FullAction
	if a.Kind == policy.GNNIterativeKind {
		mode = env.IterativeAction
	}
	gamma := a.Config.Gamma
	if gamma <= 0 {
		gamma = routing.DefaultGamma
	}
	return env.Config{
		Memory:        a.Config.Memory,
		Gamma:         gamma,
		Mode:          mode,
		WeightScale:   2,
		CapacityAware: a.Config.CapacityAware,
	}
}

// Train runs PPO on the scenario for Config.TotalSteps environment steps
// and returns the per-episode learning curve. Cancellation of ctx is
// honoured at every PPO rollout boundary and before every LP solve; the
// agent keeps the parameters of the last completed update. The LP cache
// may be shared across calls; pass nil for a private one.
func (a *Agent) Train(ctx context.Context, scenario *Scenario, cache *OptimalCache) ([]EpisodeStat, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := scenario.Validate(); err != nil {
		return nil, err
	}
	if a.Config.TotalSteps < 1 {
		return nil, fmt.Errorf("gddr: TotalSteps must be positive, got %d", a.Config.TotalSteps)
	}
	if cache == nil {
		cache = NewOptimalCache()
	}
	envs, err := scenario.envs(a.envConfig(), cache)
	if err != nil {
		return nil, err
	}
	for _, e := range envs {
		e.SetContext(ctx)
	}
	rng := rand.New(rand.NewSource(a.Config.Seed + 1))
	menv, err := env.NewMulti(envs, rng)
	if err != nil {
		return nil, err
	}
	var stats []EpisodeStat
	err = a.trainer.Train(ctx, menv, a.Config.TotalSteps, func(st rl.EpisodeStat) {
		stats = append(stats, st)
		if a.progress != nil {
			a.progress(Progress{
				Stage:   "train",
				Step:    st.Timestep,
				Total:   a.Config.TotalSteps,
				Episode: &st,
			})
		}
	})
	if err != nil {
		return nil, fmt.Errorf("gddr: training %v policy: %w", a.Kind, err)
	}
	return stats, nil
}

// Evaluate runs the agent deterministically over every sequence of the
// scenario once and returns the mean per-timestep U_agent/U_opt ratio
// (lower is better; 1.0 matches the LP optimum). Cancellation of ctx is
// honoured between sequences and before every LP solve.
func (a *Agent) Evaluate(ctx context.Context, scenario *Scenario, cache *OptimalCache) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := scenario.Validate(); err != nil {
		return 0, err
	}
	if cache == nil {
		cache = NewOptimalCache()
	}
	envs, err := scenario.envs(a.envConfig(), cache)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i, e := range envs {
		e.SetContext(ctx)
		ratio, err := rl.Evaluate(ctx, a.policy, e, 1)
		if err != nil {
			return 0, err
		}
		sum += ratio
		if a.progress != nil {
			a.progress(Progress{Stage: "evaluate", Step: i + 1, Total: len(envs)})
		}
	}
	return sum / float64(len(envs)), nil
}

// Save writes the agent's parameters as JSON.
func (a *Agent) Save(w io.Writer) error {
	return nn.SaveParams(w, a.trainer.Params())
}

// Load restores parameters saved by Save into an agent constructed with the
// same TrainConfig.
func (a *Agent) Load(r io.Reader) error {
	return nn.LoadParams(r, a.trainer.Params())
}

// NumParams returns the trainable parameter count (the paper's scalability
// argument: fixed for GNN policies regardless of topology size).
func (a *Agent) NumParams() int {
	return nn.CountParams(a.trainer.Params())
}
