package gddr

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"gddr/internal/metrics"
	"gddr/internal/topo"
)

// ErrOverloaded is returned by Tenant.Route when the tenant's admission
// queue is full or its rate limit is exceeded: the request was shed at the
// gate, the caller should back off and retry. gddr-serve maps it to
// HTTP 429 with a Retry-After header.
var ErrOverloaded = errors.New("gddr: tenant overloaded")

// ErrNoTenant is returned when an operation names a tenant the fleet does
// not have.
var ErrNoTenant = errors.New("gddr: no such tenant")

// ErrTenantExists is returned by Fleet.Create when the id is already taken.
var ErrTenantExists = errors.New("gddr: tenant already exists")

// tenantIDPattern bounds tenant ids to URL- and metric-label-safe names.
var tenantIDPattern = regexp.MustCompile(`^[a-z0-9]([a-z0-9_-]{0,62}[a-z0-9])?$`)

// defaultMaxTenants bounds how many tenants one fleet will host: together
// with the tenant-id grammar it keeps the cardinality of the tenant metric
// label finite even when tenants are created through the admin API.
const defaultMaxTenants = 64

// fleetConfig carries NewFleet options.
type fleetConfig struct {
	registry   *metrics.Registry
	maxTenants int
	routerOpts []RouterOption
}

// FleetOption configures a Fleet at construction.
type FleetOption func(*fleetConfig)

// WithFleetRegistry directs the fleet's own instruments (tenant counts,
// admission counters, gateway route latency) into reg instead of a private
// registry. Per-tenant engine registries are unaffected: every tenant
// always gets its own.
func WithFleetRegistry(reg *metrics.Registry) FleetOption {
	return func(c *fleetConfig) { c.registry = reg }
}

// WithMaxTenants bounds how many tenants the fleet will host (default 64).
// Create fails once the bound is reached; the bound also caps the
// cardinality of the tenant metric label.
func WithMaxTenants(n int) FleetOption {
	return func(c *fleetConfig) { c.maxTenants = n }
}

// WithFleetRouterOptions appends router options applied to every tenant
// engine the fleet creates, after the options derived from the tenant's
// own config — a hook for cross-cutting concerns like tracing.
func WithFleetRouterOptions(opts ...RouterOption) FleetOption {
	return func(c *fleetConfig) { c.routerOpts = append(c.routerOpts, opts...) }
}

// A Fleet is the multi-tenant serving control plane: one process hosting
// many independent (topology, model, history) tenants behind a shared
// gateway. Each tenant owns a full Engine — its own graph, demand history,
// replica set, and metrics registry — while the fleet owns only the tenant
// registry, the admission accounting, and the tenant-labelled fleet
// metrics (see DESIGN.md "Tenant isolation contract"). Lookups (Tenant,
// List) are lock-free reads of an immutable tenant map republished on
// every mutation, so the serving hot path never contends with tenant
// lifecycle operations.
type Fleet struct {
	// mu serializes mutations (Create, Delete, Close). Readers go through
	// the atomic map pointer and never take it.
	mu      sync.Mutex
	tenants atomic.Pointer[map[string]*Tenant] //gddr:guardedby mu
	closed  bool                               //gddr:guardedby mu

	registry   *metrics.Registry
	maxTenants int
	routerOpts []RouterOption
}

// NewFleet returns an empty fleet.
func NewFleet(opts ...FleetOption) *Fleet {
	cfg := fleetConfig{maxTenants: defaultMaxTenants}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.registry == nil {
		cfg.registry = metrics.NewRegistry()
	}
	if cfg.maxTenants < 1 {
		cfg.maxTenants = 1
	}
	f := &Fleet{registry: cfg.registry, maxTenants: cfg.maxTenants, routerOpts: cfg.routerOpts}
	empty := map[string]*Tenant{}
	f.tenants.Store(&empty)
	f.registry.GaugeFunc("gddr_fleet_tenants", "Tenants currently hosted by the fleet.", func() float64 {
		return float64(len(*f.tenants.Load()))
	})
	return f
}

// Metrics returns the fleet's own registry: tenant-labelled admission and
// latency instruments plus the tenant-count gauge. Tenant engine metrics
// live in each tenant's private registry (Tenant.Engine().Metrics()).
func (f *Fleet) Metrics() *metrics.Registry { return f.registry }

// Create boots a tenant from its config: topology resolved from the
// embedded set, agent built (and checkpoint-loaded) per the config, engine
// started with the configured replicas. The tenant serves as soon as
// Create returns.
func (f *Fleet) Create(id string, cfg TenantConfig) (*Tenant, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := topo.Named(cfg.Topology)
	if err != nil {
		return nil, err
	}
	agent, err := newTenantAgent(cfg, g)
	if err != nil {
		return nil, err
	}
	return f.CreateWithAgent(id, cfg, agent, g)
}

// CreateWithAgent boots a tenant around a caller-built agent and graph,
// for callers that already hold a trained agent in memory (tests, embedded
// use). cfg's engine-shape and admission fields apply; its topology/policy/
// checkpoint fields are ignored in favour of the supplied agent and graph.
func (f *Fleet) CreateWithAgent(id string, cfg TenantConfig, agent *Agent, g *Graph) (*Tenant, error) {
	cfg = cfg.withDefaults()
	if !tenantIDPattern.MatchString(id) {
		return nil, fmt.Errorf("gddr: invalid tenant id %q (want lowercase [a-z0-9_-], <= 64 chars, alphanumeric ends)", id)
	}
	if cfg.Replicas < 1 || cfg.QueueDepth < 1 || cfg.MaxBatch < 1 || cfg.RateLimit < 0 || cfg.Burst < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("gddr: invalid tenant config for %q", id)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	cur := *f.tenants.Load()
	if _, ok := cur[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, id)
	}
	if len(cur) >= f.maxTenants {
		return nil, fmt.Errorf("gddr: fleet is at its %d-tenant capacity", f.maxTenants)
	}

	opts := []RouterOption{
		WithReplicas(cfg.Replicas),
		WithMaxBatch(cfg.MaxBatch),
	}
	if cfg.Workers > 0 {
		opts = append(opts, WithRouterWorkers(cfg.Workers))
	}
	opts = append(opts, f.routerOpts...)
	engine, err := NewEngine(agent, g, opts...)
	if err != nil {
		return nil, err
	}

	label := metrics.L("tenant", id)
	t := &Tenant{
		id:     id,
		cfg:    cfg,
		engine: engine,
		adm:    newAdmission(cfg),
		admitted: f.registry.Counter("gddr_fleet_admitted_total",
			"Route requests admitted past the tenant's admission gate.", label),
		shed: f.registry.Counter("gddr_fleet_shed_total",
			"Route requests shed by the tenant's admission gate (queue full or rate-limited).", label),
		latency: f.registry.Histogram("gddr_fleet_route_seconds",
			"Admitted route latency through the tenant engine.", metrics.LatencyBuckets(), label),
	}
	f.registry.Gauge("gddr_fleet_replicas",
		"Read replicas configured for the tenant (0 after delete).", label).Set(float64(cfg.Replicas))

	next := make(map[string]*Tenant, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[id] = t
	f.tenants.Store(&next)
	return t, nil
}

// Delete removes a tenant and closes its engine, draining in-flight work.
// Requests racing the delete either complete on the old engine or observe
// ErrClosed; they never see a half-removed tenant.
func (f *Fleet) Delete(id string) error {
	f.mu.Lock()
	cur := *f.tenants.Load()
	t, ok := cur[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoTenant, id)
	}
	next := make(map[string]*Tenant, len(cur)-1)
	for k, v := range cur {
		if k != id {
			next[k] = v
		}
	}
	f.tenants.Store(&next)
	f.registry.Gauge("gddr_fleet_replicas",
		"Read replicas configured for the tenant (0 after delete).", metrics.L("tenant", id)).Set(0)
	f.mu.Unlock()
	// Close outside the lock: it drains in-flight routes, which must not
	// block sibling create/delete.
	t.engine.Close()
	return nil
}

// Tenant returns the named tenant, or ErrNoTenant. The lookup is one
// atomic load — safe on the per-request hot path.
func (f *Fleet) Tenant(id string) (*Tenant, error) {
	if t, ok := (*f.tenants.Load())[id]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoTenant, id)
}

// List returns the current tenant ids, sorted.
func (f *Fleet) List() []string {
	cur := *f.tenants.Load()
	ids := make([]string, 0, len(cur))
	for id := range cur {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns how many tenants the fleet currently hosts.
func (f *Fleet) Len() int { return len(*f.tenants.Load()) }

// Close deletes every tenant and refuses further creates. Idempotent.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	cur := *f.tenants.Load()
	empty := map[string]*Tenant{}
	f.tenants.Store(&empty)
	f.mu.Unlock()
	for _, t := range cur {
		t.engine.Close()
	}
}

// FleetFile is the JSON schema of a -fleet config file: a set of tenants
// to boot plus which of them the un-prefixed legacy routes (/route, /stats,
// ...) alias to.
//
//	{
//	  "default": "prod",
//	  "tenants": {
//	    "prod":    {"topology": "abilene", "replicas": 4, "rate_limit": 500},
//	    "staging": {"topology": "nsfnet", "checkpoint": "staging.json"}
//	  }
//	}
type FleetFile struct {
	// Default names the tenant the un-prefixed routes serve. Empty picks
	// the tenant literally named "default" when present, else the first id
	// in sorted order.
	Default string                  `json:"default,omitempty"`
	Tenants map[string]TenantConfig `json:"tenants"`
}

// ParseFleetFile decodes and validates a fleet config: unknown fields are
// rejected, every tenant config must validate, and Default (after
// resolution) must name a configured tenant. The returned file always has
// Default resolved to a concrete tenant id.
func ParseFleetFile(r io.Reader) (*FleetFile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var file FleetFile
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("gddr: parsing fleet config: %w", err)
	}
	if len(file.Tenants) == 0 {
		return nil, fmt.Errorf("gddr: fleet config has no tenants")
	}
	ids := make([]string, 0, len(file.Tenants))
	for id, cfg := range file.Tenants {
		if !tenantIDPattern.MatchString(id) {
			return nil, fmt.Errorf("gddr: invalid tenant id %q in fleet config", id)
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("gddr: tenant %q: %w", id, err)
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	switch {
	case file.Default == "":
		if _, ok := file.Tenants["default"]; ok {
			file.Default = "default"
		} else {
			file.Default = ids[0]
		}
	default:
		if _, ok := file.Tenants[file.Default]; !ok {
			return nil, fmt.Errorf("gddr: fleet config default %q names no configured tenant", file.Default)
		}
	}
	return &file, nil
}

// Boot creates every tenant in the file, in sorted id order so failures
// are deterministic. On failure the tenants already created stay up; the
// caller decides whether to keep or Close the partial fleet.
func (f *Fleet) Boot(file *FleetFile) error {
	ids := make([]string, 0, len(file.Tenants))
	for id := range file.Tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, err := f.Create(id, file.Tenants[id]); err != nil {
			return fmt.Errorf("gddr: booting tenant %q: %w", id, err)
		}
	}
	return nil
}
