// Command gddr-serve runs the Engine as a long-running HTTP/JSON routing
// service: the network-operations gateway over the GDDR serving API. It
// loads (or cold-starts) an agent on an embedded topology and exposes
//
//	POST /route           {"demands": [[...], ...]}    -> routing decision
//	POST /topology/event  {"type":"link_down", ...}    -> apply a topology event
//	POST /model/swap      <checkpoint JSON>            -> hot-swap the model
//	GET  /stats                                        -> cumulative serving stats + uptime
//	GET  /healthz                                      -> liveness + topology version
//	GET  /metrics                                      -> Prometheus text exposition
//
// Logging is structured (log/slog); -log-format selects text or JSON lines.
// -pprof additionally mounts net/http/pprof under /debug/pprof/ and -trace
// attaches a per-request timing breakdown to every routing decision.
//
// Example session:
//
//	gddr-serve -addr :8080 -topology abilene -model model.json &
//	curl -s localhost:8080/route -d '{"demands": [[0,100,...], ...]}'
//	curl -s localhost:8080/topology/event -d '{"type":"link_down","from":2,"to":9}'
//	curl -s localhost:8080/model/swap --data-binary @retrained.json
//	curl -s localhost:8080/metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"gddr"
	"gddr/internal/metrics"
	"gddr/internal/policy"
	"gddr/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		topoName   = flag.String("topology", "abilene", "embedded topology to serve")
		modelPath  = flag.String("model", "", "saved model JSON (empty: capacity-aware cold start)")
		policyName = flag.String("policy", "gnn", "architecture the model was trained with")
		memory     = flag.Int("memory", 3, "demand history length (must match training)")
		hidden     = flag.Int("gnn-hidden", 16, "GNN latent width (must match training)")
		msgSteps   = flag.Int("gnn-steps", 2, "GNN message-passing steps (must match training)")
		workers    = flag.Int("workers", 0, "serving goroutines (0: GOMAXPROCS)")
		maxBatch   = flag.Int("max-batch", 16, "max requests sharing one forward pass")
		logFormat  = flag.String("log-format", "text", "log line format: text or json")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceOn    = flag.Bool("trace", false, "attach a per-request timing breakdown to each decision")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	slog.SetDefault(slog.New(handler))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	kind, err := policy.ParseKind(*policyName)
	if err != nil {
		return err
	}
	g, err := topo.Named(*topoName)
	if err != nil {
		return err
	}
	// The MLP constructor sizes itself from a scenario's topology; GNN
	// agents ignore the scenario.
	scen := &gddr.Scenario{Items: []gddr.ScenarioItem{{Graph: g}}}
	agent, err := gddr.NewAgent(kind, scen,
		gddr.WithMemory(*memory),
		gddr.WithGNNSize(*hidden, *msgSteps))
	if err != nil {
		return err
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		err = agent.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", *modelPath, err)
		}
	}

	var opts []gddr.RouterOption
	if *workers > 0 {
		opts = append(opts, gddr.WithRouterWorkers(*workers))
	}
	opts = append(opts, gddr.WithMaxBatch(*maxBatch), gddr.WithTracing(*traceOn))
	engine, err := gddr.NewEngine(agent, g, opts...)
	if err != nil {
		return err
	}
	defer engine.Close()

	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", handleRoute(engine))
	mux.HandleFunc("POST /topology/event", handleEvent(engine))
	mux.HandleFunc("POST /model/swap", handleSwap(engine))
	mux.HandleFunc("GET /stats", handleStats(engine, start))
	mux.HandleFunc("GET /healthz", handleHealthz(engine, start))
	mux.HandleFunc("GET /metrics", handleMetrics(engine))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// The instrumentation middleware wraps OUTSIDE jsonErrors so it records
	// the status the client actually receives, including mux rejections
	// rewritten into the JSON error contract.
	server := &http.Server{
		Addr:              *addr,
		Handler:           instrument(engine.Metrics(), jsonErrors(mux)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		slog.Info("serving", "topology", *topoName, "nodes", g.NumNodes(), "edges", g.NumEdges(), "addr", *addr, "pprof", *pprofOn, "trace", *traceOn)
		if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return server.Shutdown(shutdownCtx)
}

// knownRoutes bounds the label cardinality of the HTTP metrics: every
// request path collapses to one of the mounted routes (or "other"), so an
// attacker probing random URLs cannot grow the registry without bound.
var knownRoutes = map[string]string{
	"/route":          "/route",
	"/topology/event": "/topology/event",
	"/model/swap":     "/model/swap",
	"/stats":          "/stats",
	"/healthz":        "/healthz",
	"/metrics":        "/metrics",
}

func routeLabel(path string) string {
	if r, ok := knownRoutes[path]; ok {
		return r
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}

// statusWriter captures the final status code for the HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument records per-route request counts (by method and status) and
// latency histograms, and logs one structured line per request.
func instrument(reg *metrics.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(begin)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := routeLabel(r.URL.Path)
		reg.Counter("gddr_http_requests_total", "HTTP requests served.",
			metrics.L("path", route), metrics.L("method", r.Method), metrics.L("status", fmt.Sprintf("%d", sw.status))).Inc()
		reg.Histogram("gddr_http_request_seconds", "HTTP request latency.", metrics.LatencyBuckets(),
			metrics.L("path", route)).Observe(elapsed.Seconds())
		slog.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed_us", elapsed.Microseconds(),
			"remote", r.RemoteAddr)
	})
}

// writeJSON renders one response; encode failures after the header is
// written can only be logged.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("encoding response", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// abandoned by its caller: the engine did nothing wrong, the client went
// away before the decision was ready.
const statusClientClosedRequest = 499

// statusFor maps serving errors to HTTP statuses, consistently across every
// handler: a closed engine is the service going away (503), a cancelled
// request context is the client having hung up (499), a deadline is a
// timeout (504), an oversized body is 413, and everything else surfaced by
// the API keeps the handler's fallback (a bad or conflicting request).
func statusFor(err error, fallback int) int {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.Is(err, gddr.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return fallback
}

// jsonErrors wraps a handler so that every 4xx/5xx response carries a
// structured {"error": ...} JSON body: the ServeMux itself (unknown path,
// method mismatch) and http.Error-style helpers emit text/plain, which
// would leave the gateway's error contract dependent on which layer
// rejected the request. Responses that already chose a content type (our
// writeError) pass through untouched.
func jsonErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jw := &jsonErrorWriter{ResponseWriter: w}
		next.ServeHTTP(jw, r)
		jw.flush()
	})
}

// jsonErrorWriter intercepts error responses written without an explicit
// content type, buffers their plain-text message, and re-emits it as JSON
// when the handler finishes (Unwrap keeps http.ResponseController and
// MaxBytesReader working through the wrapper).
type jsonErrorWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercept   bool
	status      int
	buf         bytes.Buffer
}

func (w *jsonErrorWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *jsonErrorWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	ct := w.Header().Get("Content-Type")
	if status >= 400 && !strings.HasPrefix(ct, "application/json") {
		w.intercept = true
		w.status = status
		return // header goes out with the JSON body in flush
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercept {
		return w.buf.Write(b)
	}
	return w.ResponseWriter.Write(b)
}

// flush emits the buffered error as the JSON contract body.
func (w *jsonErrorWriter) flush() {
	if !w.intercept {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Del("Content-Length") // sized for the text body, if set
	w.ResponseWriter.WriteHeader(w.status)
	if err := json.NewEncoder(w.ResponseWriter).Encode(map[string]string{"error": msg}); err != nil {
		slog.Error("encoding error response", "err", err)
	}
}

type routeRequest struct {
	// Demands is the N×N demand matrix, row-major: Demands[s][t] is the
	// traffic from node s to node t.
	Demands [][]float64 `json:"demands"`
}

// maxBody bounds every request body so an oversized payload cannot grow
// the gateway's heap without bound.
const maxBody = 16 << 20

func handleRoute(engine *gddr.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req routeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), fmt.Errorf("invalid route request: %w", err))
			return
		}
		dm, err := demandMatrix(req.Demands)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		start := time.Now()
		d, err := engine.Route(r.Context(), dm)
		if err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"decision":         d,
			"topology_version": engine.Version(),
			"elapsed_us":       time.Since(start).Microseconds(),
		})
	}
}

func demandMatrix(rows [][]float64) (*gddr.DemandMatrix, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("route request needs a demands matrix")
	}
	dm := &gddr.DemandMatrix{N: n, Data: make([]float64, 0, n*n)}
	for s, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("demands row %d has %d entries, want %d", s, len(row), n)
		}
		dm.Data = append(dm.Data, row...)
	}
	if err := dm.Validate(); err != nil {
		return nil, err
	}
	return dm, nil
}

func handleEvent(engine *gddr.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		event, err := gddr.UnmarshalEvent(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := engine.Apply(r.Context(), event); err != nil {
			// A structurally valid event the current topology cannot absorb
			// (unknown link, disconnecting removal) is a conflict, not a
			// malformed request.
			writeError(w, statusFor(err, http.StatusConflict), err)
			return
		}
		g := engine.Graph()
		writeJSON(w, http.StatusOK, map[string]any{
			"applied":          event.Kind(),
			"topology_version": engine.Version(),
			"nodes":            g.NumNodes(),
			"edges":            g.NumEdges(),
		})
	}
}

func handleSwap(engine *gddr.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := engine.SwapCheckpoint(r.Context(), http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"swapped":          true,
			"topology_version": engine.Version(),
		})
	}
}

func handleStats(engine *gddr.Engine, start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"stats":          engine.Stats(),
			"uptime_seconds": time.Since(start).Seconds(),
		})
	}
}

func handleHealthz(engine *gddr.Engine, start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if engine.Version() == 0 {
			writeError(w, http.StatusServiceUnavailable, gddr.ErrClosed)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":           "ok",
			"topology_version": engine.Version(),
			"uptime_seconds":   time.Since(start).Seconds(),
		})
	}
}

func handleMetrics(engine *gddr.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := engine.Metrics().WritePrometheus(w); err != nil {
			slog.Error("writing metrics", "err", err)
		}
	}
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	if len(buf) == 0 {
		return nil, fmt.Errorf("empty request body")
	}
	return buf, nil
}
