// Command gddr-serve runs a Fleet of serving Engines as a long-running
// HTTP/JSON routing service: the network-operations gateway over the GDDR
// serving API. It boots one tenant per (topology, model) pair — a single
// default tenant from the flags, or many from -fleet fleet.json — and
// exposes per-tenant routes plus un-prefixed aliases for the default
// tenant:
//
//	POST /t/{id}/route           {"demands": [[...], ...]}    -> routing decision
//	POST /t/{id}/topology/event  {"type":"link_down", ...}    -> apply a topology event
//	POST /t/{id}/model/swap      <checkpoint JSON>            -> hot-swap the model
//	GET  /t/{id}/stats                                        -> tenant serving stats
//	GET  /t/{id}/metrics                                      -> tenant engine metrics
//	POST /tenants                {"id": ..., "config": ...}   -> create a tenant
//	GET  /tenants                                             -> list tenants
//	DELETE /tenants/{id}                                      -> delete a tenant
//	POST /route, /topology/event, /model/swap                 -> default-tenant aliases
//	GET  /stats, /healthz                                     -> default-tenant aliases
//	GET  /metrics                                             -> fleet + default tenant metrics
//
// Admission control is per tenant: saturating one tenant's queue or rate
// limit returns JSON 429s with a Retry-After header while sibling tenants
// keep serving. Logging is structured (log/slog); -log-format selects text
// or JSON lines. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ and -trace attaches a per-request timing breakdown to
// every routing decision.
//
// Example session:
//
//	gddr-serve -addr :8080 -fleet fleet.json &
//	curl -s localhost:8080/t/prod/route -d '{"demands": [[0,100,...], ...]}'
//	curl -s localhost:8080/tenants
//	curl -s -X POST localhost:8080/tenants -d '{"id":"canary","config":{"topology":"nsfnet"}}'
//	curl -s localhost:8080/metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"time"

	"gddr"
	"gddr/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		fleetPath  = flag.String("fleet", "", "fleet config JSON booting multiple tenants (overrides the single-tenant flags)")
		topoName   = flag.String("topology", "abilene", "embedded topology the default tenant serves")
		modelPath  = flag.String("model", "", "saved model JSON (empty: capacity-aware cold start)")
		policyName = flag.String("policy", "gnn", "architecture the model was trained with")
		memory     = flag.Int("memory", 3, "demand history length (must match training)")
		hidden     = flag.Int("gnn-hidden", 16, "GNN latent width (must match training)")
		msgSteps   = flag.Int("gnn-steps", 2, "GNN message-passing steps (must match training)")
		replicas   = flag.Int("replicas", 1, "read replicas serving the default tenant")
		workers    = flag.Int("workers", 0, "serving goroutines per replica (0: GOMAXPROCS)")
		maxBatch   = flag.Int("max-batch", 16, "max requests sharing one forward pass")
		logFormat  = flag.String("log-format", "text", "log line format: text or json")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceOn    = flag.Bool("trace", false, "attach a per-request timing breakdown to each decision")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	slog.SetDefault(slog.New(handler))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fleet := gddr.NewFleet(gddr.WithFleetRouterOptions(gddr.WithTracing(*traceOn)))
	defer fleet.Close()

	defaultID := "default"
	if *fleetPath != "" {
		f, err := os.Open(*fleetPath)
		if err != nil {
			return err
		}
		file, err := gddr.ParseFleetFile(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := fleet.Boot(file); err != nil {
			return err
		}
		defaultID = file.Default
	} else {
		cfg := gddr.TenantConfig{
			Topology:   *topoName,
			Policy:     *policyName,
			Checkpoint: *modelPath,
			Memory:     *memory,
			GNNHidden:  *hidden,
			GNNSteps:   *msgSteps,
			Replicas:   *replicas,
			Workers:    *workers,
			MaxBatch:   *maxBatch,
		}
		if _, err := fleet.Create(defaultID, cfg); err != nil {
			return err
		}
	}
	for _, id := range fleet.List() {
		t, err := fleet.Tenant(id)
		if err != nil {
			continue
		}
		snap := t.Snapshot()
		slog.Info("tenant up", "tenant", id, "topology", t.Config().Topology,
			"nodes", snap.Nodes, "edges", snap.Edges, "replicas", snap.Replicas,
			"default", id == defaultID)
	}

	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /t/{id}/route", handleRoute(fleet, ""))
	mux.HandleFunc("POST /t/{id}/topology/event", handleEvent(fleet, ""))
	mux.HandleFunc("POST /t/{id}/model/swap", handleSwap(fleet, ""))
	mux.HandleFunc("GET /t/{id}/stats", handleStats(fleet, "", start))
	mux.HandleFunc("GET /t/{id}/metrics", handleTenantMetrics(fleet))
	mux.HandleFunc("POST /tenants", handleTenantCreate(fleet))
	mux.HandleFunc("GET /tenants", handleTenantList(fleet, defaultID))
	mux.HandleFunc("DELETE /tenants/{id}", handleTenantDelete(fleet))
	// Un-prefixed aliases keep the single-tenant API of earlier releases
	// working against the default tenant.
	mux.HandleFunc("POST /route", handleRoute(fleet, defaultID))
	mux.HandleFunc("POST /topology/event", handleEvent(fleet, defaultID))
	mux.HandleFunc("POST /model/swap", handleSwap(fleet, defaultID))
	mux.HandleFunc("GET /stats", handleStats(fleet, defaultID, start))
	mux.HandleFunc("GET /healthz", handleHealthz(fleet, defaultID, start))
	mux.HandleFunc("GET /metrics", handleMetrics(fleet, defaultID))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	// The instrumentation middleware wraps OUTSIDE jsonErrors so it records
	// the status the client actually receives, including mux rejections
	// rewritten into the JSON error contract. Gateway HTTP metrics live in
	// the fleet registry, which /metrics always exposes.
	server := &http.Server{
		Addr:              *addr,
		Handler:           instrument(fleet.Metrics(), jsonErrors(mux)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		slog.Info("serving", "tenants", fleet.Len(), "default", defaultID, "addr", *addr, "pprof", *pprofOn, "trace", *traceOn)
		if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	slog.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return server.Shutdown(shutdownCtx)
}

// tenantFor resolves the handler's tenant: the {id} path value for /t/...
// routes, or the fixed default-tenant alias.
func tenantFor(fleet *gddr.Fleet, r *http.Request, alias string) (*gddr.Tenant, error) {
	id := alias
	if id == "" {
		id = r.PathValue("id")
	}
	return fleet.Tenant(id)
}

// knownRoutes bounds the label cardinality of the HTTP metrics: every
// request path collapses to one of the mounted routes (or "other"), so an
// attacker probing random URLs cannot grow the registry without bound.
// Tenant-scoped paths collapse their tenant segment to {id}; the tenant
// dimension is carried by the gddr_fleet_* instruments instead.
var knownRoutes = map[string]string{
	"/route":          "/route",
	"/topology/event": "/topology/event",
	"/model/swap":     "/model/swap",
	"/stats":          "/stats",
	"/healthz":        "/healthz",
	"/metrics":        "/metrics",
	"/tenants":        "/tenants",
}

// tenantRoutes are the suffixes mounted under /t/{id}/.
var tenantRoutes = map[string]string{
	"route":          "/t/{id}/route",
	"topology/event": "/t/{id}/topology/event",
	"model/swap":     "/t/{id}/model/swap",
	"stats":          "/t/{id}/stats",
	"metrics":        "/t/{id}/metrics",
}

func routeLabel(path string) string {
	if r, ok := knownRoutes[path]; ok {
		return r
	}
	if rest, ok := strings.CutPrefix(path, "/t/"); ok {
		if _, suffix, ok := strings.Cut(rest, "/"); ok {
			if r, ok := tenantRoutes[suffix]; ok {
				return r
			}
		}
		return "other"
	}
	if rest, ok := strings.CutPrefix(path, "/tenants/"); ok && rest != "" && !strings.Contains(rest, "/") {
		return "/tenants/{id}"
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}

// statusWriter captures the final status code for the HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument records per-route request counts (by method and status) and
// latency histograms, and logs one structured line per request.
func instrument(reg *metrics.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(begin)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := routeLabel(r.URL.Path)
		reg.Counter("gddr_http_requests_total", "HTTP requests served.",
			metrics.L("path", route), metrics.L("method", r.Method), metrics.L("status", fmt.Sprintf("%d", sw.status))).Inc()
		reg.Histogram("gddr_http_request_seconds", "HTTP request latency.", metrics.LatencyBuckets(),
			metrics.L("path", route)).Observe(elapsed.Seconds())
		slog.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed_us", elapsed.Microseconds(),
			"remote", r.RemoteAddr)
	})
}

// writeJSON renders one response; encode failures after the header is
// written can only be logged.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("encoding response", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		// Shed requests failed fast without queueing; a short client
		// back-off is enough for the admission window to move.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// abandoned by its caller: the engine did nothing wrong, the client went
// away before the decision was ready.
const statusClientClosedRequest = 499

// statusFor maps serving errors to HTTP statuses, consistently across every
// handler: a shed request is 429 (retryable), a missing tenant is 404, a
// duplicate tenant is 409, a closed engine is the service going away (503),
// a cancelled request context is the client having hung up (499), a
// deadline is a timeout (504), an oversized body is 413, and everything
// else surfaced by the API keeps the handler's fallback (a bad or
// conflicting request).
func statusFor(err error, fallback int) int {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.Is(err, gddr.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, gddr.ErrNoTenant):
		return http.StatusNotFound
	case errors.Is(err, gddr.ErrTenantExists):
		return http.StatusConflict
	case errors.Is(err, gddr.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge
	}
	return fallback
}

// jsonErrors wraps a handler so that every 4xx/5xx response carries a
// structured {"error": ...} JSON body: the ServeMux itself (unknown path,
// method mismatch) and http.Error-style helpers emit text/plain, which
// would leave the gateway's error contract dependent on which layer
// rejected the request. Responses that already chose a content type (our
// writeError) pass through untouched.
func jsonErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jw := &jsonErrorWriter{ResponseWriter: w}
		next.ServeHTTP(jw, r)
		jw.flush()
	})
}

// jsonErrorWriter intercepts error responses written without an explicit
// content type, buffers their plain-text message, and re-emits it as JSON
// when the handler finishes (Unwrap keeps http.ResponseController and
// MaxBytesReader working through the wrapper).
type jsonErrorWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercept   bool
	status      int
	buf         bytes.Buffer
}

func (w *jsonErrorWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *jsonErrorWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	ct := w.Header().Get("Content-Type")
	if status >= 400 && !strings.HasPrefix(ct, "application/json") {
		w.intercept = true
		w.status = status
		return // header goes out with the JSON body in flush
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.intercept {
		return w.buf.Write(b)
	}
	return w.ResponseWriter.Write(b)
}

// flush emits the buffered error as the JSON contract body.
func (w *jsonErrorWriter) flush() {
	if !w.intercept {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Del("Content-Length") // sized for the text body, if set
	w.ResponseWriter.WriteHeader(w.status)
	if err := json.NewEncoder(w.ResponseWriter).Encode(map[string]string{"error": msg}); err != nil {
		slog.Error("encoding error response", "err", err)
	}
}

type routeRequest struct {
	// Demands is the N×N demand matrix, row-major: Demands[s][t] is the
	// traffic from node s to node t.
	Demands [][]float64 `json:"demands"`
}

// maxBody bounds every request body so an oversized payload cannot grow
// the gateway's heap without bound.
const maxBody = 16 << 20

func handleRoute(fleet *gddr.Fleet, alias string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, err := tenantFor(fleet, r, alias)
		if err != nil {
			writeError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		var req routeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), fmt.Errorf("invalid route request: %w", err))
			return
		}
		dm, err := demandMatrix(req.Demands)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		start := time.Now()
		d, err := tenant.Route(r.Context(), dm)
		if err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":           tenant.ID(),
			"decision":         d,
			"topology_version": tenant.Version(),
			"elapsed_us":       time.Since(start).Microseconds(),
		})
	}
}

func demandMatrix(rows [][]float64) (*gddr.DemandMatrix, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("route request needs a demands matrix")
	}
	dm := &gddr.DemandMatrix{N: n, Data: make([]float64, 0, n*n)}
	for s, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("demands row %d has %d entries, want %d", s, len(row), n)
		}
		dm.Data = append(dm.Data, row...)
	}
	if err := dm.Validate(); err != nil {
		return nil, err
	}
	return dm, nil
}

func handleEvent(fleet *gddr.Fleet, alias string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, err := tenantFor(fleet, r, alias)
		if err != nil {
			writeError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		body, err := readBody(w, r)
		if err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		event, err := gddr.UnmarshalEvent(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := tenant.Apply(r.Context(), event); err != nil {
			// A structurally valid event the current topology cannot absorb
			// (unknown link, disconnecting removal) is a conflict, not a
			// malformed request.
			writeError(w, statusFor(err, http.StatusConflict), err)
			return
		}
		snap := tenant.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":           tenant.ID(),
			"applied":          event.Kind(),
			"topology_version": snap.Version,
			"nodes":            snap.Nodes,
			"edges":            snap.Edges,
		})
	}
}

func handleSwap(fleet *gddr.Fleet, alias string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, err := tenantFor(fleet, r, alias)
		if err != nil {
			writeError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		if err := tenant.SwapCheckpoint(r.Context(), http.MaxBytesReader(w, r.Body, maxBody)); err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":           tenant.ID(),
			"swapped":          true,
			"topology_version": tenant.Version(),
		})
	}
}

func handleStats(fleet *gddr.Fleet, alias string, start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, err := tenantFor(fleet, r, alias)
		if err != nil {
			writeError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tenant":         tenant.ID(),
			"stats":          tenant.Stats(),
			"topology":       tenant.Snapshot(),
			"uptime_seconds": time.Since(start).Seconds(),
		})
	}
}

func handleHealthz(fleet *gddr.Fleet, defaultID string, start time.Time) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, err := fleet.Tenant(defaultID)
		if err != nil || tenant.Version() == 0 {
			writeError(w, http.StatusServiceUnavailable, gddr.ErrClosed)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":           "ok",
			"tenants":          fleet.Len(),
			"topology_version": tenant.Version(),
			"uptime_seconds":   time.Since(start).Seconds(),
		})
	}
}

// handleMetrics serves the gateway exposition: the fleet registry (tenant
// counts, admission, HTTP) concatenated with the default tenant's engine
// registry, so single-tenant deployments keep the exact exposition earlier
// releases served. Sibling tenants' engine metrics live under
// /t/{id}/metrics.
func handleMetrics(fleet *gddr.Fleet, defaultID string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := fleet.Metrics().WritePrometheus(w); err != nil {
			slog.Error("writing metrics", "err", err)
			return
		}
		if tenant, err := fleet.Tenant(defaultID); err == nil {
			if err := tenant.Engine().Metrics().WritePrometheus(w); err != nil {
				slog.Error("writing metrics", "err", err)
			}
		}
	}
}

func handleTenantMetrics(fleet *gddr.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, err := fleet.Tenant(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := tenant.Engine().Metrics().WritePrometheus(w); err != nil {
			slog.Error("writing metrics", "err", err)
		}
	}
}

// createTenantRequest is the POST /tenants body.
type createTenantRequest struct {
	ID     string            `json:"id"`
	Config gddr.TenantConfig `json:"config"`
}

func handleTenantCreate(fleet *gddr.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
		dec.DisallowUnknownFields()
		var req createTenantRequest
		if err := dec.Decode(&req); err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), fmt.Errorf("invalid tenant request: %w", err))
			return
		}
		tenant, err := fleet.Create(req.ID, req.Config)
		if err != nil {
			writeError(w, statusFor(err, http.StatusBadRequest), err)
			return
		}
		slog.Info("tenant created", "tenant", tenant.ID(), "topology", tenant.Config().Topology)
		writeJSON(w, http.StatusCreated, map[string]any{
			"tenant":   tenant.ID(),
			"topology": tenant.Snapshot(),
			"config":   tenant.Config(),
		})
	}
}

func handleTenantDelete(fleet *gddr.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := fleet.Delete(id); err != nil {
			writeError(w, statusFor(err, http.StatusNotFound), err)
			return
		}
		slog.Info("tenant deleted", "tenant", id)
		writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
	}
}

func handleTenantList(fleet *gddr.Fleet, defaultID string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		type tenantInfo struct {
			Topology string                `json:"topology"`
			Snapshot gddr.TopologySnapshot `json:"snapshot"`
		}
		out := map[string]tenantInfo{}
		for _, id := range fleet.List() {
			t, err := fleet.Tenant(id)
			if err != nil {
				continue // deleted since List; the listing stays consistent
			}
			out[id] = tenantInfo{Topology: t.Config().Topology, Snapshot: t.Snapshot()}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"default": defaultID,
			"tenants": out,
		})
	}
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	if len(buf) == 0 {
		return nil, fmt.Errorf("empty request body")
	}
	return buf, nil
}
