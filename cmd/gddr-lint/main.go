// Command gddr-lint runs the repo's custom static-analysis suite
// (internal/analysis) over the module: contract checks that go vet cannot
// express, built purely on the standard library's go/parser, go/ast,
// go/types and go/token.
//
//	gddr-lint ./...                    # the CI gate
//	gddr-lint -checks determinism ./internal/rl
//	gddr-lint -json ./...              # one JSON object per finding line
//	gddr-lint -list
//
// Checks:
//
//	determinism  deterministic packages draw randomness from serialisable
//	             internal/rng streams, never the wall clock or map order
//	metricnames  registry metric names follow gddr_<subsystem>_<name>_<unit>
//	ctxflow      ctx-accepting functions forward ctx, never mint Background/TODO
//	jsonerrors   gateway handlers keep the {"error": ...} JSON contract
//	lockguard    //gddr:guardedby fields are only touched with their mutex held
//	atomicpub    atomic.Pointer fields follow the copy-on-write publication
//	             contract: Store under the writer mutex, no writes through Load
//	hotpath      //gddr:hotpath functions stay free of allocating constructs,
//	             transitively through module-local callees
//
// A finding is suppressed only by an explicit in-place directive:
//
//	//gddr:allow <check> <reason>
//
// on the offending line or standing alone on the line(s) above it. Exit
// status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gddr/internal/analysis"
)

// jsonFinding is the -json wire form: one object per line so CI and editors
// can stream-parse the report without holding it whole.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run())
}

func run() int {
	checks := flag.String("checks", "all", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gddr-lint [-checks list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gddr-lint:", err)
		return 2
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gddr-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gddr-lint:", err)
		return 2
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gddr-lint:", err)
		return 2
	}
	findings := analysis.Run(pkgs, analysis.DefaultConfig(loader.ModulePath()), analyzers)
	wd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		name := f.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:    name,
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Check:   f.Check,
				Message: f.Msg,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "gddr-lint:", err)
				return 2
			}
			continue
		}
		fmt.Printf("%s:%d:%d: %s [%s]\n", name, f.Pos.Line, f.Pos.Column, f.Msg, f.Check)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gddr-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
