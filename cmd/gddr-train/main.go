// Command gddr-train trains a GDDR routing agent with PPO on an embedded
// topology and saves the learned parameters as JSON. Ctrl-C cancels the
// run at the next PPO rollout, keeping the last completed update.
//
// Example:
//
//	gddr-train -policy gnn -topology abilene -steps 20000 -out model.json
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"gddr"
	"gddr/internal/policy"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		policyName = flag.String("policy", "gnn", "policy architecture: mlp, gnn, gnn-iterative")
		topoName   = flag.String("topology", "abilene", "embedded topology name")
		steps      = flag.Int("steps", 20000, "PPO environment steps (paper: 500000)")
		seqs       = flag.Int("sequences", 3, "training demand sequences (paper: 7)")
		seqLen     = flag.Int("seqlen", 30, "demand matrices per sequence (paper: 60)")
		cycle      = flag.Int("cycle", 5, "cycle length of the cyclical sequences (paper: 10)")
		memory     = flag.Int("memory", 3, "demand history length (paper: 5)")
		hidden     = flag.Int("gnn-hidden", 16, "GNN latent width")
		msgSteps   = flag.Int("gnn-steps", 2, "GNN message-passing steps")
		seed       = flag.Int64("seed", 1, "random seed")
		outPath    = flag.String("out", "model.json", "output model file")
		quiet      = flag.Bool("quiet", false, "suppress per-episode progress")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	kind, err := policy.ParseKind(*policyName)
	if err != nil {
		return err
	}
	g, err := topo.Named(*topoName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	sequences, err := traffic.Sequences(*seqs, g.NumNodes(), *seqLen, *cycle, traffic.DefaultBimodal(), rng)
	if err != nil {
		return err
	}
	scenario := gddr.NewScenario(g, sequences)

	opts := []gddr.Option{
		gddr.WithMemory(*memory),
		gddr.WithTotalSteps(*steps),
		gddr.WithSeed(*seed),
		gddr.WithGNNSize(*hidden, *msgSteps),
	}
	if !*quiet {
		opts = append(opts, gddr.WithProgress(func(p gddr.Progress) {
			if p.Episode != nil {
				fmt.Printf("episode %4d  timestep %7d  reward %9.2f  mean-ratio %.4f\n",
					p.Episode.Episode, p.Episode.Timestep, p.Episode.TotalReward, p.Episode.MeanRatio)
			}
		}))
	}
	agent, err := gddr.NewAgent(kind, scenario, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("training %s on %s (%d nodes, %d edges), %d params, %d steps\n",
		kind, *topoName, g.NumNodes(), g.NumEdges(), agent.NumParams(), *steps)

	cache := gddr.NewOptimalCache()
	if _, err := gddr.Prewarm(ctx, scenario, cache); err != nil {
		return err
	}
	if _, err := agent.Train(ctx, scenario, cache); err != nil {
		return err
	}
	ratio, err := agent.Evaluate(ctx, scenario, cache)
	if err != nil {
		return err
	}
	sp, err := gddr.ShortestPathRatio(ctx, scenario, *memory, cache)
	if err != nil {
		return err
	}
	fmt.Printf("train-set mean U_agent/U_opt: %.4f (shortest path: %.4f)\n", ratio, sp)

	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := agent.Save(f); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *outPath)
	return nil
}
