// Command gddr-train trains a GDDR routing agent (PPO or A2C) on an
// embedded topology and saves the learned parameters as JSON. Rollouts can
// be collected by parallel workers (-workers); results are bit-identical
// for a given (seed, workers) pair. With -checkpoint the run writes durable
// training checkpoints (periodically and on Ctrl-C), and -resume continues
// a checkpointed run exactly where it left off — the resumed run is
// bit-identical to an uninterrupted one.
//
// Examples:
//
//	gddr-train -policy gnn -topology abilene -steps 20000 -workers 4 -checkpoint run.ckpt.json -out model.json
//	gddr-train -resume run.ckpt.json -steps 40000 -out model.json
//
// Ctrl-C cancels the run at the next rollout boundary, keeping the last
// completed update; when -checkpoint (or -resume) is set, the final
// checkpoint and the learning curve so far are written before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"gddr"
	"gddr/internal/metrics"
	"gddr/internal/policy"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		policyName = flag.String("policy", "gnn", "policy architecture: mlp, gnn, gnn-iterative")
		algoName   = flag.String("algo", "ppo", "training algorithm: ppo, a2c")
		topoName   = flag.String("topology", "abilene", "embedded topology name")
		steps      = flag.Int("steps", 20000, "training environment steps (paper: 500000)")
		workers    = flag.Int("workers", 1, "parallel rollout-collection workers")
		seqs       = flag.Int("sequences", 3, "training demand sequences (paper: 7)")
		seqLen     = flag.Int("seqlen", 30, "demand matrices per sequence (paper: 60)")
		cycle      = flag.Int("cycle", 5, "cycle length of the cyclical sequences (paper: 10)")
		memory     = flag.Int("memory", 3, "demand history length (paper: 5)")
		hidden     = flag.Int("gnn-hidden", 16, "GNN latent width")
		msgSteps   = flag.Int("gnn-steps", 2, "GNN message-passing steps")
		seed       = flag.Int64("seed", 1, "random seed")
		outPath    = flag.String("out", "model.json", "output model file")
		ckptPath   = flag.String("checkpoint", "", "training-checkpoint file (enables periodic + on-interrupt checkpoints)")
		ckptEvery  = flag.Int("checkpoint-every", 2000, "environment steps between periodic checkpoints")
		resumePath = flag.String("resume", "", "resume from a training checkpoint written by -checkpoint")
		curvePath  = flag.String("curve", "", "write the learning curve as JSON (default: <checkpoint>.curve.json when checkpointing)")
		quiet      = flag.Bool("quiet", false, "suppress per-episode progress")
		metricAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus) and /debug/pprof on this address while training")
		metricOut  = flag.String("metrics-out", "", "dump final training metrics to this file (.csv for CSV, else JSON)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	kind, err := policy.ParseKind(*policyName)
	if err != nil {
		return err
	}
	algo, err := gddr.ParseAlgo(*algoName)
	if err != nil {
		return err
	}
	g, err := topo.Named(*topoName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	sequences, err := traffic.Sequences(*seqs, g.NumNodes(), *seqLen, *cycle, traffic.DefaultBimodal(), rng)
	if err != nil {
		return err
	}
	scenario := gddr.NewScenario(g, sequences)

	reg := metrics.NewRegistry()
	if *metricAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Addr: *metricAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "gddr-train: metrics listener:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", *metricAddr)
	}

	var opts []gddr.Option
	opts = append(opts, gddr.WithMetrics(reg))
	if !*quiet {
		opts = append(opts, gddr.WithProgress(func(p gddr.Progress) {
			if p.Episode != nil {
				fmt.Printf("episode %4d  timestep %7d  reward %9.2f  mean-ratio %.4f\n",
					p.Episode.Episode, p.Episode.Timestep, p.Episode.TotalReward, p.Episode.MeanRatio)
			}
		}))
	}

	var agent *gddr.Agent
	if *resumePath != "" {
		// A resumed run is defined by its checkpoint: architecture, seed,
		// algorithm, and hyperparameters cannot change mid-run, so an
		// explicit flag that asks for that is an error, not a silent no-op.
		for _, name := range []string{"policy", "algo", "seed", "memory", "gnn-hidden", "gnn-steps"} {
			if explicit[name] {
				return fmt.Errorf("-%s cannot be changed when resuming; it is fixed by the checkpoint", name)
			}
		}
		cp, err := gddr.LoadCheckpointFile(*resumePath)
		if err != nil {
			return err
		}
		// The scenario flags must match the original run; the checkpoint's
		// scenario digest rejects a mismatch at training time. -steps
		// (extend the budget) and -workers (validated against the
		// checkpoint) may be set explicitly; the checkpoint file keeps
		// being written unless -checkpoint says otherwise.
		if explicit["steps"] {
			opts = append(opts, gddr.WithTotalSteps(*steps))
		}
		if explicit["workers"] {
			opts = append(opts, gddr.WithRolloutWorkers(*workers))
		}
		path := *ckptPath
		if path == "" {
			path = *resumePath
		}
		opts = append(opts, gddr.WithCheckpointPath(path))
		// The checkpoint interval follows the original run unless the user
		// explicitly asks for a different one.
		if explicit["checkpoint-every"] {
			opts = append(opts, gddr.WithCheckpointEvery(*ckptEvery))
		}
		*ckptPath = path
		agent, err = gddr.ResumeAgent(cp, scenario, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("resuming %s on %s from %s: %d/%d steps done\n",
			cp.Config.Policy, *topoName, *resumePath, cp.Train.Timesteps, agent.Config.TotalSteps)
	} else {
		opts = append(opts,
			gddr.WithMemory(*memory),
			gddr.WithTotalSteps(*steps),
			gddr.WithSeed(*seed),
			gddr.WithGNNSize(*hidden, *msgSteps),
			gddr.WithAlgo(algo),
			gddr.WithRolloutWorkers(*workers),
		)
		if *ckptPath != "" {
			opts = append(opts, gddr.WithCheckpointPath(*ckptPath), gddr.WithCheckpointEvery(*ckptEvery))
		}
		agent, err = gddr.NewAgent(kind, scenario, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("training %s (%s) on %s (%d nodes, %d edges), %d params, %d steps, %d workers\n",
			kind, algo, *topoName, g.NumNodes(), g.NumEdges(), agent.NumParams(), *steps, *workers)
	}

	cache := gddr.NewOptimalCache()
	if _, err := gddr.Prewarm(ctx, scenario, cache, gddr.WithMetrics(reg)); err != nil {
		return err
	}
	if _, err := agent.Train(ctx, scenario, cache); err != nil {
		if errors.Is(err, context.Canceled) {
			// Ctrl-C: persist the last completed update so the run can be
			// resumed bit-identically, then exit cleanly.
			fmt.Printf("\ninterrupted at %d/%d steps\n", agent.TrainedSteps(), agent.Config.TotalSteps)
			if err := dumpMetrics(reg, *metricOut); err != nil {
				return err
			}
			return persistInterrupted(agent, *ckptPath, *curvePath)
		}
		return err
	}

	ratio, err := agent.Evaluate(ctx, scenario, cache)
	if err != nil {
		return err
	}
	sp, err := gddr.ShortestPathRatio(ctx, scenario, agent.Config.Memory, cache)
	if err != nil {
		return err
	}
	fmt.Printf("train-set mean U_agent/U_opt: %.4f (shortest path: %.4f)\n", ratio, sp)

	if *ckptPath != "" {
		if err := agent.WriteCheckpointFile(*ckptPath); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", *ckptPath)
	}
	if *curvePath != "" {
		if err := writeCurve(agent, *curvePath); err != nil {
			return err
		}
		fmt.Printf("learning curve written to %s\n", *curvePath)
	}
	if err := dumpMetrics(reg, *metricOut); err != nil {
		return err
	}

	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := agent.Save(f); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *outPath)
	return nil
}

// persistInterrupted writes the final checkpoint and learning curve after a
// cancelled run. Without a checkpoint path the training state is discarded
// as before, but an explicitly requested -curve file is still written.
func persistInterrupted(agent *gddr.Agent, ckptPath, curvePath string) error {
	if ckptPath != "" {
		if err := agent.WriteCheckpointFile(ckptPath); err != nil {
			return err
		}
		fmt.Printf("final checkpoint written to %s (resume with -resume %s)\n", ckptPath, ckptPath)
		if curvePath == "" {
			curvePath = ckptPath + ".curve.json"
		}
	} else {
		fmt.Println("no -checkpoint path set; training progress discarded")
	}
	if curvePath == "" {
		return nil
	}
	if err := writeCurve(agent, curvePath); err != nil {
		return err
	}
	fmt.Printf("learning curve written to %s\n", curvePath)
	return nil
}

// dumpMetrics writes the registry's final snapshot to path — CSV when the
// extension is .csv, JSON otherwise. An empty path is a no-op.
func dumpMetrics(reg *metrics.Registry, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if filepath.Ext(path) == ".csv" {
		err = reg.WriteCSV(f)
	} else {
		err = reg.WriteJSON(f)
	}
	if err != nil {
		return fmt.Errorf("writing metrics to %s: %w", path, err)
	}
	fmt.Printf("metrics written to %s\n", path)
	return nil
}

// writeCurve writes the agent's cumulative learning curve as JSON.
func writeCurve(agent *gddr.Agent, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(agent.Curve())
}
