// Command gddr-topo inspects the embedded topologies: lists them, prints
// per-topology statistics, and exports Graphviz DOT or JSON for external
// tooling.
//
// Example:
//
//	gddr-topo -list
//	gddr-topo -topology abilene -stats
//	gddr-topo -topology nsfnet -dot > nsfnet.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"gddr/internal/topo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-topo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list embedded topologies")
		topoName = flag.String("topology", "", "topology to inspect")
		stats    = flag.Bool("stats", false, "print statistics")
		dot      = flag.Bool("dot", false, "export Graphviz DOT to stdout")
		jsonOut  = flag.Bool("json", false, "export JSON to stdout")
	)
	flag.Parse()

	if *list {
		for _, name := range topo.Names() {
			g, err := topo.Named(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %3d nodes %3d directed edges\n", name, g.NumNodes(), g.NumEdges())
		}
		return nil
	}
	if *topoName == "" {
		return fmt.Errorf("need -list or -topology <name> (have %v)", topo.Names())
	}
	g, err := topo.Named(*topoName)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(g.DOT(*topoName))
		return nil
	}
	if *jsonOut {
		return g.WriteJSON(os.Stdout)
	}
	if *stats {
		var minCap, maxCap, sumCap float64
		for i, e := range g.Edges() {
			if i == 0 || e.Capacity < minCap {
				minCap = e.Capacity
			}
			if e.Capacity > maxCap {
				maxCap = e.Capacity
			}
			sumCap += e.Capacity
		}
		degrees := make([]int, g.NumNodes())
		maxDeg := 0
		for v := 0; v < g.NumNodes(); v++ {
			degrees[v] = len(g.OutEdges(v))
			if degrees[v] > maxDeg {
				maxDeg = degrees[v]
			}
		}
		fmt.Printf("topology        %s\n", *topoName)
		fmt.Printf("nodes           %d\n", g.NumNodes())
		fmt.Printf("directed edges  %d\n", g.NumEdges())
		fmt.Printf("capacity        min %.0f / mean %.0f / max %.0f\n",
			minCap, sumCap/float64(g.NumEdges()), maxCap)
		fmt.Printf("max out-degree  %d\n", maxDeg)
		fmt.Printf("strongly conn.  %v\n", g.StronglyConnected())
		for v := 0; v < g.NumNodes(); v++ {
			fmt.Printf("  %-16s degree %d\n", g.Name(v), degrees[v])
		}
		return nil
	}
	return fmt.Errorf("nothing to do: pass -stats, -dot, or -json")
}
