// Command gddr-figures regenerates the paper's evaluation figures as
// printed series: Figure 6 (fixed-graph policy comparison), Figure 7
// (learning curves), and Figure 8 (generalisation to unseen topologies).
//
// Example:
//
//	gddr-figures -figure 6 -steps 8000
//	gddr-figures -figure all -scale paper   # full paper-scale run (hours)
package main

import (
	"flag"
	"fmt"
	"os"

	"gddr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure = flag.String("figure", "all", "which figure to regenerate: 6, 7, 8, or all")
		scale  = flag.String("scale", "default", "experiment scale: default (minutes) or paper (hours)")
		steps  = flag.Int("steps", 0, "override training steps (0: scale default)")
		seed   = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	opts := gddr.DefaultExperimentOptions()
	if *scale == "paper" {
		opts = gddr.PaperExperimentOptions()
	} else if *scale != "default" {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *steps > 0 {
		opts.TrainSteps = *steps
	}
	opts.Seed = *seed

	runs := map[string]func() error{
		"6": func() error { return figure6(opts) },
		"7": func() error { return figure7(opts) },
		"8": func() error { return figure8(opts) },
	}
	if *figure == "all" {
		for _, f := range []string{"6", "7", "8"} {
			if err := runs[f](); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := runs[*figure]
	if !ok {
		return fmt.Errorf("unknown figure %q (want 6, 7, 8, or all)", *figure)
	}
	return f()
}

func figure6(opts gddr.ExperimentOptions) error {
	fmt.Println("=== Figure 6: learning to route on a fixed graph (Abilene) ===")
	fmt.Println("bar heights: mean U_agent/U_opt on held-out sequences; lower is better")
	res, err := gddr.Figure6(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %8.4f\n", "MLP", res.MLP)
	fmt.Printf("%-16s %8.4f\n", "GNN", res.GNN)
	fmt.Printf("%-16s %8.4f\n", "GNN Iterative", res.GNNIterative)
	fmt.Printf("%-16s %8.4f  (dotted line)\n", "Shortest path", res.ShortestPath)
	fmt.Println()
	return nil
}

func figure7(opts gddr.ExperimentOptions) error {
	fmt.Println("=== Figure 7: learning curves (reward per episode vs timesteps) ===")
	res, err := gddr.Figure7(opts)
	if err != nil {
		return err
	}
	print := func(name string, eps []gddr.EpisodeStat) error {
		fmt.Printf("-- %s raw --\n", name)
		fmt.Println("timestep,reward_per_episode,mean_ratio")
		for _, st := range eps {
			fmt.Printf("%d,%.3f,%.4f\n", st.Timestep, st.TotalReward, st.MeanRatio)
		}
		// Smoothed series with a 95% confidence band, as the paper plots.
		curve, err := gddr.SmoothLearningCurve(eps, 8)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s smoothed (mean, 95%% band) --\n", name)
		fmt.Println("timestep,mean,lower,upper")
		for _, p := range curve {
			fmt.Printf("%.0f,%.3f,%.3f,%.3f\n", p.X, p.Mean, p.Lower, p.Upper)
		}
		return nil
	}
	if err := print("MLP", res.MLP); err != nil {
		return err
	}
	if err := print("GNN", res.GNN); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func figure8(opts gddr.ExperimentOptions) error {
	fmt.Println("=== Figure 8: generalising to unseen graphs ===")
	fmt.Println("bar heights: mean U_agent/U_opt; lower is better")
	res, err := gddr.Figure8(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %22s %18s\n", "policy", "graph modifications", "different graphs")
	fmt.Printf("%-16s %22.4f %18.4f\n", "GNN", res.ModificationsGNN, res.DifferentGNN)
	fmt.Printf("%-16s %22.4f %18.4f\n", "GNN Iterative", res.ModificationsGNNIter, res.DifferentGNNIter)
	fmt.Printf("%-16s %22.4f %18.4f  (dotted lines)\n", "Shortest path", res.ModificationsSP, res.DifferentSP)
	fmt.Println()
	return nil
}
