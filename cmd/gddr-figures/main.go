// Command gddr-figures regenerates the paper's evaluation figures through
// the named-experiment registry: figure6 (fixed-graph policy comparison),
// figure7 (learning curves), figure8 (generalisation to unseen
// topologies), and any other registered experiment. Interrupting with
// Ctrl-C cancels the run at the next PPO rollout or LP solve.
//
// Example:
//
//	gddr-figures -list
//	gddr-figures -experiment figure6 -steps 8000
//	gddr-figures -experiment all -scale paper   # full paper-scale run (hours)
//	gddr-figures -experiment figure7 -json > figure7.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"gddr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "", "registered experiment to run, or 'all' for the three figures")
		figure     = flag.String("figure", "", "legacy alias: 6, 7, 8, or all")
		list       = flag.Bool("list", false, "list registered experiments and exit")
		scale      = flag.String("scale", "default", "experiment scale: default (minutes) or paper (hours)")
		steps      = flag.Int("steps", 0, "override training steps (0: scale default)")
		seed       = flag.Int64("seed", 7, "random seed")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON instead of text")
		verbose    = flag.Bool("v", false, "report per-episode training progress")
	)
	flag.Parse()

	if *list {
		for _, exp := range gddr.Experiments() {
			fmt.Printf("%-12s %s\n", exp.Name, exp.Description)
		}
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []gddr.Option
	switch *scale {
	case "paper":
		opts = append(opts, gddr.WithPaperScale())
	case "default":
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	opts = append(opts, gddr.WithSeed(*seed))
	if *steps > 0 {
		opts = append(opts, gddr.WithTotalSteps(*steps))
	}
	if *verbose {
		opts = append(opts, gddr.WithProgress(func(p gddr.Progress) {
			if p.Episode != nil {
				fmt.Printf("  [%s] episode %4d  timestep %7d  reward %9.2f\n",
					p.Stage, p.Episode.Episode, p.Episode.Timestep, p.Episode.TotalReward)
			}
		}))
	}

	name := *experiment
	if name == "" {
		switch *figure {
		case "6", "7", "8":
			name = "figure" + *figure
		case "all", "":
			name = "all"
		default:
			return fmt.Errorf("unknown figure %q (want 6, 7, 8, or all)", *figure)
		}
	}

	names := []string{name}
	if name == "all" {
		names = []string{"figure6", "figure7", "figure8"}
	}
	for _, n := range names {
		report, err := gddr.RunExperiment(ctx, n, opts...)
		if err != nil {
			return err
		}
		if err := printReport(report, *jsonOut); err != nil {
			return err
		}
	}
	return nil
}

func printReport(report *gddr.Report, jsonOut bool) error {
	if jsonOut {
		data, err := report.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("=== %s: %s ===\n", report.Experiment, report.Description)
	fmt.Print(report.String())
	// Learning curves additionally get the paper's smoothed presentation
	// (mean with a 95% confidence band over equal timestep windows).
	for _, name := range report.CurveNames() {
		smoothed, err := gddr.SmoothLearningCurve(report.Curves[name], 8)
		if err != nil {
			return fmt.Errorf("smoothing %s curve: %w", name, err)
		}
		fmt.Printf("-- %s smoothed (mean, 95%% band) --\n", name)
		fmt.Println("timestep,mean,lower,upper")
		for _, p := range smoothed {
			fmt.Printf("%.0f,%.3f,%.3f,%.3f\n", p.X, p.Mean, p.Lower, p.Upper)
		}
	}
	fmt.Println()
	return nil
}
