// Command gddr-eval evaluates a saved GDDR model (or the classic
// baselines) on fresh demand sequences over an embedded topology,
// reporting the mean ratio of achieved to optimal maximum link
// utilisation. With a model it also serves the sequences through the
// Router inference engine, reporting per-decision latency.
//
// Example:
//
//	gddr-eval -model model.json -policy gnn -topology abilene -seed 42
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"gddr"
	"gddr/internal/policy"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-eval:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath  = flag.String("model", "", "saved model JSON (empty: baselines only)")
		policyName = flag.String("policy", "gnn", "architecture the model was trained with")
		topoName   = flag.String("topology", "abilene", "embedded topology name")
		seqs       = flag.Int("sequences", 2, "evaluation sequences")
		seqLen     = flag.Int("seqlen", 30, "demand matrices per sequence")
		cycle      = flag.Int("cycle", 5, "cycle length")
		memory     = flag.Int("memory", 3, "demand history length (must match training)")
		hidden     = flag.Int("gnn-hidden", 16, "GNN latent width (must match training)")
		msgSteps   = flag.Int("gnn-steps", 2, "GNN message-passing steps (must match training)")
		seed       = flag.Int64("seed", 42, "random seed for evaluation traffic")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Classic baselines come from the experiment registry so every tool
	// reports them identically.
	report, err := gddr.RunExperiment(ctx, "baselines",
		gddr.WithTopology(*topoName),
		gddr.WithSeed(*seed),
		gddr.WithMemory(*memory),
		gddr.WithSequences(0, *seqs),
		gddr.WithSequenceShape(*seqLen, *cycle))
	if err != nil {
		return err
	}
	fmt.Printf("topology %s baselines (mean U/U_opt, lower is better):\n", *topoName)
	for _, name := range report.MetricNames() {
		fmt.Printf("  %-32s %8.4f\n", name, report.Metrics[name])
	}

	if *modelPath == "" {
		return nil
	}
	kind, err := policy.ParseKind(*policyName)
	if err != nil {
		return err
	}
	g, err := topo.Named(*topoName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	sequences, err := traffic.Sequences(*seqs, g.NumNodes(), *seqLen, *cycle, traffic.DefaultBimodal(), rng)
	if err != nil {
		return err
	}
	scenario := gddr.NewScenario(g, sequences)
	cache := gddr.NewOptimalCache()

	agent, err := gddr.NewAgent(kind, scenario,
		gddr.WithMemory(*memory),
		gddr.WithGNNSize(*hidden, *msgSteps))
	if err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := agent.Load(f); err != nil {
		return err
	}
	ratio, err := agent.Evaluate(ctx, scenario, cache)
	if err != nil {
		return err
	}
	fmt.Printf("model %s (%s): mean ratio %.4f\n", *modelPath, kind, ratio)

	// Serve the same traffic through the Router inference engine: the
	// deployable form of the agent (paper's "GNN as router" claim). One
	// router per sequence, warmed with the first `memory` demands and
	// scored on the rest, so each decision observes the same demand
	// history as Evaluate and the two mean ratios are comparable.
	var sum float64
	var count int
	var passes int64
	var elapsed time.Duration
	for i, seq := range sequences {
		if len(seq) <= *memory {
			continue
		}
		router, err := gddr.NewRouter(agent, g, gddr.WithWarmHistory(seq[:*memory]...))
		if err != nil {
			return err
		}
		// Per-sequence accounting works on Stats() deltas, so warm-up work
		// done before the scored decisions never pollutes a sequence's pass
		// count, and only the Route calls are timed — the LP optimum lookup
		// is scoring machinery, not serving latency.
		prevPasses := router.Stats().ForwardPasses
		var seqElapsed time.Duration
		var seqDecisions int
		for ti := *memory; ti < len(seq); ti++ {
			dm := seq[ti]
			start := time.Now()
			d, err := router.Route(ctx, dm)
			seqElapsed += time.Since(start)
			if err != nil {
				router.Close()
				return err
			}
			seqDecisions++
			opt, err := cache.GetSeqContext(ctx, g, seq, ti)
			if err != nil {
				router.Close()
				return err
			}
			if opt <= 1e-12 {
				continue
			}
			sum += d.MaxUtilization / opt
			count++
		}
		seqPasses := router.Stats().ForwardPasses - prevPasses
		router.Close()
		if seqDecisions > 0 {
			fmt.Printf("  sequence %d: %d decisions, %s/decision, %d forward passes\n",
				i, seqDecisions, (seqElapsed / time.Duration(seqDecisions)).Round(time.Microsecond), seqPasses)
		}
		elapsed += seqElapsed
		passes += seqPasses
	}
	if count == 0 {
		return fmt.Errorf("no routable timesteps (sequences shorter than memory?)")
	}
	fmt.Printf("router serving: %d decisions, mean ratio %.4f, %s/decision (%d forward passes)\n",
		count, sum/float64(count), (elapsed / time.Duration(count)).Round(time.Microsecond), passes)
	return nil
}
