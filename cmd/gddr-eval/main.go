// Command gddr-eval evaluates a saved GDDR model (or the classic baselines)
// on fresh demand sequences over an embedded topology, reporting the mean
// ratio of achieved to optimal maximum link utilisation.
//
// Example:
//
//	gddr-eval -model model.json -policy gnn -topology abilene -seed 42
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gddr"
	"gddr/internal/policy"
	"gddr/internal/routing"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gddr-eval:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath  = flag.String("model", "", "saved model JSON (empty: baselines only)")
		policyName = flag.String("policy", "gnn", "architecture the model was trained with")
		topoName   = flag.String("topology", "abilene", "embedded topology name")
		seqs       = flag.Int("sequences", 2, "evaluation sequences")
		seqLen     = flag.Int("seqlen", 30, "demand matrices per sequence")
		cycle      = flag.Int("cycle", 5, "cycle length")
		memory     = flag.Int("memory", 3, "demand history length (must match training)")
		hidden     = flag.Int("gnn-hidden", 16, "GNN latent width (must match training)")
		msgSteps   = flag.Int("gnn-steps", 2, "GNN message-passing steps (must match training)")
		seed       = flag.Int64("seed", 42, "random seed for evaluation traffic")
	)
	flag.Parse()

	g, err := topo.Named(*topoName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	sequences, err := traffic.Sequences(*seqs, g.NumNodes(), *seqLen, *cycle, traffic.DefaultBimodal(), rng)
	if err != nil {
		return err
	}
	scenario := gddr.NewScenario(g, sequences)
	cache := gddr.NewOptimalCache()

	sp, err := gddr.ShortestPathRatio(scenario, *memory, cache)
	if err != nil {
		return err
	}
	fmt.Printf("topology %s: shortest-path mean ratio %.4f\n", *topoName, sp)

	// Oblivious inverse-capacity ECMP baseline for context.
	var obliviousSum float64
	var obliviousCount int
	for _, seq := range sequences {
		for t := *memory; t < len(seq); t++ {
			res, err := routing.InverseCapacityECMP(g, seq[t])
			if err != nil {
				return err
			}
			opt, err := cache.Get(g, seq[t])
			if err != nil {
				return err
			}
			obliviousSum += res.MaxUtilization / opt
			obliviousCount++
		}
	}
	fmt.Printf("topology %s: inverse-capacity ECMP mean ratio %.4f\n",
		*topoName, obliviousSum/float64(obliviousCount))

	if *modelPath == "" {
		return nil
	}
	kind, err := policy.ParseKind(*policyName)
	if err != nil {
		return err
	}
	cfg := gddr.DefaultTrainConfig(kind)
	cfg.Memory = *memory
	cfg.GNN.Hidden = *hidden
	cfg.GNN.Steps = *msgSteps
	agent, err := gddr.NewAgent(cfg, scenario)
	if err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := agent.Load(f); err != nil {
		return err
	}
	ratio, err := agent.Evaluate(scenario, cache)
	if err != nil {
		return err
	}
	fmt.Printf("model %s (%s): mean ratio %.4f\n", *modelPath, kind, ratio)
	return nil
}
