package gddr

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"gddr/internal/metrics"
	"gddr/internal/policy"
	"gddr/internal/topo"
)

// TenantConfig describes one serving tenant: which embedded topology it
// routes, the policy architecture and (optionally) saved model it serves
// with, how its Engine is shaped (replicas, workers, batching), and the
// admission limits protecting the rest of the fleet from its traffic. The
// zero value of every optional field means "use the default"; the JSON
// form is what fleet config files (-fleet fleet.json) and the POST /tenants
// admin endpoint accept.
type TenantConfig struct {
	// Topology names the embedded topology this tenant serves (see
	// topo.Names). Required.
	Topology string `json:"topology"`
	// Policy is the architecture the tenant's model was trained with
	// (default "gnn").
	Policy string `json:"policy,omitempty"`
	// Checkpoint is a path to saved model JSON (Agent.Save format). Empty
	// means a capacity-aware cold start, mirroring gddr-serve -model.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Memory is the demand-history length m; must match training (default 3).
	Memory int `json:"memory,omitempty"`
	// GNNHidden and GNNSteps size the GNN policy; must match training
	// (defaults 16 and 2).
	GNNHidden int `json:"gnn_hidden,omitempty"`
	GNNSteps  int `json:"gnn_steps,omitempty"`
	// Replicas is the number of read replicas serving this tenant's
	// snapshot (default 1; see WithReplicas).
	Replicas int `json:"replicas,omitempty"`
	// Workers is the per-replica serving goroutine count (0: GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// MaxBatch bounds how many requests share one forward pass (default 16).
	MaxBatch int `json:"max_batch,omitempty"`
	// QueueDepth bounds the tenant's in-flight admission slots: once this
	// many Route calls are in flight, further calls shed with ErrOverloaded
	// instead of queueing unboundedly (default 64).
	QueueDepth int `json:"queue_depth,omitempty"`
	// RateLimit caps sustained admitted Route calls per second via a token
	// bucket; 0 means unlimited.
	RateLimit float64 `json:"rate_limit,omitempty"`
	// Burst is the token-bucket capacity: how far above the sustained rate
	// a short spike may go (default: max(1, ceil(RateLimit))). Ignored when
	// RateLimit is 0.
	Burst int `json:"burst,omitempty"`
}

// defaultQueueDepth bounds a tenant's in-flight Route calls when the config
// does not say otherwise: deep enough that batching stays effective, small
// enough that one tenant's backlog cannot hold the gateway's memory.
const defaultQueueDepth = 64

// withDefaults returns cfg with every zero optional field resolved to its
// documented default.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.Policy == "" {
		c.Policy = "gnn"
	}
	if c.Memory == 0 {
		c.Memory = 3
	}
	if c.GNNHidden == 0 {
		c.GNNHidden = 16
	}
	if c.GNNSteps == 0 {
		c.GNNSteps = 2
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = defaultQueueDepth
	}
	if c.RateLimit > 0 && c.Burst == 0 {
		c.Burst = int(c.RateLimit)
		if float64(c.Burst) < c.RateLimit {
			c.Burst++
		}
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// Validate rejects configs that could not boot a tenant or would violate
// the fleet's invariants (negative limits, unknown topology or policy).
// It validates the defaulted form, so callers may pass sparse configs.
func (c TenantConfig) Validate() error {
	c = c.withDefaults()
	if c.Topology == "" {
		return fmt.Errorf("gddr: tenant config needs a topology")
	}
	if _, err := topo.Named(c.Topology); err != nil {
		return err
	}
	if _, err := policy.ParseKind(c.Policy); err != nil {
		return err
	}
	if c.Memory < 1 {
		return fmt.Errorf("gddr: tenant memory must be >= 1, got %d", c.Memory)
	}
	if c.Replicas < 1 {
		return fmt.Errorf("gddr: tenant replicas must be >= 1, got %d", c.Replicas)
	}
	if c.Workers < 0 {
		return fmt.Errorf("gddr: tenant workers must be >= 0, got %d", c.Workers)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("gddr: tenant max_batch must be >= 1, got %d", c.MaxBatch)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("gddr: tenant queue_depth must be >= 1, got %d", c.QueueDepth)
	}
	if c.RateLimit < 0 {
		return fmt.Errorf("gddr: tenant rate_limit must be >= 0, got %g", c.RateLimit)
	}
	if c.Burst < 0 {
		return fmt.Errorf("gddr: tenant burst must be >= 0, got %d", c.Burst)
	}
	return nil
}

// admission is one tenant's gate: a bounded in-flight slot pool (the
// admission queue) plus an optional token bucket capping the sustained
// admitted rate. Both shed immediately with ErrOverloaded rather than
// blocking — under saturation the caller gets a fast, typed 429-able
// answer and sibling tenants keep their capacity.
type admission struct {
	// slots holds one token per admitted in-flight Route call; buffered to
	// QueueDepth so a full channel IS the saturation signal.
	slots chan struct{}

	// The token bucket refills continuously at rate tokens/second up to
	// burst. rate 0 disables it. Guarded by mu; admission is two cheap
	// arithmetic ops under the lock, never a wait.
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64   //gddr:guardedby mu
	last   time.Time //gddr:guardedby mu
}

func newAdmission(cfg TenantConfig) *admission {
	a := &admission{
		slots: make(chan struct{}, cfg.QueueDepth),
		rate:  cfg.RateLimit,
		burst: float64(cfg.Burst),
	}
	a.tokens = a.burst // a fresh tenant may burst immediately
	a.last = time.Now()
	return a
}

// acquire admits one request or fails fast with ErrOverloaded. On success
// the caller must release exactly once.
func (a *admission) acquire() error {
	select {
	case a.slots <- struct{}{}:
	default:
		return fmt.Errorf("%w: admission queue is full", ErrOverloaded)
	}
	if a.rate > 0 && !a.takeToken() {
		<-a.slots
		return fmt.Errorf("%w: rate limit exceeded", ErrOverloaded)
	}
	return nil
}

func (a *admission) release() { <-a.slots }

// takeToken refills the bucket for the elapsed wall time and spends one
// token if available.
func (a *admission) takeToken() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := time.Now()
	a.tokens += now.Sub(a.last).Seconds() * a.rate
	if a.tokens > a.burst {
		a.tokens = a.burst
	}
	a.last = now
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}

// A Tenant is one named serving unit inside a Fleet: an Engine on its own
// topology, model, and demand history, fronted by this tenant's admission
// gate. Tenants are handed out by Fleet.Tenant and stay valid until the
// fleet deletes them (after which the engine is closed and Route returns
// ErrClosed).
type Tenant struct {
	id     string
	cfg    TenantConfig
	engine *Engine

	adm *admission

	// Fleet-registry instruments, bound to this tenant's label at create
	// time so the serving path never re-resolves them.
	admitted *metrics.Counter
	shed     *metrics.Counter
	latency  *metrics.Histogram
}

// ID returns the tenant's fleet-unique name.
func (t *Tenant) ID() string { return t.id }

// Config returns the tenant's resolved (defaulted) configuration.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// Engine exposes the tenant's underlying engine for operations the tenant
// wrapper does not gate (metrics, graph inspection).
func (t *Tenant) Engine() *Engine { return t.engine }

// Route admits the request through the tenant's bounded queue and rate
// limit, then routes on the tenant's engine. Saturation returns
// ErrOverloaded without touching the engine, so an overloaded tenant sheds
// at the gate instead of queueing into shared compute.
func (t *Tenant) Route(ctx context.Context, dm *DemandMatrix) (*Decision, error) {
	if err := t.adm.acquire(); err != nil {
		t.shed.Inc()
		return nil, err
	}
	defer t.adm.release()
	t.admitted.Inc()
	begin := time.Now()
	d, err := t.engine.Route(ctx, dm)
	t.latency.Observe(time.Since(begin).Seconds())
	return d, err
}

// Apply forwards topology events to the tenant's engine. Mutations are not
// admission-gated: they are rare control-plane operations whose loss would
// desynchronize the tenant from its real network.
func (t *Tenant) Apply(ctx context.Context, events ...Event) error {
	return t.engine.Apply(ctx, events...)
}

// SwapAgent hot-swaps the tenant's model (see Engine.SwapAgent).
func (t *Tenant) SwapAgent(ctx context.Context, agent *Agent) error {
	return t.engine.SwapAgent(ctx, agent)
}

// SwapCheckpoint hot-swaps the tenant's model from a serialized checkpoint
// (see Engine.SwapCheckpoint).
func (t *Tenant) SwapCheckpoint(ctx context.Context, r io.Reader) error {
	return t.engine.SwapCheckpoint(ctx, r)
}

// Stats returns the tenant engine's cumulative serving statistics.
func (t *Tenant) Stats() EngineStats { return t.engine.Stats() }

// Snapshot returns the tenant engine's current topology snapshot.
func (t *Tenant) Snapshot() TopologySnapshot { return t.engine.Snapshot() }

// Version returns the tenant's current topology version.
func (t *Tenant) Version() int64 { return t.engine.Version() }

// newTenantAgent builds the agent a tenant config describes: the named
// architecture sized for the tenant's topology, loaded from the checkpoint
// file when one is configured.
func newTenantAgent(cfg TenantConfig, g *Graph) (*Agent, error) {
	kind, err := policy.ParseKind(cfg.Policy)
	if err != nil {
		return nil, err
	}
	// The MLP constructor sizes itself from a scenario's topology; GNN
	// agents ignore the scenario.
	scen := &Scenario{Items: []ScenarioItem{{Graph: g}}}
	agent, err := NewAgent(kind, scen,
		WithMemory(cfg.Memory),
		WithGNNSize(cfg.GNNHidden, cfg.GNNSteps))
	if err != nil {
		return nil, err
	}
	if cfg.Checkpoint != "" {
		f, err := os.Open(cfg.Checkpoint)
		if err != nil {
			return nil, err
		}
		err = agent.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", cfg.Checkpoint, err)
		}
	}
	return agent, nil
}
