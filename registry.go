package gddr

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Report is the uniform, JSON-serialisable result of a registered
// experiment: scalar metrics plus optional learning curves. Every
// experiment returns one, so downstream tooling (figure regeneration,
// dashboards, regression tracking) consumes a single shape.
type Report struct {
	// Experiment is the registered name that produced this report.
	Experiment string `json:"experiment"`
	// Description is the experiment's registered one-line description.
	Description string `json:"description,omitempty"`
	// Options are the resolved experiment options the run used.
	Options ExperimentOptions `json:"options"`
	// Metrics holds the scalar results, keyed by snake_case metric name.
	Metrics map[string]float64 `json:"metrics"`
	// Curves holds per-episode learning curves, keyed by series name.
	Curves map[string][]EpisodeStat `json:"curves,omitempty"`
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// MetricNames returns the metric keys in sorted order.
func (r *Report) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CurveNames returns the curve keys in sorted order.
func (r *Report) CurveNames() []string {
	names := make([]string, 0, len(r.Curves))
	for name := range r.Curves {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders a human-readable summary: one line per metric, sorted.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %s (%s)\n", r.Experiment, r.Elapsed.Round(time.Millisecond))
	for _, name := range r.MetricNames() {
		fmt.Fprintf(&b, "  %-32s %12.4f\n", name, r.Metrics[name])
	}
	for _, name := range r.CurveNames() {
		fmt.Fprintf(&b, "  curve %-26s %5d episodes\n", name, len(r.Curves[name]))
	}
	return b.String()
}

// ExperimentFunc runs one registered experiment. Implementations must
// honour ctx cancellation and may emit progress reports through progress
// (which may be nil). The returned report needs only Metrics and Curves
// filled in; RunExperiment stamps the identification fields.
type ExperimentFunc func(ctx context.Context, opts ExperimentOptions, progress ProgressFunc) (*Report, error)

// Experiment is a named, registered experiment.
type Experiment struct {
	Name        string
	Description string
	Run         ExperimentFunc `json:"-"`
}

var experimentRegistry = struct {
	sync.RWMutex
	m map[string]Experiment //gddr:guardedby RWMutex
}{m: make(map[string]Experiment)}

// RegisterExperiment adds an experiment to the registry. Registering an
// empty name, a nil Run, or a duplicate name is an error.
func RegisterExperiment(exp Experiment) error {
	if exp.Name == "" {
		return fmt.Errorf("gddr: experiment needs a name")
	}
	if exp.Run == nil {
		return fmt.Errorf("gddr: experiment %q needs a run function", exp.Name)
	}
	experimentRegistry.Lock()
	defer experimentRegistry.Unlock()
	if _, dup := experimentRegistry.m[exp.Name]; dup {
		return fmt.Errorf("gddr: experiment %q already registered", exp.Name)
	}
	experimentRegistry.m[exp.Name] = exp
	return nil
}

func mustRegisterExperiment(exp Experiment) {
	if err := RegisterExperiment(exp); err != nil {
		panic(err)
	}
}

// Experiments lists the registered experiments sorted by name.
func Experiments() []Experiment {
	experimentRegistry.RLock()
	defer experimentRegistry.RUnlock()
	out := make([]Experiment, 0, len(experimentRegistry.m))
	for _, exp := range experimentRegistry.m {
		out = append(out, exp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RunExperiment runs the named experiment with options layered over the
// scaled-down defaults — e.g.
//
//	report, err := gddr.RunExperiment(ctx, "figure6",
//	        gddr.WithSeed(7), gddr.WithTotalSteps(8000),
//	        gddr.WithProgress(report))
//
// Use WithPaperScale for the paper's full-scale settings. The run honours
// ctx cancellation at every PPO rollout and LP solve.
func RunExperiment(ctx context.Context, name string, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	experimentRegistry.RLock()
	exp, ok := experimentRegistry.m[name]
	experimentRegistry.RUnlock()
	if !ok {
		known := Experiments()
		names := make([]string, len(known))
		for i, e := range known {
			names[i] = e.Name
		}
		return nil, fmt.Errorf("gddr: unknown experiment %q (registered: %s)", name, strings.Join(names, ", "))
	}
	s := newSettings(GNNPolicy).apply(opts)
	if len(s.cfgOnly) > 0 {
		// Experiments build their agents from ExperimentOptions; silently
		// dropping agent-construction options would let callers believe a
		// hyperparameter they set influenced the results.
		return nil, fmt.Errorf("gddr: experiment %s does not accept agent-construction options (%s); use NewAgent for those",
			name, strings.Join(s.cfgOnly, ", "))
	}
	start := time.Now()
	report, err := exp.Run(ctx, s.exp, s.progress)
	if err != nil {
		return nil, fmt.Errorf("gddr: experiment %s: %w", name, err)
	}
	if report == nil {
		return nil, fmt.Errorf("gddr: experiment %s returned no report", name)
	}
	report.Experiment = exp.Name
	report.Description = exp.Description
	report.Options = s.exp
	report.Elapsed = time.Since(start)
	return report, nil
}

// stagedProgress prefixes progress reports with an experiment stage name,
// so nested training/evaluation reports identify which sub-run they
// belong to ("figure6/gnn/train", ...).
func stagedProgress(fn ProgressFunc, stage string) ProgressFunc {
	if fn == nil {
		return nil
	}
	return func(p Progress) {
		if p.Stage != "" {
			p.Stage = stage + "/" + p.Stage
		} else {
			p.Stage = stage
		}
		fn(p)
	}
}
