// Package gddr is a from-scratch Go reproduction of "GDDR: GNN-based
// Data-Driven Routing" (Hope & Yoneki, ICDCS 2021): deep reinforcement
// learning for intradomain traffic engineering where graph-neural-network
// policies convert traffic-demand histories into softmin routing strategies
// that minimise maximum link utilisation, generalising across network
// topologies.
//
// The package exposes the high-level workflow — build a scenario (graphs +
// demand sequences), train an agent (MLP, GNN, or iterative GNN policy with
// PPO), evaluate it against the LP-optimal routing and the shortest-path
// baseline — while the substrates (graph library, simplex LP solver,
// autodiff, graph-network blocks, PPO, routing translation) live in
// internal packages and are re-exported here where part of the public
// surface.
package gddr

import (
	"context"
	"fmt"
	"math/rand"

	"gddr/internal/env"
	"gddr/internal/graph"
	"gddr/internal/policy"
	"gddr/internal/rl"
	"gddr/internal/routing"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

// Re-exported core types: these internal types are part of the public API
// surface via aliases.
type (
	// Graph is a directed capacitated network topology.
	Graph = graph.Graph
	// DemandMatrix is an N×N traffic demand matrix.
	DemandMatrix = traffic.DemandMatrix
	// EpisodeStat is a per-episode training record (learning curves).
	EpisodeStat = rl.EpisodeStat
	// PolicyKind selects the agent architecture.
	PolicyKind = policy.Kind
	// PPOConfig holds the PPO hyperparameters.
	PPOConfig = rl.Config
	// A2CConfig holds the A2C hyperparameters.
	A2CConfig = rl.A2CConfig
	// GNNConfig sizes the graph-network policies.
	GNNConfig = policy.GNNConfig
	// BimodalParams configures the bimodal demand generator.
	BimodalParams = traffic.BimodalParams
	// SamplerSpec describes how multi-topology training scenarios sample
	// their member environment per episode. It is JSON-serialisable and
	// carried inside checkpoints so a resumed run samples identically.
	SamplerSpec = env.SamplerSpec
	// SamplerStage is one curriculum stage of a SamplerSpec.
	SamplerStage = env.SamplerSpecStage
)

// UniformSampling samples scenario members uniformly (the default).
func UniformSampling() SamplerSpec { return SamplerSpec{Kind: "uniform"} }

// WeightedSampling samples member i proportionally to weights[i]; the
// weight count must match the scenario's (graph, sequence) pair count.
func WeightedSampling(weights ...float64) SamplerSpec {
	return SamplerSpec{Kind: "weighted", Weights: weights}
}

// SizeWeightedSampling samples members proportionally to their graph's
// node count raised to alpha (alpha 0 means 1, i.e. linear in size), so
// large topologies — which learn slowest per episode — see more episodes.
func SizeWeightedSampling(alpha float64) SamplerSpec {
	return SamplerSpec{Kind: "size", Alpha: alpha}
}

// CurriculumSampling anneals the member distribution across explicit
// stages: the first stage whose UpTo bound covers the current training
// progress is used.
func CurriculumSampling(stages ...SamplerStage) SamplerSpec {
	return SamplerSpec{Kind: "curriculum", Stages: stages}
}

// SizeCurriculumSampling builds a small-to-large curriculum over the
// scenario's graphs in the given number of stages: early training samples
// only the smallest topologies (denser reward signal per second), the
// final stage samples all of them — the annealing schedule for the
// generalisation experiments (§VIII-D).
func SizeCurriculumSampling(stages int) SamplerSpec {
	return SamplerSpec{Kind: "size-curriculum", StageCount: stages}
}

// Policy kinds.
const (
	MLPPolicy          = policy.MLPKind
	GNNPolicy          = policy.GNNKind
	GNNIterativePolicy = policy.GNNIterativeKind
)

// Topology constructors re-exported from the embedded Topology-Zoo set.
var (
	Abilene = topo.Abilene
	NSFNet  = topo.NSFNet
	B4      = topo.B4
	Geant   = topo.Geant
)

// ScenarioItem couples one topology with its demand sequences.
type ScenarioItem struct {
	Graph     *Graph
	Sequences [][]*DemandMatrix
}

// Scenario is a training or evaluation workload: one or more topologies,
// each with one or more demand sequences. The fixed-graph experiments use a
// single item; the generalisation experiments use many.
type Scenario struct {
	Items []ScenarioItem
}

// NewScenario builds a single-topology scenario.
func NewScenario(g *Graph, sequences [][]*DemandMatrix) *Scenario {
	return &Scenario{Items: []ScenarioItem{{Graph: g, Sequences: sequences}}}
}

// Add appends a topology with its sequences and returns the scenario.
func (s *Scenario) Add(g *Graph, sequences [][]*DemandMatrix) *Scenario {
	s.Items = append(s.Items, ScenarioItem{Graph: g, Sequences: sequences})
	return s
}

// Validate checks the scenario is non-empty and dimensionally consistent.
func (s *Scenario) Validate() error {
	if len(s.Items) == 0 {
		return fmt.Errorf("gddr: scenario has no items")
	}
	for i, item := range s.Items {
		if item.Graph == nil {
			return fmt.Errorf("gddr: scenario item %d has nil graph", i)
		}
		if len(item.Sequences) == 0 {
			return fmt.Errorf("gddr: scenario item %d has no sequences", i)
		}
		for j, seq := range item.Sequences {
			for k, dm := range seq {
				if dm.N != item.Graph.NumNodes() {
					return fmt.Errorf("gddr: item %d sequence %d matrix %d: size %d != %d nodes",
						i, j, k, dm.N, item.Graph.NumNodes())
				}
			}
		}
	}
	return nil
}

// envs expands the scenario into one environment per (graph, sequence).
func (s *Scenario) envs(cfg env.Config, cache *env.OptimalCache) ([]*env.Env, error) {
	var envs []*env.Env
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			e, err := env.New(item.Graph, seq, cfg, cache)
			if err != nil {
				return nil, err
			}
			envs = append(envs, e)
		}
	}
	return envs, nil
}

// AbileneScenario reproduces the paper's main workload: cyclical bimodal
// sequences on the Abilene graph (60 DMs, cycle length 10), split into
// train and test scenario pairs (the paper uses 7 train + 3 test). It is a
// convenience over the generator surface: Cyclical(Bimodal(params), cycle)
// drawn from one seeded rng.
func AbileneScenario(trainSeqs, testSeqs, seqLen, cycle int, seed int64) (train, test *Scenario, err error) {
	g := Abilene()
	rng := rand.New(rand.NewSource(seed))
	gen := Cyclical(Bimodal(traffic.DefaultBimodal()), cycle)
	trainS, err := GenerateSequences(gen, trainSeqs, g.NumNodes(), seqLen, rng)
	if err != nil {
		return nil, nil, err
	}
	testS, err := GenerateSequences(gen, testSeqs, g.NumNodes(), seqLen, rng)
	if err != nil {
		return nil, nil, err
	}
	return NewScenario(g, trainS), NewScenario(g, testS), nil
}

// ShortestPathRatio evaluates classic shortest-path routing on every
// (sequence, timestep) of the scenario (skipping the first memory steps to
// match agent evaluation) and returns the mean U_sp/U_opt ratio — the dotted
// baseline of the paper's Figures 6 and 8. Cancellation of ctx is honoured
// before every LP solve.
func ShortestPathRatio(ctx context.Context, s *Scenario, memory int, cache *OptimalCache) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if cache == nil {
		cache = NewOptimalCache()
	}
	var sum float64
	var count int
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			for t := memory; t < len(seq); t++ {
				res, err := routing.ShortestPath(item.Graph, seq[t])
				if err != nil {
					return 0, err
				}
				opt, err := cache.GetSeqContext(ctx, item.Graph, seq, t)
				if err != nil {
					return 0, err
				}
				if opt <= 1e-12 {
					continue
				}
				sum += res.MaxUtilization / opt
				count++
			}
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("gddr: no evaluable timesteps in scenario")
	}
	return sum / float64(count), nil
}

// OptimalCache memoises LP optima across training and evaluation.
type OptimalCache = env.OptimalCache

// NewOptimalCache returns an empty shared LP cache.
func NewOptimalCache() *OptimalCache { return env.NewOptimalCache() }
