package gddr

import (
	"encoding/json"
	"fmt"

	"gddr/internal/graph"
)

// Event is one topology change applied atomically by Engine.Apply: the
// runtime counterpart of the paper's generalisation mutations (§VIII-D),
// expressed as the operations a network operator actually performs — links
// failing and recovering, capacities being re-provisioned, nodes joining
// and leaving. Links are bidirectional pairs, matching the symmetric
// topologies used throughout.
//
// The interface is sealed: the event set is closed so the wire format
// (MarshalEvent/UnmarshalEvent) stays exhaustive.
type Event interface {
	// Kind returns the wire-format type tag ("link_down", "link_up",
	// "capacity_change", "node_add", "node_remove").
	Kind() string
	// apply returns the mutated topology and the consistently renumbered
	// demand history; the inputs are never modified.
	apply(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error)
}

// LinkDown removes the link between From and To (both directions). It is
// rejected if the link does not exist or if losing it would disconnect the
// network — a disconnected graph cannot route, so the engine refuses the
// event and keeps serving the old topology.
type LinkDown struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Kind implements Event.
func (LinkDown) Kind() string { return "link_down" }

func (e LinkDown) apply(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
	m, err := graph.RemoveLink(g, e.From, e.To)
	return m, hist, err
}

// LinkUp adds a bidirectional link of the given capacity between From and
// To — a failed link recovering, or a new link being provisioned.
type LinkUp struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
}

// Kind implements Event.
func (LinkUp) Kind() string { return "link_up" }

func (e LinkUp) apply(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
	m, err := graph.AddLink(g, e.From, e.To, e.Capacity)
	return m, hist, err
}

// CapacityChange sets the capacity of the link between From and To (every
// direction that exists) — an upgrade, a brown-out, or a partial failure.
type CapacityChange struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
}

// Kind implements Event.
func (CapacityChange) Kind() string { return "capacity_change" }

func (e CapacityChange) apply(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
	m, err := graph.SetLinkCapacity(g, e.From, e.To, e.Capacity)
	return m, hist, err
}

// NodeAdd attaches a new node (assigned the highest id, so existing ids are
// unchanged) to each node in AttachTo with bidirectional links of the given
// capacity. The demand history grows a zero row and column for it: a node
// that just joined has no observed demand yet.
type NodeAdd struct {
	Name     string  `json:"name,omitempty"`
	AttachTo []int   `json:"attach_to"`
	Capacity float64 `json:"capacity"`
}

// Kind implements Event.
func (NodeAdd) Kind() string { return "node_add" }

func (e NodeAdd) apply(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
	m, _, err := graph.AttachNode(g, e.Name, e.AttachTo, e.Capacity)
	if err != nil {
		return nil, nil, err
	}
	grown := make([]*DemandMatrix, len(hist))
	for i, dm := range hist {
		grown[i] = dm.WithNode()
	}
	return m, grown, nil
}

// NodeRemove deletes Node and its incident links, renumbering node ids
// above it down by one. The demand history is renumbered the same way
// (traffic to and from the node is dropped), so observations stay
// index-aligned with the mutated graph. Rejected if the removal would
// disconnect the network or shrink it below 3 nodes.
type NodeRemove struct {
	Node int `json:"node"`
}

// Kind implements Event.
func (NodeRemove) Kind() string { return "node_remove" }

func (e NodeRemove) apply(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
	m, err := graph.DeleteNode(g, e.Node)
	if err != nil {
		return nil, nil, err
	}
	shrunk := make([]*DemandMatrix, len(hist))
	for i, dm := range hist {
		shrunk[i], err = dm.WithoutNode(e.Node)
		if err != nil {
			return nil, nil, err
		}
	}
	return m, shrunk, nil
}

// eventEnvelope is the JSON wire format: a type tag plus the union of every
// event's fields. It is what `POST /topology/event` on gddr-serve accepts.
type eventEnvelope struct {
	Type     string  `json:"type"`
	From     int     `json:"from,omitempty"`
	To       int     `json:"to,omitempty"`
	Capacity float64 `json:"capacity,omitempty"`
	Name     string  `json:"name,omitempty"`
	AttachTo []int   `json:"attach_to,omitempty"`
	Node     int     `json:"node,omitempty"`
}

// MarshalEvent renders an event in the tagged JSON wire format, e.g.
// {"type":"link_down","from":2,"to":9}.
func MarshalEvent(e Event) ([]byte, error) {
	env := eventEnvelope{Type: e.Kind()}
	switch ev := e.(type) {
	case LinkDown:
		env.From, env.To = ev.From, ev.To
	case LinkUp:
		env.From, env.To, env.Capacity = ev.From, ev.To, ev.Capacity
	case CapacityChange:
		env.From, env.To, env.Capacity = ev.From, ev.To, ev.Capacity
	case NodeAdd:
		env.Name, env.AttachTo, env.Capacity = ev.Name, ev.AttachTo, ev.Capacity
	case NodeRemove:
		env.Node = ev.Node
	default:
		return nil, fmt.Errorf("gddr: cannot marshal event kind %q", e.Kind())
	}
	return json.Marshal(env)
}

// UnmarshalEvent parses the tagged JSON wire format produced by
// MarshalEvent. Unknown type tags are an error listing the known kinds.
func UnmarshalEvent(data []byte) (Event, error) {
	var env eventEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("gddr: invalid event JSON: %w", err)
	}
	switch env.Type {
	case LinkDown{}.Kind():
		return LinkDown{From: env.From, To: env.To}, nil
	case LinkUp{}.Kind():
		return LinkUp{From: env.From, To: env.To, Capacity: env.Capacity}, nil
	case CapacityChange{}.Kind():
		return CapacityChange{From: env.From, To: env.To, Capacity: env.Capacity}, nil
	case NodeAdd{}.Kind():
		return NodeAdd{Name: env.Name, AttachTo: env.AttachTo, Capacity: env.Capacity}, nil
	case NodeRemove{}.Kind():
		return NodeRemove{Node: env.Node}, nil
	default:
		return nil, fmt.Errorf("gddr: unknown event type %q (known: link_down, link_up, capacity_change, node_add, node_remove)", env.Type)
	}
}

// applyEvents threads (graph, history) through a sequence of events,
// failing on the first invalid one without partial application (the caller
// only swaps in the final result).
func applyEvents(g *Graph, hist []*DemandMatrix, events []Event) (*Graph, []*DemandMatrix, error) {
	for i, e := range events {
		if e == nil {
			return nil, nil, fmt.Errorf("gddr: event %d is nil", i)
		}
		var err error
		g, hist, err = e.apply(g, hist)
		if err != nil {
			return nil, nil, fmt.Errorf("gddr: event %d (%s): %w", i, e.Kind(), err)
		}
	}
	return g, hist, nil
}
