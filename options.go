package gddr

import (
	"runtime"
	"time"

	"gddr/internal/metrics"
)

// RouterOption configures NewRouter and NewEngine: the serving-side option
// surface, distinct from the training/experiment Option type below.
type RouterOption func(*routerConfig)

type routerConfig struct {
	workers     int
	maxBatch    int
	evalWorkers int
	batchWindow time.Duration
	history     []*DemandMatrix
	// replicas is the number of read replicas an Engine snapshot clones
	// from its serving state (default 1). Each replica is a full Router —
	// its own batcher, worker pool, and fast-path caches — sharing the
	// snapshot's demand history, so Route throughput scales across cores
	// without contending on one batcher. Bare Routers ignore it.
	replicas int
	// hist shares a demand history across routers. Only the Engine sets it
	// (one history per snapshot, shared by every replica); nil selects a
	// private per-router history.
	hist *demandHistory
	// skipProbe elides the construction-time probe forward pass. Only the
	// Engine sets it, when rebuilding a snapshot around a graph-size-
	// agnostic (GNN-family) agent that an earlier snapshot already
	// validated: the probe exists to catch shape-bound policies, and
	// skipping it keeps high-rate topology events off the forward-pass
	// budget.
	skipProbe bool
	// noCache disables the serving fast-path caches (policy-output and
	// routing-strategy). Test/benchmark only: the uncached path is the
	// baseline the cache speedup gate and the golden decision test compare
	// against.
	noCache bool
	// metrics is the registry serving instruments register in. Nil selects a
	// private per-router registry; the Engine always sets it so counters and
	// histograms stay cumulative across snapshot rebuilds.
	metrics *metrics.Registry
	// tracing attaches a per-request timing breakdown to every Decision.
	tracing bool
	// noMetrics disables instrumentation entirely. Benchmark only: the bare
	// path is the baseline the instrumentation-overhead CI gate compares
	// against.
	noMetrics bool
}

// WithRouterWorkers sets the number of serving goroutines (default
// GOMAXPROCS). One worker maximises request batching; more workers
// maximise forward-pass parallelism.
func WithRouterWorkers(n int) RouterOption {
	return func(c *routerConfig) { c.workers = n }
}

// WithMaxBatch bounds how many concurrent requests share one policy
// forward pass (default 16).
func WithMaxBatch(n int) RouterOption {
	return func(c *routerConfig) { c.maxBatch = n }
}

// WithWarmHistory seeds the router's demand history (oldest first) so the
// first decisions observe real traffic instead of a cold-start zero pad —
// e.g. the tail of the training scenario.
func WithWarmHistory(dms ...*DemandMatrix) RouterOption {
	return func(c *routerConfig) { c.history = dms }
}

// WithEvalWorkers fans the per-request routing evaluation out over n
// goroutines, one sink per task (default 1: sequential). The parallel
// merge preserves the sequential accumulation order, so decisions are
// bit-identical at any worker count. Worth enabling on large topologies,
// where per-sink propagation dominates the request cost; at Abilene scale
// the fan-out overhead outweighs the win.
func WithEvalWorkers(n int) RouterOption {
	return func(c *routerConfig) { c.evalWorkers = n }
}

// WithMetricsRegistry makes the router (or engine) register its serving
// instruments — request/batch/forward-pass counters, route-latency,
// queue-wait, and batch-size histograms — in reg instead of a private
// registry, so one registry can expose every subsystem of a process on a
// single /metrics endpoint. Instruments are registered idempotently by
// name: routers sharing a registry share counters.
func WithMetricsRegistry(reg *metrics.Registry) RouterOption {
	return func(c *routerConfig) { c.metrics = reg }
}

// WithTracing attaches a per-request RouteTrace to every Decision: the
// queue-wait, observe, forward, strategy, and evaluate timings plus which
// fast-path caches answered. Off by default; the fast path pays no timing
// cost while disabled.
func WithTracing(on bool) RouterOption {
	return func(c *routerConfig) { c.tracing = on }
}

// WithReplicas makes an Engine serve each snapshot through n read replicas
// (default 1): independent routers — each with its own request batcher,
// worker pool, and fast-path caches — cloned from the snapshot's state and
// sharing its demand history, with Route calls spread across them
// round-robin. Replicas remove the single-batcher rendezvous from the read
// path, so steady-demand throughput scales across cores; they are
// re-published atomically on every Apply or model swap, and decisions stay
// bit-identical to a single-replica engine because the policy, topology,
// and observed history are shared state. NewRouter ignores the option (a
// bare Router is exactly one replica).
func WithReplicas(n int) RouterOption {
	return func(c *routerConfig) { c.replicas = n }
}

// WithBatchWindow makes a serving worker that has picked up a request wait
// up to d for more requests to share its forward pass (default 0: serve
// immediately after draining already-queued requests). On busy cores the
// zero-window fast path degenerates to singleton batches — waiting senders
// never get scheduled between polls — so a microseconds-scale window buys
// large batching gains at bounded latency cost.
func WithBatchWindow(d time.Duration) RouterOption {
	return func(c *routerConfig) { c.batchWindow = d }
}

// resolveRouterConfig folds options over the defaults. Engine resolves the
// options once at construction and reuses the config for every topology or
// model rebuild, overriding only the carried history.
func resolveRouterConfig(opts []RouterOption) routerConfig {
	cfg := routerConfig{workers: runtime.GOMAXPROCS(0), maxBatch: 16, evalWorkers: 1}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.maxBatch < 1 {
		cfg.maxBatch = 1
	}
	if cfg.evalWorkers < 1 {
		cfg.evalWorkers = 1
	}
	if cfg.replicas < 1 {
		cfg.replicas = 1
	}
	if cfg.batchWindow < 0 {
		cfg.batchWindow = 0
	}
	return cfg
}

// This file also defines the v2 functional-option surface: a single Option type
// layered over the existing TrainConfig and ExperimentOptions structs so
// that callers compose agents and experiments instead of mutating config
// fields. The same options are accepted by NewAgent, Prewarm, and
// RunExperiment; each consumer reads the subset that concerns it.

// Progress is one progress report from a long-running operation. Total is
// zero when the total amount of work is unknown up front.
type Progress struct {
	// Stage names the phase emitting the report: "prewarm", "train",
	// "evaluate", or an experiment-defined stage such as "figure6/gnn".
	Stage string
	// Step counts completed work units — environment steps for training,
	// LP solves for prewarming, sequences for evaluation.
	Step int
	// Total is the number of work units the stage will perform, if known.
	Total int
	// Episode is set when a training episode just finished (learning-curve
	// consumers); nil otherwise.
	Episode *EpisodeStat
}

// ProgressFunc receives progress reports. Implementations must be safe for
// concurrent use when passed to Prewarm, which reports from worker
// goroutines (reports are serialised by the caller, but the function must
// not assume it runs on any particular goroutine).
type ProgressFunc func(Progress)

// settings is the merged option state. Agent construction consumes cfg and
// progress; Prewarm consumes workers and progress; RunExperiment consumes
// exp, workers, and progress. cfgOnly records options that affect agent
// construction exclusively, so RunExperiment can reject them instead of
// silently ignoring them.
type settings struct {
	cfg      TrainConfig
	exp      ExperimentOptions
	progress ProgressFunc
	workers  int
	metrics  *metrics.Registry
	cfgOnly  []string
}

// Option configures agent construction (NewAgent), cache prewarming
// (Prewarm), or a registered experiment (RunExperiment).
type Option func(*settings)

func newSettings(kind PolicyKind) *settings {
	return &settings{
		cfg: DefaultTrainConfig(kind),
		exp: DefaultExperimentOptions(),
	}
}

func (s *settings) apply(opts []Option) *settings {
	for _, opt := range opts {
		if opt != nil {
			opt(s)
		}
	}
	return s
}

// WithConfig replaces the full agent training configuration. Later options
// still apply on top, so WithConfig(cfg) composes with, say, WithSeed.
// Agent-construction only: registered experiments derive their agent
// configs from ExperimentOptions, so RunExperiment rejects this option.
func WithConfig(cfg TrainConfig) Option {
	return func(s *settings) {
		s.cfg = cfg
		s.cfgOnly = append(s.cfgOnly, "WithConfig")
	}
}

// WithExperimentOptions replaces the full experiment preset (for example
// PaperExperimentOptions()). Later options still apply on top.
func WithExperimentOptions(opts ExperimentOptions) Option {
	return func(s *settings) { s.exp = opts }
}

// WithPaperScale selects the paper's full-scale experiment settings
// (several CPU-hours per policy).
func WithPaperScale() Option {
	return func(s *settings) { s.exp = PaperExperimentOptions() }
}

// WithMemory sets the demand-history length m (paper: 5).
func WithMemory(m int) Option {
	return func(s *settings) {
		s.cfg.Memory = m
		s.exp.Memory = m
	}
}

// WithSeed sets the random seed for initialisation and traffic generation.
func WithSeed(seed int64) Option {
	return func(s *settings) {
		s.cfg.Seed = seed
		s.exp.Seed = seed
	}
}

// WithTotalSteps sets the PPO training budget in environment steps.
func WithTotalSteps(n int) Option {
	return func(s *settings) {
		s.cfg.TotalSteps = n
		s.exp.TrainSteps = n
	}
}

// WithGNNSize sets the graph-network latent width and message-passing
// steps of the GNN policies.
func WithGNNSize(hidden, msgSteps int) Option {
	return func(s *settings) {
		s.cfg.GNN.Hidden = hidden
		s.cfg.GNN.Steps = msgSteps
		s.exp.GNNHidden = hidden
		s.exp.GNNSteps = msgSteps
	}
}

// WithMLPHidden sets the hidden layer sizes of the MLP baseline policy.
// Agent-construction only; RunExperiment rejects it.
func WithMLPHidden(sizes ...int) Option {
	return func(s *settings) {
		s.cfg.MLPHidden = sizes
		s.cfgOnly = append(s.cfgOnly, "WithMLPHidden")
	}
}

// WithPPO replaces the PPO hyperparameters of the agent under
// construction. Agent-construction only; RunExperiment rejects it.
func WithPPO(cfg PPOConfig) Option {
	return func(s *settings) {
		s.cfg.PPO = cfg
		s.cfgOnly = append(s.cfgOnly, "WithPPO")
	}
}

// WithGamma sets the softmin spread γ used by the non-iterative policies.
// Agent-construction only; RunExperiment rejects it.
func WithGamma(gamma float64) Option {
	return func(s *settings) {
		s.cfg.Gamma = gamma
		s.cfgOnly = append(s.cfgOnly, "WithGamma")
	}
}

// WithCapacityAware toggles the capacity-aware warm start of the
// action-to-weight mapping (see TrainConfig.CapacityAware).
// Agent-construction only; RunExperiment rejects it.
func WithCapacityAware(on bool) Option {
	return func(s *settings) {
		s.cfg.CapacityAware = on
		s.cfgOnly = append(s.cfgOnly, "WithCapacityAware")
	}
}

// WithAlgo selects the training algorithm (PPOAlgo or A2CAlgo).
func WithAlgo(algo AlgoKind) Option {
	return func(s *settings) {
		s.cfg.Algo = algo
		s.exp.Algo = algo
	}
}

// WithRolloutWorkers sets the number of parallel rollout-collection
// workers. Each worker steps its own environment clone on an independent
// deterministic stream and the update pass merges worker slices in fixed
// worker order, so results are bit-identical for a given (seed, workers)
// pair — but differ across worker counts.
func WithRolloutWorkers(n int) Option {
	return func(s *settings) {
		s.cfg.Workers = n
		s.exp.RolloutWorkers = n
	}
}

// WithCheckpointEvery writes a training checkpoint every n environment
// steps (rounded up to update boundaries). Agents write to the path set
// with WithCheckpointPath; experiments derive per-stage paths from the
// directory set with WithCheckpointDir.
func WithCheckpointEvery(n int) Option {
	return func(s *settings) {
		s.cfg.CheckpointEvery = n
		s.exp.CheckpointEvery = n
	}
}

// WithCheckpointPath sets the file periodic checkpoints are written to
// (atomically). Agent-construction only; RunExperiment derives paths from
// WithCheckpointDir instead.
func WithCheckpointPath(path string) Option {
	return func(s *settings) {
		s.cfg.CheckpointPath = path
		s.cfgOnly = append(s.cfgOnly, "WithCheckpointPath")
	}
}

// WithCheckpointDir makes registered experiments checkpoint every trained
// policy under the directory (one file per training stage), so an
// interrupted experiment resumes instead of restarting. NewAgent ignores
// it; use WithCheckpointPath there.
func WithCheckpointDir(dir string) Option {
	return func(s *settings) { s.exp.CheckpointDir = dir }
}

// WithSampler selects how multi-topology training scenarios sample their
// member environment per episode — e.g. UniformSampling(),
// SizeWeightedSampling(alpha), or SizeCurriculumSampling(stages) to anneal
// from small to large graphs.
func WithSampler(spec SamplerSpec) Option {
	return func(s *settings) {
		s.cfg.Sampler = spec
		s.exp.Sampler = spec
	}
}

// WithSequences sets the number of training and held-out test demand
// sequences an experiment generates (paper: 7 and 3).
func WithSequences(train, test int) Option {
	return func(s *settings) {
		s.exp.TrainSeqs = train
		s.exp.TestSeqs = test
	}
}

// WithSequenceShape sets the length and cycle period of the cyclical
// demand sequences (paper: 60 and 10).
func WithSequenceShape(seqLen, cycle int) Option {
	return func(s *settings) {
		s.exp.SeqLen = seqLen
		s.exp.Cycle = cycle
	}
}

// WithTopology selects the embedded topology an experiment runs on, for
// experiments that are not tied to a specific graph (e.g. "baselines").
func WithTopology(name string) Option {
	return func(s *settings) { s.exp.Topology = name }
}

// WithProgress installs a progress callback invoked during prewarming,
// training, and evaluation.
func WithProgress(fn ProgressFunc) Option {
	return func(s *settings) { s.progress = fn }
}

// WithWorkers bounds the concurrency of operations that fan out over a
// worker pool (Prewarm). Zero or negative selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithMetrics installs a metrics registry on the operation: NewAgent
// records per-update training metrics (steps, episode reward, policy and
// value loss, update and checkpoint-write latency) into it during Train,
// and Prewarm instruments the LP cache (solve latency, hit/miss counters)
// with it. Serving uses the RouterOption WithMetricsRegistry instead.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *settings) { s.metrics = reg }
}
