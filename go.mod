module gddr

go 1.24
