package gddr

import (
	"fmt"
	"math/rand"

	"gddr/internal/graph"
	"gddr/internal/stats"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

// ExperimentOptions scales the paper's experiments. Paper-scale values are
// noted per field; the defaults are laptop-scale (DESIGN.md substitution
// #5) and preserve the qualitative shape of the results.
type ExperimentOptions struct {
	Seed       int64
	TrainSteps int // paper: 500000
	TrainSeqs  int // paper: 7
	TestSeqs   int // paper: 3
	SeqLen     int // paper: 60
	Cycle      int // paper: 10
	Memory     int // paper: 5
	GNNHidden  int
	GNNSteps   int
}

// DefaultExperimentOptions returns the scaled-down defaults.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:       7,
		TrainSteps: 6000,
		TrainSeqs:  3,
		TestSeqs:   2,
		SeqLen:     30,
		Cycle:      5,
		Memory:     3,
		GNNHidden:  16,
		GNNSteps:   2,
	}
}

// PaperExperimentOptions returns the paper's full-scale settings (several
// CPU-hours per policy).
func PaperExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:       7,
		TrainSteps: 500000,
		TrainSeqs:  7,
		TestSeqs:   3,
		SeqLen:     60,
		Cycle:      10,
		Memory:     5,
		GNNHidden:  24,
		GNNSteps:   3,
	}
}

func (o ExperimentOptions) trainConfig(kind PolicyKind) TrainConfig {
	cfg := DefaultTrainConfig(kind)
	cfg.Memory = o.Memory
	cfg.TotalSteps = o.TrainSteps
	cfg.Seed = o.Seed
	cfg.GNN.Hidden = o.GNNHidden
	cfg.GNN.Steps = o.GNNSteps
	// Short trainings need more, smaller PPO updates than the PPO2
	// defaults, and a slightly hotter learning rate.
	if o.TrainSteps < 100000 {
		cfg.PPO.LearningRate = 1e-3
	}
	if cfg.PPO.RolloutSteps > o.TrainSteps {
		cfg.PPO.RolloutSteps = o.TrainSteps
	}
	return cfg
}

// Figure6Result holds the fixed-graph comparison of the paper's Figure 6:
// mean U_agent/U_opt on held-out Abilene sequences per policy, plus the
// shortest-path baseline (the dotted line).
type Figure6Result struct {
	MLP          float64
	GNN          float64
	GNNIterative float64
	ShortestPath float64
}

// Figure6 trains the MLP, GNN, and iterative-GNN policies on Abilene and
// evaluates them on held-out sequences, reproducing the paper's Figure 6.
func Figure6(opts ExperimentOptions) (*Figure6Result, error) {
	train, test, err := AbileneScenario(opts.TrainSeqs, opts.TestSeqs, opts.SeqLen, opts.Cycle, opts.Seed)
	if err != nil {
		return nil, err
	}
	cache := NewOptimalCache()
	if _, err := Prewarm(train, cache, 0); err != nil {
		return nil, err
	}
	if _, err := Prewarm(test, cache, 0); err != nil {
		return nil, err
	}
	res := &Figure6Result{}
	res.ShortestPath, err = ShortestPathRatio(test, opts.Memory, cache)
	if err != nil {
		return nil, err
	}
	for _, kind := range []PolicyKind{MLPPolicy, GNNPolicy, GNNIterativePolicy} {
		agent, err := NewAgent(opts.trainConfig(kind), train)
		if err != nil {
			return nil, err
		}
		if _, err := agent.Train(train, cache); err != nil {
			return nil, err
		}
		ratio, err := agent.Evaluate(test, cache)
		if err != nil {
			return nil, err
		}
		switch kind {
		case MLPPolicy:
			res.MLP = ratio
		case GNNPolicy:
			res.GNN = ratio
		case GNNIterativePolicy:
			res.GNNIterative = ratio
		}
	}
	return res, nil
}

// Figure7Result holds learning curves (total reward per episode against
// cumulative environment timesteps) for the MLP and GNN agents.
type Figure7Result struct {
	MLP []EpisodeStat
	GNN []EpisodeStat
}

// Figure7 reproduces the paper's Figure 7 learning-curve comparison.
func Figure7(opts ExperimentOptions) (*Figure7Result, error) {
	train, _, err := AbileneScenario(opts.TrainSeqs, opts.TestSeqs, opts.SeqLen, opts.Cycle, opts.Seed)
	if err != nil {
		return nil, err
	}
	cache := NewOptimalCache()
	if _, err := Prewarm(train, cache, 0); err != nil {
		return nil, err
	}
	res := &Figure7Result{}
	for _, kind := range []PolicyKind{MLPPolicy, GNNPolicy} {
		agent, err := NewAgent(opts.trainConfig(kind), train)
		if err != nil {
			return nil, err
		}
		stats, err := agent.Train(train, cache)
		if err != nil {
			return nil, err
		}
		switch kind {
		case MLPPolicy:
			res.MLP = stats
		case GNNPolicy:
			res.GNN = stats
		}
	}
	return res, nil
}

// Figure8Result holds the generalisation experiment of the paper's Figure
// 8: mean ratios for the GNN and iterative-GNN policies trained and tested
// on (a) Abilene with small random modifications and (b) entirely different
// graphs, plus the shortest-path baselines.
type Figure8Result struct {
	ModificationsGNN     float64
	ModificationsGNNIter float64
	ModificationsSP      float64
	DifferentGNN         float64
	DifferentGNNIter     float64
	DifferentSP          float64
}

// Figure8 reproduces the paper's Figure 8. Only GNN policies participate:
// as the paper notes, the MLP cannot be applied across topologies at all.
func Figure8(opts ExperimentOptions) (*Figure8Result, error) {
	modTrain, modTest, err := modifiedAbileneScenarios(opts)
	if err != nil {
		return nil, err
	}
	diffTrain, diffTest, err := differentGraphScenarios(opts)
	if err != nil {
		return nil, err
	}
	cache := NewOptimalCache()
	for _, s := range []*Scenario{modTrain, modTest, diffTrain, diffTest} {
		if _, err := Prewarm(s, cache, 0); err != nil {
			return nil, err
		}
	}
	res := &Figure8Result{}
	res.ModificationsSP, err = ShortestPathRatio(modTest, opts.Memory, cache)
	if err != nil {
		return nil, err
	}
	res.DifferentSP, err = ShortestPathRatio(diffTest, opts.Memory, cache)
	if err != nil {
		return nil, err
	}
	run := func(kind PolicyKind, train, test *Scenario) (float64, error) {
		agent, err := NewAgent(opts.trainConfig(kind), train)
		if err != nil {
			return 0, err
		}
		if _, err := agent.Train(train, cache); err != nil {
			return 0, err
		}
		return agent.Evaluate(test, cache)
	}
	if res.ModificationsGNN, err = run(GNNPolicy, modTrain, modTest); err != nil {
		return nil, err
	}
	if res.ModificationsGNNIter, err = run(GNNIterativePolicy, modTrain, modTest); err != nil {
		return nil, err
	}
	if res.DifferentGNN, err = run(GNNPolicy, diffTrain, diffTest); err != nil {
		return nil, err
	}
	if res.DifferentGNNIter, err = run(GNNIterativePolicy, diffTrain, diffTest); err != nil {
		return nil, err
	}
	return res, nil
}

// modifiedAbileneScenarios builds train/test scenarios over Abilene plus
// randomly modified variants (±1–2 edges/nodes), per §VIII-D.
func modifiedAbileneScenarios(opts ExperimentOptions) (train, test *Scenario, err error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	base := topo.Abilene()
	variants := []*graph.Graph{base}
	for i := 0; i < 3; i++ {
		m, err := graph.RandomMutation(base, 1+rng.Intn(2), rng)
		if err != nil {
			return nil, nil, err
		}
		variants = append(variants, m)
	}
	params := traffic.DefaultBimodal()
	train = &Scenario{}
	test = &Scenario{}
	for i, g := range variants {
		trainS, err := traffic.Sequences(maxInt(1, opts.TrainSeqs/2), g.NumNodes(), opts.SeqLen, opts.Cycle, params, rng)
		if err != nil {
			return nil, nil, err
		}
		train.Add(g, trainS)
		// Test on the later variants only, so some test topologies were
		// never trained on.
		if i >= len(variants)/2 {
			testS, err := traffic.Sequences(1, g.NumNodes(), opts.SeqLen, opts.Cycle, params, rng)
			if err != nil {
				return nil, nil, err
			}
			test.Add(g, testS)
		}
	}
	return train, test, nil
}

// differentGraphScenarios builds train/test scenarios over entirely
// different topologies between half and double Abilene's size.
func differentGraphScenarios(opts ExperimentOptions) (train, test *Scenario, err error) {
	rng := rand.New(rand.NewSource(opts.Seed + 100))
	graphs, err := topo.EvaluationSet(opts.Seed + 200)
	if err != nil {
		return nil, nil, err
	}
	params := traffic.DefaultBimodal()
	train = &Scenario{}
	test = &Scenario{}
	for i, g := range graphs {
		seqs, err := traffic.Sequences(1, g.NumNodes(), opts.SeqLen, opts.Cycle, params, rng)
		if err != nil {
			return nil, nil, err
		}
		// Alternate graphs between train and test so test topologies are
		// unseen, as in the paper.
		if i%2 == 0 {
			train.Add(g, seqs)
		} else {
			test.Add(g, seqs)
		}
	}
	if len(train.Items) == 0 || len(test.Items) == 0 {
		return nil, nil, fmt.Errorf("gddr: evaluation set too small to split")
	}
	return train, test, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CurvePoint is one smoothed learning-curve point with a confidence band.
type CurvePoint = stats.CurvePoint

// SmoothLearningCurve buckets per-episode rewards into windowsPerRun equal
// timestep windows and returns mean reward with a 95% confidence band — the
// presentation used by the paper's Figure 7.
func SmoothLearningCurve(eps []EpisodeStat, windowsPerRun int) ([]CurvePoint, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("gddr: empty learning curve")
	}
	if windowsPerRun < 1 {
		return nil, fmt.Errorf("gddr: windowsPerRun must be >= 1, got %d", windowsPerRun)
	}
	xs := make([]float64, len(eps))
	ys := make([]float64, len(eps))
	maxT := 0.0
	for i, e := range eps {
		xs[i] = float64(e.Timestep)
		ys[i] = e.TotalReward
		if xs[i] > maxT {
			maxT = xs[i]
		}
	}
	// Inflate slightly so the final timestep falls inside the last window
	// instead of opening a new one at the boundary.
	window := maxT / float64(windowsPerRun) * (1 + 1e-9)
	if window <= 0 {
		window = 1
	}
	return stats.SmoothCurve(xs, ys, window)
}
