package gddr

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"gddr/internal/graph"
	"gddr/internal/routing"
	"gddr/internal/stats"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

// ExperimentOptions scales the paper's experiments. Paper-scale values are
// noted per field; the defaults are laptop-scale (DESIGN.md substitution
// #5) and preserve the qualitative shape of the results. Callers normally
// set these through functional options (WithSeed, WithTotalSteps, ...)
// rather than mutating fields.
type ExperimentOptions struct {
	Seed       int64 `json:"seed"`
	TrainSteps int   `json:"train_steps"` // paper: 500000
	TrainSeqs  int   `json:"train_seqs"`  // paper: 7
	TestSeqs   int   `json:"test_seqs"`   // paper: 3
	SeqLen     int   `json:"seq_len"`     // paper: 60
	Cycle      int   `json:"cycle"`       // paper: 10
	Memory     int   `json:"memory"`      // paper: 5
	GNNHidden  int   `json:"gnn_hidden"`
	GNNSteps   int   `json:"gnn_steps"`
	// Topology names the embedded graph for experiments that are not bound
	// to a specific one (empty means "abilene"); the figure experiments
	// follow the paper and ignore it.
	Topology string `json:"topology,omitempty"`
	// Algo selects the training algorithm (default PPO).
	Algo AlgoKind `json:"algo,omitempty"`
	// RolloutWorkers is the parallel rollout-collection worker count per
	// trained policy (default 1; part of the determinism contract).
	RolloutWorkers int `json:"rollout_workers,omitempty"`
	// CheckpointDir, when set, makes every training stage write periodic
	// checkpoints to <dir>/<stage>.ckpt.json so an interrupted experiment
	// can resume its trained policies.
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	// CheckpointEvery is the checkpoint interval in environment steps
	// (default TrainSteps/4 when CheckpointDir is set).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Sampler selects multi-topology episode sampling for the
	// generalisation experiments (zero value: uniform).
	Sampler SamplerSpec `json:"sampler,omitempty"`
}

// DefaultExperimentOptions returns the scaled-down defaults.
func DefaultExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:       7,
		TrainSteps: 6000,
		TrainSeqs:  3,
		TestSeqs:   2,
		SeqLen:     30,
		Cycle:      5,
		Memory:     3,
		GNNHidden:  16,
		GNNSteps:   2,
		Topology:   "abilene",
	}
}

// PaperExperimentOptions returns the paper's full-scale settings (several
// CPU-hours per policy).
func PaperExperimentOptions() ExperimentOptions {
	return ExperimentOptions{
		Seed:       7,
		TrainSteps: 500000,
		TrainSeqs:  7,
		TestSeqs:   3,
		SeqLen:     60,
		Cycle:      10,
		Memory:     5,
		GNNHidden:  24,
		GNNSteps:   3,
		Topology:   "abilene",
	}
}

func (o ExperimentOptions) trainConfig(kind PolicyKind) TrainConfig {
	cfg := DefaultTrainConfig(kind)
	cfg.Memory = o.Memory
	cfg.TotalSteps = o.TrainSteps
	cfg.Seed = o.Seed
	cfg.GNN.Hidden = o.GNNHidden
	cfg.GNN.Steps = o.GNNSteps
	if o.Algo != "" {
		cfg.Algo = o.Algo
	}
	if o.RolloutWorkers > 0 {
		cfg.Workers = o.RolloutWorkers
	}
	cfg.Sampler = o.Sampler
	// Short trainings need more, smaller PPO updates than the PPO2
	// defaults, and a slightly hotter learning rate.
	if o.TrainSteps < 100000 {
		cfg.PPO.LearningRate = 1e-3
	}
	if cfg.PPO.RolloutSteps > o.TrainSteps {
		cfg.PPO.RolloutSteps = o.TrainSteps
	}
	return cfg
}

// topology resolves the configured topology name.
func (o ExperimentOptions) topology() (*Graph, error) {
	name := o.Topology
	if name == "" {
		name = "abilene"
	}
	return topo.Named(name)
}

func init() {
	mustRegisterExperiment(Experiment{
		Name:        "figure6",
		Description: "fixed-graph policy comparison on Abilene (paper Figure 6)",
		Run:         runFigure6,
	})
	mustRegisterExperiment(Experiment{
		Name:        "figure7",
		Description: "MLP vs GNN learning curves on Abilene (paper Figure 7)",
		Run:         runFigure7,
	})
	mustRegisterExperiment(Experiment{
		Name:        "figure8",
		Description: "generalisation to modified and unseen topologies (paper Figure 8)",
		Run:         runFigure8,
	})
	mustRegisterExperiment(Experiment{
		Name:        "baselines",
		Description: "classic routing baselines vs the LP optimum (no learning)",
		Run:         runBaselines,
	})
}

// stageCheckpointPath maps a progress-stage name to its checkpoint file
// under the experiment's checkpoint directory.
func stageCheckpointPath(dir, stage string) string {
	return filepath.Join(dir, strings.ReplaceAll(stage, "/", "-")+".ckpt.json")
}

// stageAgent builds the agent for one experiment training stage. When the
// experiment carries a checkpoint directory, the stage writes periodic
// checkpoints to <dir>/<stage>.ckpt.json and resumes from an existing one;
// the returned path is empty when checkpointing is off.
func stageAgent(kind PolicyKind, train *Scenario, opts ExperimentOptions, progress ProgressFunc, stage string) (*Agent, string, error) {
	cfg := opts.trainConfig(kind)
	if opts.CheckpointDir == "" {
		agent, err := NewAgent(kind, train, WithConfig(cfg), WithProgress(stagedProgress(progress, stage)))
		return agent, "", err
	}
	if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
		return nil, "", err
	}
	path := stageCheckpointPath(opts.CheckpointDir, stage)
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = opts.CheckpointEvery
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = max(1, cfg.TotalSteps/4)
	}
	if cp, err := LoadCheckpointFile(path); err == nil {
		// A stage checkpoint only resumes a run of the *same* experiment
		// configuration; silently adopting the checkpointed config would
		// attribute old results to the new options. Mismatches (changed
		// steps, seed, algorithm, workers, sizes) must be explicit.
		if err := checkpointConfigMatches(cp.Config, cfg); err != nil {
			return nil, "", fmt.Errorf("gddr: checkpoint %s was written by a different experiment configuration (%w); delete it or point WithCheckpointDir elsewhere", path, err)
		}
		// Checkpoint plumbing follows the *current* options (the config
		// match above ignores it): periodic checkpoints must land in the
		// current directory, not wherever the original run wrote them.
		agent, err := ResumeAgent(cp, train,
			WithProgress(stagedProgress(progress, stage)),
			WithCheckpointPath(path),
			WithCheckpointEvery(cfg.CheckpointEvery))
		if err != nil {
			return nil, "", fmt.Errorf("gddr: resume %s: %w", path, err)
		}
		return agent, path, nil
	} else if !os.IsNotExist(err) {
		return nil, "", fmt.Errorf("gddr: read %s: %w", path, err)
	}
	agent, err := NewAgent(kind, train, WithConfig(cfg), WithProgress(stagedProgress(progress, stage)))
	return agent, path, err
}

// checkpointConfigMatches reports whether a stage checkpoint's config and
// the config derived from the current experiment options describe the same
// run, comparing every field that shapes the result (architecture, seed,
// budget, algorithm, hyperparameters, workers, sampler).
func checkpointConfigMatches(got, want TrainConfig) error {
	// Checkpoint plumbing itself may differ (the interval is re-derived).
	got.CheckpointEvery, want.CheckpointEvery = 0, 0
	got.CheckpointPath, want.CheckpointPath = "", ""
	gj, err := json.Marshal(got)
	if err != nil {
		return err
	}
	wj, err := json.Marshal(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(gj, wj) {
		return fmt.Errorf("checkpoint config %s != current %s", gj, wj)
	}
	return nil
}

// stageTrain trains a stage agent and writes its final checkpoint when the
// experiment checkpoints.
func stageTrain(ctx context.Context, agent *Agent, train *Scenario, cache *OptimalCache, ckptPath string) ([]EpisodeStat, error) {
	curve, err := agent.Train(ctx, train, cache)
	if err != nil {
		return nil, err
	}
	if ckptPath != "" {
		if err := agent.WriteCheckpointFile(ckptPath); err != nil {
			return nil, err
		}
	}
	return curve, nil
}

// trainAndEvaluate builds, trains, and evaluates one policy, reporting
// progress under the given stage name; it returns the held-out ratio and
// the learning curve.
func trainAndEvaluate(ctx context.Context, kind PolicyKind, train, test *Scenario, opts ExperimentOptions, cache *OptimalCache, progress ProgressFunc, stage string) (float64, []EpisodeStat, error) {
	agent, ckptPath, err := stageAgent(kind, train, opts, progress, stage)
	if err != nil {
		return 0, nil, err
	}
	curve, err := stageTrain(ctx, agent, train, cache, ckptPath)
	if err != nil {
		return 0, nil, err
	}
	ratio, err := agent.Evaluate(ctx, test, cache)
	if err != nil {
		return 0, nil, err
	}
	return ratio, curve, nil
}

// runFigure6 trains the MLP, GNN, and iterative-GNN policies on Abilene
// and evaluates them on held-out sequences, reproducing the paper's
// Figure 6 (mean U_agent/U_opt per policy plus the shortest-path dotted
// line).
func runFigure6(ctx context.Context, opts ExperimentOptions, progress ProgressFunc) (*Report, error) {
	train, test, err := AbileneScenario(opts.TrainSeqs, opts.TestSeqs, opts.SeqLen, opts.Cycle, opts.Seed)
	if err != nil {
		return nil, err
	}
	cache := NewOptimalCache()
	for _, s := range []*Scenario{train, test} {
		if _, err := Prewarm(ctx, s, cache, WithProgress(stagedProgress(progress, "figure6"))); err != nil {
			return nil, err
		}
	}
	metrics := make(map[string]float64)
	metrics["shortest_path_ratio"], err = ShortestPathRatio(ctx, test, opts.Memory, cache)
	if err != nil {
		return nil, err
	}
	for _, p := range []struct {
		kind   PolicyKind
		metric string
	}{
		{MLPPolicy, "mlp_ratio"},
		{GNNPolicy, "gnn_ratio"},
		{GNNIterativePolicy, "gnn_iterative_ratio"},
	} {
		ratio, _, err := trainAndEvaluate(ctx, p.kind, train, test, opts, cache, progress, "figure6/"+p.kind.String())
		if err != nil {
			return nil, err
		}
		metrics[p.metric] = ratio
	}
	return &Report{Metrics: metrics}, nil
}

// runFigure7 reproduces the paper's Figure 7 learning-curve comparison:
// total reward per episode against cumulative timesteps for the MLP and
// GNN policies.
func runFigure7(ctx context.Context, opts ExperimentOptions, progress ProgressFunc) (*Report, error) {
	train, _, err := AbileneScenario(opts.TrainSeqs, opts.TestSeqs, opts.SeqLen, opts.Cycle, opts.Seed)
	if err != nil {
		return nil, err
	}
	cache := NewOptimalCache()
	if _, err := Prewarm(ctx, train, cache, WithProgress(stagedProgress(progress, "figure7"))); err != nil {
		return nil, err
	}
	metrics := make(map[string]float64)
	curves := make(map[string][]EpisodeStat)
	for _, kind := range []PolicyKind{MLPPolicy, GNNPolicy} {
		name := kind.String()
		agent, ckptPath, err := stageAgent(kind, train, opts, progress, "figure7/"+name)
		if err != nil {
			return nil, err
		}
		curve, err := stageTrain(ctx, agent, train, cache, ckptPath)
		if err != nil {
			return nil, err
		}
		curves[name] = curve
		metrics[name+"_episodes"] = float64(len(curve))
		if len(curve) > 0 {
			metrics[name+"_final_reward"] = curve[len(curve)-1].TotalReward
		}
	}
	return &Report{Metrics: metrics, Curves: curves}, nil
}

// runFigure8 reproduces the paper's Figure 8 generalisation experiment.
// Only GNN policies participate: as the paper notes, the MLP cannot be
// applied across topologies at all.
func runFigure8(ctx context.Context, opts ExperimentOptions, progress ProgressFunc) (*Report, error) {
	modTrain, modTest, err := modifiedAbileneScenarios(opts)
	if err != nil {
		return nil, err
	}
	diffTrain, diffTest, err := differentGraphScenarios(opts)
	if err != nil {
		return nil, err
	}
	cache := NewOptimalCache()
	for _, s := range []*Scenario{modTrain, modTest, diffTrain, diffTest} {
		if _, err := Prewarm(ctx, s, cache, WithProgress(stagedProgress(progress, "figure8"))); err != nil {
			return nil, err
		}
	}
	metrics := make(map[string]float64)
	metrics["mod_shortest_path_ratio"], err = ShortestPathRatio(ctx, modTest, opts.Memory, cache)
	if err != nil {
		return nil, err
	}
	metrics["diff_shortest_path_ratio"], err = ShortestPathRatio(ctx, diffTest, opts.Memory, cache)
	if err != nil {
		return nil, err
	}
	for _, run := range []struct {
		kind        PolicyKind
		train, test *Scenario
		metric      string
		stage       string
	}{
		{GNNPolicy, modTrain, modTest, "mod_gnn_ratio", "figure8/modifications/gnn"},
		{GNNIterativePolicy, modTrain, modTest, "mod_gnn_iterative_ratio", "figure8/modifications/gnn-iterative"},
		{GNNPolicy, diffTrain, diffTest, "diff_gnn_ratio", "figure8/different/gnn"},
		{GNNIterativePolicy, diffTrain, diffTest, "diff_gnn_iterative_ratio", "figure8/different/gnn-iterative"},
	} {
		ratio, _, err := trainAndEvaluate(ctx, run.kind, run.train, run.test, opts, cache, progress, run.stage)
		if err != nil {
			return nil, err
		}
		metrics[run.metric] = ratio
	}
	return &Report{Metrics: metrics}, nil
}

// runBaselines evaluates the classic non-learning routing strategies —
// shortest path, inverse-capacity ECMP, and unit-weight softmin — against
// the LP optimum on fresh demand sequences over the configured topology.
// It is cheap (no training) and gives the context the learned ratios are
// judged against.
func runBaselines(ctx context.Context, opts ExperimentOptions, progress ProgressFunc) (*Report, error) {
	g, err := opts.topology()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	seqs, err := traffic.Sequences(max(1, opts.TestSeqs), g.NumNodes(), opts.SeqLen, opts.Cycle, traffic.DefaultBimodal(), rng)
	if err != nil {
		return nil, err
	}
	scenario := NewScenario(g, seqs)
	cache := NewOptimalCache()
	if _, err := Prewarm(ctx, scenario, cache, WithProgress(stagedProgress(progress, "baselines"))); err != nil {
		return nil, err
	}
	sp, err := ShortestPathRatio(ctx, scenario, opts.Memory, cache)
	if err != nil {
		return nil, err
	}
	var ecmpSum, softminSum float64
	var count int
	unit := g.UnitWeights()
	for _, seq := range seqs {
		for t := opts.Memory; t < len(seq); t++ {
			opt, err := cache.GetSeqContext(ctx, g, seq, t)
			if err != nil {
				return nil, err
			}
			if opt <= 1e-12 {
				continue
			}
			ecmp, err := routing.InverseCapacityECMP(g, seq[t])
			if err != nil {
				return nil, err
			}
			soft, err := routing.EvaluateWeights(g, seq[t], unit, routing.DefaultGamma)
			if err != nil {
				return nil, err
			}
			ecmpSum += ecmp.MaxUtilization / opt
			softminSum += soft.MaxUtilization / opt
			count++
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("gddr: baselines produced no evaluable timesteps")
	}
	return &Report{Metrics: map[string]float64{
		"shortest_path_ratio":         sp,
		"inverse_capacity_ecmp_ratio": ecmpSum / float64(count),
		"unit_softmin_ratio":          softminSum / float64(count),
	}}, nil
}

// modifiedAbileneScenarios builds train/test scenarios over Abilene plus
// randomly modified variants (±1–2 edges/nodes), per §VIII-D.
func modifiedAbileneScenarios(opts ExperimentOptions) (train, test *Scenario, err error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	base := topo.Abilene()
	variants := []*graph.Graph{base}
	for i := 0; i < 3; i++ {
		m, err := graph.RandomMutation(base, 1+rng.Intn(2), rng)
		if err != nil {
			return nil, nil, err
		}
		variants = append(variants, m)
	}
	params := traffic.DefaultBimodal()
	train = &Scenario{}
	test = &Scenario{}
	for i, g := range variants {
		trainS, err := traffic.Sequences(max(1, opts.TrainSeqs/2), g.NumNodes(), opts.SeqLen, opts.Cycle, params, rng)
		if err != nil {
			return nil, nil, err
		}
		train.Add(g, trainS)
		// Test on the later variants only, so some test topologies were
		// never trained on.
		if i >= len(variants)/2 {
			testS, err := traffic.Sequences(1, g.NumNodes(), opts.SeqLen, opts.Cycle, params, rng)
			if err != nil {
				return nil, nil, err
			}
			test.Add(g, testS)
		}
	}
	return train, test, nil
}

// differentGraphScenarios builds train/test scenarios over entirely
// different topologies between half and double Abilene's size.
func differentGraphScenarios(opts ExperimentOptions) (train, test *Scenario, err error) {
	rng := rand.New(rand.NewSource(opts.Seed + 100))
	graphs, err := topo.EvaluationSet(opts.Seed + 200)
	if err != nil {
		return nil, nil, err
	}
	params := traffic.DefaultBimodal()
	train = &Scenario{}
	test = &Scenario{}
	for i, g := range graphs {
		seqs, err := traffic.Sequences(1, g.NumNodes(), opts.SeqLen, opts.Cycle, params, rng)
		if err != nil {
			return nil, nil, err
		}
		// Alternate graphs between train and test so test topologies are
		// unseen, as in the paper.
		if i%2 == 0 {
			train.Add(g, seqs)
		} else {
			test.Add(g, seqs)
		}
	}
	if len(train.Items) == 0 || len(test.Items) == 0 {
		return nil, nil, fmt.Errorf("gddr: evaluation set too small to split")
	}
	return train, test, nil
}

// CurvePoint is one smoothed learning-curve point with a confidence band.
type CurvePoint = stats.CurvePoint

// SmoothLearningCurve buckets per-episode rewards into windowsPerRun equal
// timestep windows and returns mean reward with a 95% confidence band — the
// presentation used by the paper's Figure 7.
func SmoothLearningCurve(eps []EpisodeStat, windowsPerRun int) ([]CurvePoint, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("gddr: empty learning curve")
	}
	if windowsPerRun < 1 {
		return nil, fmt.Errorf("gddr: windowsPerRun must be >= 1, got %d", windowsPerRun)
	}
	xs := make([]float64, len(eps))
	ys := make([]float64, len(eps))
	maxT := 0.0
	for i, e := range eps {
		xs[i] = float64(e.Timestep)
		ys[i] = e.TotalReward
		if xs[i] > maxT {
			maxT = xs[i]
		}
	}
	// Inflate slightly so the final timestep falls inside the last window
	// instead of opening a new one at the boundary.
	window := maxT / float64(windowsPerRun) * (1 + 1e-9)
	if window <= 0 {
		window = 1
	}
	return stats.SmoothCurve(xs, ys, window)
}
