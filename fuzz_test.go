package gddr

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzUnmarshalEvent fuzzes the topology-event wire surface that
// POST /topology/event feeds untrusted bytes into. Invariants: the parser
// never panics, an accepted event has a kind the marshaller knows, and the
// Marshal/Unmarshal pair is a fixed point — re-encoding an accepted event
// and parsing it again must reproduce the same wire bytes.
func FuzzUnmarshalEvent(f *testing.F) {
	seeds := []string{
		`{"type":"link_down","from":2,"to":9}`,
		`{"type":"link_up","from":0,"to":1,"capacity":9920}`,
		`{"type":"capacity_change","from":3,"to":4,"capacity":0.5}`,
		`{"type":"node_add","name":"edge-1","attach_to":[0,2],"capacity":100}`,
		`{"type":"node_remove","node":7}`,
		`{"type":"unknown_kind"}`,
		`{"type":"link_down","from":-1,"to":1e999}`,
		`not json at all`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalEvent(data)
		if err != nil {
			return
		}
		wire, err := MarshalEvent(e)
		if err != nil {
			t.Fatalf("accepted event %#v does not marshal: %v", e, err)
		}
		e2, err := UnmarshalEvent(wire)
		if err != nil {
			t.Fatalf("marshalled form %s of accepted event does not parse: %v", wire, err)
		}
		wire2, err := MarshalEvent(e2)
		if err != nil {
			t.Fatalf("round-tripped event %#v does not marshal: %v", e2, err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("event wire form is not a fixed point: %s != %s", wire, wire2)
		}
	})
}

// FuzzParseFleetFile fuzzes the fleet-config surface behind -fleet and the
// POST /tenants admin endpoint. Invariants: the parser never panics, and an
// accepted file is fully resolved — Default names a configured tenant and
// every tenant config (re-)validates.
func FuzzParseFleetFile(f *testing.F) {
	seeds := []string{
		// The CI smoke-test fleet.
		`{"default":"prod","tenants":{"prod":{"topology":"abilene","replicas":2},"nsf":{"topology":"nsfnet"},"b4":{"topology":"b4"}}}`,
		`{"tenants":{"default":{"topology":"abilene"}}}`,
		`{"tenants":{"solo":{"topology":"geant","rate_limit":500,"burst":50}}}`,
		`{"default":"ghost","tenants":{"prod":{"topology":"abilene"}}}`,
		`{"tenants":{}}`,
		`{"tenants":{"bad id!":{"topology":"abilene"}}}`,
		`{"unknown_field":1,"tenants":{"t":{"topology":"abilene"}}}`,
		`[]`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := ParseFleetFile(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(file.Tenants) == 0 {
			t.Fatal("accepted fleet file has no tenants")
		}
		if _, ok := file.Tenants[file.Default]; !ok {
			t.Fatalf("accepted fleet file default %q names no configured tenant", file.Default)
		}
		for id, cfg := range file.Tenants {
			if strings.TrimSpace(id) == "" {
				t.Fatalf("accepted fleet file has blank tenant id %q", id)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("accepted tenant %q fails validation: %v", id, err)
			}
		}
	})
}
