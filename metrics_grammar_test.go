package gddr

import (
	"context"
	"fmt"
	"testing"

	"gddr/internal/analysis"
	"gddr/internal/metrics"
)

// TestMetricNameGrammar is the runtime counterpart of the gddr-lint
// metricnames analyzer: the static check covers every literal registration,
// this test walks every name actually registered by the Router, Engine,
// training, and LP-cache registries — dynamically built names included —
// and holds them to the same gddr_<subsystem>_<name>_<unit> grammar via the
// shared analysis.CheckMetricName.
func TestMetricNameGrammar(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	reg := metrics.NewRegistry()
	engine, err := NewEngine(agent, g, WithMetricsRegistry(reg), WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	ctx := context.Background()
	// Exercise the serving path (router instruments), a topology event
	// (engine instruments), and a short training run with a shared LP cache
	// (train + lp instruments) so every registry family materialises.
	for i := 0; i < 3; i++ {
		if _, err := engine.Route(ctx, testDemand(g, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.Apply(ctx, CapacityChange{From: 0, To: 1, Capacity: 5000}); err != nil {
		t.Fatal(err)
	}
	scenario := multiScenario(t, 5)
	trainee, err := NewAgent(GNNPolicy, scenario,
		WithMemory(2), WithGNNSize(4, 1), WithTotalSteps(8), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainee.Train(ctx, scenario, nil); err != nil {
		t.Fatal(err)
	}
	// Mirror the gateway's HTTP middleware registrations (cmd/gddr-serve)
	// so the http subsystem's labelled families are grammar-checked at
	// runtime too.
	reg.Counter("gddr_http_requests_total", "HTTP requests served.",
		metrics.L("path", "/route"), metrics.L("method", "POST"), metrics.L("status", fmt.Sprintf("%d", 200))).Inc()
	reg.Histogram("gddr_http_request_seconds", "HTTP request latency.", metrics.LatencyBuckets(),
		metrics.L("path", "/route")).Observe(0.001)

	// Exercise the fleet control plane (fleet instruments) into the same
	// registry: one admitted route and one shed route materialise the
	// tenant-labelled admission families.
	fleet := NewFleet(WithFleetRegistry(reg))
	defer fleet.Close()
	tenant, err := fleet.CreateWithAgent("grammar", TenantConfig{Topology: "abilene"}, agent, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tenant.Route(ctx, testDemand(g, 7)); err != nil {
		t.Fatal(err)
	}
	tenant.shed.Inc() // the shed counter is registered at create; count one

	points := reg.Snapshot()
	if len(points) == 0 {
		t.Fatal("no metrics registered")
	}
	subsystems := map[string]bool{}
	for _, p := range points {
		if err := analysis.CheckMetricName(p.Type, p.Name); err != nil {
			t.Errorf("registered metric violates the naming contract: %v", err)
		}
		if len(p.Name) > len("gddr_") {
			rest := p.Name[len("gddr_"):]
			for i := range rest {
				if rest[i] == '_' {
					subsystems[rest[:i]] = true
					break
				}
			}
		}
	}
	// The walk above only proves names conform; prove it covered the
	// subsystems the contract enumerates.
	for _, want := range []string{"router", "engine", "train", "lp", "http", "fleet"} {
		if !subsystems[want] {
			t.Errorf("grammar walk never saw subsystem %q; the test lost coverage", want)
		}
	}
	// The warm-start instrumentation families must materialise from the
	// training run's cache (Instrument registers them, the solves feed them).
	names := map[string]bool{}
	for _, p := range points {
		names[p.Name] = true
	}
	for _, want := range []string{
		"gddr_lp_warm_start_total",
		"gddr_lp_cold_start_total",
		"gddr_lp_solve_pivots",
	} {
		if !names[want] {
			t.Errorf("grammar walk never saw %q; LP warm-start instrumentation lost coverage", want)
		}
	}
}
