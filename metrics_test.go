package gddr

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gddr/internal/metrics"
	"gddr/internal/traffic"
)

// TestRouterMetricsMirrorStats: the registry counters must agree with the
// per-router Stats() atomics, and the latency histograms must have one
// observation per request.
func TestRouterMetricsMirrorStats(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	reg := metrics.NewRegistry()
	router, err := NewRouter(agent, g, WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if router.Metrics() != reg {
		t.Fatal("Metrics() must return the registry the router was built with")
	}

	ctx := context.Background()
	steady := testDemand(g, 1)
	for i := 0; i < 5; i++ {
		if _, err := router.Route(ctx, steady); err != nil {
			t.Fatal(err)
		}
	}
	st := router.Stats()
	check := func(name string, want int64) {
		t.Helper()
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check("gddr_router_requests_total", st.Requests)
	check("gddr_router_forward_passes_total", st.ForwardPasses)
	check("gddr_router_policy_cache_hits_total", st.PolicyCacheHits)
	check("gddr_router_strategy_cache_hits_total", st.StrategyHits)
	check("gddr_router_strategy_cache_misses_total", st.StrategyMisses)
	if st.PolicyCacheHits == 0 {
		t.Error("steady demand must hit the policy cache")
	}
	lat := reg.Histogram("gddr_router_route_latency_seconds", "", metrics.LatencyBuckets())
	if lat.Count() != st.Requests {
		t.Errorf("latency histogram has %d observations, want %d", lat.Count(), st.Requests)
	}
	qw := reg.Histogram("gddr_router_queue_wait_seconds", "", metrics.LatencyBuckets())
	if qw.Count() != st.Requests {
		t.Errorf("queue-wait histogram has %d observations, want %d", qw.Count(), st.Requests)
	}
}

// TestRouterTracing: WithTracing attaches the per-request breakdown, cached
// and uncached paths are distinguishable, and tracing stays off by default.
func TestRouterTracing(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	router, err := NewRouter(agent, g, WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	ctx := context.Background()
	cold, err := router.Route(ctx, testDemand(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Trace == nil {
		t.Fatal("tracing enabled but Decision.Trace is nil")
	}
	if cold.Trace.PolicyCacheHit {
		t.Error("first request cannot hit the policy cache")
	}
	if cold.Trace.ForwardNS <= 0 || cold.Trace.ObserveNS <= 0 || cold.Trace.StrategyNS <= 0 {
		t.Errorf("uncached trace must time observe/forward/strategy, got %+v", cold.Trace)
	}
	if cold.Trace.BatchSize < 1 {
		t.Errorf("batch size = %d, want >= 1", cold.Trace.BatchSize)
	}

	// The policy cache keys on the demand-history window, so it only hits
	// once the window is saturated with the steady demand: route until the
	// window holds nothing else, then the next request must report the hit
	// and no forward-pass time.
	for i := 0; i < 2; i++ {
		if _, err := router.Route(ctx, testDemand(g, 1)); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := router.Route(ctx, testDemand(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Trace == nil || !warm.Trace.PolicyCacheHit || !warm.Trace.StrategyCacheHit {
		t.Errorf("steady-state trace must report cache hits, got %+v", warm.Trace)
	}
	if warm.Trace.ForwardNS != 0 {
		t.Errorf("cached request reports %dns of forward time", warm.Trace.ForwardNS)
	}
	if warm.Trace.EvaluateNS <= 0 {
		t.Errorf("every request evaluates its own demand, got %+v", warm.Trace)
	}

	plain, err := NewRouter(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	d, err := plain.Route(ctx, testDemand(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Trace != nil {
		t.Error("tracing must be off by default")
	}
}

// TestEngineMetricsCumulativeAcrossRebuilds: the engine's registry survives
// topology rebuilds and model swaps — counters keep accumulating where the
// per-snapshot router atomics restart.
func TestEngineMetricsCumulativeAcrossRebuilds(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	engine, err := NewEngine(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	reg := engine.Metrics()
	if reg == nil {
		t.Fatal("engine must always carry a registry")
	}

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := engine.Route(ctx, testDemand(g, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.Apply(ctx, LinkDown{From: 0, To: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := engine.Route(ctx, testDemand(g, int64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("gddr_router_requests_total", "").Value(); got != 5 {
		t.Errorf("requests_total = %d, want 5 (cumulative across the rebuild)", got)
	}
	if got := reg.Counter("gddr_engine_events_applied_total", "").Value(); got != 1 {
		t.Errorf("events_applied_total = %d, want 1", got)
	}
	apply := reg.Histogram("gddr_engine_event_apply_seconds", "", metrics.LatencyBuckets())
	if apply.Count() != 1 {
		t.Errorf("event-apply histogram has %d observations, want 1", apply.Count())
	}
	rebuild := reg.Histogram("gddr_engine_snapshot_rebuild_seconds", "", metrics.LatencyBuckets())
	if rebuild.Count() < 1 {
		t.Error("snapshot rebuild was not timed")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE gddr_router_route_latency_seconds histogram",
		"gddr_router_route_latency_seconds_count 5",
		"gddr_engine_topology_version 2",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSharedRegistryConcurrent hammers one registry from serving, topology
// mutation, and training at the same time — the cross-subsystem race test
// (run under -race in CI).
func TestSharedRegistryConcurrent(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	reg := metrics.NewRegistry()
	engine, err := NewEngine(agent, g, WithMetricsRegistry(reg), WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	rng := rand.New(rand.NewSource(7))
	seqs, err := traffic.Sequences(1, g.NumNodes(), 8, 4, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	scenario := NewScenario(g, seqs)
	trainee, err := NewAgent(GNNPolicy, scenario,
		WithMemory(2), WithGNNSize(8, 1), WithTotalSteps(8), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := engine.Route(ctx, testDemand(g, int64(i%3))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := engine.Apply(ctx, CapacityChange{From: 0, To: 1, Capacity: float64(5000 + i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := trainee.Train(ctx, scenario, NewOptimalCache()); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gddr_router_requests_total 20",
		"gddr_engine_events_applied_total 3",
		"# TYPE gddr_train_update_seconds histogram",
		"# TYPE gddr_lp_solve_seconds histogram",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("shared exposition missing %q", want)
		}
	}
	if got := reg.Counter("gddr_train_steps_total", "").Value(); got != 8 {
		t.Errorf("train_steps_total = %d, want 8", got)
	}
}
