package gddr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gddr/internal/routing"
	"gddr/internal/traffic"
)

func testEngine(t *testing.T, opts ...RouterOption) *Engine {
	t.Helper()
	engine, err := NewEngine(testRouterAgent(t), Abilene(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(engine.Close)
	return engine
}

// removableLink finds a link pair of g whose removal keeps the graph
// strongly connected.
func removableLink(t *testing.T, g *Graph) (int, int, float64) {
	t.Helper()
	for _, e := range g.Edges() {
		if e.From > e.To {
			continue
		}
		c := g.Clone()
		for _, pair := range [][2]int{{e.From, e.To}, {e.To, e.From}} {
			if ei, err := c.EdgeBetween(pair[0], pair[1]); err == nil {
				if err := c.RemoveEdge(ei); err != nil {
					t.Fatal(err)
				}
			}
		}
		if c.StronglyConnected() {
			return e.From, e.To, e.Capacity
		}
	}
	t.Fatal("no removable link")
	return 0, 0, 0
}

// TestEngineApplyLinkDownReroutes is the end-to-end acceptance test:
// Apply(LinkDown) followed by Route must return a valid decision on the
// mutated graph — no weight for the dead edge, MLU computed on the
// remaining capacity.
func TestEngineApplyLinkDownReroutes(t *testing.T) {
	engine := testEngine(t)
	ctx := context.Background()
	g := engine.Graph()
	dm := testDemand(g, 1)

	before, err := engine.Route(ctx, dm)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Weights) != g.NumEdges() {
		t.Fatalf("pre-event decision sized %d for %d edges", len(before.Weights), g.NumEdges())
	}

	u, v, _ := removableLink(t, g)
	if err := engine.Apply(ctx, LinkDown{From: u, To: v}); err != nil {
		t.Fatal(err)
	}
	mutated := engine.Graph()
	if mutated.NumEdges() != g.NumEdges()-2 {
		t.Fatalf("mutated graph has %d edges, want %d", mutated.NumEdges(), g.NumEdges()-2)
	}
	if _, err := mutated.EdgeBetween(u, v); err == nil {
		t.Fatal("dead edge survived the event")
	}

	after, err := engine.Route(ctx, dm)
	if err != nil {
		t.Fatal(err)
	}
	// The decision is sized for the mutated graph: the dead edge has no
	// weight, no split ratio, no load slot.
	if len(after.Weights) != mutated.NumEdges() {
		t.Fatalf("post-event decision sized %d for %d edges", len(after.Weights), mutated.NumEdges())
	}
	for sink, ratio := range after.Splits {
		if len(ratio) != mutated.NumEdges() {
			t.Fatalf("sink %d ratios sized %d for %d edges", sink, len(ratio), mutated.NumEdges())
		}
	}
	// MLU is computed on the remaining capacity: re-evaluating the same
	// weights on the mutated graph must agree exactly.
	res, err := routing.EvaluateWeights(mutated, dm, after.Weights, after.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxUtilization != after.MaxUtilization {
		t.Fatalf("decision MLU %g != substrate MLU %g on mutated graph", after.MaxUtilization, res.MaxUtilization)
	}
	if after.MaxUtilization <= 0 {
		t.Fatal("degenerate post-event decision")
	}
	if got := engine.Version(); got != 2 {
		t.Fatalf("topology version %d want 2", got)
	}
}

// TestEngineApplyConcurrentRoute hammers Route from many goroutines while
// link-down/link-up events churn the topology. Under -race this is the
// satellite guarantee: an event during in-flight batches never serves
// ratios for a deleted edge — every decision is internally consistent with
// one topology version, and after the final Apply returns, new decisions
// are sized for the final graph.
func TestEngineApplyConcurrentRoute(t *testing.T) {
	engine := testEngine(t, WithRouterWorkers(2), WithMaxBatch(4))
	ctx := context.Background()
	base := engine.Graph()
	u, v, capacity := removableLink(t, base)

	// Every decision must be sized for one of the two graphs that ever
	// exist (link up / link down), and its splits must agree with that
	// size — a mixed decision would mean ratios for a deleted edge.
	validSizes := map[int]bool{base.NumEdges(): true, base.NumEdges() - 2: true}

	dm := testDemand(base, 3)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	stop := make(chan struct{})
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d, err := engine.Route(ctx, dm)
				if err != nil {
					errCh <- err
					return
				}
				if !validSizes[len(d.Weights)] {
					errCh <- fmt.Errorf("decision sized %d matches no topology version", len(d.Weights))
					return
				}
				for _, ratio := range d.Splits {
					if len(ratio) != len(d.Weights) {
						errCh <- fmt.Errorf("splits sized %d vs weights %d: mixed topology", len(ratio), len(d.Weights))
						return
					}
				}
				if d.MaxUtilization <= 0 {
					errCh <- errors.New("degenerate decision during churn")
					return
				}
			}
		}(c)
	}

	const flaps = 6
	for i := 0; i < flaps; i++ {
		if err := engine.Apply(ctx, LinkDown{From: u, To: v}); err != nil {
			t.Fatal(err)
		}
		if err := engine.Apply(ctx, LinkUp{From: u, To: v, Capacity: capacity}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// After the last Apply returned, fresh decisions are on the final graph.
	d, err := engine.Route(ctx, dm)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Weights) != base.NumEdges() {
		t.Fatalf("final decision sized %d want %d", len(d.Weights), base.NumEdges())
	}
	stats := engine.Stats()
	if stats.EventsApplied != 2*flaps {
		t.Fatalf("events applied %d want %d", stats.EventsApplied, 2*flaps)
	}
	if stats.TopologyVersion != 2*flaps+1 {
		t.Fatalf("topology version %d want %d", stats.TopologyVersion, 2*flaps+1)
	}
	if stats.Requests == 0 || stats.ForwardPasses == 0 {
		t.Fatal("stats lost across snapshot retirements")
	}
}

func TestEngineRejectsInvalidEvents(t *testing.T) {
	engine := testEngine(t)
	ctx := context.Background()
	g := engine.Graph()

	cases := []Event{
		LinkDown{From: 0, To: 0},                     // self link
		LinkDown{From: 0, To: g.NumNodes() + 5},      // out of range
		LinkUp{From: 0, To: 1, Capacity: -1},         // existing link, bad capacity
		CapacityChange{From: 0, To: 0, Capacity: 10}, // self link
		NodeAdd{AttachTo: nil, Capacity: 10},         // no peers
		NodeRemove{Node: g.NumNodes() + 1},           // out of range
	}
	for _, ev := range cases {
		if err := engine.Apply(ctx, ev); err == nil {
			t.Fatalf("event %s %+v accepted", ev.Kind(), ev)
		}
	}
	if err := engine.Apply(ctx); err == nil {
		t.Fatal("empty event list accepted")
	}
	// Rejections leave the engine serving the original topology.
	if engine.Version() != 1 {
		t.Fatalf("version %d after rejected events, want 1", engine.Version())
	}
	if _, err := engine.Route(ctx, testDemand(g, 4)); err != nil {
		t.Fatal(err)
	}
	if engine.Stats().EventsApplied != 0 {
		t.Fatal("rejected events counted as applied")
	}
}

// TestEngineMLPRejectsTopologyEvents: a shape-bound MLP policy cannot
// absorb a changed edge set; the re-probe must reject the event and keep
// the old topology serving.
func TestEngineMLPRejectsTopologyEvents(t *testing.T) {
	g := Abilene()
	rng := rand.New(rand.NewSource(60))
	seqs, err := traffic.Sequences(1, g.NumNodes(), 6, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(MLPPolicy, NewScenario(g, seqs), WithMemory(2), WithMLPHidden(8))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	ctx := context.Background()
	u, v, _ := removableLink(t, g)
	if err := engine.Apply(ctx, LinkDown{From: u, To: v}); err == nil {
		t.Fatal("MLP absorbed a topology event its shape cannot fit")
	}
	if engine.Version() != 1 {
		t.Fatalf("version %d after rejected event, want 1", engine.Version())
	}
	if _, err := engine.Route(ctx, testDemand(g, 61)); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNodeEventsRenumberHistory(t *testing.T) {
	engine := testEngine(t)
	ctx := context.Background()
	g := engine.Graph()
	n := g.NumNodes()

	// Build up real history on the original topology.
	for i := 0; i < 3; i++ {
		if _, err := engine.Route(ctx, testDemand(g, int64(10+i))); err != nil {
			t.Fatal(err)
		}
	}

	// Add a node: the engine now only accepts (n+1)-sized demands.
	if err := engine.Apply(ctx, NodeAdd{Name: "pop", AttachTo: []int{0, 1}, Capacity: 9920}); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Route(ctx, testDemand(g, 20)); err == nil {
		t.Fatal("stale-sized demand accepted after node add")
	}
	grown := engine.Graph()
	if grown.NumNodes() != n+1 {
		t.Fatalf("nodes %d want %d", grown.NumNodes(), n+1)
	}
	d, err := engine.Route(ctx, testDemand(grown, 21))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Weights) != grown.NumEdges() {
		t.Fatalf("decision sized %d want %d", len(d.Weights), grown.NumEdges())
	}

	// Remove the node again: history shrinks back, old-size demands work.
	if err := engine.Apply(ctx, NodeRemove{Node: n}); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Route(ctx, testDemand(g, 22)); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSwapAgentZeroDowntime(t *testing.T) {
	engine := testEngine(t, WithRouterWorkers(2))
	ctx := context.Background()
	g := engine.Graph()

	// Route continuously while swapping agents: no call may fail.
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := engine.Route(ctx, testDemand(g, int64(c*100+i))); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	for i := 0; i < 3; i++ {
		replacement, err := NewAgent(GNNPolicy, nil, WithMemory(2), WithGNNSize(8, 1), WithSeed(int64(50+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.SwapAgent(ctx, replacement); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := engine.Stats().AgentSwaps; got != 3 {
		t.Fatalf("agent swaps %d want 3", got)
	}
}

func TestEngineSwapCheckpoint(t *testing.T) {
	engine := testEngine(t)
	ctx := context.Background()
	g := engine.Graph()
	dm := testDemand(g, 30)

	// Checkpoint a differently-seeded agent of the same architecture; after
	// the swap the engine must route exactly like that agent.
	donor, err := NewAgent(GNNPolicy, nil, WithMemory(2), WithGNNSize(8, 1), WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := donor.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	donorRouter, err := NewRouter(donor, Abilene())
	if err != nil {
		t.Fatal(err)
	}
	want, err := donorRouter.Route(ctx, dm)
	donorRouter.Close()
	if err != nil {
		t.Fatal(err)
	}

	if err := engine.SwapCheckpoint(ctx, &ckpt); err != nil {
		t.Fatal(err)
	}
	got, err := engine.Route(ctx, dm)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxUtilization != want.MaxUtilization {
		t.Fatalf("post-swap MLU %g != donor MLU %g", got.MaxUtilization, want.MaxUtilization)
	}

	// Garbage checkpoints are rejected with the old model still serving.
	if err := engine.SwapCheckpoint(ctx, bytes.NewBufferString("not a checkpoint")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	if _, err := engine.Route(ctx, dm); err != nil {
		t.Fatal(err)
	}
}

func TestEngineClose(t *testing.T) {
	engine, err := NewEngine(testRouterAgent(t), Abilene())
	if err != nil {
		t.Fatal(err)
	}
	g := Abilene()
	if _, err := engine.Route(context.Background(), testDemand(g, 40)); err != nil {
		t.Fatal(err)
	}
	engine.Close()
	engine.Close() // idempotent
	if _, err := engine.Route(context.Background(), testDemand(g, 41)); !errors.Is(err, ErrClosed) {
		t.Fatalf("route after close: got %v, want ErrClosed", err)
	}
	if err := engine.Apply(context.Background(), LinkDown{From: 0, To: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: got %v, want ErrClosed", err)
	}
	if err := engine.SwapAgent(context.Background(), testRouterAgent(t)); !errors.Is(err, ErrClosed) {
		t.Fatalf("swap after close: got %v, want ErrClosed", err)
	}
	if engine.Graph() != nil || engine.Version() != 0 {
		t.Fatal("closed engine still reports a topology")
	}
}

func TestEngineWarmHistoryAppliesToFirstSnapshotOnly(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	warm := []*DemandMatrix{testDemand(g, 50), testDemand(g, 51)}
	engine, err := NewEngine(agent, g, WithWarmHistory(warm...))
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	if _, err := engine.Route(context.Background(), testDemand(g, 52)); err != nil {
		t.Fatal(err)
	}
	// A mis-sized warm history is rejected up front, like NewRouter.
	if _, err := NewEngine(agent, g, WithWarmHistory(traffic.NewDemandMatrix(3))); err == nil {
		t.Fatal("mismatched warm history accepted")
	}
}

// TestEngineApplyInvalidatesServingCaches: after a topology event, a cached
// routing strategy must never serve the old graph. The engine is driven to
// a cache-hot steady state, a capacity change is applied, and the next
// decision must be computed entirely on the mutated graph — its utilisation
// must re-derive exactly from its own weights on the new capacities.
func TestEngineApplyInvalidatesServingCaches(t *testing.T) {
	engine := testEngine(t, WithRouterWorkers(1))
	ctx := context.Background()
	g := engine.Graph()
	dm := testDemand(g, 70)

	var before *Decision
	for i := 0; i < 4; i++ {
		d, err := engine.Route(ctx, dm)
		if err != nil {
			t.Fatal(err)
		}
		before = d
	}
	if hits := engine.Stats().StrategyHits; hits == 0 {
		t.Fatal("steady demand never hit the strategy cache; the invalidation test is vacuous")
	}

	// Halve the capacity of the most loaded link.
	maxEdge := 0
	for ei := range before.Utilization {
		if before.Utilization[ei] > before.Utilization[maxEdge] {
			maxEdge = ei
		}
	}
	edge := g.Edge(maxEdge)
	if err := engine.Apply(ctx, CapacityChange{From: edge.From, To: edge.To, Capacity: edge.Capacity / 2}); err != nil {
		t.Fatal(err)
	}

	mutated := engine.Graph()
	after, err := engine.Route(ctx, dm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := routing.EvaluateWeights(mutated, dm, after.Weights, after.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxUtilization != after.MaxUtilization {
		t.Fatalf("post-event MLU %g != substrate MLU %g on mutated graph: stale cached strategy served", after.MaxUtilization, res.MaxUtilization)
	}
	for ei := range res.Utilization {
		if res.Utilization[ei] != after.Utilization[ei] {
			t.Fatalf("post-event utilisation[%d] %g != substrate %g", ei, after.Utilization[ei], res.Utilization[ei])
		}
	}
	// The halved link must actually be priced at its new capacity.
	ei, err := mutated.EdgeBetween(edge.From, edge.To)
	if err != nil {
		t.Fatal(err)
	}
	if want := after.Loads[ei] / (edge.Capacity / 2); after.Utilization[ei] != want {
		t.Fatalf("halved link utilisation %g, want %g: old capacity still cached", after.Utilization[ei], want)
	}
}

// TestEngineApplyConcurrentRouteConsistent interleaves Route with capacity
// flaps under -race: every decision must be internally consistent with one
// of the two graphs that ever served (a decision mixing cached ratios from
// one topology with capacities of the other matches neither), and after the
// final Apply returns, decisions must re-derive exactly on the final graph.
func TestEngineApplyConcurrentRouteConsistent(t *testing.T) {
	engine := testEngine(t, WithRouterWorkers(2), WithMaxBatch(4))
	ctx := context.Background()
	gOld := engine.Graph()
	dm := testDemand(gOld, 71)
	edge := gOld.Edge(0)
	halved := CapacityChange{From: edge.From, To: edge.To, Capacity: edge.Capacity / 2}
	restored := CapacityChange{From: edge.From, To: edge.To, Capacity: edge.Capacity}
	gNew, _, err := halved.apply(gOld.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}

	consistent := func(g *Graph, d *Decision) bool {
		res, err := routing.EvaluateWeights(g, dm, d.Weights, d.Gamma)
		if err != nil {
			return false
		}
		for ei := range res.Utilization {
			if res.Utilization[ei] != d.Utilization[ei] {
				return false
			}
		}
		return res.MaxUtilization == d.MaxUtilization
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, err := engine.Route(ctx, dm)
				if err != nil {
					errCh <- err
					return
				}
				if !consistent(gOld, d) && !consistent(gNew, d) {
					errCh <- errors.New("decision consistent with neither topology version: mixed cache state")
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		if err := engine.Apply(ctx, halved); err != nil {
			t.Fatal(err)
		}
		if err := engine.Apply(ctx, restored); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	final, err := engine.Route(ctx, dm)
	if err != nil {
		t.Fatal(err)
	}
	if !consistent(engine.Graph(), final) {
		t.Fatal("post-churn decision does not re-derive on the final graph")
	}
}

// TestEngineSwapInvalidatesServingCaches: a hot checkpoint swap must drop
// the cached policy output and strategy — under steady demand, the first
// decision after SwapCheckpoint must carry the donor model's weights, not
// the cached predecessor's. Concurrent routing runs throughout (-race).
func TestEngineSwapInvalidatesServingCaches(t *testing.T) {
	engine := testEngine(t, WithRouterWorkers(2))
	ctx := context.Background()
	g := engine.Graph()
	dm := testDemand(g, 72)

	// Reach the cache-hot steady state: window = [dm, dm] (memory 2).
	for i := 0; i < 4; i++ {
		if _, err := engine.Route(ctx, dm); err != nil {
			t.Fatal(err)
		}
	}
	if engine.Stats().PolicyCacheHits == 0 {
		t.Fatal("steady demand never hit the policy cache; the swap test is vacuous")
	}

	// The donor's expected steady-state weights, from a fresh router warmed
	// to the same [dm, dm] window.
	donor, err := NewAgent(GNNPolicy, nil, WithMemory(2), WithGNNSize(8, 1), WithSeed(88))
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := donor.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	donorRouter, err := NewRouter(donor, Abilene(), WithWarmHistory(dm, dm))
	if err != nil {
		t.Fatal(err)
	}
	want, err := donorRouter.Route(ctx, dm)
	donorRouter.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Route concurrently while the swap happens; no call may fail.
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := engine.Route(ctx, dm); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	if err := engine.SwapCheckpoint(ctx, &ckpt); err != nil {
		t.Fatal(err)
	}
	got, err := engine.Route(ctx, dm)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for ei := range want.Weights {
		if got.Weights[ei] != want.Weights[ei] {
			t.Fatalf("edge %d weight %g != donor %g: pre-swap policy output served from cache", ei, got.Weights[ei], want.Weights[ei])
		}
	}
	if got.MaxUtilization != want.MaxUtilization {
		t.Fatalf("post-swap MLU %g != donor %g", got.MaxUtilization, want.MaxUtilization)
	}
}
