package gddr

import (
	"context"
	"math/rand"
	"testing"

	"gddr/internal/traffic"
)

// TestWarmStartBeatsShortestPathOnDiverseTopologies is the deterministic
// half of the paper's headline shape: even before any learning, the
// capacity-aware softmin routing the agents start from outperforms
// single-path shortest-path routing on topologies with capacity diversity
// and path redundancy (NSFNet, B4). Training then improves from there.
func TestWarmStartBeatsShortestPathOnDiverseTopologies(t *testing.T) {
	cache := NewOptimalCache()
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"nsfnet", NSFNet()},
		{"b4", B4()},
	} {
		rng := rand.New(rand.NewSource(17))
		seqs, err := traffic.Sequences(2, tc.g.NumNodes(), 12, 4, traffic.DefaultBimodal(), rng)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScenario(tc.g, seqs)
		agent, err := NewAgent(GNNPolicy, s, WithMemory(2), WithGNNSize(8, 2))
		if err != nil {
			t.Fatal(err)
		}
		agentRatio, err := agent.Evaluate(context.Background(), s, cache)
		if err != nil {
			t.Fatal(err)
		}
		spRatio, err := ShortestPathRatio(context.Background(), s, 2, cache)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: untrained agent %.4f vs shortest path %.4f", tc.name, agentRatio, spRatio)
		if agentRatio >= spRatio {
			t.Errorf("%s: untrained warm-start agent (%.4f) should beat shortest path (%.4f)",
				tc.name, agentRatio, spRatio)
		}
	}
}

// TestTrainingImprovesTrainSetRatio: a moderately sized PPO run must reduce
// the train-set ratio relative to the untrained warm start.
func TestTrainingImprovesTrainSetRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	train, _, err := AbileneScenario(2, 1, 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := DefaultTrainConfig(GNNPolicy)
	cfg.Memory = 3
	cfg.TotalSteps = 4000
	cfg.PPO.LearningRate = 1e-3
	cfg.GNN.Hidden = 16
	cfg.GNN.Steps = 2
	agent, err := NewAgent(GNNPolicy, train, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewOptimalCache()
	before, err := agent.Evaluate(ctx, train, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(ctx, train, cache); err != nil {
		t.Fatal(err)
	}
	after, err := agent.Evaluate(ctx, train, cache)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("train-set ratio before=%.4f after=%.4f", before, after)
	// PPO is stochastic at this scale; require it not to regress materially
	// and record the improvement in the log.
	if after > before+0.02 {
		t.Errorf("training regressed the train-set ratio: %.4f -> %.4f", before, after)
	}
}

// TestGeneralisationTransferDeterministic: a GNN agent constructed for one
// topology evaluates on a different one without any shape changes — the
// mechanical half of the paper's generalisation claim.
func TestGeneralisationTransferDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	abilene := Abilene()
	seqsA, err := traffic.Sequences(1, abilene.NumNodes(), 10, 5, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(GNNPolicy, NewScenario(abilene, seqsA), WithMemory(2), WithGNNSize(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Graph{NSFNet(), B4(), Geant()} {
		seqs, err := traffic.Sequences(1, g.NumNodes(), 6, 3, traffic.DefaultBimodal(), rng)
		if err != nil {
			t.Fatal(err)
		}
		ratio, err := agent.Evaluate(context.Background(), NewScenario(g, seqs), nil)
		if err != nil {
			t.Fatalf("transfer to %d-node graph: %v", g.NumNodes(), err)
		}
		if ratio < 1 {
			t.Fatalf("impossible ratio %g", ratio)
		}
	}
}
