package gddr

import (
	"bytes"
	"context"
	"testing"
)

// TestTrainTwiceByteIdenticalCheckpoint is the determinism contract stated
// as bytes: two independent runs of the same (config, scenario, seed,
// workers) — agent construction included, since parameter initialisation
// draws from the same serialisable rng stream as everything else — must
// produce byte-identical checkpoints. This is the regression test for the
// gddr-lint determinism check's reason to exist: one stray global-rand call
// or hidden-state rand.NewSource anywhere on the training path shows up
// here as a byte diff.
func TestTrainTwiceByteIdenticalCheckpoint(t *testing.T) {
	run := func() []byte {
		t.Helper()
		scenario := multiScenario(t, 11)
		agent, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(32)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := agent.Train(context.Background(), scenario, nil); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := agent.SaveCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		t.Fatalf("two identical runs produced different checkpoints (%d vs %d bytes): the training path read a non-deterministic source", len(first), len(second))
	}
	// The parameters inside the checkpoint are the trained weights; a
	// sanity check that the run actually trained.
	if len(first) == 0 {
		t.Fatal("empty checkpoint")
	}
}
