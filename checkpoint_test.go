package gddr

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"gddr/internal/graph"
	"gddr/internal/traffic"
)

// multiScenario builds a two-topology scenario (ring-4 and ring-5) cheap
// enough for checkpoint round-trip tests.
func multiScenario(t *testing.T, seed int64) *Scenario {
	t.Helper()
	s := &Scenario{}
	for i, n := range []int{4, 5} {
		g, err := graph.Ring(n, 1000)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + int64(i)))
		seqs, err := traffic.Sequences(1, n, 8, 2, traffic.DefaultBimodal(), rng)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(g, seqs)
	}
	return s
}

// ckptConfig is the shared tiny training config of the checkpoint tests:
// 16-step rollouts so update boundaries land at multiples of 16.
func ckptConfig(totalSteps int) TrainConfig {
	cfg := DefaultTrainConfig(GNNPolicy)
	cfg.Memory = 2
	cfg.TotalSteps = totalSteps
	cfg.GNN.Hidden = 4
	cfg.GNN.Steps = 1
	cfg.PPO.RolloutSteps = 16
	cfg.PPO.MiniBatch = 8
	cfg.Workers = 2
	return cfg
}

func trainedParams(t *testing.T, a *Agent) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func curvesEqual(t *testing.T, a, b []EpisodeStat) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("curve length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("curve diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestCheckpointResumeBitIdentical is the acceptance-criteria equivalence:
// train k steps, checkpoint, resume the remaining N-k in a fresh agent, and
// the final parameters and the full learning curve are bit-identical to an
// uninterrupted N-step run with the same (seed, workers) pair.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const k, n = 32, 64
	scenario := multiScenario(t, 7)
	cache := NewOptimalCache()

	// Uninterrupted reference run.
	ref, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(n)))
	if err != nil {
		t.Fatal(err)
	}
	refCurve, err := ref.Train(context.Background(), scenario, cache)
	if err != nil {
		t.Fatal(err)
	}

	// Train k, checkpoint, resume N-k.
	partial, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(k)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partial.Train(context.Background(), scenario, cache); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := partial.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeAgent(cp, scenario, WithTotalSteps(n))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.TrainedSteps() != 0 { // state is staged, applied at Train
		t.Fatalf("trained steps before resume: %d", resumed.TrainedSteps())
	}
	resumedCurve, err := resumed.ResumeTraining(context.Background(), scenario, cache)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.TrainedSteps() != n {
		t.Fatalf("resumed run trained %d steps, want %d", resumed.TrainedSteps(), n)
	}
	if !bytes.Equal(trainedParams(t, ref), trainedParams(t, resumed)) {
		t.Fatal("resumed parameters differ from the uninterrupted run")
	}
	curvesEqual(t, refCurve, resumedCurve)
}

// TestCancelCheckpointResume covers the SIGINT path: cancel mid-run, write
// the checkpoint (which describes the last completed update), resume — the
// result is bit-identical to the uninterrupted run.
func TestCancelCheckpointResume(t *testing.T) {
	const n = 64
	scenario := multiScenario(t, 8)
	cache := NewOptimalCache()

	ref, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(n)))
	if err != nil {
		t.Fatal(err)
	}
	refCurve, err := ref.Train(context.Background(), scenario, cache)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	interrupted, err := NewAgent(GNNPolicy, scenario,
		WithConfig(ckptConfig(n)),
		WithProgress(func(p Progress) {
			if p.Episode != nil && p.Episode.Timestep >= 16 {
				cancel() // takes effect at the next rollout boundary
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interrupted.Train(ctx, scenario, cache); err == nil {
		t.Fatal("cancelled training reported success")
	}
	if got := interrupted.TrainedSteps(); got <= 0 || got >= n {
		t.Fatalf("cancelled run trained %d steps, want within (0,%d)", got, n)
	}
	var buf bytes.Buffer
	if err := interrupted.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeAgent(cp, scenario)
	if err != nil {
		t.Fatal(err)
	}
	resumedCurve, err := resumed.ResumeTraining(context.Background(), scenario, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trainedParams(t, ref), trainedParams(t, resumed)) {
		t.Fatal("post-cancel resume diverged from the uninterrupted run")
	}
	curvesEqual(t, refCurve, resumedCurve)
}

// TestPeriodicCheckpointFiles exercises WithCheckpointEvery +
// WithCheckpointPath: the file exists after training and resumes cleanly.
func TestPeriodicCheckpointFiles(t *testing.T) {
	scenario := multiScenario(t, 9)
	path := filepath.Join(t.TempDir(), "train.ckpt.json")
	cfg := ckptConfig(48)
	agent, err := NewAgent(GNNPolicy, scenario,
		WithConfig(cfg),
		WithCheckpointEvery(16),
		WithCheckpointPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(context.Background(), scenario, nil); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Train == nil || cp.Train.Timesteps != 48 {
		t.Fatalf("final periodic checkpoint at %+v, want 48 steps", cp.Train)
	}
	if len(cp.Train.WorkerStates) != 2 {
		t.Fatalf("checkpoint has %d worker states, want 2", len(cp.Train.WorkerStates))
	}
	if _, err := ResumeAgent(cp, scenario); err != nil {
		t.Fatal(err)
	}

	// CheckpointEvery without a path must be rejected up front.
	bad, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(16)), WithCheckpointEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Train(context.Background(), scenario, nil); err == nil {
		t.Fatal("CheckpointEvery without CheckpointPath accepted")
	}
}

// TestCheckpointValidation covers the guard rails: architecture mismatch,
// scenario mismatch, worker-count mismatch, and format violations.
func TestCheckpointValidation(t *testing.T) {
	scenario := multiScenario(t, 10)
	agent, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(32)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(context.Background(), scenario, nil); err != nil {
		t.Fatal(err)
	}
	cp, err := agent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Params cannot be restored into a mismatched architecture.
	mutated := *cp
	mutated.Config.GNN.Hidden = 8
	if _, err := ResumeAgent(&mutated, scenario); err == nil {
		t.Fatal("architecture mismatch accepted")
	}

	// Worker-count mismatch is rejected.
	if _, err := ResumeAgent(cp, scenario, WithRolloutWorkers(3)); err == nil {
		t.Fatal("worker-count mismatch accepted")
	}

	// Scenario mismatch is rejected at resume time.
	resumed, err := ResumeAgent(cp, scenario)
	if err != nil {
		t.Fatal(err)
	}
	other := multiScenario(t, 99)
	if _, err := resumed.ResumeTraining(context.Background(), other, nil); err == nil {
		t.Fatal("scenario mismatch accepted")
	}

	// Format violations.
	if _, err := LoadCheckpoint(bytes.NewBufferString(`{"format":99}`)); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := LoadCheckpoint(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	fresh, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(16)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.ResumeTraining(context.Background(), scenario, nil); err == nil {
		t.Fatal("resume without checkpoint state accepted")
	}
}

// TestSamplerPlumbing trains with a size curriculum over a two-topology
// scenario and checks determinism is preserved end to end.
func TestSamplerPlumbing(t *testing.T) {
	scenario := multiScenario(t, 11)
	run := func() []byte {
		cfg := ckptConfig(48)
		cfg.Sampler = SizeCurriculumSampling(2)
		agent, err := NewAgent(GNNPolicy, scenario, WithConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := agent.Train(context.Background(), scenario, nil); err != nil {
			t.Fatal(err)
		}
		return trainedParams(t, agent)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("curriculum training not deterministic")
	}
	// An invalid sampler spec surfaces as a construction-time error.
	cfg := ckptConfig(16)
	cfg.Sampler = WeightedSampling(1) // 1 weight, 2 members
	agent, err := NewAgent(GNNPolicy, scenario, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(context.Background(), scenario, nil); err == nil {
		t.Fatal("mis-sized sampler weights accepted")
	}
}

// TestA2CAgentTrains covers the -algo a2c path through the public API.
func TestA2CAgentTrains(t *testing.T) {
	scenario := multiScenario(t, 12)
	cfg := ckptConfig(32)
	cfg.Algo = A2CAlgo
	cfg.A2C.RolloutSteps = 16
	agent, err := NewAgent(GNNPolicy, scenario, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(context.Background(), scenario, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agent.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Algo != A2CAlgo {
		t.Fatalf("checkpoint algo %q want a2c", cp.Algo)
	}
	if _, err := ResumeAgent(cp, scenario); err != nil {
		t.Fatal(err)
	}
}

// TestExperimentCheckpointDir runs a registry experiment with a checkpoint
// directory and checks each training stage leaves a resumable checkpoint.
func TestExperimentCheckpointDir(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	opts := tinyOptions()
	report, err := RunExperiment(context.Background(), "figure7",
		WithExperimentOptions(opts),
		WithCheckpointDir(dir),
		WithRolloutWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if report == nil {
		t.Fatal("nil report")
	}
	for _, stage := range []string{"figure7-mlp", "figure7-gnn"} {
		path := filepath.Join(dir, stage+".ckpt.json")
		cp, err := LoadCheckpointFile(path)
		if err != nil {
			t.Fatalf("stage %s: %v", stage, err)
		}
		if cp.Train == nil || cp.Train.Timesteps != opts.TrainSteps {
			t.Fatalf("stage %s checkpoint incomplete: %+v", stage, cp.Train)
		}
		if len(cp.Train.WorkerStates) != 2 {
			t.Fatalf("stage %s trained with %d workers, want 2", stage, len(cp.Train.WorkerStates))
		}
	}
}

// TestRetryAfterCancelUsesFreshContext is the regression test for the
// stale-clone hazard: after a cancelled Train, calling Train again with a
// live context (and no checkpoint round trip) must complete — the rollout
// workers must step clones of the newly built environment, not clones
// still bound to the cancelled context — and land on the same parameters
// as an uninterrupted run.
func TestRetryAfterCancelUsesFreshContext(t *testing.T) {
	const n = 64
	scenario := multiScenario(t, 14)

	ref, err := NewAgent(GNNPolicy, scenario, WithConfig(ckptConfig(n)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Train(context.Background(), scenario, NewOptimalCache()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	retried, err := NewAgent(GNNPolicy, scenario,
		WithConfig(ckptConfig(n)),
		WithProgress(func(p Progress) {
			if p.Episode != nil && p.Episode.Timestep >= 16 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	// Separate, unwarmed caches per call: the retry must not depend on the
	// first call's cache having been filled before cancellation.
	if _, err := retried.Train(ctx, scenario, NewOptimalCache()); err == nil {
		t.Fatal("cancelled training reported success")
	}
	if _, err := retried.Train(context.Background(), scenario, NewOptimalCache()); err != nil {
		t.Fatalf("retry with a live context failed: %v", err)
	}
	if retried.TrainedSteps() != n {
		t.Fatalf("retry trained to %d steps, want %d", retried.TrainedSteps(), n)
	}
	if !bytes.Equal(trainedParams(t, ref), trainedParams(t, retried)) {
		t.Fatal("cancel+retry diverged from the uninterrupted run")
	}

	// And a continuation on a different scenario is rejected outright.
	if _, err := retried.Train(context.Background(), multiScenario(t, 77), nil); err == nil {
		t.Fatal("scenario swap mid-agent accepted")
	}
}

// TestExperimentCheckpointConfigMismatch re-runs an experiment against a
// checkpoint dir written under different options: it must fail loudly
// instead of silently resuming the old configuration.
func TestExperimentCheckpointConfigMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	opts := tinyOptions()
	if _, err := RunExperiment(context.Background(), "figure7",
		WithExperimentOptions(opts), WithCheckpointDir(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := RunExperiment(context.Background(), "figure7",
		WithExperimentOptions(opts), WithCheckpointDir(dir), WithTotalSteps(opts.TrainSteps*2)); err == nil {
		t.Fatal("config mismatch against stage checkpoints accepted")
	}
	// Re-running with identical options resumes (here: a completed stage
	// no-ops its training) and succeeds.
	if _, err := RunExperiment(context.Background(), "figure7",
		WithExperimentOptions(opts), WithCheckpointDir(dir)); err != nil {
		t.Fatalf("identical re-run failed: %v", err)
	}
}
