package gddr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gddr/internal/routing"
	"gddr/internal/traffic"
)

// testRouterAgent returns a small untrained GNN agent (untrained agents
// route meaningfully thanks to the capacity-aware warm start).
func testRouterAgent(t *testing.T) *Agent {
	t.Helper()
	agent, err := NewAgent(GNNPolicy, nil, WithMemory(2), WithGNNSize(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

func testDemand(g *Graph, seed int64) *DemandMatrix {
	rng := rand.New(rand.NewSource(seed))
	return traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
}

func TestRouterRouteDecision(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	dm := testDemand(g, 1)
	d, err := router.Route(context.Background(), dm)
	if err != nil {
		t.Fatal(err)
	}
	ne := g.NumEdges()
	if len(d.Weights) != ne || len(d.Loads) != ne || len(d.Utilization) != ne {
		t.Fatalf("decision sized %d/%d/%d for %d edges", len(d.Weights), len(d.Loads), len(d.Utilization), ne)
	}
	for ei, w := range d.Weights {
		if w <= 0 {
			t.Fatalf("edge %d has non-positive weight %g", ei, w)
		}
	}
	if d.Gamma <= 0 {
		t.Fatalf("non-positive gamma %g", d.Gamma)
	}
	if d.MaxUtilization <= 0 {
		t.Fatalf("max utilisation %g for non-empty demand", d.MaxUtilization)
	}
	// The decision must agree with the routing substrate evaluated on the
	// same weights.
	res, err := routing.EvaluateWeights(g, dm, d.Weights, d.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxUtilization-d.MaxUtilization) > 1e-9 {
		t.Fatalf("decision MLU %g != substrate MLU %g", d.MaxUtilization, res.MaxUtilization)
	}
	// Splitting ratios: per destination, the kept out-edges of every
	// non-sink vertex sum to 1 (or 0 when the vertex is dropped).
	for sink, ratio := range d.Splits {
		for v := 0; v < g.NumNodes(); v++ {
			if v == sink {
				continue
			}
			sum := 0.0
			for _, ei := range g.OutEdges(v) {
				if ratio[ei] < 0 || ratio[ei] > 1+1e-9 {
					t.Fatalf("sink %d edge %d ratio %g outside [0,1]", sink, ei, ratio[ei])
				}
				sum += ratio[ei]
			}
			if math.Abs(sum-1) > 1e-9 && sum > 1e-12 {
				t.Fatalf("sink %d vertex %d ratios sum to %g", sink, v, sum)
			}
		}
	}
}

func TestRouterConcurrentRoute(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g, WithRouterWorkers(4), WithMaxBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	const callers = 16
	const perCaller = 5
	var wg sync.WaitGroup
	errCh := make(chan error, callers*perCaller)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				dm := testDemand(g, int64(c*100+i))
				d, err := router.Route(context.Background(), dm)
				if err != nil {
					errCh <- err
					return
				}
				if d.MaxUtilization <= 0 {
					errCh <- errors.New("zero max utilisation")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	stats := router.Stats()
	if stats.Requests != callers*perCaller {
		t.Fatalf("served %d requests, want %d", stats.Requests, callers*perCaller)
	}
	if stats.Batches > stats.Requests {
		t.Fatalf("more batches (%d) than requests (%d)", stats.Batches, stats.Requests)
	}
	// Full-action policies run exactly one forward pass per batch, so
	// batched concurrent callers share passes.
	if stats.ForwardPasses != stats.Batches {
		t.Fatalf("%d forward passes for %d batches", stats.ForwardPasses, stats.Batches)
	}
}

func TestRouterIterativeAgent(t *testing.T) {
	g := NSFNet()
	agent, err := NewAgent(GNNIterativePolicy, nil, WithMemory(2), WithGNNSize(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	d, err := router.Route(context.Background(), testDemand(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d.Gamma <= 0 || d.MaxUtilization <= 0 {
		t.Fatalf("degenerate iterative decision: gamma %g, MLU %g", d.Gamma, d.MaxUtilization)
	}
}

func TestRouterRejectsMismatchedAgent(t *testing.T) {
	// An MLP agent is shape-bound to its training topology; the router
	// probe must reject it on a different graph at construction.
	abilene := Abilene()
	rng := rand.New(rand.NewSource(4))
	seqs, err := traffic.Sequences(1, abilene.NumNodes(), 6, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(MLPPolicy, NewScenario(abilene, seqs), WithMemory(2), WithMLPHidden(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(agent, NSFNet()); err == nil {
		t.Fatal("router accepted an MLP agent bound to a different topology")
	}
	router, err := NewRouter(agent, abilene)
	if err != nil {
		t.Fatalf("router rejected the MLP agent on its own topology: %v", err)
	}
	router.Close()
}

func TestRouterRejectsWrongDemandSize(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if _, err := router.Route(context.Background(), traffic.NewDemandMatrix(3)); err == nil {
		t.Fatal("mismatched demand matrix accepted")
	}
	if _, err := router.Route(context.Background(), nil); err == nil {
		t.Fatal("nil demand matrix accepted")
	}
}

func TestRouterCancelledContext(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := router.Route(ctx, testDemand(g, 5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRouterClose(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.Route(context.Background(), testDemand(g, 6)); err != nil {
		t.Fatal(err)
	}
	router.Close()
	router.Close() // idempotent
	if _, err := router.Route(context.Background(), testDemand(g, 7)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// The former sentinel name must keep matching.
	if _, err := router.Route(context.Background(), testDemand(g, 7)); !errors.Is(err, ErrRouterClosed) {
		t.Fatalf("got %v, want ErrRouterClosed alias to match", err)
	}
}

// TestRouterCloseUnderLoad closes the router while concurrent callers are
// mid-flight and while other goroutines call Close concurrently: every
// Route call must return either a valid decision or ErrClosed — never hang
// or panic — and every Close must return. Run under -race.
func TestRouterCloseUnderLoad(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g, WithRouterWorkers(2), WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, callers*16)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				d, err := router.Route(context.Background(), testDemand(g, int64(c*1000+i)))
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errCh <- err
					}
					return
				}
				if d.MaxUtilization <= 0 {
					errCh <- errors.New("degenerate decision under load")
					return
				}
			}
		}(c)
	}
	// Let some traffic through, then close from several goroutines at once.
	if _, err := router.Route(context.Background(), testDemand(g, 1)); err != nil {
		t.Fatal(err)
	}
	var closers sync.WaitGroup
	for i := 0; i < 3; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			router.Close()
		}()
	}
	closers.Wait()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if _, err := router.Route(context.Background(), testDemand(g, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("route after close: got %v, want ErrClosed", err)
	}
}

func TestRouterSaveLoadRoundTrip(t *testing.T) {
	g := Abilene()
	trained := testRouterAgent(t)
	var model bytes.Buffer
	if err := trained.Save(&model); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewAgent(GNNPolicy, nil, WithMemory(2), WithGNNSize(8, 1), WithSeed(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Load(&model); err != nil {
		t.Fatal(err)
	}

	dm := testDemand(g, 8)
	decide := func(a *Agent) *Decision {
		t.Helper()
		router, err := NewRouter(a, g)
		if err != nil {
			t.Fatal(err)
		}
		defer router.Close()
		d, err := router.Route(context.Background(), dm)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := decide(trained)
	d2 := decide(loaded)
	if d1.MaxUtilization != d2.MaxUtilization {
		t.Fatalf("loaded agent routes differently: MLU %g vs %g", d1.MaxUtilization, d2.MaxUtilization)
	}
	for ei := range d1.Weights {
		if d1.Weights[ei] != d2.Weights[ei] {
			t.Fatalf("edge %d weight differs after load: %g vs %g", ei, d1.Weights[ei], d2.Weights[ei])
		}
	}
}

func TestRouterWarmHistory(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	hist := []*DemandMatrix{testDemand(g, 9), testDemand(g, 10)}
	router, err := NewRouter(agent, g, WithWarmHistory(hist...))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if _, err := router.Route(context.Background(), testDemand(g, 11)); err != nil {
		t.Fatal(err)
	}
	// A mis-sized warm history is rejected up front.
	if _, err := NewRouter(agent, g, WithWarmHistory(traffic.NewDemandMatrix(3))); err == nil {
		t.Fatal("mismatched warm history accepted")
	}
}

// sameDecision asserts two decisions are bit-identical in every field.
func sameDecision(t *testing.T, label string, a, b *Decision) {
	t.Helper()
	if a.Gamma != b.Gamma {
		t.Fatalf("%s: gamma %g != %g", label, a.Gamma, b.Gamma)
	}
	if a.MaxUtilization != b.MaxUtilization {
		t.Fatalf("%s: MLU %g != %g", label, a.MaxUtilization, b.MaxUtilization)
	}
	exact := func(name string, x, y []float64) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s: %s sized %d vs %d", label, name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: %s[%d] %g != %g", label, name, i, x[i], y[i])
			}
		}
	}
	exact("weights", a.Weights, b.Weights)
	exact("loads", a.Loads, b.Loads)
	exact("utilization", a.Utilization, b.Utilization)
	if len(a.Splits) != len(b.Splits) {
		t.Fatalf("%s: splits for %d vs %d sinks", label, len(a.Splits), len(b.Splits))
	}
	for sink, ra := range a.Splits {
		rb, ok := b.Splits[sink]
		if !ok {
			t.Fatalf("%s: sink %d missing from second decision", label, sink)
		}
		exact(fmt.Sprintf("splits[%d]", sink), ra, rb)
	}
}

// TestRouterColdStartObservesZeroHistory is the regression test for the
// cold-start observation leak: the first batch's history pad must be a zero
// matrix, not the batch's own demand, so a decision for time t never
// observes the demand it is routing. Two fresh routers fed different first
// demands must therefore emit identical weights (both observed an all-zero
// history); under the leak each would have observed its own demand.
func TestRouterColdStartObservesZeroHistory(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	route := func(dm *DemandMatrix) *Decision {
		t.Helper()
		router, err := NewRouter(agent, g, WithRouterWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		defer router.Close()
		d, err := router.Route(context.Background(), dm)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dA, dB := route(testDemand(g, 101)), route(testDemand(g, 202))
	if len(dA.Weights) != len(dB.Weights) {
		t.Fatalf("weights sized %d vs %d", len(dA.Weights), len(dB.Weights))
	}
	for ei := range dA.Weights {
		if dA.Weights[ei] != dB.Weights[ei] {
			t.Fatalf("edge %d: cold-start weights differ (%g vs %g): first decision observed its own demand", ei, dA.Weights[ei], dB.Weights[ei])
		}
	}
	if dA.Gamma != dB.Gamma {
		t.Fatalf("cold-start gammas differ: %g vs %g", dA.Gamma, dB.Gamma)
	}
}

// newUncachedRouter builds a router with the serving fast-path caches
// disabled: the baseline of the golden test and the speedup gate.
func newUncachedRouter(t *testing.T, agent *Agent, g *Graph, opts ...RouterOption) *Router {
	t.Helper()
	cfg := resolveRouterConfig(opts)
	cfg.noCache = true
	router, err := newRouter(agent, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return router
}

// TestRouterCacheGoldenDecisions: for the same request sequence — steady
// stretches that hit both caches, demand changes that miss — every Decision
// must be bit-identical with caching on and off.
func TestRouterCacheGoldenDecisions(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	a, b := testDemand(g, 301), testDemand(g, 302)
	seq := []*DemandMatrix{a, a, a, b, a, b.Clone(), b, b}

	cached, err := NewRouter(agent, g, WithRouterWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	uncached := newUncachedRouter(t, agent, g, WithRouterWorkers(1))
	defer uncached.Close()

	for i, dm := range seq {
		dc, err := cached.Route(context.Background(), dm)
		if err != nil {
			t.Fatal(err)
		}
		du, err := uncached.Route(context.Background(), dm)
		if err != nil {
			t.Fatal(err)
		}
		sameDecision(t, fmt.Sprintf("request %d", i), dc, du)
	}
	if hits := cached.Stats().PolicyCacheHits + cached.Stats().StrategyHits; hits == 0 {
		t.Fatal("golden sequence never hit a cache; the test is not exercising the fast path")
	}
	if s := uncached.Stats(); s.PolicyCacheHits != 0 || s.StrategyHits != 0 {
		t.Fatalf("uncached router reported cache hits: %+v", s)
	}
}

// TestRouterSteadyDemandCacheHits pins the cache counters under steady
// demand: once the history window stabilises, batches are answered without
// forward passes (policy-output cache) and without rebuilding splitting
// ratios (strategy cache) — including for value-equal demand decoded into
// fresh allocations, the serving-gateway case.
func TestRouterSteadyDemandCacheHits(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g, WithRouterWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	ctx := context.Background()
	dm := testDemand(g, 400)

	var last *Decision
	var steady *Decision
	for i := 0; i < 5; i++ {
		d, err := router.Route(ctx, dm)
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			steady = d // memory=2: window is [dm,dm] from here on
		}
		last = d
	}
	sameDecision(t, "steady state", steady, last)

	stats := router.Stats()
	// Batches 4 and 5 see the same [dm,dm] window as batch 3.
	if stats.PolicyCacheHits != 2 {
		t.Fatalf("policy cache hits %d, want 2 (stats %+v)", stats.PolicyCacheHits, stats)
	}
	if stats.ForwardPasses != stats.Batches-stats.PolicyCacheHits {
		t.Fatalf("forward passes %d for %d batches with %d cache hits", stats.ForwardPasses, stats.Batches, stats.PolicyCacheHits)
	}
	if stats.StrategyHits < 2 {
		t.Fatalf("strategy hits %d, want >= 2", stats.StrategyHits)
	}
	if stats.StrategyHits+stats.StrategyMisses != stats.Batches {
		t.Fatalf("strategy hits %d + misses %d != batches %d", stats.StrategyHits, stats.StrategyMisses, stats.Batches)
	}

	// A value-equal clone must hit too: same demand decoded afresh.
	d, err := router.Route(ctx, dm.Clone())
	if err != nil {
		t.Fatal(err)
	}
	sameDecision(t, "cloned steady demand", steady, d)
	if got := router.Stats().PolicyCacheHits; got != 3 {
		t.Fatalf("policy cache hits after clone %d, want 3", got)
	}
}

// TestRouterEvalWorkersBitIdentical: sink-parallel evaluation must produce
// decisions bit-identical to the sequential path at any worker count.
func TestRouterEvalWorkersBitIdentical(t *testing.T) {
	g := NSFNet()
	agent := testRouterAgent(t)
	sequential, err := NewRouter(agent, g, WithRouterWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sequential.Close()
	parallel, err := NewRouter(agent, g, WithRouterWorkers(1), WithEvalWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.Close()

	for i := 0; i < 4; i++ {
		dm := testDemand(g, int64(500+i))
		ds, err := sequential.Route(context.Background(), dm)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := parallel.Route(context.Background(), dm)
		if err != nil {
			t.Fatal(err)
		}
		sameDecision(t, fmt.Sprintf("request %d", i), ds, dp)
	}
}

// TestRouterBatchWindow: a serving worker with a batch window keeps
// gathering concurrent requests instead of serving singletons, and Close
// does not wait out the window.
func TestRouterBatchWindow(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g, WithRouterWorkers(1), WithMaxBatch(8), WithBatchWindow(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	const perCaller = 4
	var wg sync.WaitGroup
	errCh := make(chan error, callers*perCaller)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				if _, err := router.Route(context.Background(), testDemand(g, int64(c*10+i))); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	stats := router.Stats()
	if stats.Requests != callers*perCaller {
		t.Fatalf("served %d requests, want %d", stats.Requests, callers*perCaller)
	}
	if stats.Batches >= stats.Requests {
		t.Fatalf("batch window never batched: %d batches for %d requests", stats.Batches, stats.Requests)
	}
	start := time.Now()
	router.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("close took %v with a 2ms batch window", elapsed)
	}
	if _, err := router.Route(context.Background(), testDemand(g, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
