package gddr

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"gddr/internal/routing"
	"gddr/internal/traffic"
)

// testRouterAgent returns a small untrained GNN agent (untrained agents
// route meaningfully thanks to the capacity-aware warm start).
func testRouterAgent(t *testing.T) *Agent {
	t.Helper()
	agent, err := NewAgent(GNNPolicy, nil, WithMemory(2), WithGNNSize(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

func testDemand(g *Graph, seed int64) *DemandMatrix {
	rng := rand.New(rand.NewSource(seed))
	return traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
}

func TestRouterRouteDecision(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	dm := testDemand(g, 1)
	d, err := router.Route(context.Background(), dm)
	if err != nil {
		t.Fatal(err)
	}
	ne := g.NumEdges()
	if len(d.Weights) != ne || len(d.Loads) != ne || len(d.Utilization) != ne {
		t.Fatalf("decision sized %d/%d/%d for %d edges", len(d.Weights), len(d.Loads), len(d.Utilization), ne)
	}
	for ei, w := range d.Weights {
		if w <= 0 {
			t.Fatalf("edge %d has non-positive weight %g", ei, w)
		}
	}
	if d.Gamma <= 0 {
		t.Fatalf("non-positive gamma %g", d.Gamma)
	}
	if d.MaxUtilization <= 0 {
		t.Fatalf("max utilisation %g for non-empty demand", d.MaxUtilization)
	}
	// The decision must agree with the routing substrate evaluated on the
	// same weights.
	res, err := routing.EvaluateWeights(g, dm, d.Weights, d.Gamma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxUtilization-d.MaxUtilization) > 1e-9 {
		t.Fatalf("decision MLU %g != substrate MLU %g", d.MaxUtilization, res.MaxUtilization)
	}
	// Splitting ratios: per destination, the kept out-edges of every
	// non-sink vertex sum to 1 (or 0 when the vertex is dropped).
	for sink, ratio := range d.Splits {
		for v := 0; v < g.NumNodes(); v++ {
			if v == sink {
				continue
			}
			sum := 0.0
			for _, ei := range g.OutEdges(v) {
				if ratio[ei] < 0 || ratio[ei] > 1+1e-9 {
					t.Fatalf("sink %d edge %d ratio %g outside [0,1]", sink, ei, ratio[ei])
				}
				sum += ratio[ei]
			}
			if math.Abs(sum-1) > 1e-9 && sum > 1e-12 {
				t.Fatalf("sink %d vertex %d ratios sum to %g", sink, v, sum)
			}
		}
	}
}

func TestRouterConcurrentRoute(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g, WithRouterWorkers(4), WithMaxBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	const callers = 16
	const perCaller = 5
	var wg sync.WaitGroup
	errCh := make(chan error, callers*perCaller)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				dm := testDemand(g, int64(c*100+i))
				d, err := router.Route(context.Background(), dm)
				if err != nil {
					errCh <- err
					return
				}
				if d.MaxUtilization <= 0 {
					errCh <- errors.New("zero max utilisation")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	stats := router.Stats()
	if stats.Requests != callers*perCaller {
		t.Fatalf("served %d requests, want %d", stats.Requests, callers*perCaller)
	}
	if stats.Batches > stats.Requests {
		t.Fatalf("more batches (%d) than requests (%d)", stats.Batches, stats.Requests)
	}
	// Full-action policies run exactly one forward pass per batch, so
	// batched concurrent callers share passes.
	if stats.ForwardPasses != stats.Batches {
		t.Fatalf("%d forward passes for %d batches", stats.ForwardPasses, stats.Batches)
	}
}

func TestRouterIterativeAgent(t *testing.T) {
	g := NSFNet()
	agent, err := NewAgent(GNNIterativePolicy, nil, WithMemory(2), WithGNNSize(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(agent, g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	d, err := router.Route(context.Background(), testDemand(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d.Gamma <= 0 || d.MaxUtilization <= 0 {
		t.Fatalf("degenerate iterative decision: gamma %g, MLU %g", d.Gamma, d.MaxUtilization)
	}
}

func TestRouterRejectsMismatchedAgent(t *testing.T) {
	// An MLP agent is shape-bound to its training topology; the router
	// probe must reject it on a different graph at construction.
	abilene := Abilene()
	rng := rand.New(rand.NewSource(4))
	seqs, err := traffic.Sequences(1, abilene.NumNodes(), 6, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(MLPPolicy, NewScenario(abilene, seqs), WithMemory(2), WithMLPHidden(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(agent, NSFNet()); err == nil {
		t.Fatal("router accepted an MLP agent bound to a different topology")
	}
	router, err := NewRouter(agent, abilene)
	if err != nil {
		t.Fatalf("router rejected the MLP agent on its own topology: %v", err)
	}
	router.Close()
}

func TestRouterRejectsWrongDemandSize(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if _, err := router.Route(context.Background(), traffic.NewDemandMatrix(3)); err == nil {
		t.Fatal("mismatched demand matrix accepted")
	}
	if _, err := router.Route(context.Background(), nil); err == nil {
		t.Fatal("nil demand matrix accepted")
	}
}

func TestRouterCancelledContext(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := router.Route(ctx, testDemand(g, 5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRouterClose(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.Route(context.Background(), testDemand(g, 6)); err != nil {
		t.Fatal(err)
	}
	router.Close()
	router.Close() // idempotent
	if _, err := router.Route(context.Background(), testDemand(g, 7)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// The former sentinel name must keep matching.
	if _, err := router.Route(context.Background(), testDemand(g, 7)); !errors.Is(err, ErrRouterClosed) {
		t.Fatalf("got %v, want ErrRouterClosed alias to match", err)
	}
}

// TestRouterCloseUnderLoad closes the router while concurrent callers are
// mid-flight and while other goroutines call Close concurrently: every
// Route call must return either a valid decision or ErrClosed — never hang
// or panic — and every Close must return. Run under -race.
func TestRouterCloseUnderLoad(t *testing.T) {
	g := Abilene()
	router, err := NewRouter(testRouterAgent(t), g, WithRouterWorkers(2), WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, callers*16)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				d, err := router.Route(context.Background(), testDemand(g, int64(c*1000+i)))
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						errCh <- err
					}
					return
				}
				if d.MaxUtilization <= 0 {
					errCh <- errors.New("degenerate decision under load")
					return
				}
			}
		}(c)
	}
	// Let some traffic through, then close from several goroutines at once.
	if _, err := router.Route(context.Background(), testDemand(g, 1)); err != nil {
		t.Fatal(err)
	}
	var closers sync.WaitGroup
	for i := 0; i < 3; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			router.Close()
		}()
	}
	closers.Wait()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if _, err := router.Route(context.Background(), testDemand(g, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("route after close: got %v, want ErrClosed", err)
	}
}

func TestRouterSaveLoadRoundTrip(t *testing.T) {
	g := Abilene()
	trained := testRouterAgent(t)
	var model bytes.Buffer
	if err := trained.Save(&model); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewAgent(GNNPolicy, nil, WithMemory(2), WithGNNSize(8, 1), WithSeed(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Load(&model); err != nil {
		t.Fatal(err)
	}

	dm := testDemand(g, 8)
	decide := func(a *Agent) *Decision {
		t.Helper()
		router, err := NewRouter(a, g)
		if err != nil {
			t.Fatal(err)
		}
		defer router.Close()
		d, err := router.Route(context.Background(), dm)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := decide(trained)
	d2 := decide(loaded)
	if d1.MaxUtilization != d2.MaxUtilization {
		t.Fatalf("loaded agent routes differently: MLU %g vs %g", d1.MaxUtilization, d2.MaxUtilization)
	}
	for ei := range d1.Weights {
		if d1.Weights[ei] != d2.Weights[ei] {
			t.Fatalf("edge %d weight differs after load: %g vs %g", ei, d1.Weights[ei], d2.Weights[ei])
		}
	}
}

func TestRouterWarmHistory(t *testing.T) {
	g := Abilene()
	agent := testRouterAgent(t)
	hist := []*DemandMatrix{testDemand(g, 9), testDemand(g, 10)}
	router, err := NewRouter(agent, g, WithWarmHistory(hist...))
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if _, err := router.Route(context.Background(), testDemand(g, 11)); err != nil {
		t.Fatal(err)
	}
	// A mis-sized warm history is rejected up front.
	if _, err := NewRouter(agent, g, WithWarmHistory(traffic.NewDemandMatrix(3))); err == nil {
		t.Fatal("mismatched warm history accepted")
	}
}
