package gddr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gddr/internal/metrics"
)

// Engine is the live network-operations serving surface: a Router whose
// topology and model can change at runtime without dropping traffic. It is
// the layer that makes the paper's central claim — GNN policies generalise
// across topology changes — exercisable at serve time: Apply mutates the
// topology through typed events and the same trained policy immediately
// routes on the mutated graph, while SwapAgent hot-reloads the model.
//
// Internally the engine keeps an immutable serving snapshot (one or more
// replica Routers bound to one frozen graph and sharing one demand history
// — see WithReplicas) behind an atomic pointer. Route reads the snapshot
// lock-free and spreads across the replicas round-robin; Apply and the swap
// operations build a fully-validated replacement snapshot — mutated graph,
// consistently renumbered demand history, probe-checked policy, a fresh
// replica set — then publish it atomically and drain the old one.
// In-flight Route calls complete on the snapshot that accepted them; calls
// that lose the race to a retiring snapshot transparently retry on the new
// one, so callers never observe a swap as an error. A failed event or swap
// leaves the current snapshot serving untouched.
type Engine struct {
	cfg routerConfig // workers/maxBatch reused for every rebuild

	mu     sync.Mutex // serialises Apply/SwapAgent/SwapCheckpoint/Close
	closed bool       //gddr:guardedby mu

	state atomic.Pointer[engineState] //gddr:guardedby mu

	// rr spreads Route calls across the current snapshot's read replicas
	// round-robin; a single counter (rather than per-state) keeps the spread
	// even across republishes.
	rr atomic.Uint64

	eventsApplied atomic.Int64
	agentSwaps    atomic.Int64

	// Counters of retired snapshots, folded in as routers are replaced so
	// Stats stays cumulative across topology and model swaps.
	retired RouterStats //gddr:guardedby mu

	// registry is shared with every snapshot's router, so serving counters
	// and histograms stay cumulative across topology and model swaps; met
	// adds the engine's own event/swap instruments on top.
	registry *metrics.Registry
	met      *engineMetrics
}

// engineMetrics bundles the engine's registry instruments: event and swap
// counters plus the timing distributions of the snapshot-replacement
// machinery (rebuild = building the validated replacement while the old
// snapshot still serves; drain = waiting out the old snapshot's in-flight
// batches; apply = the whole Apply call).
type engineMetrics struct {
	eventsApplied  *metrics.Counter
	agentSwaps     *metrics.Counter
	applySeconds   *metrics.Histogram
	rebuildSeconds *metrics.Histogram
	drainSeconds   *metrics.Histogram
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	return &engineMetrics{
		eventsApplied:  reg.Counter("gddr_engine_events_applied_total", "Topology events successfully applied."),
		agentSwaps:     reg.Counter("gddr_engine_agent_swaps_total", "Successful hot model swaps."),
		applySeconds:   reg.Histogram("gddr_engine_event_apply_seconds", "End-to-end Apply duration (validation, rebuild, drain, publish).", metrics.LatencyBuckets()),
		rebuildSeconds: reg.Histogram("gddr_engine_snapshot_rebuild_seconds", "Building and probe-validating a replacement serving snapshot.", metrics.LatencyBuckets()),
		drainSeconds:   reg.Histogram("gddr_engine_snapshot_drain_seconds", "Draining in-flight requests off a retiring snapshot.", metrics.LatencyBuckets()),
	}
}

// engineState is one immutable serving snapshot: N replica routers cloned
// from the same (agent, graph, history) state, sharing one demand history
// so any replica's decisions observe the full traffic stream. The replica
// set is published and replaced as a whole behind the engine's atomic state
// pointer — no request can ever observe a half-published set. next is
// closed when the snapshot is replaced (or the engine closes), waking Route
// callers that hit the drain window of a swap. nodes/edges cache the
// topology's shape at build time so Stats and Snapshot never touch the
// graph on the read path.
type engineState struct {
	routers []*Router
	hist    *demandHistory
	agent   *Agent
	version int64
	nodes   int
	edges   int
	next    chan struct{}
}

// EngineStats aggregates serving activity across every topology and model
// the engine has served.
type EngineStats struct {
	RouterStats
	// EventsApplied counts topology events successfully applied.
	EventsApplied int64 `json:"events_applied"`
	// AgentSwaps counts successful hot model swaps.
	AgentSwaps int64 `json:"agent_swaps"`
	// TopologyVersion increments on every successful Apply or swap; version
	// 1 is the topology the engine was built with.
	TopologyVersion int64 `json:"topology_version"`
	// Nodes and Edges describe the current topology.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Replicas is the number of read replicas serving the current snapshot.
	Replicas int `json:"replicas"`
}

// TopologySnapshot is the constant-time description of the serving
// snapshot: the fields handlers would otherwise recompute from Graph().
// They are cached when the snapshot is built, so reading them is one atomic
// load — no lock, no graph traversal.
type TopologySnapshot struct {
	// Version is the topology version (0 after Close).
	Version int64 `json:"version"`
	// Nodes and Edges describe the topology currently served.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Replicas is the number of read replicas serving the snapshot.
	Replicas int `json:"replicas"`
}

// Snapshot returns the current topology version, shape, and replica count
// in one atomic read. It is the cheap accessor behind /stats and
// /t/{id}/stats; use Stats for the cumulative serving counters.
func (e *Engine) Snapshot() TopologySnapshot {
	st := e.state.Load()
	if st == nil {
		return TopologySnapshot{}
	}
	return TopologySnapshot{
		Version:  st.version,
		Nodes:    st.nodes,
		Edges:    st.edges,
		Replicas: len(st.routers),
	}
}

// NewEngine builds a dynamic serving engine for agent on topology g. The
// router options (workers, batch bound, warm history) configure the initial
// snapshot; workers and batch bound are reused for every snapshot a
// topology event or model swap builds. The same probe validation as
// NewRouter applies, and re-applies whenever it can fail: on every model
// swap, and on topology events under a shape-bound policy (MLP), where an
// event the policy's fixed dimensions cannot absorb is rejected with the
// old topology still serving. Graph-size-agnostic GNN agents skip the
// re-probe on topology events, keeping event application cheap.
func NewEngine(agent *Agent, g *Graph, opts ...RouterOption) (*Engine, error) {
	cfg := resolveRouterConfig(opts)
	// Pin one registry for the engine's lifetime before the first snapshot
	// is built: every rebuilt router registers into it idempotently, so the
	// serving instruments are cumulative across topology and model swaps.
	if cfg.metrics == nil {
		cfg.metrics = metrics.NewRegistry()
	}
	st, err := buildEngineState(agent, g, cfg, cfg.history, false, 1)
	if err != nil {
		return nil, err
	}
	cfg.history = nil // warm history applies to the first snapshot only
	e := &Engine{cfg: cfg, registry: cfg.metrics, met: newEngineMetrics(cfg.metrics)}
	e.registry.GaugeFunc("gddr_engine_topology_version", "Current topology version (0 after Close).", func() float64 {
		return float64(e.Version())
	})
	e.registry.GaugeFunc("gddr_engine_topology_nodes", "Nodes in the topology currently served.", func() float64 {
		return float64(e.Snapshot().Nodes)
	})
	e.registry.GaugeFunc("gddr_engine_topology_edges", "Edges in the topology currently served.", func() float64 {
		return float64(e.Snapshot().Edges)
	})
	e.registry.GaugeFunc("gddr_engine_replicas", "Read replicas serving the current snapshot (0 after Close).", func() float64 {
		return float64(e.Snapshot().Replicas)
	})
	e.state.Store(st)
	return e, nil
}

// buildEngineState builds one serving snapshot: cfg.replicas routers around
// (agent, g), all sharing a fresh demand history seeded with hist. The
// first replica is probe-validated unless skipProbe (it stands for all of
// them — every replica runs the same policy on the same graph); the rest
// always skip the probe. On any failure the routers built so far are closed
// and nothing is published.
func buildEngineState(agent *Agent, g *Graph, cfg routerConfig, hist []*DemandMatrix, skipProbe bool, version int64) (*engineState, error) {
	if agent == nil {
		return nil, fmt.Errorf("gddr: engine needs an agent")
	}
	for _, dm := range hist {
		if dm == nil || dm.N != g.NumNodes() {
			return nil, fmt.Errorf("gddr: warm-history matrix does not match the %d-node topology", g.NumNodes())
		}
	}
	shared := newDemandHistory(agent.envConfig().Memory)
	shared.set(hist)
	cfg.history = nil
	cfg.hist = shared
	routers := make([]*Router, cfg.replicas)
	for i := range routers {
		cfg.skipProbe = skipProbe || i > 0
		r, err := newRouter(agent, g, cfg)
		if err != nil {
			for _, prev := range routers[:i] {
				prev.Close()
			}
			return nil, err
		}
		routers[i] = r
	}
	return &engineState{
		routers: routers,
		hist:    shared,
		agent:   agent,
		version: version,
		nodes:   g.NumNodes(),
		edges:   g.NumEdges(),
		next:    make(chan struct{}),
	}, nil
}

// Metrics returns the registry every snapshot's serving instruments and the
// engine's own event/swap metrics live in — the process's /metrics source.
func (e *Engine) Metrics() *metrics.Registry { return e.registry }

// Route computes the routing decision for dm on the current topology,
// spreading calls round-robin across the snapshot's read replicas (see
// WithReplicas). It is safe for concurrent use and never fails because of a
// concurrent Apply or swap: a request that races with a snapshot retirement
// waits out the drain (at most one in-flight batch) and retries on the
// replacement. After Close it returns ErrClosed; a demand matrix sized for
// a stale topology returns a size-mismatch error. As with Router.Route, dm
// joins the demand history and must not be modified after the call.
//
//gddr:hotpath
func (e *Engine) Route(ctx context.Context, dm *DemandMatrix) (*Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		st := e.state.Load()
		if st == nil {
			return nil, ErrClosed
		}
		r := st.routers[int(e.rr.Add(1)-1)%len(st.routers)]
		d, err := r.Route(ctx, dm)
		if errors.Is(err, ErrClosed) {
			select {
			case <-st.next: // snapshot replaced (or engine closed); retry
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return d, err
	}
}

// Apply atomically applies a sequence of topology events: the routing state
// is rebuilt on the mutated graph, the demand history is renumbered
// consistently (dropped rows for removed nodes, zero rows for added ones),
// the serving fast-path caches (policy output and routing strategy) die
// with the old snapshot so a cached strategy can never route on a stale
// graph, and the policy is probe-validated on the new topology before it
// serves. Events are
// all-or-nothing: the first invalid event (unknown link, disconnecting
// removal, ...) rejects the whole call and the current topology keeps
// serving. Apply returns only after in-flight requests on the old topology
// have drained, so once it returns every subsequent decision is computed on
// the mutated graph.
func (e *Engine) Apply(ctx context.Context, events ...Event) error {
	if len(events) == 0 {
		return fmt.Errorf("gddr: apply needs at least one event")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := e.state.Load()
	// GNN-family policies are graph-size agnostic and were probe-validated
	// when this agent first started serving, so topology rebuilds skip the
	// probe forward pass; shape-bound policies (MLP) re-probe and reject
	// events their fixed dimensions cannot absorb.
	skipProbe := st.agent.Kind == GNNPolicy || st.agent.Kind == GNNIterativePolicy
	transform := func(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
		return applyEvents(g, hist, events)
	}
	start := time.Now()
	if err := e.replaceLocked(st, st.agent, transform, skipProbe); err != nil {
		return err
	}
	e.met.applySeconds.Observe(time.Since(start).Seconds())
	e.eventsApplied.Add(int64(len(events)))
	e.met.eventsApplied.Add(int64(len(events)))
	return nil
}

// identityTransform is the model-swap transition: same graph, same history.
func identityTransform(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
	return g, hist, nil
}

// SwapAgent hot-swaps the serving model with zero downtime: the new agent
// is probe-validated on the current topology and inherits the demand
// history, requests in flight on the old policy drain to completion, and
// every subsequent decision uses the new policy. The old agent is rejected
// (and keeps serving) if the new one cannot route the current topology.
func (e *Engine) SwapAgent(ctx context.Context, agent *Agent) error {
	if agent == nil {
		return fmt.Errorf("gddr: swap needs an agent")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := e.state.Load()
	if err := e.replaceLocked(st, agent, identityTransform, false); err != nil {
		return err
	}
	e.agentSwaps.Add(1)
	e.met.agentSwaps.Inc()
	return nil
}

// SwapCheckpoint hot-reloads model parameters from a checkpoint written by
// Agent.Save: it builds a fresh agent with the serving agent's architecture
// and configuration, loads the checkpoint into it, and swaps it in like
// SwapAgent. The checkpoint must match the serving architecture; a
// mismatch is rejected with the old model still serving.
func (e *Engine) SwapCheckpoint(ctx context.Context, r io.Reader) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := e.state.Load()
	// The MLP constructor sizes itself from a scenario's topology; hand it
	// the topology currently being served.
	scen := &Scenario{Items: []ScenarioItem{{Graph: st.routers[0].Graph()}}}
	agent, err := NewAgent(st.agent.Kind, scen, WithConfig(st.agent.Config))
	if err != nil {
		return fmt.Errorf("gddr: rebuilding serving architecture: %w", err)
	}
	if err := agent.Load(r); err != nil {
		return fmt.Errorf("gddr: loading checkpoint: %w", err)
	}
	if err := e.replaceLocked(st, agent, identityTransform, false); err != nil {
		return err
	}
	e.agentSwaps.Add(1)
	e.met.agentSwaps.Inc()
	return nil
}

// replaceLocked swaps the serving snapshot to (agent, transform(old)) with
// validation before disruption and no lost observations:
//
//  1. The transition is validated and the replacement — every read replica
//     of it — built and probe-checked against a provisional history, all
//     while the old snapshot keeps serving — a rejected event or
//     incompatible agent returns here with serving untouched.
//  2. The old snapshot's replicas are drained, so its demand history is
//     final; Route callers arriving in this window wait on old.next
//     instead of failing.
//  3. The final history is re-transformed and carried into the replacement,
//     which is then published as a whole: the replica set swaps behind one
//     atomic store, so no request can observe a mix of old and new
//     replicas. No demand matrix routed on the old snapshot is lost, and
//     every post-return decision is computed on the new state.
//
// skipProbe elides the probe forward pass for rebuilds around an
// already-validated graph-size-agnostic agent. Callers hold e.mu.
func (e *Engine) replaceLocked(old *engineState, agent *Agent, transform func(*Graph, []*DemandMatrix) (*Graph, []*DemandMatrix, error), skipProbe bool) error {
	g := old.routers[0].Graph()
	g2, hist, err := transform(g, old.hist.snapshot())
	if err != nil {
		return err
	}
	rebuildStart := time.Now()
	st, err := buildEngineState(agent, g2, e.cfg, hist, skipProbe, old.version+1)
	if err != nil {
		return err
	}
	drainStart := time.Now()
	e.met.rebuildSeconds.Observe(drainStart.Sub(rebuildStart).Seconds())
	for _, r := range old.routers {
		r.Close()
	}
	e.met.drainSeconds.Observe(time.Since(drainStart).Seconds())
	// Re-transform the now-final history (in-flight batches may have pushed
	// matrices after the provisional snapshot). A transform that just
	// succeeded on the same graph cannot fail on a longer history; if it
	// somehow does, the provisional history stands.
	if _, final, err := transform(g, old.hist.snapshot()); err == nil {
		st.hist.set(final)
	}
	e.state.Store(st)
	close(old.next)
	for _, r := range old.routers {
		e.foldStatsLocked(r)
	}
	return nil
}

// foldStatsLocked folds a retired router's counters into the cumulative
// stats. Callers hold e.mu; the router must already be closed.
func (e *Engine) foldStatsLocked(r *Router) {
	s := r.Stats()
	e.retired.Requests += s.Requests
	e.retired.Batches += s.Batches
	e.retired.ForwardPasses += s.ForwardPasses
	e.retired.PolicyCacheHits += s.PolicyCacheHits
	e.retired.StrategyHits += s.StrategyHits
	e.retired.StrategyMisses += s.StrategyMisses
}

// Graph returns a copy of the topology currently being served (nil after
// Close). The copy is the caller's to modify; changing it does not affect
// the engine — topology changes go through Apply.
func (e *Engine) Graph() *Graph {
	st := e.state.Load()
	if st == nil {
		return nil
	}
	return st.routers[0].Graph().Clone()
}

// Version returns the current topology version: 1 at construction,
// incremented by every successful Apply, SwapAgent, or SwapCheckpoint.
// Zero after Close.
func (e *Engine) Version() int64 {
	st := e.state.Load()
	if st == nil {
		return 0
	}
	return st.version
}

// Stats returns cumulative serving counters across every topology and
// model the engine has served.
func (e *Engine) Stats() EngineStats {
	stats := EngineStats{
		EventsApplied: e.eventsApplied.Load(),
		AgentSwaps:    e.agentSwaps.Load(),
	}
	e.mu.Lock()
	stats.RouterStats = e.retired
	st := e.state.Load()
	e.mu.Unlock()
	if st != nil {
		for _, r := range st.routers {
			s := r.Stats()
			stats.Requests += s.Requests
			stats.Batches += s.Batches
			stats.ForwardPasses += s.ForwardPasses
			stats.PolicyCacheHits += s.PolicyCacheHits
			stats.StrategyHits += s.StrategyHits
			stats.StrategyMisses += s.StrategyMisses
		}
		stats.TopologyVersion = st.version
		stats.Nodes = st.nodes
		stats.Edges = st.edges
		stats.Replicas = len(st.routers)
	}
	return stats
}

// Close stops serving: in-flight requests drain, then every subsequent
// Route, Apply, or swap returns ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	st := e.state.Load()
	e.state.Store(nil)
	if st != nil {
		for _, r := range st.routers {
			r.Close()
		}
		close(st.next) // wake waiters; they observe the nil state
		for _, r := range st.routers {
			e.foldStatsLocked(r)
		}
	}
}
