package gddr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"gddr/internal/metrics"
)

// Engine is the live network-operations serving surface: a Router whose
// topology and model can change at runtime without dropping traffic. It is
// the layer that makes the paper's central claim — GNN policies generalise
// across topology changes — exercisable at serve time: Apply mutates the
// topology through typed events and the same trained policy immediately
// routes on the mutated graph, while SwapAgent hot-reloads the model.
//
// Internally the engine keeps an immutable serving snapshot (a Router bound
// to one frozen graph) behind an atomic pointer. Route reads the snapshot
// lock-free; Apply and the swap operations build a fully-validated
// replacement snapshot — mutated graph, consistently renumbered demand
// history, probe-checked policy — then publish it and drain the old one.
// In-flight Route calls complete on the snapshot that accepted them; calls
// that lose the race to a retiring snapshot transparently retry on the new
// one, so callers never observe a swap as an error. A failed event or swap
// leaves the current snapshot serving untouched.
type Engine struct {
	cfg routerConfig // workers/maxBatch reused for every rebuild

	mu     sync.Mutex // serialises Apply/SwapAgent/SwapCheckpoint/Close
	closed bool

	state atomic.Pointer[engineState]

	eventsApplied atomic.Int64
	agentSwaps    atomic.Int64

	// Counters of retired snapshots, folded in as routers are replaced so
	// Stats stays cumulative across topology and model swaps.
	retired RouterStats

	// registry is shared with every snapshot's router, so serving counters
	// and histograms stay cumulative across topology and model swaps; met
	// adds the engine's own event/swap instruments on top.
	registry *metrics.Registry
	met      *engineMetrics
}

// engineMetrics bundles the engine's registry instruments: event and swap
// counters plus the timing distributions of the snapshot-replacement
// machinery (rebuild = building the validated replacement while the old
// snapshot still serves; drain = waiting out the old snapshot's in-flight
// batches; apply = the whole Apply call).
type engineMetrics struct {
	eventsApplied  *metrics.Counter
	agentSwaps     *metrics.Counter
	applySeconds   *metrics.Histogram
	rebuildSeconds *metrics.Histogram
	drainSeconds   *metrics.Histogram
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	return &engineMetrics{
		eventsApplied:  reg.Counter("gddr_engine_events_applied_total", "Topology events successfully applied."),
		agentSwaps:     reg.Counter("gddr_engine_agent_swaps_total", "Successful hot model swaps."),
		applySeconds:   reg.Histogram("gddr_engine_event_apply_seconds", "End-to-end Apply duration (validation, rebuild, drain, publish).", metrics.LatencyBuckets()),
		rebuildSeconds: reg.Histogram("gddr_engine_snapshot_rebuild_seconds", "Building and probe-validating a replacement serving snapshot.", metrics.LatencyBuckets()),
		drainSeconds:   reg.Histogram("gddr_engine_snapshot_drain_seconds", "Draining in-flight requests off a retiring snapshot.", metrics.LatencyBuckets()),
	}
}

// engineState is one immutable serving snapshot. next is closed when the
// snapshot is replaced (or the engine closes), waking Route callers that
// hit the drain window of a swap.
type engineState struct {
	router  *Router
	agent   *Agent
	version int64
	next    chan struct{}
}

// EngineStats aggregates serving activity across every topology and model
// the engine has served.
type EngineStats struct {
	RouterStats
	// EventsApplied counts topology events successfully applied.
	EventsApplied int64 `json:"events_applied"`
	// AgentSwaps counts successful hot model swaps.
	AgentSwaps int64 `json:"agent_swaps"`
	// TopologyVersion increments on every successful Apply or swap; version
	// 1 is the topology the engine was built with.
	TopologyVersion int64 `json:"topology_version"`
	// Nodes and Edges describe the current topology.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

// NewEngine builds a dynamic serving engine for agent on topology g. The
// router options (workers, batch bound, warm history) configure the initial
// snapshot; workers and batch bound are reused for every snapshot a
// topology event or model swap builds. The same probe validation as
// NewRouter applies, and re-applies whenever it can fail: on every model
// swap, and on topology events under a shape-bound policy (MLP), where an
// event the policy's fixed dimensions cannot absorb is rejected with the
// old topology still serving. Graph-size-agnostic GNN agents skip the
// re-probe on topology events, keeping event application cheap.
func NewEngine(agent *Agent, g *Graph, opts ...RouterOption) (*Engine, error) {
	cfg := resolveRouterConfig(opts)
	// Pin one registry for the engine's lifetime before the first snapshot
	// is built: every rebuilt router registers into it idempotently, so the
	// serving instruments are cumulative across topology and model swaps.
	if cfg.metrics == nil {
		cfg.metrics = metrics.NewRegistry()
	}
	r, err := newRouter(agent, g, cfg)
	if err != nil {
		return nil, err
	}
	cfg.history = nil // warm history applies to the first snapshot only
	e := &Engine{cfg: cfg, registry: cfg.metrics, met: newEngineMetrics(cfg.metrics)}
	e.registry.GaugeFunc("gddr_engine_topology_version", "Current topology version (0 after Close).", func() float64 {
		return float64(e.Version())
	})
	e.registry.GaugeFunc("gddr_engine_topology_nodes", "Nodes in the topology currently served.", func() float64 {
		if st := e.state.Load(); st != nil {
			return float64(st.router.Graph().NumNodes())
		}
		return 0
	})
	e.registry.GaugeFunc("gddr_engine_topology_edges", "Edges in the topology currently served.", func() float64 {
		if st := e.state.Load(); st != nil {
			return float64(st.router.Graph().NumEdges())
		}
		return 0
	})
	e.state.Store(&engineState{router: r, agent: agent, version: 1, next: make(chan struct{})})
	return e, nil
}

// Metrics returns the registry every snapshot's serving instruments and the
// engine's own event/swap metrics live in — the process's /metrics source.
func (e *Engine) Metrics() *metrics.Registry { return e.registry }

// Route computes the routing decision for dm on the current topology. It is
// safe for concurrent use and never fails because of a concurrent Apply or
// swap: a request that races with a snapshot retirement waits out the
// drain (at most one in-flight batch) and retries on the replacement.
// After Close it returns ErrClosed; a demand matrix sized for a stale
// topology returns a size-mismatch error. As with Router.Route, dm joins
// the demand history and must not be modified after the call.
func (e *Engine) Route(ctx context.Context, dm *DemandMatrix) (*Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		st := e.state.Load()
		if st == nil {
			return nil, ErrClosed
		}
		d, err := st.router.Route(ctx, dm)
		if errors.Is(err, ErrClosed) {
			select {
			case <-st.next: // snapshot replaced (or engine closed); retry
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return d, err
	}
}

// Apply atomically applies a sequence of topology events: the routing state
// is rebuilt on the mutated graph, the demand history is renumbered
// consistently (dropped rows for removed nodes, zero rows for added ones),
// the serving fast-path caches (policy output and routing strategy) die
// with the old snapshot so a cached strategy can never route on a stale
// graph, and the policy is probe-validated on the new topology before it
// serves. Events are
// all-or-nothing: the first invalid event (unknown link, disconnecting
// removal, ...) rejects the whole call and the current topology keeps
// serving. Apply returns only after in-flight requests on the old topology
// have drained, so once it returns every subsequent decision is computed on
// the mutated graph.
func (e *Engine) Apply(ctx context.Context, events ...Event) error {
	if len(events) == 0 {
		return fmt.Errorf("gddr: apply needs at least one event")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := e.state.Load()
	// GNN-family policies are graph-size agnostic and were probe-validated
	// when this agent first started serving, so topology rebuilds skip the
	// probe forward pass; shape-bound policies (MLP) re-probe and reject
	// events their fixed dimensions cannot absorb.
	skipProbe := st.agent.Kind == GNNPolicy || st.agent.Kind == GNNIterativePolicy
	transform := func(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
		return applyEvents(g, hist, events)
	}
	start := time.Now()
	if err := e.replaceLocked(st, st.agent, transform, skipProbe); err != nil {
		return err
	}
	e.met.applySeconds.Observe(time.Since(start).Seconds())
	e.eventsApplied.Add(int64(len(events)))
	e.met.eventsApplied.Add(int64(len(events)))
	return nil
}

// identityTransform is the model-swap transition: same graph, same history.
func identityTransform(g *Graph, hist []*DemandMatrix) (*Graph, []*DemandMatrix, error) {
	return g, hist, nil
}

// SwapAgent hot-swaps the serving model with zero downtime: the new agent
// is probe-validated on the current topology and inherits the demand
// history, requests in flight on the old policy drain to completion, and
// every subsequent decision uses the new policy. The old agent is rejected
// (and keeps serving) if the new one cannot route the current topology.
func (e *Engine) SwapAgent(ctx context.Context, agent *Agent) error {
	if agent == nil {
		return fmt.Errorf("gddr: swap needs an agent")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := e.state.Load()
	if err := e.replaceLocked(st, agent, identityTransform, false); err != nil {
		return err
	}
	e.agentSwaps.Add(1)
	e.met.agentSwaps.Inc()
	return nil
}

// SwapCheckpoint hot-reloads model parameters from a checkpoint written by
// Agent.Save: it builds a fresh agent with the serving agent's architecture
// and configuration, loads the checkpoint into it, and swaps it in like
// SwapAgent. The checkpoint must match the serving architecture; a
// mismatch is rejected with the old model still serving.
func (e *Engine) SwapCheckpoint(ctx context.Context, r io.Reader) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st := e.state.Load()
	// The MLP constructor sizes itself from a scenario's topology; hand it
	// the topology currently being served.
	scen := &Scenario{Items: []ScenarioItem{{Graph: st.router.Graph()}}}
	agent, err := NewAgent(st.agent.Kind, scen, WithConfig(st.agent.Config))
	if err != nil {
		return fmt.Errorf("gddr: rebuilding serving architecture: %w", err)
	}
	if err := agent.Load(r); err != nil {
		return fmt.Errorf("gddr: loading checkpoint: %w", err)
	}
	if err := e.replaceLocked(st, agent, identityTransform, false); err != nil {
		return err
	}
	e.agentSwaps.Add(1)
	e.met.agentSwaps.Inc()
	return nil
}

// replaceLocked swaps the serving snapshot to (agent, transform(old)) with
// validation before disruption and no lost observations:
//
//  1. The transition is validated and the replacement built and
//     probe-checked against a provisional history, all while the old
//     snapshot keeps serving — a rejected event or incompatible agent
//     returns here with serving untouched.
//  2. The old snapshot is drained, so its demand history is final; Route
//     callers arriving in this window wait on old.next instead of failing.
//  3. The final history is re-transformed and carried into the replacement,
//     which is then published. No demand matrix routed on the old snapshot
//     is lost, and every post-return decision is computed on the new state.
//
// skipProbe elides the probe forward pass for rebuilds around an
// already-validated graph-size-agnostic agent. Callers hold e.mu.
func (e *Engine) replaceLocked(old *engineState, agent *Agent, transform func(*Graph, []*DemandMatrix) (*Graph, []*DemandMatrix, error), skipProbe bool) error {
	g := old.router.Graph()
	g2, hist, err := transform(g, old.router.historySnapshot())
	if err != nil {
		return err
	}
	cfg := e.cfg
	cfg.history = hist
	cfg.skipProbe = skipProbe
	rebuildStart := time.Now()
	r, err := newRouter(agent, g2, cfg)
	if err != nil {
		return err
	}
	drainStart := time.Now()
	e.met.rebuildSeconds.Observe(drainStart.Sub(rebuildStart).Seconds())
	old.router.Close()
	e.met.drainSeconds.Observe(time.Since(drainStart).Seconds())
	// Re-transform the now-final history (in-flight batches may have pushed
	// matrices after the provisional snapshot). A transform that just
	// succeeded on the same graph cannot fail on a longer history; if it
	// somehow does, the provisional history stands.
	if _, final, err := transform(g, old.router.historySnapshot()); err == nil {
		r.setHistory(final)
	}
	e.state.Store(&engineState{router: r, agent: agent, version: old.version + 1, next: make(chan struct{})})
	close(old.next)
	e.foldStatsLocked(old.router)
	return nil
}

// foldStatsLocked folds a retired router's counters into the cumulative
// stats. Callers hold e.mu; the router must already be closed.
func (e *Engine) foldStatsLocked(r *Router) {
	s := r.Stats()
	e.retired.Requests += s.Requests
	e.retired.Batches += s.Batches
	e.retired.ForwardPasses += s.ForwardPasses
	e.retired.PolicyCacheHits += s.PolicyCacheHits
	e.retired.StrategyHits += s.StrategyHits
	e.retired.StrategyMisses += s.StrategyMisses
}

// Graph returns a copy of the topology currently being served (nil after
// Close). The copy is the caller's to modify; changing it does not affect
// the engine — topology changes go through Apply.
func (e *Engine) Graph() *Graph {
	st := e.state.Load()
	if st == nil {
		return nil
	}
	return st.router.Graph().Clone()
}

// Version returns the current topology version: 1 at construction,
// incremented by every successful Apply, SwapAgent, or SwapCheckpoint.
// Zero after Close.
func (e *Engine) Version() int64 {
	st := e.state.Load()
	if st == nil {
		return 0
	}
	return st.version
}

// Stats returns cumulative serving counters across every topology and
// model the engine has served.
func (e *Engine) Stats() EngineStats {
	stats := EngineStats{
		EventsApplied: e.eventsApplied.Load(),
		AgentSwaps:    e.agentSwaps.Load(),
	}
	e.mu.Lock()
	stats.RouterStats = e.retired
	st := e.state.Load()
	e.mu.Unlock()
	if st != nil {
		s := st.router.Stats()
		stats.Requests += s.Requests
		stats.Batches += s.Batches
		stats.ForwardPasses += s.ForwardPasses
		stats.PolicyCacheHits += s.PolicyCacheHits
		stats.StrategyHits += s.StrategyHits
		stats.StrategyMisses += s.StrategyMisses
		stats.TopologyVersion = st.version
		g := st.router.Graph()
		stats.Nodes = g.NumNodes()
		stats.Edges = g.NumEdges()
	}
	return stats
}

// Close stops serving: in-flight requests drain, then every subsequent
// Route, Apply, or swap returns ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	st := e.state.Load()
	e.state.Store(nil)
	if st != nil {
		st.router.Close()
		close(st.next) // wake waiters; they observe the nil state
		e.foldStatsLocked(st.router)
	}
}
