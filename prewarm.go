package gddr

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Prewarm solves the LP optimum for every distinct demand matrix of the
// scenario concurrently and stores the results in the cache, so training
// and evaluation never block on an LP solve. Worker count is set with
// WithWorkers (default GOMAXPROCS) and WithProgress reports each completed
// solve. Cancelling ctx stops the workers before their next solve; the
// optima already computed stay cached. It returns the number of optima
// computed (cache hits excluded) and the first error encountered, if any.
func Prewarm(ctx context.Context, s *Scenario, cache *OptimalCache, opts ...Option) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if cache == nil {
		return 0, fmt.Errorf("gddr: prewarm needs a cache to fill")
	}
	set := newSettings(GNNPolicy).apply(opts)
	if set.metrics != nil {
		cache.Instrument(set.metrics)
	}
	workers := set.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		g  *Graph
		dm *DemandMatrix
	}
	// Deduplicate (graph, matrix) pairs — cyclical sequences repeat base
	// matrices by pointer.
	seen := make(map[job]bool)
	var jobs []job
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			for _, dm := range seq {
				j := job{g: item.Graph, dm: dm}
				if !seen[j] {
					seen[j] = true
					jobs = append(jobs, j)
				}
			}
		}
	}

	before := cache.Len()
	jobCh := make(chan job)
	errCh := make(chan error, 1)
	var completed int
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for j := range jobCh {
				if failed || ctx.Err() != nil {
					continue // keep draining so the producer never blocks
				}
				if _, err := cache.GetContext(ctx, j.g, j.dm); err != nil {
					select {
					case errCh <- fmt.Errorf("gddr: prewarm: %w", err):
					default: // keep only the first error
					}
					failed = true
					continue
				}
				if set.progress != nil {
					// The counter increment stays inside the mutex so Step
					// values reach the callback in increasing order.
					progressMu.Lock()
					completed++
					set.progress(Progress{Stage: "prewarm", Step: completed, Total: len(jobs)})
					progressMu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return cache.Len() - before, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return cache.Len() - before, err
	}
	return cache.Len() - before, nil
}
