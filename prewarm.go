package gddr

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"gddr/internal/env"
)

// Prewarm solves the LP optimum for every demand matrix of the scenario and
// stores the results in the cache, so training and evaluation never block
// on an LP solve. Sequences are distributed across workers (count set with
// WithWorkers, default GOMAXPROCS); within a sequence the solves run in
// canonical chain order, each warm-started from the previous matrix's final
// simplex basis, which makes the fill near-incremental. WithProgress
// reports each completed solve. Cancelling ctx stops the workers before
// their next solve; the optima already computed stay cached. It returns the
// number of optima computed (cache hits excluded) and the first error
// encountered, if any.
func Prewarm(ctx context.Context, s *Scenario, cache *OptimalCache, opts ...Option) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if cache == nil {
		return 0, fmt.Errorf("gddr: prewarm needs a cache to fill")
	}
	set := newSettings(GNNPolicy).apply(opts)
	if set.metrics != nil {
		cache.Instrument(set.metrics)
	}
	workers := set.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		g   *Graph
		seq []*DemandMatrix
	}
	var jobs []job
	// Total distinct (graph, matrix) pairs, for progress reporting —
	// cyclical sequences repeat base matrices by pointer and cost only one
	// solve each.
	type pair struct {
		g  *Graph
		dm *DemandMatrix
	}
	seen := make(map[pair]bool)
	total := 0
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			jobs = append(jobs, job{g: item.Graph, seq: seq})
			for _, dm := range seq {
				p := pair{g: item.Graph, dm: dm}
				if !seen[p] {
					seen[p] = true
					total++
				}
			}
		}
	}

	before := cache.Len()
	jobCh := make(chan job)
	errCh := make(chan error, 1)
	var completed int
	var progressMu sync.Mutex
	onSolve := func(int) {
		if set.progress == nil {
			return
		}
		// The counter increment stays inside the mutex so Step values
		// reach the callback in increasing order.
		progressMu.Lock()
		completed++
		set.progress(Progress{Stage: "prewarm", Step: completed, Total: total})
		progressMu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for j := range jobCh {
				if failed || ctx.Err() != nil {
					continue // keep draining so the producer never blocks
				}
				if err := cache.WarmSequence(ctx, j.g, j.seq, env.MaxUtilization, onSolve); err != nil {
					select {
					case errCh <- fmt.Errorf("gddr: prewarm: %w", err):
					default: // keep only the first error
					}
					failed = true
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return cache.Len() - before, err
	default:
	}
	if err := ctx.Err(); err != nil {
		return cache.Len() - before, err
	}
	return cache.Len() - before, nil
}
