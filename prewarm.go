package gddr

import (
	"fmt"
	"runtime"
	"sync"
)

// Prewarm solves the LP optimum for every distinct demand matrix of the
// scenario concurrently with at most workers goroutines (0 = GOMAXPROCS)
// and stores the results in the cache. Training and evaluation then never
// block on an LP solve. It returns the number of optima computed (cache
// hits excluded) and the first error encountered, if any.
func Prewarm(s *Scenario, cache *OptimalCache, workers int) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if cache == nil {
		return 0, fmt.Errorf("gddr: prewarm needs a cache to fill")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		g  *Graph
		dm *DemandMatrix
	}
	// Deduplicate (graph, matrix) pairs — cyclical sequences repeat base
	// matrices by pointer.
	seen := make(map[job]bool)
	var jobs []job
	for _, item := range s.Items {
		for _, seq := range item.Sequences {
			for _, dm := range seq {
				j := job{g: item.Graph, dm: dm}
				if !seen[j] {
					seen[j] = true
					jobs = append(jobs, j)
				}
			}
		}
	}

	before := cache.Len()
	jobCh := make(chan job)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for j := range jobCh {
				if failed {
					continue // keep draining so the producer never blocks
				}
				if _, err := cache.Get(j.g, j.dm); err != nil {
					select {
					case errCh <- fmt.Errorf("gddr: prewarm: %w", err):
					default: // keep only the first error
					}
					failed = true
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return cache.Len() - before, err
	default:
		return cache.Len() - before, nil
	}
}
