package gddr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gddr/internal/env"
	"gddr/internal/policy"
	"gddr/internal/rl"
	"gddr/internal/routing"
	"gddr/internal/traffic"
)

// ErrClosed is the sentinel returned by Route (and every Engine operation)
// after Close: serving has stopped and no request will be accepted. Test
// with errors.Is.
var ErrClosed = errors.New("gddr: serving engine is closed")

// ErrRouterClosed is the former name of ErrClosed, kept as an alias so
// existing errors.Is checks keep working.
var ErrRouterClosed = ErrClosed

// Decision is the routing decision for one demand matrix: the learned edge
// weights, the softmin spread, the fully-specified splitting ratios they
// induce, and the link loads and utilisation of applying that routing to
// the requested demand. All fields are owned by the caller.
type Decision struct {
	// Weights holds one strictly positive weight per edge (graph edge
	// order), as emitted by the policy's action head.
	Weights []float64 `json:"weights"`
	// Gamma is the softmin spread used to derive the splitting ratios; the
	// iterative policy learns it per decision, the others use the
	// configured value.
	Gamma float64 `json:"gamma"`
	// Splits maps each destination node with demand to its per-edge
	// splitting ratios: Splits[sink][e] is the fraction of traffic
	// transiting edge e's source that is destined for sink and forwarded
	// over e (zero on edges dropped from the destination DAG).
	Splits map[int][]float64 `json:"splits"`
	// Loads is the per-edge traffic carried under this routing.
	Loads []float64 `json:"loads"`
	// Utilization is the per-edge load/capacity ratio.
	Utilization []float64 `json:"utilization"`
	// MaxUtilization is the maximum link utilisation, the paper's objective.
	MaxUtilization float64 `json:"max_utilization"`
}

// RouterStats counts serving activity since the router started.
type RouterStats struct {
	// Requests is the number of demand matrices routed.
	Requests int64 `json:"requests"`
	// Batches is the number of request batches served; Requests/Batches is
	// the mean batch size.
	Batches int64 `json:"batches"`
	// ForwardPasses is the number of policy forward passes run. Concurrent
	// callers batched together share one pass (the iterative policy runs
	// |E| passes per batch).
	ForwardPasses int64 `json:"forward_passes"`
}

// RouterOption configures NewRouter.
type RouterOption func(*routerConfig)

type routerConfig struct {
	workers  int
	maxBatch int
	history  []*DemandMatrix
	// skipProbe elides the construction-time probe forward pass. Only the
	// Engine sets it, when rebuilding a snapshot around a graph-size-
	// agnostic (GNN-family) agent that an earlier snapshot already
	// validated: the probe exists to catch shape-bound policies, and
	// skipping it keeps high-rate topology events off the forward-pass
	// budget.
	skipProbe bool
}

// WithRouterWorkers sets the number of serving goroutines (default
// GOMAXPROCS). One worker maximises request batching; more workers
// maximise forward-pass parallelism.
func WithRouterWorkers(n int) RouterOption {
	return func(c *routerConfig) { c.workers = n }
}

// WithMaxBatch bounds how many concurrent requests share one policy
// forward pass (default 16).
func WithMaxBatch(n int) RouterOption {
	return func(c *routerConfig) { c.maxBatch = n }
}

// WithWarmHistory seeds the router's demand history (oldest first) so the
// first decisions observe real traffic instead of a cold-start pad — e.g.
// the tail of the training scenario.
func WithWarmHistory(dms ...*DemandMatrix) RouterOption {
	return func(c *routerConfig) { c.history = dms }
}

// Router wraps a trained Agent as a thread-safe inference engine for one
// frozen topology: the "GNN as deployable router" of the paper's
// motivation, and the single-graph fast path underneath Engine. It keeps a
// sliding window of the most recent demand matrices (the policy's
// observation history) and answers Route calls with fully-specified
// routing decisions. Concurrent callers are batched so that requests
// arriving while the policy is busy share a single forward pass.
//
// A Router never changes its graph: topology events are expressed by
// building a fresh Router on the mutated graph and retiring the old one,
// which is exactly what Engine.Apply does. Use an Engine when the topology
// or the model must change at runtime; use a bare Router when neither does
// and the indirection is unwanted.
//
// The agent must not be trained while the router is serving; training
// mutates the policy parameters the forward passes read.
type Router struct {
	agent    *Agent
	g        *Graph
	ecfg     env.Config
	base     []float64 // per-edge base weights of the action mapping
	maxBatch int

	mu      sync.Mutex
	history []*DemandMatrix // most recent matrices, oldest first, len <= Memory

	reqCh     chan *routeRequest
	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	requests      atomic.Int64
	batches       atomic.Int64
	forwardPasses atomic.Int64
}

type routeRequest struct {
	ctx  context.Context
	dm   *DemandMatrix
	resp chan routeResponse
}

type routeResponse struct {
	d   *Decision
	err error
}

// NewRouter builds a serving engine for agent on topology g. The agent may
// be freshly loaded (Save/Load round-trip) or just trained; a probe
// forward pass validates that the policy fits the topology, so an MLP
// agent bound to a different graph is rejected here rather than at the
// first Route call.
func NewRouter(agent *Agent, g *Graph, opts ...RouterOption) (*Router, error) {
	return newRouter(agent, g, resolveRouterConfig(opts))
}

// resolveRouterConfig folds options over the defaults. Engine resolves the
// options once at construction and reuses the config for every topology or
// model rebuild, overriding only the carried history.
func resolveRouterConfig(opts []RouterOption) routerConfig {
	cfg := routerConfig{workers: runtime.GOMAXPROCS(0), maxBatch: 16}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.maxBatch < 1 {
		cfg.maxBatch = 1
	}
	return cfg
}

// newRouter builds a router from a resolved config.
func newRouter(agent *Agent, g *Graph, cfg routerConfig) (*Router, error) {
	if agent == nil {
		return nil, fmt.Errorf("gddr: router needs an agent")
	}
	if g == nil {
		return nil, fmt.Errorf("gddr: router needs a topology")
	}
	if !g.StronglyConnected() {
		return nil, fmt.Errorf("gddr: router topology must be strongly connected")
	}
	ecfg := agent.envConfig()
	base := g.UnitWeights()
	if ecfg.CapacityAware {
		base = g.InverseCapacityWeights()
	}
	r := &Router{
		agent:    agent,
		g:        g,
		ecfg:     ecfg,
		base:     base,
		maxBatch: cfg.maxBatch,
		reqCh:    make(chan *routeRequest), // unbuffered: senders block, enabling batching
		quit:     make(chan struct{}),
	}
	for _, dm := range cfg.history {
		if dm == nil || dm.N != g.NumNodes() {
			return nil, fmt.Errorf("gddr: warm-history matrix does not match the %d-node topology", g.NumNodes())
		}
		r.push(dm)
	}
	// Probe: one decision on an empty demand matrix catches policies whose
	// shape is bound to a different topology before serving starts.
	if !cfg.skipProbe {
		if _, _, err := r.decide(r.snapshotHistory(traffic.NewDemandMatrix(g.NumNodes()))); err != nil {
			return nil, fmt.Errorf("gddr: agent incompatible with topology: %w", err)
		}
		r.forwardPasses.Store(0) // the probe does not count as serving activity
	}
	r.wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go r.worker()
	}
	return r, nil
}

// Route computes the routing decision for dm. The request observes the
// demand history accumulated by previous calls (the paper's m-step demand
// memory); dm itself joins the history for subsequent decisions. Route is
// safe for concurrent use: requests that arrive while the policy is busy
// are batched onto one shared forward pass. Cancelling ctx abandons the
// request.
func (r *Router) Route(ctx context.Context, dm *DemandMatrix) (*Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if dm == nil {
		return nil, fmt.Errorf("gddr: route needs a demand matrix")
	}
	if dm.N != r.g.NumNodes() {
		return nil, fmt.Errorf("gddr: demand matrix size %d != %d topology nodes", dm.N, r.g.NumNodes())
	}
	req := &routeRequest{ctx: ctx, dm: dm, resp: make(chan routeResponse, 1)}
	select {
	case r.reqCh <- req:
	case <-r.quit:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		return resp.d, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns serving counters since the router started.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Requests:      r.requests.Load(),
		Batches:       r.batches.Load(),
		ForwardPasses: r.forwardPasses.Load(),
	}
}

// Graph returns the frozen topology the router serves. The graph is shared,
// not copied; it must not be modified.
func (r *Router) Graph() *Graph { return r.g }

// Close stops the serving workers and waits for them to exit. Route calls
// not yet accepted by a worker return ErrClosed; a request already being
// served completes normally, so closing drains in-flight work. Close is
// idempotent and safe to call concurrently with Route.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.quit) })
	r.wg.Wait()
}

// historySnapshot copies the current demand history (oldest first), so the
// Engine can carry observations across a topology or model swap.
func (r *Router) historySnapshot() []*DemandMatrix {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*DemandMatrix(nil), r.history...)
}

// setHistory replaces the demand history (oldest first), trimming to the
// memory window. The Engine uses it to carry the drained predecessor's
// final history into a replacement snapshot before publishing it; the
// matrices must already be sized for the router's topology.
func (r *Router) setHistory(hist []*DemandMatrix) {
	if m := r.ecfg.Memory; len(hist) > m {
		hist = hist[len(hist)-m:]
	}
	r.mu.Lock()
	r.history = append(r.history[:0], hist...)
	r.mu.Unlock()
}

func (r *Router) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.quit:
			return
		case req := <-r.reqCh:
			r.serve(r.gather(req))
		}
	}
}

// gather drains requests already blocked on the channel, up to the batch
// bound, so they share the forward pass of the request that woke us. The
// yield gives concurrent callers that are runnable but not yet parked on
// the channel a chance to enqueue — without it, a CPU-bound serving loop
// on few cores degenerates to singleton batches because waiting senders
// never get scheduled between polls.
func (r *Router) gather(first *routeRequest) []*routeRequest {
	batch := []*routeRequest{first}
	runtime.Gosched()
	for len(batch) < r.maxBatch {
		select {
		case req := <-r.reqCh:
			batch = append(batch, req)
		default:
			return batch
		}
	}
	return batch
}

// push appends dm to the sliding demand history.
func (r *Router) push(dm *DemandMatrix) {
	m := r.ecfg.Memory
	r.history = append(r.history, dm)
	if len(r.history) > m {
		r.history = r.history[len(r.history)-m:]
	}
}

// snapshotHistory returns the m most recent matrices, padding a cold-start
// history with fallback, without mutating router state.
func (r *Router) snapshotHistory(fallback *DemandMatrix) []*DemandMatrix {
	return env.HistoryWindow(r.history, r.ecfg.Memory, fallback)
}

// serve answers one batch: one shared observation and forward pass, then a
// per-request routing evaluation.
func (r *Router) serve(batch []*routeRequest) {
	// Drop requests whose caller already gave up.
	live := batch[:0]
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			req.resp <- routeResponse{err: err}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	r.batches.Add(1)
	r.requests.Add(int64(len(live)))

	// All requests of the batch observe the pre-batch history (matching the
	// training-time contract that a decision for time t sees demands up to
	// t-1), then join it for subsequent batches.
	r.mu.Lock()
	hist := r.snapshotHistory(live[0].dm)
	for _, req := range live {
		r.push(req.dm)
	}
	r.mu.Unlock()

	weights, gamma, err := r.decide(hist)
	if err != nil {
		for _, req := range live {
			req.resp <- routeResponse{err: err}
		}
		return
	}

	// The splitting ratios depend only on (weights, gamma, sink), so they
	// are shared across the batch; each request pays only for propagating
	// its own demand through them.
	ratios := make(map[int]*routing.Ratios)
	for _, req := range live {
		d, err := r.evaluate(req.dm, weights, gamma, ratios)
		req.resp <- routeResponse{d: d, err: err}
	}
}

// decide runs the policy on the demand history and returns the edge
// weights and softmin spread of the resulting routing strategy.
func (r *Router) decide(hist []*DemandMatrix) ([]float64, float64, error) {
	obs, err := env.Observe(r.g, hist)
	if err != nil {
		return nil, 0, err
	}
	ne := r.g.NumEdges()
	if r.agent.Kind == policy.GNNIterativeKind {
		// The iterative policy sets one edge per forward pass and emits γ
		// with its final action (paper §VII-B).
		pending := make([]float64, ne)
		set := make([]bool, ne)
		gamma := r.ecfg.Gamma
		for ei := 0; ei < ne; ei++ {
			obs.SetIterativeState(pending, set, ei)
			action, err := rl.MeanAction(r.agent.policy, obs)
			r.forwardPasses.Add(1)
			if err != nil {
				return nil, 0, err
			}
			if len(action) != 2 {
				return nil, 0, fmt.Errorf("gddr: iterative policy emitted %d action values, want 2", len(action))
			}
			// Clamp to [-1,1] exactly as the training environment does
			// before storing pending values, so the per-edge observations
			// match the training distribution.
			pending[ei] = math.Max(-1, math.Min(1, action[0]))
			set[ei] = true
			if ei == ne-1 {
				gamma = env.GammaFromAction(action[1])
			}
		}
		weights := make([]float64, ne)
		for ei, a := range pending {
			weights[ei] = env.WeightFromAction(r.base[ei], r.ecfg.WeightScale, a)
		}
		return weights, gamma, nil
	}
	action, err := rl.MeanAction(r.agent.policy, obs)
	r.forwardPasses.Add(1)
	if err != nil {
		return nil, 0, err
	}
	if len(action) != ne {
		return nil, 0, fmt.Errorf("gddr: policy emitted %d action values for %d edges", len(action), ne)
	}
	weights := make([]float64, ne)
	for ei, a := range action {
		weights[ei] = env.WeightFromAction(r.base[ei], r.ecfg.WeightScale, a)
	}
	return weights, r.ecfg.Gamma, nil
}

// evaluate derives the full Decision for dm under the batch's weights,
// reusing per-sink splitting ratios across the batch via the ratios map.
func (r *Router) evaluate(dm *DemandMatrix, weights []float64, gamma float64, ratios map[int]*routing.Ratios) (*Decision, error) {
	ne := r.g.NumEdges()
	loads := make([]float64, ne)
	splits := make(map[int][]float64)
	for sink := 0; sink < r.g.NumNodes(); sink++ {
		if dm.InSum(sink) == 0 {
			continue
		}
		rt, ok := ratios[sink]
		if !ok {
			var err error
			rt, err = routing.SplittingRatios(r.g, sink, weights, gamma)
			if err != nil {
				return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
			}
			ratios[sink] = rt
		}
		if err := rt.Loads(r.g, dm, loads); err != nil {
			return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
		}
		splits[sink] = append([]float64(nil), rt.Ratio...)
	}
	util := make([]float64, ne)
	maxU := 0.0
	for ei := range util {
		util[ei] = loads[ei] / r.g.Edge(ei).Capacity
		if util[ei] > maxU {
			maxU = util[ei]
		}
	}
	return &Decision{
		Weights:        append([]float64(nil), weights...),
		Gamma:          gamma,
		Splits:         splits,
		Loads:          loads,
		Utilization:    util,
		MaxUtilization: maxU,
	}, nil
}
