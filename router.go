package gddr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gddr/internal/env"
	"gddr/internal/metrics"
	"gddr/internal/policy"
	"gddr/internal/rl"
	"gddr/internal/routing"
	"gddr/internal/traffic"
)

// ErrClosed is the sentinel returned by Route (and every Engine operation)
// after Close: serving has stopped and no request will be accepted. Test
// with errors.Is.
var ErrClosed = errors.New("gddr: serving engine is closed")

// ErrRouterClosed is the former name of ErrClosed, kept as an alias so
// existing errors.Is checks keep working.
var ErrRouterClosed = ErrClosed

// Decision is the routing decision for one demand matrix: the learned edge
// weights, the softmin spread, the fully-specified splitting ratios they
// induce, and the link loads and utilisation of applying that routing to
// the requested demand. All fields are owned by the caller.
type Decision struct {
	// Weights holds one strictly positive weight per edge (graph edge
	// order), as emitted by the policy's action head.
	Weights []float64 `json:"weights"`
	// Gamma is the softmin spread used to derive the splitting ratios; the
	// iterative policy learns it per decision, the others use the
	// configured value.
	Gamma float64 `json:"gamma"`
	// Splits maps each destination node with demand to its per-edge
	// splitting ratios: Splits[sink][e] is the fraction of traffic
	// transiting edge e's source that is destined for sink and forwarded
	// over e (zero on edges dropped from the destination DAG).
	Splits map[int][]float64 `json:"splits"`
	// Loads is the per-edge traffic carried under this routing.
	Loads []float64 `json:"loads"`
	// Utilization is the per-edge load/capacity ratio.
	Utilization []float64 `json:"utilization"`
	// MaxUtilization is the maximum link utilisation, the paper's objective.
	MaxUtilization float64 `json:"max_utilization"`
	// Trace is the per-request timing breakdown, attached only when the
	// router was built with WithTracing.
	Trace *RouteTrace `json:"trace,omitempty"`
}

// RouteTrace is the opt-in (WithTracing) per-request timing breakdown: how
// long the request waited for a serving worker, what the batch it joined
// spent in each serving stage, and which fast-path caches answered. The
// observe/forward/strategy stages are shared by the whole batch (one
// observation and forward pass serve every member); queue-wait and evaluate
// are this request's own. A policy-cache hit zeroes observe and forward; a
// strategy-cache hit zeroes strategy — this is how the ~4µs cached and
// ~340µs uncached paths are individually attributable.
type RouteTrace struct {
	// BatchSize is the number of requests served by this request's batch.
	BatchSize int `json:"batch_size"`
	// QueueWaitNS is the time from Route submission to batch pickup.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	// ObserveNS is the demand-history observation build (0 on a policy-cache
	// hit).
	ObserveNS int64 `json:"observe_ns"`
	// ForwardNS covers the policy forward pass(es) (0 on a policy-cache hit).
	ForwardNS int64 `json:"forward_ns"`
	// StrategyNS is the softmin routing-strategy build (0 on a strategy-cache
	// hit).
	StrategyNS int64 `json:"strategy_ns"`
	// EvaluateNS is this request's demand propagation and Decision assembly.
	EvaluateNS int64 `json:"evaluate_ns"`
	// PolicyCacheHit reports whether the batch reused the cached policy
	// output (no observation, no forward pass).
	PolicyCacheHit bool `json:"policy_cache_hit"`
	// StrategyCacheHit reports whether the batch reused the cached routing
	// strategy.
	StrategyCacheHit bool `json:"strategy_cache_hit"`
}

// RouterStats counts serving activity since the router started.
type RouterStats struct {
	// Requests is the number of demand matrices routed.
	Requests int64 `json:"requests"`
	// Batches is the number of request batches served; Requests/Batches is
	// the mean batch size.
	Batches int64 `json:"batches"`
	// ForwardPasses is the number of policy forward passes run. Concurrent
	// callers batched together share one pass (the iterative policy runs
	// |E| passes per batch), and batches answered from the policy-output
	// cache run none.
	ForwardPasses int64 `json:"forward_passes"`
	// PolicyCacheHits counts batches that reused the previous policy output
	// because the observed demand-history window was unchanged (steady
	// demand), skipping the observation build and every forward pass.
	PolicyCacheHits int64 `json:"policy_cache_hits"`
	// StrategyHits counts batches that reused the cached routing strategy —
	// the policy emitted the same (weights, gamma), so the per-sink softmin
	// splitting ratios were served from cache instead of being rebuilt.
	StrategyHits int64 `json:"strategy_hits"`
	// StrategyMisses counts batches that built a fresh routing strategy.
	StrategyMisses int64 `json:"strategy_misses"`
}

// Router wraps a trained Agent as a thread-safe inference engine for one
// frozen topology: the "GNN as deployable router" of the paper's
// motivation, and the single-graph fast path underneath Engine. It keeps a
// sliding window of the most recent demand matrices (the policy's
// observation history) and answers Route calls with fully-specified
// routing decisions. Concurrent callers are batched so that requests
// arriving while the policy is busy share a single forward pass.
//
// A Router never changes its graph: topology events are expressed by
// building a fresh Router on the mutated graph and retiring the old one,
// which is exactly what Engine.Apply does. Use an Engine when the topology
// or the model must change at runtime; use a bare Router when neither does
// and the indirection is unwanted.
//
// The agent must not be trained while the router is serving; training
// mutates the policy parameters the forward passes read.
type Router struct {
	agent       *Agent
	g           *Graph
	ecfg        env.Config
	base        []float64 // per-edge base weights of the action mapping
	maxBatch    int
	evalWorkers int
	batchWindow time.Duration
	noCache     bool
	zero        *DemandMatrix // cold-start history pad (all-zero demand)

	// hist is the sliding demand-history window. A standalone Router owns a
	// private one; an Engine built with replicas shares a single history
	// among every replica router of a snapshot, so each replica's decisions
	// observe the full traffic stream rather than the fraction that happened
	// to land on it.
	hist *demandHistory

	reqCh     chan *routeRequest
	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// The serving fast-path caches. Both are keyed on values the policy's
	// deterministic MeanAction makes stable under steady demand: the
	// policy-output cache maps the observed history window to (weights,
	// gamma), skipping observation + forward passes when the window is
	// unchanged; the strategy cache maps (weights, gamma) to the per-sink
	// splitting ratios, skipping the softmin routing translation. Both die
	// with the Router, so Engine.Apply/SwapAgent/SwapCheckpoint — which
	// retire the Router wholesale — invalidate them by construction.
	cacheMu  sync.Mutex
	lastOut  *policyOutput     //gddr:guardedby cacheMu
	strategy *routing.Strategy //gddr:guardedby cacheMu

	observers sync.Pool // *env.Observer, one in flight per serving worker
	scratch   sync.Pool // *evalScratch, one in flight per evaluation

	requests        atomic.Int64
	batches         atomic.Int64
	forwardPasses   atomic.Int64
	policyCacheHits atomic.Int64
	strategyHits    atomic.Int64
	strategyMisses  atomic.Int64

	// registry/met are the observability surface: the counters above stay
	// the per-router Stats() source of truth (the Engine folds them across
	// snapshots), while met mirrors them into registry instruments — which a
	// shared registry keeps cumulative across Engine snapshot rebuilds — and
	// adds the latency/queue-wait/batch-size histograms. met is nil only
	// under the benchmark-only noMetrics config.
	registry *metrics.Registry
	met      *routerMetrics
	tracing  bool
}

// routerMetrics bundles the router's registry instruments. Names follow the
// gddr_<subsystem>_<name>_<unit> contract pinned in DESIGN.md.
type routerMetrics struct {
	requests        *metrics.Counter
	batches         *metrics.Counter
	forwardPasses   *metrics.Counter
	policyCacheHits *metrics.Counter
	strategyHits    *metrics.Counter
	strategyMisses  *metrics.Counter
	routeLatency    *metrics.Histogram
	queueWait       *metrics.Histogram
	batchSize       *metrics.Histogram
}

func newRouterMetrics(reg *metrics.Registry) *routerMetrics {
	return &routerMetrics{
		requests:        reg.Counter("gddr_router_requests_total", "Demand matrices routed."),
		batches:         reg.Counter("gddr_router_batches_total", "Request batches served; requests/batches is the mean batch size."),
		forwardPasses:   reg.Counter("gddr_router_forward_passes_total", "Policy forward passes run (cache hits run none)."),
		policyCacheHits: reg.Counter("gddr_router_policy_cache_hits_total", "Batches answered from the policy-output cache."),
		strategyHits:    reg.Counter("gddr_router_strategy_cache_hits_total", "Batches that reused the cached routing strategy."),
		strategyMisses:  reg.Counter("gddr_router_strategy_cache_misses_total", "Batches that built a fresh routing strategy."),
		routeLatency:    reg.Histogram("gddr_router_route_latency_seconds", "End-to-end Route latency (queue wait included).", metrics.LatencyBuckets()),
		queueWait:       reg.Histogram("gddr_router_queue_wait_seconds", "Time a request waited for a serving worker.", metrics.LatencyBuckets()),
		batchSize:       reg.Histogram("gddr_router_batch_size", "Requests sharing one forward pass.", metrics.LinearBuckets(1, 1, 16)),
	}
}

// policyOutput is one policy-output cache entry: the deterministic
// MeanAction result for one observed history window. window holds the
// matrices by pointer; entries are value-compared on lookup so a gateway
// decoding identical steady demand into fresh allocations still hits,
// with a pointer fast path that is sound because Route takes ownership of
// submitted matrices (they are immutable once in the history).
type policyOutput struct {
	window  []*DemandMatrix
	weights []float64
	gamma   float64
}

// evalScratch holds the per-request evaluation buffers: demand in-sums,
// propagation inflow, the sinks-with-demand list, and (parallel evaluation
// only) the per-sink load contributions.
type evalScratch struct {
	insums  []float64
	inflow  []float64
	sinks   []int
	contrib []float64
}

// grow returns buf resized to n, reusing its backing array when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		//gddr:allow hotpath scratch resize runs once per topology change, then the buffer is reused
		return make([]float64, n)
	}
	return buf[:n]
}

// growInt is grow for int scratch slices.
func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		//gddr:allow hotpath scratch resize runs once per topology change, then the buffer is reused
		return make([]int, n)
	}
	return buf[:n]
}

// demandHistory is the sliding window of the most recently routed demand
// matrices (oldest first, len <= memory): the policy's observation state,
// factored out of the Router so it can be shared. A standalone Router owns
// a private history; an Engine snapshot with N read replicas hands every
// replica the same instance, so the observation window any replica serves
// from is the one a single-replica engine would have seen — replicas scale
// the compute path (batcher, caches, workers), never fork the state.
type demandHistory struct {
	mu     sync.Mutex
	memory int
	// dms is preallocated to memory capacity once and then only resliced
	// or shifted in place, so the serving path never reallocates it.
	dms []*DemandMatrix //gddr:guardedby mu
}

func newDemandHistory(memory int) *demandHistory {
	if memory < 0 {
		memory = 0
	}
	return &demandHistory{memory: memory, dms: make([]*DemandMatrix, 0, memory)}
}

// observeAndPush atomically snapshots the observation window (cold-start
// slots padded with pad) and appends the batch's matrices, so concurrent
// batches — including batches on sibling replicas — serialise into one
// coherent history: each batch observes everything pushed before it and
// nothing pushed after. The returned window is freshly allocated
// (HistoryWindow copies the pointer slice) and safe to retain.
func (h *demandHistory) observeAndPush(pad *DemandMatrix, batch []*routeRequest) []*DemandMatrix {
	h.mu.Lock()
	defer h.mu.Unlock()
	win := env.HistoryWindow(h.dms, h.memory, pad)
	for _, req := range batch {
		h.pushLocked(req.dm)
	}
	return win
}

// pushLocked appends one matrix to the window in place; callers hold h.mu.
// The buffer's capacity is pinned at memory by the constructor and set, so
// a full window shifts left instead of growing — steady-state pushes are
// allocation-free.
func (h *demandHistory) pushLocked(dm *DemandMatrix) {
	if h.memory <= 0 {
		return
	}
	if n := len(h.dms); n < h.memory {
		h.dms = h.dms[:n+1]
		h.dms[n] = dm
	} else {
		copy(h.dms, h.dms[1:])
		h.dms[h.memory-1] = dm
	}
}

// window returns the current observation window without pushing anything
// (construction-time probe).
func (h *demandHistory) window(pad *DemandMatrix) []*DemandMatrix {
	h.mu.Lock()
	defer h.mu.Unlock()
	return env.HistoryWindow(h.dms, h.memory, pad)
}

// snapshot copies the raw history (no padding, oldest first).
func (h *demandHistory) snapshot() []*DemandMatrix {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*DemandMatrix(nil), h.dms...)
}

// set replaces the history, trimming to the memory window. The matrices are
// copied into the preallocated buffer (never aliased), preserving the
// capacity invariant pushLocked relies on.
func (h *demandHistory) set(dms []*DemandMatrix) {
	if len(dms) > h.memory {
		dms = dms[len(dms)-h.memory:]
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dms = append(h.dms[:0], dms...)
}

// push appends one matrix, trimming to the memory window.
func (h *demandHistory) push(dm *DemandMatrix) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pushLocked(dm)
}

type routeRequest struct {
	ctx      context.Context
	dm       *DemandMatrix
	enqueued time.Time // set only when instrumented (met != nil or tracing)
	resp     chan routeResponse
}

type routeResponse struct {
	d   *Decision
	err error
}

// NewRouter builds a serving engine for agent on topology g. The agent may
// be freshly loaded (Save/Load round-trip) or just trained; a probe
// forward pass validates that the policy fits the topology, so an MLP
// agent bound to a different graph is rejected here rather than at the
// first Route call.
func NewRouter(agent *Agent, g *Graph, opts ...RouterOption) (*Router, error) {
	return newRouter(agent, g, resolveRouterConfig(opts))
}

// newRouter builds a router from a resolved config.
func newRouter(agent *Agent, g *Graph, cfg routerConfig) (*Router, error) {
	if agent == nil {
		return nil, fmt.Errorf("gddr: router needs an agent")
	}
	if g == nil {
		return nil, fmt.Errorf("gddr: router needs a topology")
	}
	if !g.StronglyConnected() {
		return nil, fmt.Errorf("gddr: router topology must be strongly connected")
	}
	ecfg := agent.envConfig()
	base := g.UnitWeights()
	if ecfg.CapacityAware {
		base = g.InverseCapacityWeights()
	}
	r := &Router{
		agent:       agent,
		g:           g,
		ecfg:        ecfg,
		base:        base,
		maxBatch:    cfg.maxBatch,
		evalWorkers: cfg.evalWorkers,
		batchWindow: cfg.batchWindow,
		noCache:     cfg.noCache,
		zero:        traffic.NewDemandMatrix(g.NumNodes()),
		reqCh:       make(chan *routeRequest), // unbuffered: senders block, enabling batching
		quit:        make(chan struct{}),
	}
	r.observers.New = func() any { return new(env.Observer) }
	r.scratch.New = func() any { return new(evalScratch) }
	r.tracing = cfg.tracing
	r.hist = cfg.hist
	if r.hist == nil {
		r.hist = newDemandHistory(ecfg.Memory)
	}
	if !cfg.noMetrics {
		r.registry = cfg.metrics
		if r.registry == nil {
			r.registry = metrics.NewRegistry()
		}
		r.met = newRouterMetrics(r.registry)
	}
	for _, dm := range cfg.history {
		if dm == nil || dm.N != g.NumNodes() {
			return nil, fmt.Errorf("gddr: warm-history matrix does not match the %d-node topology", g.NumNodes())
		}
		r.hist.push(dm)
	}
	// Probe: one decision on an empty demand matrix catches policies whose
	// shape is bound to a different topology before serving starts. decide
	// bypasses the caches and returns its forward-pass count to the caller,
	// so the probe leaves the caches cold and the serving counters honest
	// (the probe's passes are simply never added).
	if !cfg.skipProbe {
		if _, _, _, err := r.decide(r.hist.window(r.zero), nil); err != nil {
			return nil, fmt.Errorf("gddr: agent incompatible with topology: %w", err)
		}
	}
	r.wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go r.worker()
	}
	return r, nil
}

// Route computes the routing decision for dm. The request observes the
// demand history accumulated by previous calls (the paper's m-step demand
// memory); dm itself joins the history for subsequent decisions, so
// ownership of dm passes to the router: the caller must not modify it
// after Route returns (a mutated matrix would silently rewrite the demand
// history past decisions were supposed to have observed, and defeat the
// fast-path caches' change detection — submit a fresh or cloned matrix per
// tick instead). Route is safe for concurrent use: requests that arrive
// while the policy is busy are batched onto one shared forward pass.
// Cancelling ctx abandons the request.
//
//gddr:hotpath
func (r *Router) Route(ctx context.Context, dm *DemandMatrix) (*Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if dm == nil {
		//gddr:allow hotpath nil-matrix validation error path
		return nil, fmt.Errorf("gddr: route needs a demand matrix")
	}
	if dm.N != r.g.NumNodes() {
		//gddr:allow hotpath size-mismatch validation error path
		return nil, fmt.Errorf("gddr: demand matrix size %d != %d topology nodes", dm.N, r.g.NumNodes())
	}
	// One request envelope (struct + response channel) per call is the
	// batching contract: the envelope crosses a channel to the serving
	// goroutine, so it cannot live on this stack or in a pool keyed to it.
	//gddr:allow hotpath per-request envelope crosses into the serving goroutine
	req := &routeRequest{ctx: ctx, dm: dm, resp: make(chan routeResponse, 1)}
	if r.met != nil || r.tracing {
		req.enqueued = time.Now()
	}
	select {
	case r.reqCh <- req:
	case <-r.quit:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		return resp.d, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns serving counters since the router started.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Requests:        r.requests.Load(),
		Batches:         r.batches.Load(),
		ForwardPasses:   r.forwardPasses.Load(),
		PolicyCacheHits: r.policyCacheHits.Load(),
		StrategyHits:    r.strategyHits.Load(),
		StrategyMisses:  r.strategyMisses.Load(),
	}
}

// Graph returns the frozen topology the router serves. The graph is shared,
// not copied; it must not be modified.
func (r *Router) Graph() *Graph { return r.g }

// Metrics returns the registry the router's instruments live in: the
// private per-router one by default, or the registry passed with
// WithMetricsRegistry. Expose it with metrics.Registry.WritePrometheus (the
// gddr-serve /metrics endpoint) or snapshot it with Snapshot/WriteJSON.
func (r *Router) Metrics() *metrics.Registry { return r.registry }

// Close stops the serving workers and waits for them to exit. Route calls
// not yet accepted by a worker return ErrClosed; a request already being
// served completes normally, so closing drains in-flight work. Close is
// idempotent and safe to call concurrently with Route.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.quit) })
	r.wg.Wait()
}

// historySnapshot copies the current demand history (oldest first), so the
// Engine can carry observations across a topology or model swap.
func (r *Router) historySnapshot() []*DemandMatrix {
	return r.hist.snapshot()
}

// setHistory replaces the demand history (oldest first), trimming to the
// memory window. The Engine uses it to carry the drained predecessor's
// final history into a replacement snapshot before publishing it; the
// matrices must already be sized for the router's topology.
func (r *Router) setHistory(hist []*DemandMatrix) {
	r.hist.set(hist)
}

func (r *Router) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.quit:
			return
		case req := <-r.reqCh:
			r.serve(r.gather(req))
		}
	}
}

// gather drains requests already blocked on the channel, up to the batch
// bound, so they share the forward pass of the request that woke us. The
// yield gives concurrent callers that are runnable but not yet parked on
// the channel a chance to enqueue — without it, a CPU-bound serving loop
// on few cores degenerates to singleton batches because waiting senders
// never get scheduled between polls. With a batch window configured, the
// worker then keeps the batch open up to that long, blocking for senders
// that are still on their way; Close cuts the wait short, and the batch
// gathered so far is still served (Close drains in-flight work).
func (r *Router) gather(first *routeRequest) []*routeRequest {
	batch := []*routeRequest{first}
	runtime.Gosched()
	for len(batch) < r.maxBatch {
		select {
		case req := <-r.reqCh:
			batch = append(batch, req)
			continue
		default:
		}
		break
	}
	if r.batchWindow <= 0 || len(batch) >= r.maxBatch {
		return batch
	}
	timer := time.NewTimer(r.batchWindow)
	defer timer.Stop()
	for len(batch) < r.maxBatch {
		select {
		case req := <-r.reqCh:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		case <-r.quit:
			return batch
		}
	}
	return batch
}

// batchTrace collects the shared per-batch stage timings when tracing is
// enabled; nil otherwise, in which case the stages pay no timing cost.
type batchTrace struct {
	observeNS        int64
	forwardNS        int64
	strategyNS       int64
	policyCacheHit   bool
	strategyCacheHit bool
}

// serve answers one batch: one shared observation and forward pass, then a
// per-request routing evaluation.
//
//gddr:hotpath
func (r *Router) serve(batch []*routeRequest) {
	// Drop requests whose caller already gave up, compacting the survivors
	// into the front of the batch slice in place.
	nLive := 0
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			req.resp <- routeResponse{err: err}
			continue
		}
		batch[nLive] = req
		nLive++
	}
	live := batch[:nLive]
	if len(live) == 0 {
		return
	}
	r.batches.Add(1)
	r.requests.Add(int64(len(live)))
	var picked time.Time
	if r.met != nil || r.tracing {
		picked = time.Now()
	}
	if r.met != nil {
		r.met.batches.Inc()
		r.met.requests.Add(int64(len(live)))
		r.met.batchSize.Observe(float64(len(live)))
		for _, req := range live {
			r.met.queueWait.Observe(picked.Sub(req.enqueued).Seconds())
		}
	}

	// All requests of the batch observe the pre-batch history (matching the
	// training-time contract that a decision for time t sees demands up to
	// t-1), then join it for subsequent batches. A cold-start history is
	// padded with zero matrices — the "no traffic observed yet" statement —
	// never with a batch member's own demand, which would let the first
	// decisions observe the very demand they are routing.
	hist := r.hist.observeAndPush(r.zero, live)

	// The batch trace lives on this stack: its fields are copied into each
	// response's RouteTrace, never retained, so tracing adds no per-batch
	// heap allocation here.
	var btv batchTrace
	var bt *batchTrace
	if r.tracing {
		bt = &btv
	}
	weights, gamma, err := r.decideCached(hist, bt)
	if err != nil {
		for _, req := range live {
			req.resp <- routeResponse{err: err}
		}
		return
	}

	// The splitting ratios depend only on (weights, gamma, sink), so they
	// are shared across the batch — and, via the strategy cache, across
	// every batch for which the policy keeps emitting these weights; each
	// request pays only for propagating its own demand through them.
	strat, err := r.strategyFor(weights, gamma, bt)
	if err != nil {
		for _, req := range live {
			req.resp <- routeResponse{err: err}
		}
		return
	}
	for _, req := range live {
		var evalStart time.Time
		if bt != nil {
			evalStart = time.Now()
		}
		d, err := r.evaluate(req.dm, strat)
		if d != nil && bt != nil {
			//gddr:allow hotpath allocates only when request tracing is enabled
			d.Trace = &RouteTrace{
				BatchSize:        len(live),
				QueueWaitNS:      picked.Sub(req.enqueued).Nanoseconds(),
				ObserveNS:        bt.observeNS,
				ForwardNS:        bt.forwardNS,
				StrategyNS:       bt.strategyNS,
				EvaluateNS:       time.Since(evalStart).Nanoseconds(),
				PolicyCacheHit:   bt.policyCacheHit,
				StrategyCacheHit: bt.strategyCacheHit,
			}
		}
		if r.met != nil {
			r.met.routeLatency.Observe(time.Since(req.enqueued).Seconds())
		}
		req.resp <- routeResponse{d: d, err: err}
	}
}

// decideCached is decide behind the policy-output cache: if the observed
// history window is unchanged since the last batch (pointer-equal or, for
// identical matrices decoded afresh, value-equal), the deterministic
// MeanAction would recompute the same action, so the cached (weights,
// gamma) is returned without building an observation or running a forward
// pass. The returned slices are shared with the cache and must be treated
// as read-only — every consumer copies before handing them to callers.
func (r *Router) decideCached(hist []*DemandMatrix, bt *batchTrace) ([]float64, float64, error) {
	if !r.noCache {
		r.cacheMu.Lock()
		if c := r.lastOut; c != nil && windowsEqual(c.window, hist) {
			weights, gamma := c.weights, c.gamma
			r.cacheMu.Unlock()
			r.policyCacheHits.Add(1)
			if r.met != nil {
				r.met.policyCacheHits.Inc()
			}
			if bt != nil {
				bt.policyCacheHit = true
			}
			return weights, gamma, nil
		}
		r.cacheMu.Unlock()
	}
	// Cache miss: run the forward pass. Steady demand takes the pointer-equal
	// window fast path above and never reaches this.
	//gddr:allow hotpath forward pass runs only when the observed window changed
	weights, gamma, passes, err := r.decide(hist, bt)
	r.forwardPasses.Add(int64(passes))
	if r.met != nil {
		r.met.forwardPasses.Add(int64(passes))
	}
	if err != nil {
		return nil, 0, err
	}
	if !r.noCache {
		r.cacheMu.Lock()
		//gddr:allow hotpath cache refill happens once per window change, paired with the forward pass above
		r.lastOut = &policyOutput{window: hist, weights: weights, gamma: gamma}
		r.cacheMu.Unlock()
	}
	return weights, gamma, nil
}

// windowsEqual reports whether two history windows hold the same demand,
// with a pointer fast path per slot (steady demand re-pushes the same
// matrices) before falling back to entry comparison.
func windowsEqual(a, b []*DemandMatrix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// strategyFor returns the routing strategy for (weights, gamma), reusing
// the cached one when the policy output is unchanged. With caching off it
// builds a fresh per-batch strategy, which still shares ratios within the
// batch (the pre-cache behaviour).
func (r *Router) strategyFor(weights []float64, gamma float64, bt *batchTrace) (*routing.Strategy, error) {
	if r.noCache {
		r.strategyMisses.Add(1)
		if r.met != nil {
			r.met.strategyMisses.Inc()
		}
		return r.buildStrategy(weights, gamma, bt)
	}
	r.cacheMu.Lock()
	if s := r.strategy; s != nil && s.Matches(weights, gamma) {
		r.cacheMu.Unlock()
		r.strategyHits.Add(1)
		if r.met != nil {
			r.met.strategyHits.Inc()
		}
		if bt != nil {
			bt.strategyCacheHit = true
		}
		return s, nil
	}
	r.cacheMu.Unlock()
	s, err := r.buildStrategy(weights, gamma, bt)
	if err != nil {
		return nil, err
	}
	r.strategyMisses.Add(1)
	if r.met != nil {
		r.met.strategyMisses.Inc()
	}
	r.cacheMu.Lock()
	r.strategy = s
	r.cacheMu.Unlock()
	return s, nil
}

// buildStrategy constructs a fresh routing strategy, timing it into the
// batch trace when tracing.
func (r *Router) buildStrategy(weights []float64, gamma float64, bt *batchTrace) (*routing.Strategy, error) {
	var start time.Time
	if bt != nil {
		start = time.Now()
	}
	//gddr:allow hotpath strategy rebuilds only when the policy emits new weights; steady state hits the cache
	s, err := routing.NewStrategy(r.g, weights, gamma)
	if bt != nil {
		bt.strategyNS = time.Since(start).Nanoseconds()
	}
	return s, err
}

// decide runs the policy on the demand history and returns the edge
// weights, softmin spread, and number of forward passes run (counted by the
// caller, so the construction-time probe never pollutes serving counters).
// The observation is built into a pooled Observer's buffers: MeanAction
// copies what it needs, so the buffers are free for reuse when decide
// returns. With bt non-nil the observation build and forward passes are
// timed into it.
func (r *Router) decide(hist []*DemandMatrix, bt *batchTrace) ([]float64, float64, int, error) {
	ob := r.observers.Get().(*env.Observer)
	defer r.observers.Put(ob)
	var stageStart time.Time
	if bt != nil {
		stageStart = time.Now()
	}
	obs, err := ob.Observe(r.g, hist)
	if err != nil {
		return nil, 0, 0, err
	}
	if bt != nil {
		now := time.Now()
		bt.observeNS = now.Sub(stageStart).Nanoseconds()
		stageStart = now
	}
	passes := 0
	ne := r.g.NumEdges()
	if r.agent.Kind == policy.GNNIterativeKind {
		// The iterative policy sets one edge per forward pass and emits γ
		// with its final action (paper §VII-B).
		pending := make([]float64, ne)
		set := make([]bool, ne)
		gamma := r.ecfg.Gamma
		for ei := 0; ei < ne; ei++ {
			obs.SetIterativeState(pending, set, ei)
			action, err := rl.MeanAction(r.agent.policy, obs)
			passes++
			if err != nil {
				return nil, 0, passes, err
			}
			if len(action) != 2 {
				return nil, 0, passes, fmt.Errorf("gddr: iterative policy emitted %d action values, want 2", len(action))
			}
			// Clamp to [-1,1] exactly as the training environment does
			// before storing pending values, so the per-edge observations
			// match the training distribution.
			pending[ei] = math.Max(-1, math.Min(1, action[0]))
			set[ei] = true
			if ei == ne-1 {
				gamma = env.GammaFromAction(action[1])
			}
		}
		weights := make([]float64, ne)
		for ei, a := range pending {
			weights[ei] = env.WeightFromAction(r.base[ei], r.ecfg.WeightScale, a)
		}
		if bt != nil {
			bt.forwardNS = time.Since(stageStart).Nanoseconds()
		}
		return weights, gamma, passes, nil
	}
	action, err := rl.MeanAction(r.agent.policy, obs)
	passes++
	if err != nil {
		return nil, 0, passes, err
	}
	if len(action) != ne {
		return nil, 0, passes, fmt.Errorf("gddr: policy emitted %d action values for %d edges", len(action), ne)
	}
	weights := make([]float64, ne)
	for ei, a := range action {
		weights[ei] = env.WeightFromAction(r.base[ei], r.ecfg.WeightScale, a)
	}
	if bt != nil {
		bt.forwardNS = time.Since(stageStart).Nanoseconds()
	}
	return weights, r.ecfg.Gamma, passes, nil
}

// evaluate derives the full Decision for dm under the batch's routing
// strategy. The demand in-sums are precomputed in one pass (replacing the
// per-sink column scans), propagation runs through pooled scratch buffers,
// and the strategy supplies cached per-sink splitting ratios. Only the
// caller-owned Decision fields are allocated.
func (r *Router) evaluate(dm *DemandMatrix, strat *routing.Strategy) (*Decision, error) {
	n := r.g.NumNodes()
	ne := r.g.NumEdges()
	sc := r.scratch.Get().(*evalScratch)
	defer r.scratch.Put(sc)
	sc.insums = grow(sc.insums, n)
	dm.InSums(sc.insums)
	sc.sinks = growInt(sc.sinks, n)
	nSinks := 0
	for v, in := range sc.insums {
		if in != 0 {
			sc.sinks[nSinks] = v
			nSinks++
		}
	}
	sinks := sc.sinks[:nSinks]

	// One backing array for the two per-edge result slices; the scratch
	// loads buffer is reset by construction, so reuse cannot double-count
	// (see Ratios.Loads' accumulation contract).
	//gddr:allow hotpath caller-owned Decision.Loads/Utilization backing; cannot come from the pool
	buf := make([]float64, 2*ne)
	loads, util := buf[:ne:ne], buf[ne:]
	if r.evalWorkers > 1 && len(sinks) > 1 {
		if err := r.evaluateSinksParallel(dm, strat, sinks, sc, loads); err != nil {
			return nil, err
		}
	} else {
		sc.inflow = grow(sc.inflow, n)
		for _, sink := range sinks {
			rt, err := strat.Ratios(sink)
			if err != nil {
				//gddr:allow hotpath error path
				return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
			}
			if err := rt.AccumulateLoads(r.g, dm, loads, sc.inflow); err != nil {
				//gddr:allow hotpath error path
				return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
			}
		}
	}

	//gddr:allow hotpath caller-owned Decision.Splits map, one per decision
	splits := make(map[int][]float64, len(sinks))
	for _, sink := range sinks {
		rt, err := strat.Ratios(sink)
		if err != nil {
			//gddr:allow hotpath error path
			return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
		}
		//gddr:allow hotpath caller-owned copy of the cached ratios; the cache stays immutable
		splits[sink] = append([]float64(nil), rt.Ratio...)
	}
	maxU := 0.0
	for ei := range util {
		util[ei] = loads[ei] / r.g.Edge(ei).Capacity
		if util[ei] > maxU {
			maxU = util[ei]
		}
	}
	// The Decision and its Weights copy are the caller's to keep; everything
	// reusable above came from the scratch pool.
	//gddr:allow hotpath caller-owned Decision envelope, one per request
	return &Decision{
		//gddr:allow hotpath caller-owned copy of the cached weights
		Weights:        append([]float64(nil), strat.Weights()...),
		Gamma:          strat.Gamma(),
		Splits:         splits,
		Loads:          loads,
		Utilization:    util,
		MaxUtilization: maxU,
	}, nil
}

// evaluateSinksParallel fans the per-sink load propagation of one request
// out over the eval workers. Each sink's contribution lands in its own row
// of the scratch matrix and the rows are folded in sink order — each edge
// receives exactly one addition per sink, the same floating-point sequence
// as the sequential path, so parallel decisions are bit-identical.
func (r *Router) evaluateSinksParallel(dm *DemandMatrix, strat *routing.Strategy, sinks []int, sc *evalScratch, loads []float64) error {
	n := r.g.NumNodes()
	ne := r.g.NumEdges()
	sc.contrib = grow(sc.contrib, len(sinks)*ne)
	workers := r.evalWorkers
	if workers > len(sinks) {
		workers = len(sinks)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errMu   sync.Mutex
		poolErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker needs a private inflow buffer for the whole
			// request; one allocation per worker per request is the cost of
			// the opt-in parallel path (WithEvalWorkers), not the default.
			//gddr:allow hotpath per-worker scratch on the opt-in parallel path
			inflow := make([]float64, n)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sinks) {
					return
				}
				row := sc.contrib[i*ne : (i+1)*ne]
				clear(row)
				rt, err := strat.Ratios(sinks[i])
				if err == nil {
					err = rt.AccumulateLoads(r.g, dm, row, inflow)
				}
				if err != nil {
					errMu.Lock()
					if poolErr == nil {
						//gddr:allow hotpath error path
						poolErr = fmt.Errorf("gddr: route sink %d: %w", sinks[i], err)
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if poolErr != nil {
		return poolErr
	}
	for i := range sinks {
		row := sc.contrib[i*ne : (i+1)*ne]
		for ei, c := range row {
			if c != 0 {
				loads[ei] += c
			}
		}
	}
	return nil
}
