package gddr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gddr/internal/env"
	"gddr/internal/policy"
	"gddr/internal/rl"
	"gddr/internal/routing"
	"gddr/internal/traffic"
)

// ErrClosed is the sentinel returned by Route (and every Engine operation)
// after Close: serving has stopped and no request will be accepted. Test
// with errors.Is.
var ErrClosed = errors.New("gddr: serving engine is closed")

// ErrRouterClosed is the former name of ErrClosed, kept as an alias so
// existing errors.Is checks keep working.
var ErrRouterClosed = ErrClosed

// Decision is the routing decision for one demand matrix: the learned edge
// weights, the softmin spread, the fully-specified splitting ratios they
// induce, and the link loads and utilisation of applying that routing to
// the requested demand. All fields are owned by the caller.
type Decision struct {
	// Weights holds one strictly positive weight per edge (graph edge
	// order), as emitted by the policy's action head.
	Weights []float64 `json:"weights"`
	// Gamma is the softmin spread used to derive the splitting ratios; the
	// iterative policy learns it per decision, the others use the
	// configured value.
	Gamma float64 `json:"gamma"`
	// Splits maps each destination node with demand to its per-edge
	// splitting ratios: Splits[sink][e] is the fraction of traffic
	// transiting edge e's source that is destined for sink and forwarded
	// over e (zero on edges dropped from the destination DAG).
	Splits map[int][]float64 `json:"splits"`
	// Loads is the per-edge traffic carried under this routing.
	Loads []float64 `json:"loads"`
	// Utilization is the per-edge load/capacity ratio.
	Utilization []float64 `json:"utilization"`
	// MaxUtilization is the maximum link utilisation, the paper's objective.
	MaxUtilization float64 `json:"max_utilization"`
}

// RouterStats counts serving activity since the router started.
type RouterStats struct {
	// Requests is the number of demand matrices routed.
	Requests int64 `json:"requests"`
	// Batches is the number of request batches served; Requests/Batches is
	// the mean batch size.
	Batches int64 `json:"batches"`
	// ForwardPasses is the number of policy forward passes run. Concurrent
	// callers batched together share one pass (the iterative policy runs
	// |E| passes per batch), and batches answered from the policy-output
	// cache run none.
	ForwardPasses int64 `json:"forward_passes"`
	// PolicyCacheHits counts batches that reused the previous policy output
	// because the observed demand-history window was unchanged (steady
	// demand), skipping the observation build and every forward pass.
	PolicyCacheHits int64 `json:"policy_cache_hits"`
	// StrategyHits counts batches that reused the cached routing strategy —
	// the policy emitted the same (weights, gamma), so the per-sink softmin
	// splitting ratios were served from cache instead of being rebuilt.
	StrategyHits int64 `json:"strategy_hits"`
	// StrategyMisses counts batches that built a fresh routing strategy.
	StrategyMisses int64 `json:"strategy_misses"`
}

// Router wraps a trained Agent as a thread-safe inference engine for one
// frozen topology: the "GNN as deployable router" of the paper's
// motivation, and the single-graph fast path underneath Engine. It keeps a
// sliding window of the most recent demand matrices (the policy's
// observation history) and answers Route calls with fully-specified
// routing decisions. Concurrent callers are batched so that requests
// arriving while the policy is busy share a single forward pass.
//
// A Router never changes its graph: topology events are expressed by
// building a fresh Router on the mutated graph and retiring the old one,
// which is exactly what Engine.Apply does. Use an Engine when the topology
// or the model must change at runtime; use a bare Router when neither does
// and the indirection is unwanted.
//
// The agent must not be trained while the router is serving; training
// mutates the policy parameters the forward passes read.
type Router struct {
	agent       *Agent
	g           *Graph
	ecfg        env.Config
	base        []float64 // per-edge base weights of the action mapping
	maxBatch    int
	evalWorkers int
	batchWindow time.Duration
	noCache     bool
	zero        *DemandMatrix // cold-start history pad (all-zero demand)

	mu      sync.Mutex
	history []*DemandMatrix // most recent matrices, oldest first, len <= Memory

	reqCh     chan *routeRequest
	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// The serving fast-path caches. Both are keyed on values the policy's
	// deterministic MeanAction makes stable under steady demand: the
	// policy-output cache maps the observed history window to (weights,
	// gamma), skipping observation + forward passes when the window is
	// unchanged; the strategy cache maps (weights, gamma) to the per-sink
	// splitting ratios, skipping the softmin routing translation. Both die
	// with the Router, so Engine.Apply/SwapAgent/SwapCheckpoint — which
	// retire the Router wholesale — invalidate them by construction.
	cacheMu  sync.Mutex
	lastOut  *policyOutput
	strategy *routing.Strategy

	observers sync.Pool // *env.Observer, one in flight per serving worker
	scratch   sync.Pool // *evalScratch, one in flight per evaluation

	requests        atomic.Int64
	batches         atomic.Int64
	forwardPasses   atomic.Int64
	policyCacheHits atomic.Int64
	strategyHits    atomic.Int64
	strategyMisses  atomic.Int64
}

// policyOutput is one policy-output cache entry: the deterministic
// MeanAction result for one observed history window. window holds the
// matrices by pointer; entries are value-compared on lookup so a gateway
// decoding identical steady demand into fresh allocations still hits,
// with a pointer fast path that is sound because Route takes ownership of
// submitted matrices (they are immutable once in the history).
type policyOutput struct {
	window  []*DemandMatrix
	weights []float64
	gamma   float64
}

// evalScratch holds the per-request evaluation buffers: demand in-sums,
// propagation inflow, the sinks-with-demand list, and (parallel evaluation
// only) the per-sink load contributions.
type evalScratch struct {
	insums  []float64
	inflow  []float64
	sinks   []int
	contrib []float64
}

// grow returns buf resized to n, reusing its backing array when possible.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

type routeRequest struct {
	ctx  context.Context
	dm   *DemandMatrix
	resp chan routeResponse
}

type routeResponse struct {
	d   *Decision
	err error
}

// NewRouter builds a serving engine for agent on topology g. The agent may
// be freshly loaded (Save/Load round-trip) or just trained; a probe
// forward pass validates that the policy fits the topology, so an MLP
// agent bound to a different graph is rejected here rather than at the
// first Route call.
func NewRouter(agent *Agent, g *Graph, opts ...RouterOption) (*Router, error) {
	return newRouter(agent, g, resolveRouterConfig(opts))
}

// newRouter builds a router from a resolved config.
func newRouter(agent *Agent, g *Graph, cfg routerConfig) (*Router, error) {
	if agent == nil {
		return nil, fmt.Errorf("gddr: router needs an agent")
	}
	if g == nil {
		return nil, fmt.Errorf("gddr: router needs a topology")
	}
	if !g.StronglyConnected() {
		return nil, fmt.Errorf("gddr: router topology must be strongly connected")
	}
	ecfg := agent.envConfig()
	base := g.UnitWeights()
	if ecfg.CapacityAware {
		base = g.InverseCapacityWeights()
	}
	r := &Router{
		agent:       agent,
		g:           g,
		ecfg:        ecfg,
		base:        base,
		maxBatch:    cfg.maxBatch,
		evalWorkers: cfg.evalWorkers,
		batchWindow: cfg.batchWindow,
		noCache:     cfg.noCache,
		zero:        traffic.NewDemandMatrix(g.NumNodes()),
		reqCh:       make(chan *routeRequest), // unbuffered: senders block, enabling batching
		quit:        make(chan struct{}),
	}
	r.observers.New = func() any { return new(env.Observer) }
	r.scratch.New = func() any { return new(evalScratch) }
	for _, dm := range cfg.history {
		if dm == nil || dm.N != g.NumNodes() {
			return nil, fmt.Errorf("gddr: warm-history matrix does not match the %d-node topology", g.NumNodes())
		}
		r.push(dm)
	}
	// Probe: one decision on an empty demand matrix catches policies whose
	// shape is bound to a different topology before serving starts. decide
	// bypasses the caches, so the probe leaves them cold and the serving
	// counters honest (a cold-start batch would otherwise hit the probe's
	// zero-padded window and skip its first real forward pass).
	if !cfg.skipProbe {
		if _, _, err := r.decide(r.snapshotHistory(r.zero)); err != nil {
			return nil, fmt.Errorf("gddr: agent incompatible with topology: %w", err)
		}
		r.forwardPasses.Store(0) // the probe does not count as serving activity
	}
	r.wg.Add(cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		go r.worker()
	}
	return r, nil
}

// Route computes the routing decision for dm. The request observes the
// demand history accumulated by previous calls (the paper's m-step demand
// memory); dm itself joins the history for subsequent decisions, so
// ownership of dm passes to the router: the caller must not modify it
// after Route returns (a mutated matrix would silently rewrite the demand
// history past decisions were supposed to have observed, and defeat the
// fast-path caches' change detection — submit a fresh or cloned matrix per
// tick instead). Route is safe for concurrent use: requests that arrive
// while the policy is busy are batched onto one shared forward pass.
// Cancelling ctx abandons the request.
func (r *Router) Route(ctx context.Context, dm *DemandMatrix) (*Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if dm == nil {
		return nil, fmt.Errorf("gddr: route needs a demand matrix")
	}
	if dm.N != r.g.NumNodes() {
		return nil, fmt.Errorf("gddr: demand matrix size %d != %d topology nodes", dm.N, r.g.NumNodes())
	}
	req := &routeRequest{ctx: ctx, dm: dm, resp: make(chan routeResponse, 1)}
	select {
	case r.reqCh <- req:
	case <-r.quit:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		return resp.d, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns serving counters since the router started.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Requests:        r.requests.Load(),
		Batches:         r.batches.Load(),
		ForwardPasses:   r.forwardPasses.Load(),
		PolicyCacheHits: r.policyCacheHits.Load(),
		StrategyHits:    r.strategyHits.Load(),
		StrategyMisses:  r.strategyMisses.Load(),
	}
}

// Graph returns the frozen topology the router serves. The graph is shared,
// not copied; it must not be modified.
func (r *Router) Graph() *Graph { return r.g }

// Close stops the serving workers and waits for them to exit. Route calls
// not yet accepted by a worker return ErrClosed; a request already being
// served completes normally, so closing drains in-flight work. Close is
// idempotent and safe to call concurrently with Route.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.quit) })
	r.wg.Wait()
}

// historySnapshot copies the current demand history (oldest first), so the
// Engine can carry observations across a topology or model swap.
func (r *Router) historySnapshot() []*DemandMatrix {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*DemandMatrix(nil), r.history...)
}

// setHistory replaces the demand history (oldest first), trimming to the
// memory window. The Engine uses it to carry the drained predecessor's
// final history into a replacement snapshot before publishing it; the
// matrices must already be sized for the router's topology.
func (r *Router) setHistory(hist []*DemandMatrix) {
	if m := r.ecfg.Memory; len(hist) > m {
		hist = hist[len(hist)-m:]
	}
	r.mu.Lock()
	r.history = append(r.history[:0], hist...)
	r.mu.Unlock()
}

func (r *Router) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.quit:
			return
		case req := <-r.reqCh:
			r.serve(r.gather(req))
		}
	}
}

// gather drains requests already blocked on the channel, up to the batch
// bound, so they share the forward pass of the request that woke us. The
// yield gives concurrent callers that are runnable but not yet parked on
// the channel a chance to enqueue — without it, a CPU-bound serving loop
// on few cores degenerates to singleton batches because waiting senders
// never get scheduled between polls. With a batch window configured, the
// worker then keeps the batch open up to that long, blocking for senders
// that are still on their way; Close cuts the wait short, and the batch
// gathered so far is still served (Close drains in-flight work).
func (r *Router) gather(first *routeRequest) []*routeRequest {
	batch := []*routeRequest{first}
	runtime.Gosched()
	for len(batch) < r.maxBatch {
		select {
		case req := <-r.reqCh:
			batch = append(batch, req)
			continue
		default:
		}
		break
	}
	if r.batchWindow <= 0 || len(batch) >= r.maxBatch {
		return batch
	}
	timer := time.NewTimer(r.batchWindow)
	defer timer.Stop()
	for len(batch) < r.maxBatch {
		select {
		case req := <-r.reqCh:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		case <-r.quit:
			return batch
		}
	}
	return batch
}

// push appends dm to the sliding demand history.
func (r *Router) push(dm *DemandMatrix) {
	m := r.ecfg.Memory
	r.history = append(r.history, dm)
	if len(r.history) > m {
		r.history = r.history[len(r.history)-m:]
	}
}

// snapshotHistory returns the m most recent matrices, padding a cold-start
// history with fallback, without mutating router state.
func (r *Router) snapshotHistory(fallback *DemandMatrix) []*DemandMatrix {
	return env.HistoryWindow(r.history, r.ecfg.Memory, fallback)
}

// serve answers one batch: one shared observation and forward pass, then a
// per-request routing evaluation.
func (r *Router) serve(batch []*routeRequest) {
	// Drop requests whose caller already gave up.
	live := batch[:0]
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			req.resp <- routeResponse{err: err}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	r.batches.Add(1)
	r.requests.Add(int64(len(live)))

	// All requests of the batch observe the pre-batch history (matching the
	// training-time contract that a decision for time t sees demands up to
	// t-1), then join it for subsequent batches. A cold-start history is
	// padded with zero matrices — the "no traffic observed yet" statement —
	// never with a batch member's own demand, which would let the first
	// decisions observe the very demand they are routing.
	r.mu.Lock()
	hist := r.snapshotHistory(r.zero)
	for _, req := range live {
		r.push(req.dm)
	}
	r.mu.Unlock()

	weights, gamma, err := r.decideCached(hist)
	if err != nil {
		for _, req := range live {
			req.resp <- routeResponse{err: err}
		}
		return
	}

	// The splitting ratios depend only on (weights, gamma, sink), so they
	// are shared across the batch — and, via the strategy cache, across
	// every batch for which the policy keeps emitting these weights; each
	// request pays only for propagating its own demand through them.
	strat, err := r.strategyFor(weights, gamma)
	if err != nil {
		for _, req := range live {
			req.resp <- routeResponse{err: err}
		}
		return
	}
	for _, req := range live {
		d, err := r.evaluate(req.dm, strat)
		req.resp <- routeResponse{d: d, err: err}
	}
}

// decideCached is decide behind the policy-output cache: if the observed
// history window is unchanged since the last batch (pointer-equal or, for
// identical matrices decoded afresh, value-equal), the deterministic
// MeanAction would recompute the same action, so the cached (weights,
// gamma) is returned without building an observation or running a forward
// pass. The returned slices are shared with the cache and must be treated
// as read-only — every consumer copies before handing them to callers.
func (r *Router) decideCached(hist []*DemandMatrix) ([]float64, float64, error) {
	if !r.noCache {
		r.cacheMu.Lock()
		if c := r.lastOut; c != nil && windowsEqual(c.window, hist) {
			weights, gamma := c.weights, c.gamma
			r.cacheMu.Unlock()
			r.policyCacheHits.Add(1)
			return weights, gamma, nil
		}
		r.cacheMu.Unlock()
	}
	weights, gamma, err := r.decide(hist)
	if err != nil {
		return nil, 0, err
	}
	if !r.noCache {
		r.cacheMu.Lock()
		r.lastOut = &policyOutput{window: hist, weights: weights, gamma: gamma}
		r.cacheMu.Unlock()
	}
	return weights, gamma, nil
}

// windowsEqual reports whether two history windows hold the same demand,
// with a pointer fast path per slot (steady demand re-pushes the same
// matrices) before falling back to entry comparison.
func windowsEqual(a, b []*DemandMatrix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// strategyFor returns the routing strategy for (weights, gamma), reusing
// the cached one when the policy output is unchanged. With caching off it
// builds a fresh per-batch strategy, which still shares ratios within the
// batch (the pre-cache behaviour).
func (r *Router) strategyFor(weights []float64, gamma float64) (*routing.Strategy, error) {
	if r.noCache {
		r.strategyMisses.Add(1)
		return routing.NewStrategy(r.g, weights, gamma)
	}
	r.cacheMu.Lock()
	if s := r.strategy; s != nil && s.Matches(weights, gamma) {
		r.cacheMu.Unlock()
		r.strategyHits.Add(1)
		return s, nil
	}
	r.cacheMu.Unlock()
	s, err := routing.NewStrategy(r.g, weights, gamma)
	if err != nil {
		return nil, err
	}
	r.strategyMisses.Add(1)
	r.cacheMu.Lock()
	r.strategy = s
	r.cacheMu.Unlock()
	return s, nil
}

// decide runs the policy on the demand history and returns the edge
// weights and softmin spread of the resulting routing strategy. The
// observation is built into a pooled Observer's buffers: MeanAction copies
// what it needs, so the buffers are free for reuse when decide returns.
func (r *Router) decide(hist []*DemandMatrix) ([]float64, float64, error) {
	ob := r.observers.Get().(*env.Observer)
	defer r.observers.Put(ob)
	obs, err := ob.Observe(r.g, hist)
	if err != nil {
		return nil, 0, err
	}
	ne := r.g.NumEdges()
	if r.agent.Kind == policy.GNNIterativeKind {
		// The iterative policy sets one edge per forward pass and emits γ
		// with its final action (paper §VII-B).
		pending := make([]float64, ne)
		set := make([]bool, ne)
		gamma := r.ecfg.Gamma
		for ei := 0; ei < ne; ei++ {
			obs.SetIterativeState(pending, set, ei)
			action, err := rl.MeanAction(r.agent.policy, obs)
			r.forwardPasses.Add(1)
			if err != nil {
				return nil, 0, err
			}
			if len(action) != 2 {
				return nil, 0, fmt.Errorf("gddr: iterative policy emitted %d action values, want 2", len(action))
			}
			// Clamp to [-1,1] exactly as the training environment does
			// before storing pending values, so the per-edge observations
			// match the training distribution.
			pending[ei] = math.Max(-1, math.Min(1, action[0]))
			set[ei] = true
			if ei == ne-1 {
				gamma = env.GammaFromAction(action[1])
			}
		}
		weights := make([]float64, ne)
		for ei, a := range pending {
			weights[ei] = env.WeightFromAction(r.base[ei], r.ecfg.WeightScale, a)
		}
		return weights, gamma, nil
	}
	action, err := rl.MeanAction(r.agent.policy, obs)
	r.forwardPasses.Add(1)
	if err != nil {
		return nil, 0, err
	}
	if len(action) != ne {
		return nil, 0, fmt.Errorf("gddr: policy emitted %d action values for %d edges", len(action), ne)
	}
	weights := make([]float64, ne)
	for ei, a := range action {
		weights[ei] = env.WeightFromAction(r.base[ei], r.ecfg.WeightScale, a)
	}
	return weights, r.ecfg.Gamma, nil
}

// evaluate derives the full Decision for dm under the batch's routing
// strategy. The demand in-sums are precomputed in one pass (replacing the
// per-sink column scans), propagation runs through pooled scratch buffers,
// and the strategy supplies cached per-sink splitting ratios. Only the
// caller-owned Decision fields are allocated.
func (r *Router) evaluate(dm *DemandMatrix, strat *routing.Strategy) (*Decision, error) {
	n := r.g.NumNodes()
	ne := r.g.NumEdges()
	sc := r.scratch.Get().(*evalScratch)
	defer r.scratch.Put(sc)
	sc.insums = grow(sc.insums, n)
	dm.InSums(sc.insums)
	sinks := sc.sinks[:0]
	for v, in := range sc.insums {
		if in != 0 {
			sinks = append(sinks, v)
		}
	}
	sc.sinks = sinks

	// One backing array for the two per-edge result slices; the scratch
	// loads buffer is reset by construction, so reuse cannot double-count
	// (see Ratios.Loads' accumulation contract).
	buf := make([]float64, 2*ne)
	loads, util := buf[:ne:ne], buf[ne:]
	if r.evalWorkers > 1 && len(sinks) > 1 {
		if err := r.evaluateSinksParallel(dm, strat, sinks, sc, loads); err != nil {
			return nil, err
		}
	} else {
		sc.inflow = grow(sc.inflow, n)
		for _, sink := range sinks {
			rt, err := strat.Ratios(sink)
			if err != nil {
				return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
			}
			if err := rt.AccumulateLoads(r.g, dm, loads, sc.inflow); err != nil {
				return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
			}
		}
	}

	splits := make(map[int][]float64, len(sinks))
	for _, sink := range sinks {
		rt, err := strat.Ratios(sink)
		if err != nil {
			return nil, fmt.Errorf("gddr: route sink %d: %w", sink, err)
		}
		splits[sink] = append([]float64(nil), rt.Ratio...)
	}
	maxU := 0.0
	for ei := range util {
		util[ei] = loads[ei] / r.g.Edge(ei).Capacity
		if util[ei] > maxU {
			maxU = util[ei]
		}
	}
	return &Decision{
		Weights:        append([]float64(nil), strat.Weights()...),
		Gamma:          strat.Gamma(),
		Splits:         splits,
		Loads:          loads,
		Utilization:    util,
		MaxUtilization: maxU,
	}, nil
}

// evaluateSinksParallel fans the per-sink load propagation of one request
// out over the eval workers. Each sink's contribution lands in its own row
// of the scratch matrix and the rows are folded in sink order — each edge
// receives exactly one addition per sink, the same floating-point sequence
// as the sequential path, so parallel decisions are bit-identical.
func (r *Router) evaluateSinksParallel(dm *DemandMatrix, strat *routing.Strategy, sinks []int, sc *evalScratch, loads []float64) error {
	n := r.g.NumNodes()
	ne := r.g.NumEdges()
	sc.contrib = grow(sc.contrib, len(sinks)*ne)
	workers := r.evalWorkers
	if workers > len(sinks) {
		workers = len(sinks)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errMu   sync.Mutex
		poolErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inflow := make([]float64, n)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sinks) {
					return
				}
				row := sc.contrib[i*ne : (i+1)*ne]
				clear(row)
				rt, err := strat.Ratios(sinks[i])
				if err == nil {
					err = rt.AccumulateLoads(r.g, dm, row, inflow)
				}
				if err != nil {
					errMu.Lock()
					if poolErr == nil {
						poolErr = fmt.Errorf("gddr: route sink %d: %w", sinks[i], err)
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if poolErr != nil {
		return poolErr
	}
	for i := range sinks {
		row := sc.contrib[i*ne : (i+1)*ne]
		for ei, c := range row {
			if c != 0 {
				loads[ei] += c
			}
		}
	}
	return nil
}
