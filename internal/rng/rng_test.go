package rng

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeterministicFromSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(7)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	saved := s.State()
	want := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s.SetState(saved)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d after SetState: got %d want %d", i, got, w)
		}
	}
}

func TestStateRoundTripThroughRand(t *testing.T) {
	// The full math/rand API layered on a Source must be resumable from the
	// Source state alone (NormFloat64 and Shuffle keep no hidden state).
	src := New(3)
	r := rand.New(src)
	r.NormFloat64()
	r.Shuffle(10, func(i, j int) {})
	saved := src.State()
	want := []float64{r.NormFloat64(), r.NormFloat64(), r.Float64()}
	src.SetState(saved)
	r2 := rand.New(src)
	for i, w := range want {
		var got float64
		if i < 2 {
			got = r2.NormFloat64()
		} else {
			got = r2.Float64()
		}
		if got != w {
			t.Fatalf("resumed draw %d: got %g want %g", i, got, w)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(5)
	before := s.State()
	f1, f2 := s.Fork(1), s.Fork(2)
	if s.State() != before {
		t.Fatal("Fork consumed parent state")
	}
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different tags produced the same first draw")
	}
	g1 := s.Fork(1)
	if g1.Uint64() != New(5).Fork(1).Uint64() {
		t.Fatal("re-forking with the same tag is not reproducible")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(9, 3) != DeriveSeed(9, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(9, 3) == DeriveSeed(9, 4) || DeriveSeed(9, 3) == DeriveSeed(10, 3) {
		t.Fatal("DeriveSeed collisions across adjacent seeds/streams")
	}
}

func TestRoughUniformity(t *testing.T) {
	// Sanity: the low bits should be balanced, not a statistical test suite.
	s := New(11)
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Uint64()&1 == 1 {
			ones++
		}
	}
	if math.Abs(float64(ones)/n-0.5) > 0.03 {
		t.Fatalf("bit bias: %d ones out of %d", ones, n)
	}
}
