// Package rng provides the deterministic, serialisable random stream used
// by the training pipeline. The standard library's rand.Source hides its
// state, which makes checkpoint/resume impossible; this SplitMix64 source
// exposes its single uint64 of state so a training run can be frozen to JSON
// and resumed bit-identically. Independent streams (one per rollout worker,
// one per generated sequence) are derived with Fork/DeriveSeed instead of
// sharing one source across goroutines.
package rng

import "math/rand"

// mix64 is the SplitMix64 output function (Steele, Lea & Flood 2014): a
// bijective avalanche mix, also used to spread correlated seeds/streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

const gamma = 0x9E3779B97F4A7C15 // golden-ratio increment of SplitMix64

// Source is a SplitMix64 pseudo-random source. It implements
// rand.Source64, so rand.New(src) layers the full math/rand API
// (NormFloat64, Shuffle, ...) on top; those helpers keep no hidden state, so
// the Source's single word fully determines every future draw.
//
// A Source is not safe for concurrent use — that is the point: every
// goroutine gets its own Fork.
type Source struct {
	state uint64
}

var _ rand.Source64 = (*Source)(nil)

// New returns a source seeded from seed.
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the source. Nearby seeds are decorrelated by the mix
// function.
func (s *Source) Seed(seed int64) { s.state = mix64(uint64(seed) + gamma) }

// Uint64 returns the next value of the stream.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// State returns the current stream state for checkpointing.
func (s *Source) State() uint64 { return s.state }

// SetState rewinds the source to a state captured with State.
func (s *Source) SetState(state uint64) { s.state = state }

// Fork derives an independent stream from the current state and a stream
// tag without consuming any randomness from the parent: forking with
// distinct tags yields decorrelated streams, and re-forking with the same
// tag is reproducible.
func (s *Source) Fork(stream uint64) *Source {
	return &Source{state: mix64(s.state ^ mix64(stream*gamma+gamma))}
}

// DeriveSeed maps a (seed, stream) pair to an int64 seed for APIs that take
// seeds rather than Sources — e.g. one seed per generated demand sequence,
// or one per rollout worker's cloned environment.
func DeriveSeed(seed int64, stream uint64) int64 {
	return int64(New(seed).Fork(stream).Uint64())
}
