package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul is the reference triple loop the blocked kernels replaced;
// the equivalence tests below hold the blocked results to it within
// rounding, and BenchmarkMatMulBlocked measures the speedup against it.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func naiveMatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		for i := 0; i < a.Cols; i++ {
			av := a.At(k, i)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func naiveMatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// maxRelDiff returns max_i |a_i − b_i| / max(1, |a_i|).
func maxRelDiff(t *testing.T, a, b *Matrix) float64 {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var worst float64
	for i := range a.Data {
		scale := math.Abs(a.Data[i])
		if scale < 1 {
			scale = 1
		}
		if d := math.Abs(a.Data[i]-b.Data[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// kernelShapes covers block-boundary cases: empty, tiny, exact multiples of
// the unroll width and k tile, and off-by-one around both.
var kernelShapes = [][3]int{
	{0, 3, 4}, {3, 0, 4}, {3, 4, 0},
	{1, 1, 1}, {2, 3, 4}, {5, 7, 3},
	{4, 4, 4}, {8, 64, 8}, {8, 63, 8}, {8, 65, 8},
	{17, 129, 31}, {33, 128, 65}, {3, 200, 600},
}

func TestBlockedKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range kernelShapes {
		m, k, n := shape[0], shape[1], shape[2]
		a := RandNormal(m, k, 1, rng)
		b := RandNormal(k, n, 1, rng)
		at := RandNormal(k, m, 1, rng)
		bt := RandNormal(n, k, 1, rng)
		// Sprinkle zeros so the zero-skip paths run.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}

		if d := maxRelDiff(t, naiveMatMul(a, b), MatMul(a, b)); d > 1e-12 {
			t.Errorf("MatMul %dx%dx%d: rel diff %g", m, k, n, d)
		}
		if d := maxRelDiff(t, naiveMatMulTransA(at, b), MatMulTransA(at, b)); d > 1e-12 {
			t.Errorf("MatMulTransA %dx%dx%d: rel diff %g", m, k, n, d)
		}
		if d := maxRelDiff(t, naiveMatMulTransB(a, bt), MatMulTransB(a, bt)); d > 1e-12 {
			t.Errorf("MatMulTransB %dx%dx%d: rel diff %g", m, k, n, d)
		}

		// Into overwrites stale contents; Accum adds on top of them.
		dst := RandNormal(m, n, 1, rng)
		if d := maxRelDiff(t, MatMul(a, b), MatMulInto(dst, a, b)); d != 0 {
			t.Errorf("MatMulInto %dx%dx%d: diff %g from MatMul", m, k, n, d)
		}
		base := RandNormal(m, n, 1, rng)
		sum := base.Clone()
		MatMulAccum(sum, a, b)
		want := Add(base, MatMul(a, b))
		if d := maxRelDiff(t, want, sum); d > 1e-12 {
			t.Errorf("MatMulAccum %dx%dx%d: rel diff %g", m, k, n, d)
		}

		dstA := RandNormal(m, n, 1, rng)
		if d := maxRelDiff(t, MatMulTransA(at, b), MatMulTransAInto(dstA, at, b)); d != 0 {
			t.Errorf("MatMulTransAInto %dx%dx%d: diff %g", m, k, n, d)
		}
		baseA := RandNormal(m, n, 1, rng)
		sumA := baseA.Clone()
		MatMulTransAAccum(sumA, at, b)
		if d := maxRelDiff(t, Add(baseA, MatMulTransA(at, b)), sumA); d > 1e-12 {
			t.Errorf("MatMulTransAAccum %dx%dx%d: rel diff %g", m, k, n, d)
		}

		dstB := RandNormal(m, n, 1, rng)
		if d := maxRelDiff(t, MatMulTransB(a, bt), MatMulTransBInto(dstB, a, bt)); d != 0 {
			t.Errorf("MatMulTransBInto %dx%dx%d: diff %g", m, k, n, d)
		}
		baseB := RandNormal(m, n, 1, rng)
		sumB := baseB.Clone()
		MatMulTransBAccum(sumB, a, bt)
		if d := maxRelDiff(t, Add(baseB, MatMulTransB(a, bt)), sumB); d > 1e-12 {
			t.Errorf("MatMulTransBAccum %dx%dx%d: rel diff %g", m, k, n, d)
		}
	}
}

// TestBlockedKernelsBitDeterministic pins the determinism contract the
// checkpoint bit-identity tests depend on: the same operands give the same
// bits, every run.
func TestBlockedKernelsBitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandNormal(33, 130, 1, rng)
	b := RandNormal(130, 65, 1, rng)
	first := MatMul(a, b)
	for rep := 0; rep < 5; rep++ {
		again := MatMul(a, b)
		for i := range first.Data {
			if math.Float64bits(first.Data[i]) != math.Float64bits(again.Data[i]) {
				t.Fatalf("rep %d: element %d differs bitwise: %v vs %v", rep, i, first.Data[i], again.Data[i])
			}
		}
	}
}

func TestIntoVariantsShapeChecks(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	bad := New(2, 3) // wrong dst shape for every product below
	for name, f := range map[string]func(){
		"MatMulInto":       func() { MatMulInto(bad, a, b) },
		"MatMulAccum":      func() { MatMulAccum(bad, a, b) },
		"MatMulTransAInto": func() { MatMulTransAInto(bad, New(3, 2), b) },
		"MatMulTransBInto": func() { MatMulTransBInto(New(2, 2), a, New(5, 4)) },
		"AddInto":          func() { AddInto(bad, New(2, 4), New(2, 4)) },
		"SubInto":          func() { SubInto(bad, New(2, 4), New(2, 4)) },
		"MulInto":          func() { MulInto(bad, New(2, 4), New(2, 4)) },
		"ScaleInto":        func() { ScaleInto(bad, New(2, 4), 2) },
		"ApplyInto":        func() { ApplyInto(bad, New(2, 4), math.Abs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestElementwiseIntoVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(4, 5, 1, rng)
	b := RandNormal(4, 5, 1, rng)
	dst := New(4, 5)
	if d := maxRelDiff(t, Add(a, b), AddInto(dst, a, b)); d != 0 {
		t.Errorf("AddInto diff %g", d)
	}
	if d := maxRelDiff(t, Sub(a, b), SubInto(dst, a, b)); d != 0 {
		t.Errorf("SubInto diff %g", d)
	}
	if d := maxRelDiff(t, Mul(a, b), MulInto(dst, a, b)); d != 0 {
		t.Errorf("MulInto diff %g", d)
	}
	if d := maxRelDiff(t, Scale(a, 2.5), ScaleInto(dst, a, 2.5)); d != 0 {
		t.Errorf("ScaleInto diff %g", d)
	}
	if d := maxRelDiff(t, Apply(a, math.Abs), ApplyInto(dst, a, math.Abs)); d != 0 {
		t.Errorf("ApplyInto diff %g", d)
	}
	// Aliasing dst with an operand is allowed for the elementwise variants.
	alias := a.Clone()
	AddInto(alias, alias, b)
	if d := maxRelDiff(t, Add(a, b), alias); d != 0 {
		t.Errorf("AddInto aliased diff %g", d)
	}
}

func TestIntoVariantsDoNotAllocate(t *testing.T) {
	a := New(16, 48)
	b := New(48, 32)
	bt := New(32, 48)
	at := New(48, 16)
	for i := range a.Data {
		a.Data[i] = float64(i%7) - 3
	}
	for i := range b.Data {
		b.Data[i] = float64(i%5) - 2
	}
	for i := range bt.Data {
		bt.Data[i] = float64(i%3) - 1
	}
	for i := range at.Data {
		at.Data[i] = float64(i%11) - 5
	}
	dst := New(16, 32)
	dstA := New(16, 32)
	allocs := testing.AllocsPerRun(20, func() {
		MatMulInto(dst, a, b)
		MatMulTransAInto(dstA, at, b)
		MatMulTransBInto(dst, a, bt)
		MatMulAccum(dst, a, b)
		AddInto(dst, dst, dst)
		ScaleInto(dst, dst, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("Into kernels allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkMatMulBlocked compares the blocked kernel against the naive
// triple loop at the CI-gated 256×256 shape. The workflow gate requires
// blocked ≥ 2x naive (min of 3 runs).
func BenchmarkMatMulBlocked(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(42))
	x := RandNormal(n, n, 1, rng)
	y := RandNormal(n, n, 1, rng)
	dst := New(n, n)
	b.Run(fmt.Sprintf("impl=naive/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveMatMul(x, y)
		}
	})
	b.Run(fmt.Sprintf("impl=blocked/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulInto(dst, x, y)
		}
	})
}
