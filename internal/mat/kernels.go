// Blocked matrix-multiply kernels. These are the repository's numeric inner
// loops: every GNN message pass, dense layer, and autodiff backward step
// bottoms out here, so the kernels are written for cache locality and zero
// steady-state allocation rather than brevity.
//
// Layout of the file: the public *Into variants overwrite a caller-owned
// destination (zero, then accumulate), the public *Accum variants add into
// it (the gradient `+=` pattern), and both delegate to unexported
// accumulate-only cores. The cores block the k dimension in kcBlock-sized
// tiles and unroll it four-wide so each pass over an output row folds four
// rank-1 updates into one load/store sweep.
//
// Determinism contract: for a fixed set of operand shapes the floating-point
// summation order is a pure function of the shapes — blocking and unrolling
// never depend on values (the all-zero skip only elides exact +0
// contributions) — so repeated runs are bit-identical. The order differs
// from the naive triple loop's, so results may differ from the pre-blocked
// kernels in the last ulp, but never across runs of the same binary.
package mat

import "fmt"

const (
	// kcBlock is the k-dimension tile: one tile of b (kcBlock rows) is
	// streamed across every row of a before the next tile, keeping the
	// active slice of b hot in cache while output rows are revisited.
	kcBlock = 64
	// jcBlock caps the output-row span touched per pass so very wide
	// matrices do not thrash the active b tile out of cache.
	jcBlock = 512
)

// MatMulInto computes a×b into dst, overwriting it. dst must be
// a.Rows×b.Cols and must not alias a or b. It returns dst.
//
//gddr:hotpath
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmul dst", dst, a.Rows, b.Cols)
	dst.Zero()
	matMulAccum(dst, a, b)
	return dst
}

// MatMulAccum adds a×b into dst. Shape rules match MatMulInto.
//
//gddr:hotpath
func MatMulAccum(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmul dst", dst, a.Rows, b.Cols)
	matMulAccum(dst, a, b)
	return dst
}

// MatMulTransAInto computes aᵀ×b into dst, overwriting it. dst must be
// a.Cols×b.Cols and must not alias a or b. It returns dst.
//
//gddr:hotpath
func MatMulTransAInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: matmulTransA shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmulTransA dst", dst, a.Cols, b.Cols)
	dst.Zero()
	matMulTransAAccum(dst, a, b)
	return dst
}

// MatMulTransAAccum adds aᵀ×b into dst. Shape rules match MatMulTransAInto.
//
//gddr:hotpath
func MatMulTransAAccum(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: matmulTransA shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmulTransA dst", dst, a.Cols, b.Cols)
	matMulTransAAccum(dst, a, b)
	return dst
}

// MatMulTransBInto computes a×bᵀ into dst, overwriting it. dst must be
// a.Rows×b.Rows and must not alias a or b. It returns dst.
//
//gddr:hotpath
func MatMulTransBInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: matmulTransB shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmulTransB dst", dst, a.Rows, b.Rows)
	dst.Zero()
	matMulTransBAccum(dst, a, b)
	return dst
}

// MatMulTransBAccum adds a×bᵀ into dst. Shape rules match MatMulTransBInto.
//
//gddr:hotpath
func MatMulTransBAccum(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: matmulTransB shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape("matmulTransB dst", dst, a.Rows, b.Rows)
	matMulTransBAccum(dst, a, b)
	return dst
}

// matMulAccum adds a×b into dst using a k-blocked, four-wide-unrolled sweep:
// for each k tile, each output row absorbs four rank-1 updates per pass, so
// the row is loaded and stored once per four k steps instead of once per
// step, and the active b tile stays cache-resident across all rows of a.
//
//gddr:hotpath
func matMulAccum(dst, a, b *Matrix) {
	m, kk, n := a.Rows, a.Cols, b.Cols
	if m == 0 || kk == 0 || n == 0 {
		return
	}
	for k0 := 0; k0 < kk; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > kk {
			k1 = kk
		}
		for j0 := 0; j0 < n; j0 += jcBlock {
			j1 := j0 + jcBlock
			if j1 > n {
				j1 = n
			}
			for i := 0; i < m; i++ {
				arow := a.Data[i*kk : (i+1)*kk]
				orow := dst.Data[i*n+j0 : i*n+j1]
				k := k0
				for ; k+3 < k1; k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := b.Data[k*n+j0 : k*n+j1 : k*n+j1]
					b1 := b.Data[(k+1)*n+j0 : (k+1)*n+j1 : (k+1)*n+j1]
					b2 := b.Data[(k+2)*n+j0 : (k+2)*n+j1 : (k+2)*n+j1]
					b3 := b.Data[(k+3)*n+j0 : (k+3)*n+j1 : (k+3)*n+j1]
					for j := range orow {
						orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Data[k*n+j0 : k*n+j1 : k*n+j1]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matMulTransAAccum adds aᵀ×b into dst. a's rows are the contraction
// dimension, so the kernel walks them four at a time and scatters grouped
// rank-1 updates into dst rows; the four-wide grouping halves the traffic on
// dst the same way matMulAccum's unroll does.
//
//gddr:hotpath
func matMulTransAAccum(dst, a, b *Matrix) {
	kk, m, n := a.Rows, a.Cols, b.Cols
	if m == 0 || kk == 0 || n == 0 {
		return
	}
	k := 0
	for ; k+3 < kk; k += 4 {
		a0row := a.Data[k*m : (k+1)*m]
		a1row := a.Data[(k+1)*m : (k+2)*m]
		a2row := a.Data[(k+2)*m : (k+3)*m]
		a3row := a.Data[(k+3)*m : (k+4)*m]
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		for i := 0; i < m; i++ {
			a0, a1, a2, a3 := a0row[i], a1row[i], a2row[i], a3row[i]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			orow := dst.Data[i*n : (i+1)*n : (i+1)*n]
			for j := range orow {
				orow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
	}
	for ; k < kk; k++ {
		arow := a.Data[k*m : (k+1)*m]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := dst.Data[i*n : (i+1)*n : (i+1)*n]
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// matMulTransBAccum adds a×bᵀ into dst. Each output element is a dot
// product of contiguous rows, computed with four independent accumulators to
// break the add-latency chain; the accumulators fold in a fixed
// shape-determined order so results stay bit-identical across runs.
//
//gddr:hotpath
func matMulTransBAccum(dst, a, b *Matrix) {
	m, kk, n := a.Rows, a.Cols, b.Rows
	if m == 0 || n == 0 {
		return
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*kk : (i+1)*kk]
		orow := dst.Data[i*n : (i+1)*n]
		for j := range orow {
			brow := b.Data[j*kk : (j+1)*kk : (j+1)*kk]
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+3 < kk; k += 4 {
				s0 += arow[k] * brow[k]
				s1 += arow[k+1] * brow[k+1]
				s2 += arow[k+2] * brow[k+2]
				s3 += arow[k+3] * brow[k+3]
			}
			var tail float64
			for ; k < kk; k++ {
				tail += arow[k] * brow[k]
			}
			orow[j] += (s0 + s1) + (s2 + s3) + tail
		}
	}
}

// AddInto computes a+b into dst, overwriting it. dst may alias a or b.
//
//gddr:hotpath
func AddInto(dst, a, b *Matrix) *Matrix {
	mustSameShape("add", a, b)
	mustShape("add dst", dst, a.Rows, a.Cols)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// SubInto computes a−b into dst, overwriting it. dst may alias a or b.
//
//gddr:hotpath
func SubInto(dst, a, b *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	mustShape("sub dst", dst, a.Rows, a.Cols)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// MulInto computes a⊙b into dst, overwriting it. dst may alias a or b.
//
//gddr:hotpath
func MulInto(dst, a, b *Matrix) *Matrix {
	mustSameShape("mul", a, b)
	mustShape("mul dst", dst, a.Rows, a.Cols)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// ScaleInto computes s·a into dst, overwriting it. dst may alias a.
//
//gddr:hotpath
func ScaleInto(dst, a *Matrix, s float64) *Matrix {
	mustShape("scale dst", dst, a.Rows, a.Cols)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * s
	}
	return dst
}

// ApplyInto computes f applied elementwise to a into dst, overwriting it.
// dst may alias a.
//
//gddr:hotpath
func ApplyInto(dst, a *Matrix, f func(float64) float64) *Matrix {
	mustShape("apply dst", dst, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
	return dst
}

// mustShape panics unless m is rows×cols.
//
//gddr:hotpath
func mustShape(op string, m *Matrix, rows, cols int) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("mat: %s shape mismatch: have %dx%d, want %dx%d", op, m.Rows, m.Cols, rows, cols))
	}
}
