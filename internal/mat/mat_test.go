package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("new matrix not zeroed: %v", m.Data)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2)=%g want 5", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 5 {
		t.Fatalf("Row(1)=%v want last element 5", row)
	}
	row[0] = 7 // views alias the matrix
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromRowsAndVectors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong layout: %v", m)
	}
	rv := RowVector([]float64{1, 2, 3})
	if rv.Rows != 1 || rv.Cols != 3 {
		t.Fatalf("RowVector shape %dx%d", rv.Rows, rv.Cols)
	}
	cv := ColVector([]float64{1, 2, 3})
	if cv.Rows != 3 || cv.Cols != 1 {
		t.Fatalf("ColVector shape %dx%d", cv.Rows, cv.Cols)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if !almostEqual(c.Data[i], want.Data[i]) {
			t.Fatalf("matmul=%v want %v", c, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(4, 4, 1, rng)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEqual(c.Data[i], a.Data[i]) {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(3, 5, 1, rng)
	b := RandNormal(3, 4, 1, rng)
	// aᵀ·b via explicit transpose.
	at := New(5, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulTransA(a, b)
	if !got.SameShape(want) {
		t.Fatalf("shape %dx%d want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i]) {
			t.Fatal("MatMulTransA disagrees with explicit transpose")
		}
	}

	c := RandNormal(4, 5, 1, rng)
	d := RandNormal(2, 5, 1, rng)
	dt := New(5, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 5; j++ {
			dt.Set(j, i, d.At(i, j))
		}
	}
	want2 := MatMul(c, dt)
	got2 := MatMulTransB(c, d)
	for i := range want2.Data {
		if !almostEqual(got2.Data[i], want2.Data[i]) {
			t.Fatal("MatMulTransB disagrees with explicit transpose")
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 4}})
	b := FromRows([][]float64{{2, 2}, {2, 2}})
	if got := Add(a, b).At(0, 1); got != 0 {
		t.Fatalf("add got %g", got)
	}
	if got := Sub(a, b).At(1, 1); got != 2 {
		t.Fatalf("sub got %g", got)
	}
	if got := Mul(a, b).At(1, 0); got != 6 {
		t.Fatalf("mul got %g", got)
	}
	if got := Scale(a, -1).At(0, 0); got != -1 {
		t.Fatalf("scale got %g", got)
	}
	if got := Apply(a, math.Abs).At(0, 1); got != 2 {
		t.Fatalf("apply got %g", got)
	}
}

func TestConcat(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5}, {6}})
	c := ConcatCols(a, b)
	if c.Rows != 2 || c.Cols != 3 || c.At(0, 2) != 5 || c.At(1, 2) != 6 {
		t.Fatalf("concat-cols wrong: %v", c)
	}
	d := ConcatRows(a, FromRows([][]float64{{7, 8}}))
	if d.Rows != 3 || d.At(2, 1) != 8 {
		t.Fatalf("concat-rows wrong: %v", d)
	}
}

func TestGatherRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	g := GatherRows(a, []int{2, 0, 2})
	if g.Rows != 3 || g.At(0, 0) != 5 || g.At(1, 1) != 2 || g.At(2, 0) != 5 {
		t.Fatalf("gather wrong: %v", g)
	}
}

func TestSegmentSum(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	s := SegmentSum(a, []int{0, 1, 0, 2}, 3)
	if s.At(0, 0) != 4 || s.At(1, 0) != 2 || s.At(2, 1) != 4 {
		t.Fatalf("segment-sum wrong: %v", s)
	}
}

func TestSegmentSumMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(20)
		cols := 1 + r.Intn(5)
		segs := 1 + r.Intn(6)
		a := RandNormal(rows, cols, 1, rng)
		ids := make([]int, rows)
		for i := range ids {
			ids[i] = r.Intn(segs)
		}
		got := SegmentSum(a, ids, segs)
		want := New(segs, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want.Data[ids[i]*cols+j] += a.At(i, j)
			}
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumsAndReductions(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	sr := SumRows(a)
	if sr.At(0, 0) != 4 || sr.At(0, 1) != 6 {
		t.Fatalf("sum-rows wrong: %v", sr)
	}
	if Sum(a) != 10 {
		t.Fatalf("sum=%g", Sum(a))
	}
	if MaxAbs(FromRows([][]float64{{-5, 2}})) != 5 {
		t.Fatal("maxabs wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(3, 4, 1, rng)
		b := RandNormal(4, 2, 1, rng)
		c := RandNormal(2, 3, 1, rng)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}
