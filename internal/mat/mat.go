// Package mat provides a small dense row-major matrix type used by the
// autodiff engine, neural-network layers, and graph-network blocks. It is a
// from-scratch substitute for the tensor functionality this reproduction
// would otherwise take from TensorFlow.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-valued rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a rows×cols matrix. The slice is used
// directly, not copied.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: slice length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged row %d (len %d, want %d)", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// RowVector builds a 1×len(v) matrix copying v.
func RowVector(v []float64) *Matrix {
	m := New(1, len(v))
	copy(m.Data, v)
	return m
}

// ColVector builds a len(v)×1 matrix copying v.
func ColVector(v []float64) *Matrix {
	m := New(len(v), 1)
	copy(m.Data, v)
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and other have identical dimensions.
func (m *Matrix) SameShape(other *Matrix) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// MatMul returns a×b. Panics if inner dimensions disagree. It allocates
// the result; steady-path callers should reuse a destination buffer via
// MatMulInto instead.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	matMulAccum(out, a, b)
	return out
}

// MatMulTransA returns aᵀ×b. See MatMulTransAInto for the non-allocating
// variant.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: matmulTransA shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	matMulTransAAccum(out, a, b)
	return out
}

// MatMulTransB returns a×bᵀ. See MatMulTransBInto for the non-allocating
// variant.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: matmulTransB shape mismatch %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	matMulTransBAccum(out, a, b)
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	mustSameShape("add-in-place", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a−b elementwise.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns a⊙b (Hadamard product).
func Mul(a, b *Matrix) *Matrix {
	mustSameShape("mul", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(a *Matrix, s float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// Apply returns f applied elementwise to a.
func Apply(a *Matrix, f func(float64) float64) *Matrix {
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ConcatCols concatenates matrices horizontally; all must share row count.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: concat-cols row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		orow := out.Row(i)
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// ConcatRows concatenates matrices vertically; all must share column count.
func ConcatRows(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("mat: concat-rows col mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return out
}

// GatherRows returns the matrix whose i-th row is a.Row(idx[i]).
func GatherRows(a *Matrix, idx []int) *Matrix {
	out := New(len(idx), a.Cols)
	for i, r := range idx {
		copy(out.Row(i), a.Row(r))
	}
	return out
}

// SegmentSum sums rows of a into numSegments buckets given per-row segment
// ids. Rows with segment id s accumulate into output row s.
func SegmentSum(a *Matrix, segments []int, numSegments int) *Matrix {
	if len(segments) != a.Rows {
		panic(fmt.Sprintf("mat: segment-sum needs %d segment ids, got %d", a.Rows, len(segments)))
	}
	out := New(numSegments, a.Cols)
	for i, s := range segments {
		if s < 0 || s >= numSegments {
			panic(fmt.Sprintf("mat: segment id %d out of range [0,%d)", s, numSegments))
		}
		orow := out.Row(s)
		arow := a.Row(i)
		for j, v := range arow {
			orow[j] += v
		}
	}
	return out
}

// SumRows returns the 1×cols matrix of column sums.
func SumRows(a *Matrix) *Matrix {
	out := New(1, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// Sum returns the sum over all elements.
func Sum(a *Matrix) float64 {
	var s float64
	for _, v := range a.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func MaxAbs(a *Matrix) float64 {
	var m float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// RandNormal fills a new rows×cols matrix with N(0, std²) samples.
func RandNormal(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandUniform fills a new rows×cols matrix with U(lo, hi) samples.
func RandUniform(rows, cols int, lo, hi float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

func mustSameShape(op string, a, b *Matrix) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
