package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"strings"
)

// LockGuard enforces the mutex-guarding contract declared in place by the
// field directive
//
//	//gddr:guardedby <mutexField>
//
// trailing (or in the doc comment of) a struct field whose synchronisation
// the named sibling sync.Mutex/sync.RWMutex owns. Every read of an annotated
// field must happen while the mutex is held (RLock suffices on an RWMutex),
// and every write while it is write-locked. The analysis is a linear,
// defer-aware walk of each function body: Lock/RLock acquire, Unlock/RUnlock
// release, a deferred Unlock holds to the end of the function, and branches
// merge conservatively (a lock is held after a branch only if it is held on
// every non-returning path). Closures are attributed to their definition
// point and inherit the lock state there — except `go` closures, which run
// concurrently and start with nothing held.
//
// Two sanctioned idioms need no directive:
//
//   - Construction window: accesses through a local variable initialised
//     from a composite literal or new(T) in the same function — the value is
//     not yet published, so no lock can be required.
//   - The *Locked suffix: a method whose name ends in "Locked" documents
//     that its callers hold the receiver's annotated mutexes, and is
//     analysed with them write-held at entry.
//
// Fields of sync/atomic types are not lockguard's: atomic.Pointer fields
// annotated with //gddr:guardedby belong to the atomicpub check (the
// directive names their writer mutex), and other atomics synchronise
// themselves. Test files are exempt — single-goroutine test code may poke
// fields directly, and the -race suites cover dynamic behaviour.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "//gddr:guardedby fields are accessed only while the named sibling mutex is held",
	Run:  runLockGuard,
}

func runLockGuard(p *Pass) {
	guards := parseGuards(p, true)
	w := &guardWalker{p: p, guards: guards}
	w.walkPackage()
}

// guardedByPrefix introduces the field-guarding directive.
const guardedByPrefix = "//gddr:guardedby"

// guardInfo describes one annotated struct field.
type guardInfo struct {
	name   string // field name, for messages
	mu     string // sibling mutex field name (an embedded mutex: its type name)
	rw     bool   // the mutex is an RWMutex (reads may hold RLock)
	atomic bool   // field is an atomic.Pointer: owned by atomicpub, not lockguard
}

// parseGuards collects every //gddr:guardedby field annotation of the
// package, keyed by the field's *types.Var. Only the lockguard pass reports
// malformed directives (report=true); atomicpub parses the same annotations
// silently so a broken directive is a single finding.
func parseGuards(p *Pass, report bool) map[*types.Var]*guardInfo {
	guards := make(map[*types.Var]*guardInfo)
	bad := func(pos token.Pos, format string, args ...any) {
		if report {
			p.Reportf(pos, format, args...)
		}
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				text, pos, ok := guardDirective(field)
				if !ok {
					continue
				}
				args := strings.Fields(text)
				if len(args) != 1 {
					bad(pos, "malformed %s directive: want %q", guardedByPrefix, guardedByPrefix+" <mutexField>")
					continue
				}
				muName := args[0]
				muField, muRW, found := siblingMutex(p, st, muName)
				if !found {
					bad(pos, "%s %s names no sibling sync.Mutex/sync.RWMutex field", guardedByPrefix, muName)
					continue
				}
				_ = muField
				if len(field.Names) == 0 {
					bad(pos, "%s cannot guard an embedded field", guardedByPrefix)
					continue
				}
				for _, name := range field.Names {
					obj, ok := p.Pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					gi := &guardInfo{name: name.Name, mu: muName, rw: muRW}
					switch atomicKind(obj.Type()) {
					case "Pointer":
						gi.atomic = true
					case "":
					default:
						bad(pos, "%s on an atomic.%s field: atomics synchronise themselves (only atomic.Pointer takes a writer-mutex annotation)", guardedByPrefix, atomicKind(obj.Type()))
						continue
					}
					guards[obj] = gi
				}
			}
			return true
		})
	}
	return guards
}

// guardDirective extracts the //gddr:guardedby comment attached to a field,
// from its trailing comment or doc group.
func guardDirective(field *ast.Field) (rest string, pos token.Pos, ok bool) {
	for _, group := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			after, found := strings.CutPrefix(c.Text, guardedByPrefix)
			if !found || (after != "" && after[0] != ' ' && after[0] != '\t') {
				continue
			}
			// A nested //-comment after the directive is commentary, not
			// arguments.
			if i := strings.Index(after, "//"); i >= 0 {
				after = after[:i]
			}
			return after, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// siblingMutex looks up a field of the struct by name (an embedded mutex
// goes by its type name) and reports whether it is a sync mutex and which
// kind.
func siblingMutex(p *Pass, st *ast.StructType, name string) (field *ast.Field, rw bool, found bool) {
	for _, f := range st.Fields.List {
		match := false
		if len(f.Names) == 0 {
			t := f.Type
			if se, ok := t.(*ast.SelectorExpr); ok {
				match = se.Sel.Name == name
			} else if id, ok := t.(*ast.Ident); ok {
				match = id.Name == name
			}
		} else {
			for _, n := range f.Names {
				if n.Name == name {
					match = true
				}
			}
		}
		if !match {
			continue
		}
		kind := mutexKind(p.Pkg.Info.TypeOf(f.Type))
		if kind == "" {
			return nil, false, false
		}
		return f, kind == "RWMutex", true
	}
	return nil, false, false
}

// mutexKind returns "Mutex"/"RWMutex" when t is the sync type, else "".
func mutexKind(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
		return obj.Name()
	}
	return ""
}

// atomicKind returns the sync/atomic type name of t ("Pointer", "Int64",
// ...) or "" when t is not a sync/atomic type.
func atomicKind(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return obj.Name()
}

// lockState maps a canonical mutex key ("e.mu") to how it is held.
type lockState map[string]lockKind

type lockKind int

const (
	heldRead lockKind = iota + 1
	heldWrite
)

// guardWalker runs the shared lock-state analysis. With atomicMode unset it
// checks plain guarded-field accesses (lockguard); set, it checks
// atomic.Pointer publication and Load-alias writes (atomicpub).
type guardWalker struct {
	p          *Pass
	guards     map[*types.Var]*guardInfo
	atomicMode bool
}

func (w *guardWalker) walkPackage() {
	if len(w.guards) == 0 {
		return
	}
	for _, file := range w.p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || w.p.IsTestFile(fd) {
				continue
			}
			held := lockState{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				w.seedLockedConvention(fd, held)
			}
			fn := &funcScope{fresh: map[types.Object]bool{}, aliases: map[types.Object]bool{}}
			w.scanStmts(fd.Body.List, held, fn)
		}
	}
}

// funcScope is per-function-body flow state shared across nested blocks:
// construction-window locals and (atomicpub) Load-result aliases.
type funcScope struct {
	fresh   map[types.Object]bool
	aliases map[types.Object]bool
}

// seedLockedConvention pre-holds the receiver's annotated mutexes: a method
// named *Locked documents that its callers hold them.
func (w *guardWalker) seedLockedConvention(fd *ast.FuncDecl, held lockState) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	obj := w.p.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		if gi, ok := w.guards[st.Field(i)]; ok {
			held[recvName+"."+gi.mu] = heldWrite
		}
	}
}

// scanStmts walks a statement sequence, updating held in place. It returns
// true when the sequence definitely terminates (return/branch/panic), in
// which case callers discard its lock effects.
func (w *guardWalker) scanStmts(stmts []ast.Stmt, held lockState, fn *funcScope) bool {
	for _, s := range stmts {
		if w.scanStmt(s, held, fn) {
			return true
		}
	}
	return false
}

func (w *guardWalker) scanStmt(s ast.Stmt, held lockState, fn *funcScope) bool {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, method, ok := w.lockCall(call); ok {
				applyLock(held, key, method)
				return false
			}
			if isPanic(w.p.Pkg.Info, call) {
				w.checkExpr(s.X, held, fn)
				return true
			}
		}
		w.checkExpr(s.X, held, fn)
	case *ast.DeferStmt:
		if _, method, ok := w.lockCall(s.Call); ok && (method == "Unlock" || method == "RUnlock") {
			return false // deferred release: the lock holds to function end
		}
		// A deferred closure runs before any later-registered deferred
		// Unlock, so it is checked with the state at its defer site.
		w.checkExpr(s.Call.Fun, held, fn)
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, held, fn)
		}
	case *ast.GoStmt:
		w.checkGoCall(s.Call, fn)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, held, fn)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				w.trackLocal(lhs, s.Rhs[i], fn)
			}
		}
		for _, lhs := range s.Lhs {
			w.checkWriteTarget(lhs, held, fn)
		}
	case *ast.IncDecStmt:
		w.checkWriteTarget(s.X, held, fn)
	case *ast.SendStmt:
		w.checkExpr(s.Chan, held, fn)
		w.checkExpr(s.Value, held, fn)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.checkExpr(v, held, fn)
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.trackLocal(name, vs.Values[i], fn)
					} else if len(vs.Values) == 0 {
						// var x T: a zero value is unpublished.
						if obj := w.p.Pkg.Info.Defs[name]; obj != nil {
							fn.fresh[obj] = true
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, held, fn)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.scanStmts(s.List, held, fn)
	case *ast.LabeledStmt:
		return w.scanStmt(s.Stmt, held, fn)
	case *ast.IfStmt:
		w.scanStmt(s.Init, held, fn)
		w.checkExpr(s.Cond, held, fn)
		var posts []lockState
		thenState := maps.Clone(held)
		if !w.scanStmts(s.Body.List, thenState, fn) {
			posts = append(posts, thenState)
		}
		if s.Else != nil {
			elseState := maps.Clone(held)
			if !w.scanStmt(s.Else, elseState, fn) {
				posts = append(posts, elseState)
			}
		} else {
			posts = append(posts, maps.Clone(held))
		}
		if len(posts) == 0 {
			return true // both arms terminate
		}
		mergeInto(held, posts)
	case *ast.ForStmt:
		w.scanStmt(s.Init, held, fn)
		w.checkExpr(s.Cond, held, fn)
		body := maps.Clone(held)
		if !w.scanStmts(s.Body.List, body, fn) {
			w.scanStmt(s.Post, body, fn)
		}
		mergeInto(held, []lockState{body, maps.Clone(held)}) // zero iterations possible
	case *ast.RangeStmt:
		w.checkExpr(s.X, held, fn)
		if s.Tok == token.ASSIGN {
			w.checkWriteTarget(s.Key, held, fn)
			w.checkWriteTarget(s.Value, held, fn)
		}
		body := maps.Clone(held)
		w.scanStmts(s.Body.List, body, fn)
		mergeInto(held, []lockState{body, maps.Clone(held)})
	case *ast.SwitchStmt:
		w.scanStmt(s.Init, held, fn)
		w.checkExpr(s.Tag, held, fn)
		w.scanClauses(s.Body, held, fn)
	case *ast.TypeSwitchStmt:
		w.scanStmt(s.Init, held, fn)
		w.scanStmt(s.Assign, held, fn)
		w.scanClauses(s.Body, held, fn)
	case *ast.SelectStmt:
		w.scanClauses(s.Body, held, fn)
	default:
		// Unknown statement kinds: check any expressions conservatively.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkExpr(e, held, fn)
				return false
			}
			return true
		})
	}
	return false
}

// scanClauses handles switch/type-switch/select bodies: each clause runs
// from a copy of the entry state, and the post state keeps only locks held
// on every non-terminating path (including "no clause matched").
func (w *guardWalker) scanClauses(body *ast.BlockStmt, held lockState, fn *funcScope) {
	posts := []lockState{maps.Clone(held)}
	for _, clause := range body.List {
		cl := maps.Clone(held)
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.checkExpr(e, cl, fn)
			}
			stmts = c.Body
		case *ast.CommClause:
			w.scanStmt(c.Comm, cl, fn)
			stmts = c.Body
		}
		if !w.scanStmts(stmts, cl, fn) {
			posts = append(posts, cl)
		}
	}
	mergeInto(held, posts)
}

// mergeInto replaces held with the intersection of the given post states:
// a mutex survives only if every path holds it, at the weakest kind.
func mergeInto(held lockState, posts []lockState) {
	for key := range held {
		delete(held, key)
	}
	if len(posts) == 0 {
		return
	}
	for key, kind := range posts[0] {
		min := kind
		onAll := true
		for _, post := range posts[1:] {
			k, ok := post[key]
			if !ok {
				onAll = false
				break
			}
			if k < min {
				min = k
			}
		}
		if onAll {
			held[key] = min
		}
	}
}

// trackLocal updates the construction-window and Load-alias sets for an
// assignment of rhs to lhs (when lhs is a plain identifier).
func (w *guardWalker) trackLocal(lhs ast.Expr, rhs ast.Expr, fn *funcScope) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.p.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	switch {
	case isFreshValue(rhs):
		fn.fresh[obj] = true
		delete(fn.aliases, obj)
	case w.atomicMode && w.rootedInLoad(rhs, fn):
		fn.aliases[obj] = true
		delete(fn.fresh, obj)
	default:
		delete(fn.fresh, obj)
		delete(fn.aliases, obj)
	}
}

// isFreshValue reports whether the expression constructs a brand-new value:
// a composite literal, its address, or new(T). A local built this way is in
// its construction window — unpublished, so guarded-field rules are waived.
func isFreshValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// checkWriteTarget checks the left-hand side of an assignment: the
// innermost guarded field selector is a write access; in atomic mode a
// target rooted in a Load() alias violates copy-on-write.
func (w *guardWalker) checkWriteTarget(e ast.Expr, held lockState, fn *funcScope) {
	target := ast.Unparen(e)
	if _, isIdent := target.(*ast.Ident); !isIdent && w.atomicMode {
		// Rebinding a local alias is fine; writing *through* one is not.
		if root, ok := w.aliasRoot(target, fn); ok {
			w.p.Reportf(target.Pos(), "write through %s, which aliases an atomic Load() result: published copy-on-write snapshots are immutable — build a new value and Store it", root)
			return
		}
	}
	switch t := target.(type) {
	case *ast.Ident:
		// Rebinding a local is not a write through it.
	case *ast.StarExpr:
		w.checkWriteTarget(t.X, held, fn)
	case *ast.IndexExpr:
		w.checkExpr(t.Index, held, fn)
		w.checkWriteTarget(t.X, held, fn)
	case *ast.SelectorExpr:
		if gi := w.guardOf(t); gi != nil && !gi.atomic {
			if !w.atomicMode {
				w.access(t, gi, held, fn, true)
			}
			w.checkExpr(t.X, held, fn)
			return
		}
		w.checkExpr(t.X, held, fn)
	default:
		w.checkExpr(e, held, fn)
	}
}

// checkGoCall analyses a go statement: the spawned function runs
// concurrently, so a closure body starts with no locks held and no
// construction window.
func (w *guardWalker) checkGoCall(call *ast.CallExpr, fn *funcScope) {
	empty := lockState{}
	for _, arg := range call.Args {
		w.checkExpr(arg, empty, fn)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		goScope := &funcScope{fresh: map[types.Object]bool{}, aliases: fn.aliases}
		w.scanStmts(lit.Body.List, lockState{}, goScope)
		return
	}
	w.checkExpr(call.Fun, empty, fn)
}

// checkExpr walks an expression in read position: guarded field reads are
// checked against the current lock state, closures inherit it, and atomic
// mode intercepts Store/Load-family calls on annotated atomic fields.
func (w *guardWalker) checkExpr(e ast.Expr, held lockState, fn *funcScope) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.scanStmts(n.Body.List, maps.Clone(held), fn)
			return false
		case *ast.CallExpr:
			if w.atomicMode {
				if handled := w.checkAtomicCall(n, held, fn); handled {
					for _, arg := range n.Args {
						w.checkExpr(arg, held, fn)
					}
					return false
				}
			}
		case *ast.SelectorExpr:
			if gi := w.guardOf(n); gi != nil && !gi.atomic && !w.atomicMode {
				w.access(n, gi, held, fn, false)
			}
		}
		return true
	})
}

// guardOf resolves a selector to the guardInfo of the field it selects.
func (w *guardWalker) guardOf(se *ast.SelectorExpr) *guardInfo {
	sel, ok := w.p.Pkg.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok {
		return nil
	}
	return w.guards[v]
}

// access checks one guarded-field access against the lock state.
func (w *guardWalker) access(se *ast.SelectorExpr, gi *guardInfo, held lockState, fn *funcScope, write bool) {
	base, root := exprKey(w.p, se.X)
	if root != nil && fn.fresh[root] {
		return // construction window
	}
	field := gi.name
	if base != "" {
		field = base + "." + gi.name
	}
	if base == "" {
		w.p.Reportf(se.Pos(), "access to guarded field %s through an unnamed base expression: the analyzer cannot match it to %s", field, gi.mu)
		return
	}
	key := base + "." + gi.mu
	kind, ok := held[key]
	switch {
	case write && !ok:
		w.p.Reportf(se.Pos(), "write to %s without holding %s.Lock() (field is %s %s)", field, key, guardedByPrefix, gi.mu)
	case write && kind != heldWrite:
		w.p.Reportf(se.Pos(), "write to %s while %s is only read-locked; writes need %s.Lock()", field, key, key)
	case !write && !ok:
		lockHint := key + ".Lock()"
		if gi.rw {
			lockHint = key + ".RLock()"
		}
		w.p.Reportf(se.Pos(), "read of %s without holding %s (field is %s %s)", field, lockHint, guardedByPrefix, gi.mu)
	}
}

// lockCall classifies a call as a sync mutex operation and returns the
// canonical key of the mutex it operates on. A method reached through
// embedded fields (an embedded sync.RWMutex) keys as base.<fieldName>.
func (w *guardWalker) lockCall(call *ast.CallExpr) (key, method string, ok bool) {
	se, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch se.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	sel, found := w.p.Pkg.Info.Selections[se]
	if !found || sel.Kind() != types.MethodVal {
		return "", "", false
	}
	fnObj, isFn := sel.Obj().(*types.Func)
	if !isFn || fnObj.Pkg() == nil || fnObj.Pkg().Path() != "sync" {
		return "", "", false
	}
	base, _ := exprKey(w.p, se.X)
	if base == "" {
		return "", "", false
	}
	// Promotion through embedded fields: extend the key with the field path.
	index := sel.Index()
	if len(index) > 1 {
		t := sel.Recv()
		for _, i := range index[:len(index)-1] {
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			st, isStruct := t.Underlying().(*types.Struct)
			if !isStruct || i >= st.NumFields() {
				return "", "", false
			}
			f := st.Field(i)
			base += "." + f.Name()
			t = f.Type()
		}
	}
	return base, se.Sel.Name, true
}

// applyLock folds one mutex operation into the state. TryLock/TryRLock are
// conditional and contribute nothing.
func applyLock(held lockState, key, method string) {
	switch method {
	case "Lock":
		held[key] = heldWrite
	case "RLock":
		if held[key] != heldWrite {
			held[key] = heldRead
		}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// exprKey canonicalises a base expression to a stable string key, and when
// the root is a plain identifier, its object (for the construction-window
// set). Pointer dereferences and parentheses are transparent, so (*e).f and
// e.f key identically.
func exprKey(p *Pass, e ast.Expr) (string, types.Object) {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name, p.Pkg.Info.ObjectOf(t)
	case *ast.SelectorExpr:
		base, _ := exprKey(p, t.X)
		if base == "" {
			return "", nil
		}
		return base + "." + t.Sel.Name, nil
	case *ast.ParenExpr:
		return exprKey(p, t.X)
	case *ast.StarExpr:
		return exprKey(p, t.X)
	case *ast.IndexExpr:
		base, _ := exprKey(p, t.X)
		if base == "" {
			return "", nil
		}
		return base + "[]", nil
	}
	return "", nil
}

// isPanic reports whether the call is the builtin panic.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}
