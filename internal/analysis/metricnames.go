package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricNames enforces the DESIGN.md metric naming contract on every
// constant name passed to a metrics.Registry registration call
// (Counter/Gauge/GaugeFunc/Histogram): names follow
// gddr_<subsystem>_<name>_<unit> with an approved subsystem, counters end
// in _total (and only counters do), and durations are seconds — never
// milliseconds or any other non-base unit. Dynamically built names cannot
// be checked statically; the runtime grammar test (TestMetricNameGrammar)
// covers those by walking live registries with the same CheckMetricName.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "metric names registered on a metrics.Registry must follow the gddr_<subsystem>_<name>_<unit> grammar",
	Run:  runMetricNames,
}

// MetricSubsystems are the approved <subsystem> segments: the layers that
// own instruments (see DESIGN.md "Metric naming contract").
var MetricSubsystems = []string{"engine", "fleet", "http", "lp", "router", "train"}

// registrationKinds maps Registry methods to the instrument kind their
// name grammar is checked against.
var registrationKinds = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gauge",
	"Histogram": "histogram",
}

// metricNamePattern is the structural grammar: lowercase snake_case with at
// least three segments (gddr, subsystem, name...).
var metricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+){2,}$`)

// forbiddenUnits are trailing unit segments the contract bans: durations
// are always base-unit seconds so histograms aggregate across subsystems.
var forbiddenUnits = map[string]string{
	"ms":           "seconds",
	"millis":       "seconds",
	"milliseconds": "seconds",
	"us":           "seconds",
	"micros":       "seconds",
	"microseconds": "seconds",
	"ns":           "seconds",
	"nanos":        "seconds",
	"nanoseconds":  "seconds",
	"minutes":      "seconds",
	"hours":        "seconds",
	"count":        "total",
}

// CheckMetricName validates one metric name against the naming contract.
// kind is the instrument kind as exposed by metrics.Point.Type ("counter",
// "gauge" or "histogram"). It is shared by the static analyzer and the
// runtime registry-walking test so dynamically built names obey the same
// grammar as literals.
func CheckMetricName(kind, name string) error {
	if !metricNamePattern.MatchString(name) {
		return fmt.Errorf("metric %q does not match gddr_<subsystem>_<name>_<unit> (lowercase snake_case, >= 3 segments)", name)
	}
	segs := strings.Split(name, "_")
	if segs[0] != "gddr" {
		return fmt.Errorf("metric %q must carry the gddr_ namespace prefix", name)
	}
	if !contains(MetricSubsystems, segs[1]) {
		return fmt.Errorf("metric %q uses unknown subsystem %q (approved: %s)", name, segs[1], strings.Join(MetricSubsystems, ", "))
	}
	last := segs[len(segs)-1]
	if want, bad := forbiddenUnits[last]; bad {
		return fmt.Errorf("metric %q ends in non-base unit %q; the contract requires %q", name, last, want)
	}
	switch kind {
	case "counter":
		if last != "total" {
			return fmt.Errorf("counter %q must end in _total", name)
		}
	default:
		if last == "total" {
			return fmt.Errorf("%s %q must not end in _total (reserved for counters)", kind, name)
		}
	}
	return nil
}

func runMetricNames(p *Pass) {
	if contains(p.Cfg.MetricExemptPkgs, p.Pkg.BasePath) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := registrationKinds[sel.Sel.Name]
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isRegistryMethod(fn) {
				return true
			}
			tv := p.Pkg.Info.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic name: covered by the runtime grammar test
			}
			if err := CheckMetricName(kind, constant.StringVal(tv.Value)); err != nil {
				p.Reportf(call.Args[0].Pos(), "%v", err)
			}
			return true
		})
	}
}

// isRegistryMethod reports whether fn is a method on the metrics package's
// Registry type (matched structurally so fixture packages can stand in for
// internal/metrics in tests).
func isRegistryMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Name() != "metrics" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
