package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces context discipline (the PR 2 contract: cancellation is
// honoured everywhere): a function that accepts a context.Context must not
// sever the cancellation chain by minting a fresh root context, and must
// actually forward its ctx when it calls context-accepting callees.
//
// Two rules:
//
//  1. No context.Background()/context.TODO() calls inside a function that
//     has a Context parameter. The one sanctioned idiom is the nil-guard
//     `if ctx == nil { ctx = context.Background() }` that makes an API
//     nil-tolerant — it substitutes a root only when the caller passed
//     nothing to sever.
//  2. A named, non-blank Context parameter that is never referenced while
//     the body calls context-accepting callees means the callees run on
//     some other context; the parameter is decorative and cancellation is
//     broken.
//
// Closures are attributed to the innermost function literal or declaration
// that declares its own Context parameter; a closure without one inherits
// the enclosing function's ctx and is checked as part of it.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions accepting a context.Context must forward it, not mint context.Background()/TODO()",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				p.checkCtxFunc(fn.Type, fn.Body, fn.Name.Pos(), fn.Name.Name)
			case *ast.FuncLit:
				p.checkCtxFunc(fn.Type, fn.Body, fn.Pos(), "function literal")
			}
			return true
		})
	}
}

// ctxParamVars returns the *types.Var of every named context.Context
// parameter of the function type.
func (p *Pass) ctxParamVars(ft *ast.FuncType) []*types.Var {
	if ft.Params == nil {
		return nil
	}
	var vars []*types.Var
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj, ok := p.Pkg.Info.Defs[name].(*types.Var)
			if ok && isContextType(obj.Type()) {
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isContextRoot reports whether the call mints a fresh root context, and
// which constructor it used.
func (p *Pass) isContextRoot(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if p.pkgNameOf(sel.X) != "context" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Background", "TODO":
		return sel.Sel.Name, true
	}
	return "", false
}

func (p *Pass) checkCtxFunc(ft *ast.FuncType, body *ast.BlockStmt, pos token.Pos, name string) {
	if body == nil {
		return
	}
	ctxVars := p.ctxParamVars(ft)
	if len(ctxVars) == 0 {
		return
	}
	isCtxVar := func(e ast.Expr) *types.Var {
		ident, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := p.Pkg.Info.Uses[ident]
		for _, v := range ctxVars {
			if obj == v {
				return v
			}
		}
		return nil
	}

	// Pass 1: sanction root-context calls inside the nil-guard idiom
	// `if ctx == nil { ctx = context.Background() }`.
	sanctioned := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		var guarded *types.Var
		switch {
		case isNil(cond.Y):
			guarded = isCtxVar(cond.X)
		case isNil(cond.X):
			guarded = isCtxVar(cond.Y)
		}
		if guarded == nil {
			return true
		}
		for _, stmt := range ifStmt.Body.List {
			assign, ok := stmt.(*ast.AssignStmt)
			if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				continue
			}
			if isCtxVar(assign.Lhs[0]) != guarded {
				continue
			}
			if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
				if _, root := p.isContextRoot(call); root {
					sanctioned[call.Pos()] = true
				}
			}
		}
		return true
	})

	// Pass 2: walk the body — skipping nested functions that declare their
	// own Context parameter, which own their subtree — flagging fresh root
	// contexts, and tracking whether ctx is ever referenced and whether any
	// callee accepts a Context.
	used := false
	ctxCallee := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if len(p.ctxParamVars(n.Type)) > 0 {
				return false
			}
		case *ast.Ident:
			obj := p.Pkg.Info.Uses[n]
			for _, v := range ctxVars {
				if obj == v {
					used = true
				}
			}
		case *ast.CallExpr:
			if ctor, root := p.isContextRoot(n); root {
				if !sanctioned[n.Pos()] {
					p.Reportf(n.Pos(), "%s accepts a Context but mints context.%s(), severing cancellation; forward its ctx parameter instead", name, ctor)
				}
				return true
			}
			if sig, ok := p.Pkg.Info.TypeOf(n.Fun).(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					if isContextType(sig.Params().At(i).Type()) {
						ctxCallee = true
					}
				}
			}
		}
		return true
	})
	if !used && ctxCallee {
		p.Reportf(pos, "%s never uses its Context parameter but calls context-accepting callees; forward ctx so cancellation propagates", name)
	}
}

func isNil(e ast.Expr) bool {
	ident, ok := e.(*ast.Ident)
	return ok && ident.Name == "nil"
}
