// Package analysis is the repo's custom static-analysis suite: a set of
// GDDR-specific analyzers built purely on the standard library's go/parser,
// go/ast, go/types and go/token (no golang.org/x/tools, preserving the
// zero-dependency stance). The analyzers machine-enforce contracts that are
// otherwise only convention:
//
//   - determinism: the deterministic packages draw randomness from
//     serialisable internal/rng streams and never read the wall clock or
//     accumulate floats in map order (DESIGN.md "Training determinism
//     contract").
//   - metricnames: metric names registered on a metrics.Registry follow the
//     gddr_<subsystem>_<name>_<unit> grammar (DESIGN.md "Metric naming
//     contract").
//   - ctxflow: a function that accepts a context.Context uses it — no fresh
//     context.Background()/TODO() chains severing cancellation.
//   - jsonerrors: gateway handlers route every error status through the
//     JSON error-contract helpers, never bare http.Error/WriteHeader.
//   - lockguard: struct fields annotated //gddr:guardedby <mu> are read and
//     written only while the named sibling mutex is held (DESIGN.md "Tenant
//     isolation contract").
//   - atomicpub: annotated atomic.Pointer fields follow the copy-on-write
//     publication contract — stores only under the designated writer mutex,
//     no writes through a Load() result.
//   - hotpath: functions marked //gddr:hotpath stay allocation-free,
//     transitively through module-local callees.
//
// A finding is suppressible only with an explicit directive on (or on the
// line above) the offending line:
//
//	//gddr:allow <check> <reason>
//
// so every sanctioned exception is documented in place. The cmd/gddr-lint
// driver wires the suite into CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MetricNames, CtxFlow, JSONErrors, LockGuard, AtomicPub, HotPath}
}

// ByName resolves a comma-separated list of analyzer names.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" || list == "all" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have determinism, metricnames, ctxflow, jsonerrors, lockguard, atomicpub, hotpath)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Config scopes the analyzers to the parts of the module each contract
// governs. DefaultConfig returns the scoping for this repository.
type Config struct {
	// DeterministicPkgs are import paths whose non-test files must draw all
	// randomness from explicit serialisable streams (internal/rng) and may
	// not read the wall clock. Test files of these packages are held only to
	// the global-rand rule: an explicitly seeded local source is already
	// deterministic, and tests never checkpoint.
	DeterministicPkgs []string
	// DeterministicFiles extends the determinism contract to individual
	// files (by basename) of packages that are otherwise exempt — e.g. the
	// root package's train.go but not its serving files, which legitimately
	// time requests.
	DeterministicFiles map[string][]string
	// ServePkgs are the gateway packages under the JSON error contract.
	ServePkgs []string
	// ServeHelpers are the functions within ServePkgs that are allowed to
	// write raw statuses — the helpers that implement the contract. Methods
	// on types embedding http.ResponseWriter are always allowed: a wrapper
	// must be able to forward WriteHeader.
	ServeHelpers []string
	// MetricExemptPkgs skip the metricnames check; the registry's own
	// package exercises arbitrary names to test itself.
	MetricExemptPkgs []string
}

// DefaultConfig returns the analyzer scoping for the gddr module rooted at
// the given module path.
func DefaultConfig(module string) *Config {
	p := func(rel string) string { return module + "/" + rel }
	return &Config{
		DeterministicPkgs: []string{
			p("internal/rl"), p("internal/nn"), p("internal/gnn"),
			p("internal/env"), p("internal/ad"), p("internal/graph"),
			p("internal/rng"), p("internal/topo"),
		},
		DeterministicFiles: map[string][]string{module: {"train.go"}},
		ServePkgs:          []string{p("cmd/gddr-serve")},
		ServeHelpers:       []string{"writeJSON", "writeError"},
		MetricExemptPkgs:   []string{p("internal/metrics")},
	}
}

func (c *Config) deterministicFileScope(pkgPath string) []string {
	if c.DeterministicFiles == nil {
		return nil
	}
	return c.DeterministicFiles[pkgPath]
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// A Finding is one rule violation at a position.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Check)
}

// A Pass carries one analyzer's run over one package. All holds every unit
// of the run (in load order) so cross-package analyses — hotpath's
// transitive callee walk — can resolve declarations outside Pkg; directives
// is the merged module-wide //gddr:allow index, so a suppression in a
// callee's file is visible from any caller's pass.
type Pass struct {
	Analyzer   *Analyzer
	Pkg        *Package
	All        []*Package
	Cfg        *Config
	directives map[string]map[int][]directive
	report     func(Finding)
}

// allowedAt reports whether a finding of this pass's check at pos would be
// suppressed by an in-place //gddr:allow directive. Cross-package analyses
// use it to stop propagating sanctioned sites from other files.
func (p *Pass) allowedAt(fset *token.FileSet, pos token.Pos) bool {
	return suppressed(p.directives, Finding{
		Check: p.Analyzer.Name,
		Pos:   fset.Position(pos),
	})
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Check: p.Analyzer.Name,
		Pos:   p.Pkg.Fset.Position(pos),
		Msg:   fmt.Sprintf(format, args...),
	})
}

// FileName returns the base name of the file containing the node.
func (p *Pass) FileName(n ast.Node) string {
	return filepath.Base(p.Pkg.Fset.Position(n.Pos()).Filename)
}

// IsTestFile reports whether the node sits in a _test.go file.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.FileName(n), "_test.go")
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" when it is not a package qualifier.
func (p *Pass) pkgNameOf(x ast.Expr) string {
	ident, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// directivePrefix introduces an in-place suppression comment.
const directivePrefix = "//gddr:allow"

// directive is one parsed //gddr:allow comment.
type directive struct {
	check      string
	reason     string
	line       int
	standalone bool // no code before it on its line: applies to the next line
}

// scanDirectives parses every //gddr:allow comment of the package, keyed by
// file name and line, and reports malformed directives as findings of the
// synthetic "directive" check (a suppression that silently failed to parse
// must not pass CI).
func scanDirectives(pkg *Package, known map[string]bool) (map[string]map[int][]directive, []Finding) {
	index := make(map[string]map[int][]directive)
	var findings []Finding
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //gddr:allowlist — not this directive
				}
				fields := strings.Fields(rest)
				bad := func(format string, args ...any) {
					findings = append(findings, Finding{
						Check: "directive",
						Pos:   pos,
						Msg:   fmt.Sprintf(format, args...),
					})
				}
				if len(fields) == 0 {
					bad("malformed %s directive: want %q", directivePrefix, directivePrefix+" <check> <reason>")
					continue
				}
				if !known[fields[0]] {
					bad("%s names unknown check %q", directivePrefix, fields[0])
					continue
				}
				if len(fields) < 2 {
					bad("%s %s needs a reason: the directive documents why the exception is sound", directivePrefix, fields[0])
					continue
				}
				d := directive{
					check:      fields[0],
					reason:     strings.Join(fields[1:], " "),
					line:       pos.Line,
					standalone: isLineStart(pkg, pos),
				}
				if index[pos.Filename] == nil {
					index[pos.Filename] = make(map[int][]directive)
				}
				index[pos.Filename][d.line] = append(index[pos.Filename][d.line], d)
			}
		}
	}
	return index, findings
}

// isLineStart reports whether the comment is the first token on its line
// (a standalone directive annotating the following line) rather than a
// trailing comment annotating its own line. It inspects the raw source the
// loader retained: everything before the comment on its line must be
// whitespace.
func isLineStart(pkg *Package, pos token.Position) bool {
	src := pkg.Sources[pos.Filename]
	if src == nil {
		return false
	}
	// pos.Column is 1-based; the bytes preceding the comment on its line are
	// src[offset-(column-1) : offset].
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// suppressed reports whether a finding at (file, line) carries an in-scope
// //gddr:allow directive for its check: on the same line, or on an
// immediately preceding block of standalone directive lines.
func suppressed(index map[string]map[int][]directive, f Finding) bool {
	lines := index[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, d := range lines[f.Pos.Line] {
		if d.check == f.Check {
			return true
		}
	}
	for line := f.Pos.Line - 1; ; line-- {
		ds := lines[line]
		if len(ds) == 0 {
			return false
		}
		standalone := false
		for _, d := range ds {
			if !d.standalone {
				continue
			}
			standalone = true
			if d.check == f.Check {
				return true
			}
		}
		if !standalone {
			return false
		}
	}
}

// Run executes the analyzers over the packages, applies //gddr:allow
// suppression, and returns the surviving findings in file/line order.
// Directives are scanned once per package and merged into one module-wide
// index (file paths are unique across units), so a suppression is honoured
// no matter which pass's analysis reaches the annotated line.
func Run(pkgs []*Package, cfg *Config, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	merged := make(map[string]map[int][]directive)
	var findings []Finding
	for _, pkg := range pkgs {
		index, directiveFindings := scanDirectives(pkg, known)
		findings = append(findings, directiveFindings...)
		for file, lines := range index {
			merged[file] = lines
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Pkg:        pkg,
				All:        pkgs,
				Cfg:        cfg,
				directives: merged,
				report: func(f Finding) {
					if !suppressed(merged, f) {
						findings = append(findings, f)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Msg < b.Msg
	})
	return dedup(findings)
}

// dedup drops exact repeats (same check, position, and message), which
// cross-package analyses can produce when two passes walk the same
// declaration.
func dedup(findings []Finding) []Finding {
	out := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}
