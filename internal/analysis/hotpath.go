package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// HotPath enforces the allocation-free serving contract on functions marked
// with a doc-comment directive:
//
//	//gddr:hotpath
//	func (r *Router) serve() { ... }
//
// A marked function — and, transitively, every module-local function it
// statically calls — must not contain allocating constructs:
//
//   - make / new
//   - append that can grow its first argument (append(s[:n], ...) onto an
//     explicit reslice is the sanctioned preallocated pattern)
//   - escaping composite literals: &T{...}, slice and map literals
//   - any call into package fmt
//   - non-constant string concatenation
//   - arguments boxed into interface parameters from non-pointer-shaped
//     concrete values (pointers, maps, chans and funcs box without
//     allocating; structs, slices, strings and numbers do not)
//
// Transitive findings are reported at the call site inside the marked
// function's package, naming the callee's offending construct. Calls that
// cannot be resolved statically (interface methods, function values) and
// standard-library calls other than fmt are trusted. A deliberate cold
// branch — error paths, cache-miss rebuilds, opt-in tracing — is sanctioned
// in place with `//gddr:allow hotpath <reason>`, which also stops the site
// from propagating to callers. Arguments of panic are exempt: a panicking
// path is cold by definition.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//gddr:hotpath functions stay allocation-free, transitively through module-local callees",
	Run:  runHotPath,
}

// hotPathMarker is the doc-comment directive that marks a hot function.
const hotPathMarker = "//gddr:hotpath"

func runHotPath(p *Pass) {
	h := &hotPathChecker{
		p:         p,
		decls:     make(map[token.Pos]hotDecl),
		summaries: make(map[token.Pos][]hotSite),
		active:    make(map[token.Pos]bool),
	}
	for _, pkg := range p.All {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					h.decls[fd.Name.Pos()] = hotDecl{fd, pkg}
				}
			}
		}
	}
	for _, file := range p.Pkg.Files {
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
			if fd.Body == nil || !hasHotPathMarker(fd.Doc) {
				continue
			}
			for _, site := range h.summary(fd.Name.Pos()) {
				p.Reportf(site.pos, "%s in %s function %s", site.msg, hotPathMarker, fd.Name.Name)
			}
		}
		// A marker outside a function's doc comment marks nothing: surface
		// it rather than let the contract silently not apply.
		for _, group := range file.Comments {
			if funcDocs[group] {
				continue
			}
			for _, c := range group.List {
				if isHotPathMarker(c.Text) {
					p.Reportf(c.Pos(), "misplaced %s: the directive must sit in a function declaration's doc comment", hotPathMarker)
				}
			}
		}
	}
}

func isHotPathMarker(text string) bool {
	after, ok := strings.CutPrefix(text, hotPathMarker)
	return ok && (after == "" || after[0] == ' ' || after[0] == '\t')
}

func hasHotPathMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isHotPathMarker(c.Text) {
			return true
		}
	}
	return false
}

// hotDecl locates a function declaration and the unit that type-checked it.
type hotDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// hotSite is one allocating construct, positioned where the reporting
// package can see it (direct constructs in the function body, transitive
// ones at the call site).
type hotSite struct {
	pos token.Pos
	msg string
}

type hotPathChecker struct {
	p         *Pass
	decls     map[token.Pos]hotDecl // every module function, keyed by name position
	summaries map[token.Pos][]hotSite
	active    map[token.Pos]bool // recursion guard
}

// summary computes (and memoises) the allocation sites of the function
// declared at pos, with //gddr:allow hotpath sites already filtered out so
// a sanctioned cold branch does not propagate to callers.
func (h *hotPathChecker) summary(pos token.Pos) []hotSite {
	if sites, ok := h.summaries[pos]; ok {
		return sites
	}
	if h.active[pos] {
		return nil // recursion: the cycle's sites surface on its own frame
	}
	ref, ok := h.decls[pos]
	if !ok {
		return nil
	}
	h.active[pos] = true
	sites := h.checkBody(ref)
	delete(h.active, pos)
	h.summaries[pos] = sites
	return sites
}

// short formats a position as file:line for finding messages.
func (h *hotPathChecker) short(pos token.Pos) string {
	p := h.p.Pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// checkBody walks one function body and collects its allocation sites.
func (h *hotPathChecker) checkBody(ref hotDecl) []hotSite {
	var sites []hotSite
	info := ref.pkg.Info
	add := func(pos token.Pos, format string, args ...any) {
		if h.p.allowedAt(ref.pkg.Fset, pos) {
			return
		}
		sites = append(sites, hotSite{pos: pos, msg: fmt.Sprintf(format, args...)})
	}
	flaggedLits := make(map[*ast.CompositeLit]bool)
	ast.Inspect(ref.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flaggedLits[lit] = true
					add(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if flaggedLits[n] {
				return true // already reported as &T{...}; still walk elements
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal allocates")
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				if tv, ok := info.Types[ast.Expr(n)]; !ok || tv.Value == nil {
					add(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // panic arguments are cold by definition
			}
			h.checkCall(ref, n, add)
		}
		return true
	})
	return sites
}

// checkCall classifies one call expression inside a hot function.
func (h *hotPathChecker) checkCall(ref hotDecl, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := ref.pkg.Info
	// Conversions: only conversion *to* an interface allocates.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !pointerShaped(at) {
				add(call.Pos(), "conversion to interface boxes a non-pointer value")
			}
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 {
					if _, resliced := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !resliced {
						add(call.Pos(), "append may grow its backing array (append onto an explicit reslice of a preallocated buffer instead)")
					}
				}
			}
			return // panic/copy/len/...: no boxing check on builtins
		}
	}
	// Any fmt call allocates (formatting state, boxed operands).
	if se, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := se.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				add(call.Pos(), "fmt.%s allocates", se.Sel.Name)
				return
			}
		}
	}
	// Interface boxing of arguments.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig != nil {
		h.checkBoxing(info, call, sig, add)
	}
	// Transitive: module-local callees must be allocation-free too.
	fn := calleeOf(info, call)
	if fn == nil {
		return
	}
	if inner := h.summary(fn.Pos()); len(inner) > 0 {
		first := inner[0]
		more := ""
		if len(inner) > 1 {
			more = fmt.Sprintf(" and %d more site(s)", len(inner)-1)
		}
		add(call.Pos(), "call to %s allocates: %s at %s%s", fn.Name(), first.msg, h.short(first.pos), more)
	}
}

// checkBoxing flags concrete non-pointer-shaped arguments passed to
// interface parameters: the conversion heap-allocates the value.
func (h *hotPathChecker) checkBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, add func(token.Pos, string, ...any)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case !sig.Variadic():
			if i >= params.Len() {
				continue
			}
			pt = params.At(i).Type()
		case i < params.Len()-1:
			pt = params.At(i).Type()
		case call.Ellipsis != token.NoPos:
			continue // s... forwards an existing slice; nothing boxes here
		default:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.IsNil() {
			continue
		}
		at := tv.Type
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		add(arg.Pos(), "argument boxes a non-pointer value into an interface parameter")
	}
}

// pointerShaped reports whether values of the type fit in an interface word
// without allocating: pointers, channels, maps, funcs and unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// isPanicCall reports whether call invokes the panic builtin. Its arguments
// are exempt from the hot-path contract: a panicking path is cold by
// definition, and panic messages routinely format with fmt.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// calleeOf statically resolves a call to the *types.Func it invokes:
// package-local functions, qualified functions, and concrete methods.
// Interface methods and function values return nil (dynamic dispatch).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
