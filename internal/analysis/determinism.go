package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the DESIGN.md training-determinism contract inside
// the deterministic packages (Config.DeterministicPkgs/Files): results must
// be a pure function of the (seed, workers) pair, and every random stream
// must be serialisable so checkpoint/resume stays bit-exact.
//
// In non-test files it forbids:
//
//   - math/rand.NewSource (and every other non-sanctioned math/rand
//     member): the standard Source hides its state, which breaks
//     checkpointing. rand.New over an internal/rng Source is the sanctioned
//     way to reach the math/rand draw helpers.
//   - global draws (rand.Intn, rand.Float64, rand.Shuffle, ...): they pull
//     from the unseeded process-wide source.
//   - time.Now/Since/Until: wall-clock reads. Metrics timing is sanctioned
//     via //gddr:allow determinism <reason>.
//   - floating-point accumulation inside map iteration: map order is
//     randomised per run, and float arithmetic is not associative.
//
// Test files are held only to the global-draw rule: an explicitly seeded
// local source is already reproducible, and tests never checkpoint.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages must use serialisable internal/rng streams, avoid wall-clock reads, and avoid map-order float accumulation",
	Run:  runDeterminism,
}

// randSanctioned are the math/rand members usable without breaking the
// serialisable-stream contract: types, and constructors that wrap an
// explicit caller-provided source.
var randSanctioned = map[string]bool{
	"New":      true, // rand.New(src) over an internal/rng Source
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"NewZipf":  true, // draws through the *Rand it is given
	"Zipf":     true,
}

func runDeterminism(p *Pass) {
	fileScope := p.Cfg.deterministicFileScope(p.Pkg.BasePath)
	pkgScoped := contains(p.Cfg.DeterministicPkgs, p.Pkg.BasePath)
	if !pkgScoped && fileScope == nil {
		return
	}
	for _, f := range p.Pkg.Files {
		name := p.FileName(f)
		if !pkgScoped && !contains(fileScope, name) {
			continue
		}
		isTest := p.IsTestFile(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				p.checkDeterminismSelector(n, isTest)
			case *ast.RangeStmt:
				if !isTest {
					p.checkMapAccumulation(n)
				}
			}
			return true
		})
	}
}

func (p *Pass) checkDeterminismSelector(sel *ast.SelectorExpr, isTest bool) {
	member := sel.Sel.Name
	switch p.pkgNameOf(sel.X) {
	case "math/rand", "math/rand/v2":
		if randSanctioned[member] {
			return
		}
		if member == "NewSource" {
			if isTest {
				return // an explicitly seeded test source is deterministic
			}
			p.Reportf(sel.Pos(), "rand.NewSource hides its stream state, breaking checkpoint/resume; seed a serialisable internal/rng.Source instead")
			return
		}
		p.Reportf(sel.Pos(), "global rand.%s draws from the process-wide source; draw through a *rand.Rand layered over an internal/rng stream", member)
	case "time":
		if isTest {
			return
		}
		switch member {
		case "Now", "Since", "Until":
			p.Reportf(sel.Pos(), "time.%s reads the wall clock inside a deterministic package; results must be a pure function of (seed, workers)", member)
		}
	}
}

// checkMapAccumulation flags floating-point accumulation whose order
// follows a map iteration: `for _, v := range m { sum += v }` produces
// run-dependent low bits because map order is randomised and float addition
// is not associative. Integer accumulation is exact and therefore
// order-independent, so only float targets are flagged.
func (p *Pass) checkMapAccumulation(rs *ast.RangeStmt) {
	t := p.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch a.Tok.String() {
		case "+=", "-=", "*=", "/=":
			if len(a.Lhs) == 1 && p.isFloat(a.Lhs[0]) {
				p.Reportf(a.Pos(), "float accumulation (%s) inside map iteration is order-dependent; iterate a sorted key slice instead", a.Tok)
			}
		case "=":
			if len(a.Lhs) != 1 || len(a.Rhs) != 1 || !p.isFloat(a.Lhs[0]) {
				return true
			}
			be, ok := a.Rhs[0].(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op.String() {
			case "+", "-", "*", "/":
				lhs := types.ExprString(a.Lhs[0])
				if types.ExprString(be.X) == lhs || types.ExprString(be.Y) == lhs {
					p.Reportf(a.Pos(), "float accumulation (x = x %s ...) inside map iteration is order-dependent; iterate a sorted key slice instead", be.Op)
				}
			}
		}
		return true
	})
}

func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
