// Package atomicpub exercises the atomicpub analyzer.
package atomicpub

import (
	"sync"
	"sync/atomic"
)

type snapshot struct {
	version int
	peers   []string
}

type engine struct {
	mu    sync.Mutex
	state atomic.Pointer[snapshot] //gddr:guardedby mu
}

func newEngine() *engine {
	e := &engine{}
	e.state.Store(&snapshot{version: 1}) // construction window: e is unpublished
	return e
}

func (e *engine) publish(s *snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state.Store(s) // sanctioned: writer mutex held
}

// replaceLocked documents (by the *Locked suffix) that callers hold e.mu.
func (e *engine) replaceLocked(s *snapshot) {
	e.state.Store(s)
}

func (e *engine) read() int {
	return e.state.Load().version // Load is the lock-free read path
}

func (e *engine) copyOnWrite(peer string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.state.Load()
	next := &snapshot{
		version: cur.version + 1,
		peers:   append(append([]string(nil), cur.peers...), peer),
	}
	e.state.Store(next) // build-new-then-Store is the contract
}

func (e *engine) racyPublish(s *snapshot) {
	e.state.Store(s) // want "e\.state\.Store without holding writer mutex e\.mu\.Lock\(\)"
}

func (e *engine) racyCAS(prev, next *snapshot) bool {
	return e.state.CompareAndSwap(prev, next) // want "e\.state\.CompareAndSwap without holding writer mutex"
}

func (e *engine) mutatesLoaded() {
	st := e.state.Load()
	st.version++ // want "write through st, which aliases an atomic Load\(\) result"
}

func (e *engine) mutatesThroughAlias() {
	st := e.state.Load()
	peers := st.peers // the slice header still shares the published backing array
	peers[0] = "x"    // want "write through peers, which aliases an atomic Load\(\) result"
}

func (e *engine) mutatesDirectly() {
	e.state.Load().version = 0 // want "aliases an atomic Load\(\) result"
}
