// Package ctxflow exercises the ctxflow analyzer.
package ctxflow

import "context"

func lookup(ctx context.Context, q string) string {
	if ctx.Err() != nil {
		return ""
	}
	return q
}

func forwards(ctx context.Context, q string) string {
	return lookup(ctx, q) // forwarding ctx is the contract
}

func nilTolerant(ctx context.Context, q string) string {
	if ctx == nil {
		ctx = context.Background() // the sanctioned nil-guard idiom
	}
	return lookup(ctx, q)
}

func severed(ctx context.Context, q string) string {
	_ = ctx.Err()
	return lookup(context.Background(), q) // want "severed accepts a Context but mints context\.Background\(\)"
}

func stalled(ctx context.Context, q string) string {
	_ = ctx.Err()
	return lookup(context.TODO(), q) // want "stalled accepts a Context but mints context\.TODO\(\)"
}

func decorative(ctx context.Context, q string) string { // want "decorative never uses its Context parameter"
	return lookup(stored(), q)
}

func stored() context.Context {
	return context.Background() // no Context parameter: roots are legal here
}

func closureInherits(ctx context.Context) func() string {
	_ = ctx.Err()
	return func() string {
		return lookup(context.Background(), "x") // want "closureInherits accepts a Context but mints context\.Background\(\)"
	}
}

func closureOwns(ctx context.Context) string {
	run := func(ctx context.Context) string { return lookup(ctx, "y") }
	return run(ctx)
}

func allowedRoot(ctx context.Context, q string) string {
	_ = ctx.Err()
	//gddr:allow ctxflow detached audit write must survive request cancellation
	return lookup(context.Background(), q)
}
