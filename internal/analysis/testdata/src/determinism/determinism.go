// Package determinism exercises the determinism analyzer: every forbidden
// construct carries a want expectation, every sanctioned idiom stays silent.
package determinism

import (
	"math/rand"
	"time"
)

// source is a stand-in for internal/rng.Source: explicit, serialisable
// stream state.
type source struct{ state uint64 }

func (s *source) Int63() int64    { s.state++; return int64(s.state) }
func (s *source) Seed(seed int64) { s.state = uint64(seed) }

func globalDraw() int {
	return rand.Intn(10) // want "global rand\.Intn draws from the process-wide source"
}

func hiddenState() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want "rand\.NewSource hides its stream state"
}

func sanctionedStream() *rand.Rand {
	return rand.New(&source{}) // rand.New over an explicit stream is the contract
}

func allowedDraw() int64 {
	//gddr:allow determinism fixture exercises standalone-directive suppression
	src := rand.NewSource(42)
	return src.Int63()
}

func trailingAllowed() time.Time {
	return time.Now() //gddr:allow determinism fixture exercises trailing suppression
}

func wrongCheckAllowed() int {
	return rand.Int() //gddr:allow metricnames another check's directive must not suppress // want "global rand\.Int draws"
}

func wallClock() time.Time {
	return time.Now() // want "time\.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time\.Since reads the wall clock"
}

func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation \(\+=\) inside map iteration"
	}
	return sum
}

func mapSumExplicit(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "float accumulation \(x = x \+"
	}
	return sum
}

func mapCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation is exact, hence order-independent
	}
	return n
}

func sortedSum(keys []string, m map[string]float64) float64 {
	var sum float64
	for _, k := range keys {
		sum += m[k] // slice iteration has deterministic order
	}
	return sum
}
