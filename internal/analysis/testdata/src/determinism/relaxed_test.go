package determinism

import (
	"math/rand"
	"time"
)

// Test files are held only to the global-draw rule: an explicitly seeded
// local source is already reproducible, and tests never checkpoint, so
// rand.NewSource and wall-clock reads are fine here.
func seededHelper() (int64, time.Time) {
	r := rand.New(rand.NewSource(99))
	return r.Int63(), time.Now()
}

func globalDrawInTest() int {
	return rand.Intn(3) // want "global rand\.Intn draws from the process-wide source"
}
