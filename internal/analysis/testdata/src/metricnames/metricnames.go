// Package metricnames exercises the metricnames analyzer against the
// structural metrics stand-in.
package metricnames

import "metrics"

const unitSuffix = "seconds"

func register(reg *metrics.Registry, dynamic string) {
	reg.Counter("gddr_router_requests_total", "the grammar: namespace, subsystem, name, unit")
	reg.Histogram("gddr_lp_solve_"+unitSuffix, "constant folding reaches concatenated names", nil)
	reg.Counter(dynamic, "dynamic names are the runtime grammar test's job")
	reg.Counter("gddr_fleet_shed_total", "the fleet control plane is an approved subsystem")
	reg.Histogram("gddr_fleet_route_seconds", "", nil)

	reg.Counter("gddr_router_requests", "")                                         // want "counter .* must end in _total"
	reg.Gauge("gddr_train_policy_loss_total", "")                                   // want "must not end in _total \(reserved for counters\)"
	reg.GaugeFunc("gddr_engine_queue_depth_total", "", func() float64 { return 0 }) // want "must not end in _total"
	reg.Histogram("gddr_router_latency_ms", "", nil)                                // want "non-base unit \"ms\""
	reg.Counter("foo_router_requests_total", "")                                    // want "must carry the gddr_ namespace prefix"
	reg.Gauge("gddr_frobnicator_depth", "")                                         // want "unknown subsystem \"frobnicator\""
	reg.Histogram("GDDR_Router_Latency_Seconds", "", nil)                           // want "does not match gddr_<subsystem>_<name>_<unit>"

	//gddr:allow metricnames legacy dashboard name, renamed in the next major
	reg.Gauge("gddr_queue_depth", "")
}
