// Package lockguard exercises the lockguard analyzer.
package lockguard

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int //gddr:guardedby mu
	name string
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // deferred unlock: held to function end
}

func (c *counter) get() int {
	c.mu.Lock()
	v := c.n // explicit lock/unlock pair
	c.mu.Unlock()
	return v
}

func (c *counter) guarded() {
	c.mu.Lock()
	if c.n > 10 {
		c.mu.Unlock() // early-unlock-and-return path
		return
	}
	c.n++
	c.mu.Unlock()
}

// resetLocked documents (by the *Locked suffix) that callers hold c.mu.
func (c *counter) resetLocked() {
	c.n = 0
}

func (c *counter) withClosure() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() int { return c.n } // a closure inherits its definition-point lock state
	return f()
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // construction window: c is unpublished
	return c
}

func (c *counter) racyRead() int {
	return c.n // want "read of c\.n without holding c\.mu\.Lock\(\)"
}

func (c *counter) racyWrite(v int) {
	c.n = v // want "write to c\.n without holding c\.mu\.Lock\(\)"
}

func (c *counter) unlockedTail() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "write to c\.n without holding c\.mu\.Lock\(\)"
}

func (c *counter) conditionalLock(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "write to c\.n without holding c\.mu\.Lock\(\)"
	if b {
		c.mu.Unlock()
	}
}

func (c *counter) spawns() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "write to c\.n without holding c\.mu\.Lock\(\)"
	}()
}

type table struct {
	mu sync.RWMutex
	m  map[string]int //gddr:guardedby mu
}

func (t *table) lookup(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k] // RLock suffices for reads
}

func (t *table) set(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}

func (t *table) sneakyWrite(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = v // want "write to t\.m while t\.mu is only read-locked"
}

// global shows the embedded-mutex form: the promoted Lock/Unlock key as
// global.RWMutex, matching the directive.
var global = struct {
	sync.RWMutex
	vals map[string]int //gddr:guardedby RWMutex
}{vals: map[string]int{}}

func registerGlobal(k string, v int) {
	global.Lock()
	defer global.Unlock()
	global.vals[k] = v
}

func peekGlobal(k string) int {
	return global.vals[k] // want "read of global\.vals without holding global\.RWMutex\.RLock\(\)"
}

type broken struct {
	mu sync.Mutex
	a  int //gddr:guardedby lock  // want "names no sibling sync\.Mutex/sync\.RWMutex field"
}
