// Package detfiles exercises Config.DeterministicFiles: the determinism
// contract scoped to individual files of an otherwise-exempt package — the
// train.go pattern, where the root package's training file is deterministic
// but its serving files legitimately time requests.
package detfiles

import "time"

// scoped.go is inside the configured file scope.
func stamp() time.Time {
	return time.Now() // want "time\.Now reads the wall clock"
}
