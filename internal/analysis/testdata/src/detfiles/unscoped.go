package detfiles

import "time"

// unscoped.go sits outside the configured file scope: serving-style code may
// read the wall clock freely.
func now() time.Time {
	return time.Now()
}
