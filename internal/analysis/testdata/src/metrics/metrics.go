// Package metrics is a structural stand-in for gddr/internal/metrics: the
// metricnames analyzer matches registration calls by package name ("metrics")
// and receiver type name ("Registry"), so fixtures can exercise it without
// importing the real module.
package metrics

// Registry mirrors the registration surface of the real registry.
type Registry struct{}

// Counter is a stand-in instrument.
type Counter struct{}

// Gauge is a stand-in instrument.
type Gauge struct{}

// Histogram is a stand-in instrument.
type Histogram struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram { return &Histogram{} }
