// Package hotpath exercises the hotpath analyzer.
package hotpath

import "fmt"

type ring struct {
	buf  []float64
	next *ring
}

// reuse is the sanctioned preallocated pattern: reset by reslicing, refill
// in place — no construct here can allocate once buf reaches steady state.
//
//gddr:hotpath
func (r *ring) reuse(vals []float64) float64 {
	r.buf = append(r.buf[:0], vals...)
	sum := 0.0
	for _, v := range r.buf {
		sum += v
	}
	return sum
}

//gddr:hotpath
func grows(dst []int, v int) []int {
	return append(dst, v) // want "append may grow its backing array"
}

//gddr:hotpath
func fresh(n int) []int {
	return make([]int, n) // want "make allocates"
}

//gddr:hotpath
func escapes() *ring {
	return &ring{} // want "&composite literal escapes to the heap"
}

//gddr:hotpath
func formats(v int) string {
	return fmt.Sprintf("%d", v) // want "fmt\.Sprintf allocates"
}

//gddr:hotpath
func concats(a, b string) string {
	return a + b // want "string concatenation allocates"
}

func sink(v any) any { return v }

//gddr:hotpath
func boxes(v int) any {
	return sink(v) // want "argument boxes a non-pointer value into an interface parameter"
}

//gddr:hotpath
func pointerArgsFine(r *ring) any {
	return sink(r) // a pointer fits the interface word: no allocation
}

// helper allocates, so hot callers are flagged at their call site.
func helper(n int) []int {
	return make([]int, n)
}

//gddr:hotpath
func callsHelper(n int) []int {
	return helper(n) // want "call to helper allocates: make allocates at hotpath\.go:\d+"
}

// coldHelper's allocation is sanctioned in place, so it propagates to no
// caller.
func coldHelper(n int) []int {
	//gddr:allow hotpath resize path runs once per capacity change, never per request
	return make([]int, n)
}

//gddr:hotpath
func callsColdHelper(n int) []int {
	return coldHelper(n)
}

func misplaced() {
	//gddr:hotpath want "misplaced //gddr:hotpath"
	_ = 0
}

// panicFormats' fmt call and string concatenation sit inside panic
// arguments: a panicking path is cold by definition, so nothing here is
// flagged.
//
//gddr:hotpath
func panicFormats(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative n: %d", n))
	}
	if n > 1<<20 {
		panic("too big: " + fmt.Sprint(n))
	}
	return n * 2
}

// panicky allocates only inside its panic argument, so hot callers see a
// clean summary.
func panicky(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative n: %d", n))
	}
	return n
}

//gddr:hotpath
func callsPanicky(n int) int {
	return panicky(n)
}
