// Package jsonerrors exercises the jsonerrors analyzer: it mirrors the
// cmd/gddr-serve shape — contract helpers, a response-writer wrapper, and
// handlers that must route error statuses through the helpers.
package jsonerrors

import (
	"encoding/json"
	"net/http"
)

// writeJSON and writeError are the fixture's contract helpers
// (Config.ServeHelpers): raw status writes are their job.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// statusWriter embeds http.ResponseWriter: wrapper methods must be able to
// forward raw statuses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) reject() {
	w.WriteHeader(http.StatusServiceUnavailable) // wrapper method: sanctioned
}

func handler(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method != http.MethodPost:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed) // want "bare http\.Error emits text/plain"
	case r.ContentLength == 0:
		w.WriteHeader(http.StatusBadRequest) // want "WriteHeader\(400\) writes an error status outside the JSON error contract"
	case r.URL.Path == "/legacy":
		//gddr:allow jsonerrors raw probe endpoint predates the contract
		w.WriteHeader(503)
	default:
		writeError(w, http.StatusConflict, "boom") // the contract path
	}
}

func ok(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNoContent) // success statuses are not error writes
}
