package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader type-checks the packages under testdata/src the way the real
// Loader handles the module: fixture-local imports (e.g. the "metrics"
// stand-in) resolve from source, everything else goes through the shared
// standard-library source importer.
type fixtureLoader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*Package
}

func newFixtureLoader() *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		root:  filepath.Join("testdata", "src"),
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*Package),
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if info, err := os.Stat(filepath.Join(l.root, path)); err == nil && info.IsDir() {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.root, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	sources := make(map[string][]byte)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[full] = src
	}
	info := newInfo()
	var errs []string
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err.Error()) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking fixture %s:\n\t%s", path, strings.Join(errs, "\n\t"))
	}
	pkg := &Package{
		ImportPath: path,
		BasePath:   path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sources:    sources,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// fixtureConfig scopes the analyzers to the fixture package names the way
// DefaultConfig scopes them to module paths.
func fixtureConfig() *Config {
	return &Config{
		DeterministicPkgs:  []string{"determinism"},
		DeterministicFiles: map[string][]string{"detfiles": {"scoped.go"}},
		ServePkgs:          []string{"jsonerrors"},
		ServeHelpers:       []string{"writeJSON", "writeError"},
	}
}

var fixturePackages = []string{
	"atomicpub", "ctxflow", "detfiles", "determinism",
	"hotpath", "jsonerrors", "lockguard", "metricnames",
}

var fixturesOnce struct {
	sync.Once
	pkgs []*Package
	err  error
}

// loadFixtures loads every fixture package once per test binary; the std
// source importer dominates the cost, so the result is shared.
func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	fixturesOnce.Do(func() {
		l := newFixtureLoader()
		for _, name := range fixturePackages {
			pkg, err := l.load(name)
			if err != nil {
				fixturesOnce.err = fmt.Errorf("loading fixture %s: %w", name, err)
				return
			}
			fixturesOnce.pkgs = append(fixturesOnce.pkgs, pkg)
		}
	})
	if fixturesOnce.err != nil {
		t.Fatal(fixturesOnce.err)
	}
	return fixturesOnce.pkgs
}

// wantRE extracts `want "regexp"` expectation markers from fixture source
// lines; the pattern applies to a finding on the marker's own line.
var wantRE = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func parseExpectations(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, pkg := range pkgs {
		for file, src := range pkg.Sources {
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, m[1], err)
					}
					exps = append(exps, &expectation{file: file, line: i + 1, pattern: re})
				}
			}
		}
	}
	return exps
}

// TestAnalyzersGolden runs the full suite over the fixture packages and
// matches findings against want expectations in both directions: a finding
// with no want fails (false positive), and a want with no finding fails
// (false negative — which is exactly what "this fixture fails without its
// analyzer" means: dropping an analyzer orphans its wants).
func TestAnalyzersGolden(t *testing.T) {
	pkgs := loadFixtures(t)
	findings := Run(pkgs, fixtureConfig(), All())
	exps := parseExpectations(t, pkgs)
outer:
	for _, f := range findings {
		for _, e := range exps {
			if !e.matched && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.pattern.MatchString(f.Msg) {
				e.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: no finding matched want %q", e.file, e.line, e.pattern)
		}
	}
}

// TestEachAnalyzerFires proves every analyzer is load-bearing on its own:
// run the suite one analyzer at a time and require at least one finding from
// it, so a regression that silences a whole check cannot hide behind the
// others.
func TestEachAnalyzerFires(t *testing.T) {
	pkgs := loadFixtures(t)
	for _, a := range All() {
		findings := Run(pkgs, fixtureConfig(), []*Analyzer{a})
		fired := false
		for _, f := range findings {
			if f.Check == a.Name {
				fired = true
				break
			}
		}
		if !fired {
			t.Errorf("analyzer %s produced no findings on its fixtures", a.Name)
		}
	}
}

// parseSyntheticPackage builds a Package without type information — enough
// for the directive scanner, which is purely syntactic.
func parseSyntheticPackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", []byte(src), parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{
		ImportPath: "synthetic",
		BasePath:   "synthetic",
		Fset:       fset,
		Files:      []*ast.File{f},
		Sources:    map[string][]byte{"synthetic.go": []byte(src)},
	}
}

// TestMalformedDirectivesAreFindings: a suppression that silently failed to
// parse must not pass CI, so malformed //gddr:allow comments are findings of
// the synthetic "directive" check.
func TestMalformedDirectivesAreFindings(t *testing.T) {
	src := `package synthetic

func f() {
	//gddr:allow
	//gddr:allow nosuchcheck because reasons
	//gddr:allow determinism
	//gddr:allowlist is a different word, not this directive
	_ = 0 //gddr:allow determinism a valid trailing directive
}
`
	pkg := parseSyntheticPackage(t, src)
	known := map[string]bool{"determinism": true}
	index, findings := scanDirectives(pkg, known)
	wants := []string{
		"malformed //gddr:allow directive",
		`names unknown check "nosuchcheck"`,
		"needs a reason",
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d directive findings, want %d: %v", len(findings), len(wants), findings)
	}
	for i, want := range wants {
		if findings[i].Check != "directive" {
			t.Errorf("finding %d check = %q, want %q", i, findings[i].Check, "directive")
		}
		if !strings.Contains(findings[i].Msg, want) {
			t.Errorf("finding %d = %q, want substring %q", i, findings[i].Msg, want)
		}
	}
	lines := index["synthetic.go"]
	if len(lines) != 1 {
		t.Fatalf("indexed %d directive lines, want 1 (only the valid trailing one): %v", len(lines), lines)
	}
	for line, ds := range lines {
		if line != 8 || len(ds) != 1 || ds[0].check != "determinism" || ds[0].standalone {
			t.Errorf("valid directive indexed as line %d %+v; want a trailing determinism directive on line 8", line, ds)
		}
	}
}

// TestSuppressionBlockWalk: a finding is suppressed by a same-check directive
// on its own line or anywhere in the immediately preceding block of
// standalone directive lines — and by nothing else.
func TestSuppressionBlockWalk(t *testing.T) {
	src := `package synthetic

func f() {
	//gddr:allow determinism first line of the directive block
	//gddr:allow ctxflow second line covers another check
	_ = 0
	_ = 1
}
`
	pkg := parseSyntheticPackage(t, src)
	known := map[string]bool{"determinism": true, "ctxflow": true}
	index, findings := scanDirectives(pkg, known)
	if len(findings) != 0 {
		t.Fatalf("unexpected directive findings: %v", findings)
	}
	at := func(line int, check string) Finding {
		return Finding{Check: check, Pos: token.Position{Filename: "synthetic.go", Line: line}}
	}
	if !suppressed(index, at(6, "determinism")) {
		t.Error("line 6 determinism: directive two lines up in the block must suppress")
	}
	if !suppressed(index, at(6, "ctxflow")) {
		t.Error("line 6 ctxflow: adjacent directive line must suppress")
	}
	if suppressed(index, at(6, "metricnames")) {
		t.Error("line 6 metricnames: the block names other checks; must not suppress")
	}
	if suppressed(index, at(7, "determinism")) {
		t.Error("line 7: the block annotates line 6 only; must not suppress")
	}
}

// TestCheckMetricName covers the shared grammar checker both analyzers and
// the runtime registry walk rely on.
func TestCheckMetricName(t *testing.T) {
	cases := []struct {
		kind, name string
		wantErr    string // "" means the name is valid
	}{
		{"counter", "gddr_router_requests_total", ""},
		{"histogram", "gddr_lp_solve_seconds", ""},
		{"gauge", "gddr_engine_agent_generation", ""},
		{"counter", "gddr_fleet_shed_total", ""},
		{"histogram", "gddr_fleet_route_seconds", ""},
		{"gauge", "gddr_fleet_tenants", ""},
		{"counter", "gddr_router_requests", "must end in _total"},
		{"gauge", "gddr_train_policy_loss_total", "must not end in _total"},
		{"histogram", "gddr_router_latency_ms", `non-base unit "ms"`},
		{"histogram", "gddr_train_step_minutes", `non-base unit "minutes"`},
		{"counter", "gddr_router_request_count", `non-base unit "count"`},
		{"counter", "foo_router_requests_total", "gddr_ namespace prefix"},
		{"gauge", "gddr_frobnicator_depth", `unknown subsystem "frobnicator"`},
		{"gauge", "GDDR_router_depth", "does not match"},
		{"gauge", "gddr_router", "does not match"},
	}
	for _, c := range cases {
		err := CheckMetricName(c.kind, c.name)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("CheckMetricName(%q, %q) = %v, want nil", c.kind, c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("CheckMetricName(%q, %q) = %v, want error containing %q", c.kind, c.name, err, c.wantErr)
		}
	}
}
