package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// JSONErrors enforces the gateway's error contract (PR 4: every 4xx/5xx
// response is {"error": ...} JSON) inside the serve packages
// (Config.ServePkgs): handlers must not write error statuses through bare
// http.Error or WriteHeader with a 4xx/5xx constant — those emit text/plain
// and bypass statusFor's error mapping. The sanctioned writers are the
// contract helpers (Config.ServeHelpers, e.g. writeJSON/writeError) and
// methods on response-writer wrappers (types embedding http.ResponseWriter,
// which must be able to forward WriteHeader).
var JSONErrors = &Analyzer{
	Name: "jsonerrors",
	Doc:  "gateway handlers must write error statuses through the JSON error-contract helpers, not bare http.Error/WriteHeader",
	Run:  runJSONErrors,
}

func runJSONErrors(p *Pass) {
	if !contains(p.Cfg.ServePkgs, p.Pkg.BasePath) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || p.isSanctionedWriter(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				p.checkErrorWrite(call)
				return true
			})
		}
	}
}

// isSanctionedWriter reports whether the function is allowed to write raw
// statuses: a named contract helper, or a method on a wrapper type that
// embeds http.ResponseWriter (wrappers must forward WriteHeader).
func (p *Pass) isSanctionedWriter(fn *ast.FuncDecl) bool {
	if fn.Recv == nil {
		return contains(p.Cfg.ServeHelpers, fn.Name.Name)
	}
	if len(fn.Recv.List) != 1 {
		return false
	}
	t := p.Pkg.Info.TypeOf(fn.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Embedded() {
			continue
		}
		if named, ok := field.Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter" {
				return true
			}
		}
	}
	return false
}

func (p *Pass) checkErrorWrite(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Bare http.Error: always text/plain, always outside the contract.
	if fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		if fn.Name() == "Error" && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && sig(fn) != nil && sig(fn).Recv() == nil {
			p.Reportf(call.Pos(), "bare http.Error emits text/plain, bypassing the JSON error contract; use writeError (with statusFor) instead")
			return
		}
	}
	// WriteHeader with a constant 4xx/5xx status.
	if sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	tv := p.Pkg.Info.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	status, ok := constant.Int64Val(tv.Value)
	if !ok || status < 400 {
		return
	}
	p.Reportf(call.Pos(), "WriteHeader(%d) writes an error status outside the JSON error contract; use writeError (with statusFor) instead", status)
}

func sig(fn *types.Func) *types.Signature {
	s, _ := fn.Type().(*types.Signature)
	return s
}
