package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked lint unit: a package's library files plus its
// in-package test files (external _test packages load as their own unit
// with IsXTest set).
type Package struct {
	// ImportPath is the unit's import path; external test packages carry a
	// "_test" suffix.
	ImportPath string
	// BasePath is ImportPath without the external-test suffix — the path
	// analyzer scoping is expressed in.
	BasePath string
	IsXTest  bool
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	// Sources retains the raw bytes of each file (keyed by full path) for
	// line-oriented directive handling.
	Sources map[string][]byte
}

// Loader loads and type-checks the packages of a single module using only
// the standard library: module-internal imports resolve recursively from
// source, and standard-library imports go through go/importer's source
// compiler (shared and cached across packages).
type Loader struct {
	moduleDir  string
	modulePath string
	fset       *token.FileSet
	std        types.Importer
	pure       map[string]*types.Package // import cache: library files only
	augmented  map[string]*types.Package // library + in-package test files
	loading    map[string]bool
	parsed     map[string]*dirFiles
	sources    map[string][]byte
}

// dirFiles is a directory's parse result, split by unit.
type dirFiles struct {
	lib, test, xtest []*ast.File
}

// NewLoader creates a loader for the module rooted at moduleDir (the
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modulePath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modulePath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modulePath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		moduleDir:  moduleDir,
		modulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pure:       make(map[string]*types.Package),
		augmented:  make(map[string]*types.Package),
		loading:    make(map[string]bool),
		parsed:     make(map[string]*dirFiles),
		sources:    make(map[string][]byte),
	}, nil
}

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// Load resolves the patterns ("./...", "./dir/...", "./dir", ".") against
// the module and returns every matched package as a type-checked lint unit,
// in deterministic path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	selected := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, dir := range dirs {
			if matchPattern(pat, dir) {
				selected[dir] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("analysis: pattern %q matched no packages", pat)
		}
	}
	var order []string
	for dir := range selected {
		order = append(order, dir)
	}
	sort.Strings(order)
	var pkgs []*Package
	for _, rel := range order {
		units, err := l.loadDir(rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// matchPattern implements the go-command subset the driver needs: ".",
// "./...", "./x", "./x/..." (and the same forms without the "./" prefix).
func matchPattern(pat, relDir string) bool {
	pat = strings.TrimPrefix(pat, "./")
	if pat == "" || pat == "." {
		return relDir == "."
	}
	if pat == "..." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return relDir == prefix || strings.HasPrefix(relDir, prefix+"/")
	}
	return relDir == pat
}

// packageDirs walks the module for directories containing Go files,
// skipping testdata, vendor, hidden and underscore-prefixed directories.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && goFileIncluded(e.Name()) {
				rel, err := filepath.Rel(l.moduleDir, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	return dirs, err
}

func goFileIncluded(name string) bool {
	return !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// importPathFor maps a module-relative directory to its import path.
func (l *Loader) importPathFor(relDir string) string {
	if relDir == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + relDir
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.modulePath {
		return l.moduleDir
	}
	return filepath.Join(l.moduleDir, strings.TrimPrefix(importPath, l.modulePath+"/"))
}

func (l *Loader) isModuleLocal(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// parseDir parses (once) every buildable Go file of the directory, split
// into library, in-package test, and external test files.
func (l *Loader) parseDir(dir string) (*dirFiles, error) {
	if df, ok := l.parsed[dir]; ok {
		return df, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	df := &dirFiles{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || !goFileIncluded(name) {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue // excluded by build constraints (or unreadable: surfaces later)
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		l.sources[full] = src
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			df.xtest = append(df.xtest, f)
		case strings.HasSuffix(name, "_test.go"):
			df.test = append(df.test, f)
		default:
			df.lib = append(df.lib, f)
		}
	}
	l.parsed[dir] = df
	return df, nil
}

// Import implements types.Importer for the pure (no test files) view of
// module packages, delegating everything else to the standard-library
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModuleLocal(path) {
		return l.importPure(path)
	}
	return l.std.Import(path)
}

func (l *Loader) importPure(path string) (*types.Package, error) {
	if pkg, ok := l.pure[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	df, err := l.parseDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	if len(df.lib) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", path)
	}
	pkg, err := l.check(path, df.lib, nil, l)
	if err != nil {
		return nil, err
	}
	l.pure[path] = pkg
	return pkg, nil
}

// xtestImporter resolves the package under test to its augmented (test
// helpers included) form, the way the go tool links external test binaries.
type xtestImporter struct {
	*Loader
	underTest string
	augmented *types.Package
}

func (x *xtestImporter) Import(path string) (*types.Package, error) {
	if path == x.underTest {
		return x.augmented, nil
	}
	return x.Loader.Import(path)
}

// check type-checks one unit and surfaces every type error at once.
func (l *Loader) check(path string, files []*ast.File, info *types.Info, imp types.Importer) (*types.Package, error) {
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			errs = append(errs, err.Error())
		},
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(errs, "\n\t"))
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// loadDir builds the lint units of one module-relative directory: the
// package (with its in-package test files) and, when present, the external
// test package.
func (l *Loader) loadDir(relDir string) ([]*Package, error) {
	dir := l.dirFor(l.importPathFor(relDir))
	importPath := l.importPathFor(relDir)
	df, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(df.lib) == 0 && len(df.test) == 0 && len(df.xtest) == 0 {
		return nil, nil
	}
	var units []*Package
	sourcesFor := func(files []*ast.File) map[string][]byte {
		out := make(map[string][]byte, len(files))
		for _, f := range files {
			name := l.fset.Position(f.Pos()).Filename
			out[name] = l.sources[name]
		}
		return out
	}
	if len(df.lib) > 0 || len(df.test) > 0 {
		files := append(append([]*ast.File{}, df.lib...), df.test...)
		info := newInfo()
		pkg, err := l.check(importPath, files, info, l)
		if err != nil {
			return nil, err
		}
		l.augmented[importPath] = pkg
		units = append(units, &Package{
			ImportPath: importPath,
			BasePath:   importPath,
			Dir:        dir,
			Fset:       l.fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
			Sources:    sourcesFor(files),
		})
	}
	if len(df.xtest) > 0 {
		imp := types.Importer(l)
		if aug, ok := l.augmented[importPath]; ok {
			imp = &xtestImporter{Loader: l, underTest: importPath, augmented: aug}
		}
		info := newInfo()
		pkg, err := l.check(importPath+"_test", df.xtest, info, imp)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			ImportPath: importPath + "_test",
			BasePath:   importPath,
			IsXTest:    true,
			Dir:        dir,
			Fset:       l.fset,
			Files:      df.xtest,
			Types:      pkg,
			Info:       info,
			Sources:    sourcesFor(df.xtest),
		})
	}
	return units, nil
}
