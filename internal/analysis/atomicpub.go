package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicPub enforces the copy-on-write publication contract (DESIGN.md
// "Tenant isolation contract" items 3 and 6) on atomic.Pointer fields
// annotated with the same field directive lockguard uses:
//
//	state atomic.Pointer[engineState] //gddr:guardedby mu
//
// Here the directive names the field's designated *writer* mutex. Readers
// are lock-free — Load() is always allowed — but:
//
//   - Publication happens only through Store/Swap/CompareAndSwap called
//     while the writer mutex is write-held (lockguard's construction-window
//     and *Locked-suffix exemptions apply: a constructor may Store into a
//     value it just built, and a *Locked method documents that callers hold
//     the mutex).
//   - A snapshot obtained from Load() is immutable: no assignment may write
//     through the Load() result or any local alias of it — including a
//     dereferenced copy, whose map/slice fields still share the published
//     backing store. Mutation means build-new-then-Store.
//
// Test files are exempt, matching lockguard: the -race stress suites cover
// dynamic publication behaviour.
var AtomicPub = &Analyzer{
	Name: "atomicpub",
	Doc:  "annotated atomic.Pointer fields publish only via Store under their writer mutex; Load() results stay immutable",
	Run:  runAtomicPub,
}

func runAtomicPub(p *Pass) {
	guards := parseGuards(p, false)
	atomics := make(map[*types.Var]*guardInfo)
	for v, gi := range guards {
		if gi.atomic {
			atomics[v] = gi
		}
	}
	w := &guardWalker{p: p, guards: atomics, atomicMode: true}
	w.walkPackage()
}

// checkAtomicCall intercepts method calls on annotated atomic.Pointer
// fields. It returns true when the call was one (so the generic walk skips
// re-inspecting the receiver chain).
func (w *guardWalker) checkAtomicCall(call *ast.CallExpr, held lockState, fn *funcScope) bool {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fieldSel, ok := ast.Unparen(se.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	gi := w.guardOf(fieldSel)
	if gi == nil || !gi.atomic {
		return false
	}
	switch se.Sel.Name {
	case "Load":
		return true
	case "Store", "Swap", "CompareAndSwap":
		base, root := exprKey(w.p, fieldSel.X)
		if root != nil && fn.fresh[root] {
			return true // construction window: the owner is unpublished
		}
		field := gi.name
		if base != "" {
			field = base + "." + gi.name
		}
		if base == "" {
			w.p.Reportf(call.Pos(), "%s.%s through an unnamed base expression: the analyzer cannot match it to writer mutex %s", field, se.Sel.Name, gi.mu)
			return true
		}
		key := base + "." + gi.mu
		if held[key] != heldWrite {
			w.p.Reportf(call.Pos(), "%s.%s without holding writer mutex %s.Lock(): copy-on-write publication must be serialised (field is %s %s)", field, se.Sel.Name, key, guardedByPrefix, gi.mu)
		}
		return true
	}
	return false
}

// rootedInLoad reports whether the expression's value derives from a Load()
// of an annotated atomic field: the call itself, a dereference or
// field/index projection of it, or a local already marked as an alias.
func (w *guardWalker) rootedInLoad(e ast.Expr, fn *funcScope) bool {
	_, ok := w.aliasRoot(e, fn)
	return ok
}

// aliasRoot unwraps projections to the root of an expression and reports
// whether that root is a Load() result or a known alias, returning a
// printable name for the root.
func (w *guardWalker) aliasRoot(e ast.Expr, fn *funcScope) (string, bool) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.p.Pkg.Info.ObjectOf(t); obj != nil && fn.aliases[obj] {
			return t.Name, true
		}
	case *ast.StarExpr:
		return w.aliasRoot(t.X, fn)
	case *ast.SelectorExpr:
		return w.aliasRoot(t.X, fn)
	case *ast.IndexExpr:
		return w.aliasRoot(t.X, fn)
	case *ast.SliceExpr:
		return w.aliasRoot(t.X, fn)
	case *ast.CallExpr:
		if se, ok := t.Fun.(*ast.SelectorExpr); ok && se.Sel.Name == "Load" {
			if fieldSel, ok := ast.Unparen(se.X).(*ast.SelectorExpr); ok {
				if gi := w.guardOf(fieldSel); gi != nil && gi.atomic {
					return gi.name + ".Load()", true
				}
			}
		}
	}
	return "", false
}
