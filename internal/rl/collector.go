package rl

import (
	"fmt"
	"math/rand"
	"sync"

	"gddr/internal/env"
	"gddr/internal/rng"
)

// The training pipeline is split into a collector and an updater: N rollout
// workers step independent environment clones in parallel (the forward pass
// only reads parameters, so workers share the policy), and the update pass
// consumes the merged rollout single-threaded.
//
// Determinism contract: worker i draws actions from its own stream forked
// from (seed, worker) and steps its own environment clone reseeded from
// (seed, worker), and the merged rollout concatenates worker slices in
// fixed worker order — so for a given (seed, workers) pair the sample
// sequence, the episode statistics, and every subsequent update are
// bit-identical no matter how the goroutines interleave. Results differ
// across different worker counts (the streams differ), which is why the
// worker count is recorded in checkpoints and validated on resume.

// Deterministic stream tags per trainer seed: tag 0 is the update
// (minibatch shuffle) stream, tags 1+2i / 2+2i are worker i's action and
// environment streams.
const (
	streamUpdate    = 0
	streamWorkerAct = 1
	streamWorkerEnv = 2
)

// actorFunc samples an action for obs from r, returning the action, its log
// probability, and the value estimate.
type actorFunc func(obs *env.Observation, r *rand.Rand) (action []float64, logp, value float64, err error)

// valueFunc returns the deterministic value estimate for obs (the GAE
// bootstrap; it must not consume randomness).
type valueFunc func(obs *env.Observation) (float64, error)

// gaeParams are the advantage-estimation settings shared by the trainers.
type gaeParams struct {
	discount     float64
	lambda       float64
	rewardOffset float64
}

// sample holds one transition of a rollout.
type sample struct {
	obs    *env.Observation
	action []float64
	logp   float64
	value  float64
	reward float64
	done   bool
	adv    float64
	ret    float64
}

// pendingEpisode records an episode that finished inside a worker slice,
// before global episode/timestep numbering is assigned at merge time.
type pendingEpisode struct {
	steps     int
	reward    float64
	endOffset int // 1-based sample offset within the worker slice
}

// rollout is one merged collection batch: samples in fixed worker order
// with GAE already computed per worker slice, plus the episode statistics
// finished during the batch, numbered globally.
type rollout struct {
	samples []*sample
	stats   []EpisodeStat
}

// WorkerState is the serialisable state of one rollout worker at an update
// boundary: its action stream, its environment's episode state, and the
// running episode accumulators.
type WorkerState struct {
	RNG       uint64    `json:"rng"`
	EpReward  float64   `json:"ep_reward"`
	EpSteps   int       `json:"ep_steps"`
	InEpisode bool      `json:"in_episode"`
	Env       env.State `json:"env"`
}

// worker is one rollout collector: an environment (clone), an action
// stream, and the episode state carried across rollouts.
type worker struct {
	id  int
	env env.Interface
	ten env.TrainEnv // non-nil when env supports cloning/checkpointing
	src *rng.Source
	r   *rand.Rand

	obs      *env.Observation
	started  bool // an episode is in progress (obs is valid)
	epReward float64
	epSteps  int
}

// collect steps the worker's environment quota times, computes GAE over the
// slice (bootstrapping an unfinished trailing episode from the
// deterministic value head), and returns the slice plus the episodes that
// finished inside it.
func (w *worker) collect(quota int, act actorFunc, val valueFunc, g gaeParams) ([]*sample, []pendingEpisode, error) {
	samples := make([]*sample, 0, quota)
	var eps []pendingEpisode
	for len(samples) < quota {
		if !w.started {
			obs, err := w.env.Reset()
			if err != nil {
				return nil, nil, fmt.Errorf("rl: reset: %w", err)
			}
			w.obs = obs
			w.started = true
		}
		action, logp, value, err := act(w.obs, w.r)
		if err != nil {
			return nil, nil, err
		}
		next, reward, done, err := w.env.Step(action)
		if err != nil {
			return nil, nil, fmt.Errorf("rl: env step: %w", err)
		}
		shifted := reward
		if reward != 0 {
			shifted = reward + g.rewardOffset
		}
		samples = append(samples, &sample{
			obs: w.obs, action: action, logp: logp, value: value,
			reward: shifted, done: done,
		})
		w.epReward += reward
		w.epSteps++
		if done {
			eps = append(eps, pendingEpisode{steps: w.epSteps, reward: w.epReward, endOffset: len(samples)})
			w.epReward, w.epSteps = 0, 0
			w.started = false
			w.obs = nil
		} else {
			w.obs = next
		}
	}
	// Bootstrap value for the (possibly) unfinished trailing episode.
	var lastValue float64
	if !samples[len(samples)-1].done {
		v, err := val(w.obs)
		if err != nil {
			return nil, nil, err
		}
		lastValue = v
	}
	computeGAE(samples, lastValue, g.discount, g.lambda)
	return samples, eps, nil
}

// collector owns the rollout workers and the update-boundary state
// snapshot used for checkpointing.
type collector struct {
	base    env.Interface // the environment the workers were cloned from
	workers []*worker
	// states is the per-worker state at the last update boundary. A
	// cancelled collection can abort workers mid-rollout; checkpoints must
	// describe the last consistent boundary, so the snapshot refreshes only
	// after a fully successful collect.
	states         []WorkerState
	checkpointable bool
}

// newCollector clones the environment once per worker with deterministic
// per-worker streams. Environments that do not implement env.TrainEnv are
// limited to a single worker (which then steps the caller's environment
// directly) and cannot be checkpointed.
func newCollector(e env.Interface, workers int, seed int64) (*collector, error) {
	if workers < 1 {
		workers = 1
	}
	te, cloneable := e.(env.TrainEnv)
	if workers > 1 && !cloneable {
		return nil, fmt.Errorf("rl: %T does not implement env.TrainEnv; parallel collection needs cloneable environments", e)
	}
	ws := make([]*worker, workers)
	for i := range ws {
		var wenv env.Interface
		var wten env.TrainEnv
		if cloneable {
			c := te.Clone()
			c.Reseed(rng.DeriveSeed(seed, uint64(streamWorkerEnv+2*i)))
			wenv, wten = c, c
		} else {
			wenv = e
		}
		src := rng.New(seed).Fork(uint64(streamWorkerAct + 2*i))
		ws[i] = &worker{id: i, env: wenv, ten: wten, src: src, r: rand.New(src)}
	}
	col := &collector{base: e, workers: ws, checkpointable: cloneable}
	if cloneable {
		col.states = col.capture()
	}
	return col, nil
}

// rebase moves the collector onto a different base environment, carrying
// the last update-boundary state across: a later Train call passes a
// freshly built environment (new context, new LP cache, same scenario),
// and the workers must step clones of *that* one rather than clones bound
// to a stale context. Checkpointable collectors rebuild their workers from
// the boundary snapshot — which also makes continue-after-cancel resume
// from the last completed update, exactly like a checkpoint round-trip.
func (c *collector) rebase(e env.Interface, seed int64) (*collector, error) {
	if c.base == e {
		return c, nil
	}
	if !c.checkpointable {
		// Single worker stepping the caller's environment directly: swap it
		// in and start a fresh episode, keeping the worker's action stream.
		w := c.workers[0]
		w.env = e
		w.started = false
		w.obs = nil
		w.epReward, w.epSteps = 0, 0
		c.base = e
		return c, nil
	}
	col, err := newCollector(e, len(c.workers), seed)
	if err != nil {
		return nil, err
	}
	if !col.checkpointable {
		return nil, fmt.Errorf("rl: %T does not implement env.TrainEnv; cannot carry training state onto it", e)
	}
	for i, st := range c.states {
		if err := col.restoreWorker(i, st); err != nil {
			return nil, err
		}
	}
	col.states = append([]WorkerState(nil), c.states...)
	return col, nil
}

// setBudget tells every worker environment its share of the total training
// budget, which drives curriculum-sampler progress. Shares follow the same
// worker-order split as rollout quotas, so progress is deterministic (and
// approximately, not exactly, equal to the per-worker step count).
func (c *collector) setBudget(total int) {
	if !c.checkpointable {
		return
	}
	n := len(c.workers)
	for i, w := range c.workers {
		share := total / n
		if i < total%n {
			share++
		}
		w.ten.SetBudget(share)
	}
}

// capture snapshots every worker at the current boundary.
func (c *collector) capture() []WorkerState {
	out := make([]WorkerState, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerState{
			RNG:       w.src.State(),
			EpReward:  w.epReward,
			EpSteps:   w.epSteps,
			InEpisode: w.started,
			Env:       w.ten.State(),
		}
	}
	return out
}

// restoreWorker rewinds worker i to a captured state and rebuilds its
// observation from the environment state.
func (c *collector) restoreWorker(i int, st WorkerState) error {
	w := c.workers[i]
	if err := w.ten.Restore(st.Env); err != nil {
		return fmt.Errorf("rl: worker %d: %w", i, err)
	}
	w.src.SetState(st.RNG)
	w.r = rand.New(w.src)
	w.epReward = st.EpReward
	w.epSteps = st.EpSteps
	w.started = st.InEpisode
	w.obs = nil
	if st.InEpisode {
		obs, err := w.ten.Observation()
		if err != nil {
			return fmt.Errorf("rl: worker %d: %w", i, err)
		}
		w.obs = obs
	}
	return nil
}

// collect gathers steps transitions across the workers in parallel and
// merges the slices in fixed worker order, assigning global episode and
// timestep numbers on top of the given counters.
func (c *collector) collect(steps int, act actorFunc, val valueFunc, g gaeParams, baseStep, baseEpisode int) (*rollout, error) {
	n := len(c.workers)
	quotas := make([]int, n)
	for i := range quotas {
		quotas[i] = steps / n
		if i < steps%n {
			quotas[i]++
		}
	}
	slices := make([][]*sample, n)
	episodes := make([][]pendingEpisode, n)
	errs := make([]error, n)
	if n == 1 {
		slices[0], episodes[0], errs[0] = c.workers[0].collect(quotas[0], act, val, g)
	} else {
		var wg sync.WaitGroup
		for i, w := range c.workers {
			if quotas[i] == 0 {
				continue
			}
			wg.Add(1)
			go func(i int, w *worker) {
				defer wg.Done()
				slices[i], episodes[i], errs[i] = w.collect(quotas[i], act, val, g)
			}(i, w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	ro := &rollout{samples: make([]*sample, 0, steps)}
	ts, ep := baseStep, baseEpisode
	for i := range c.workers {
		for _, pe := range episodes[i] {
			meanRatio := 0.0
			if pe.steps > 0 {
				meanRatio = -pe.reward / float64(pe.steps)
			}
			ro.stats = append(ro.stats, EpisodeStat{
				Episode:     ep,
				Timestep:    ts + pe.endOffset,
				Steps:       pe.steps,
				TotalReward: pe.reward,
				MeanRatio:   meanRatio,
			})
			ep++
		}
		ts += len(slices[i])
		ro.samples = append(ro.samples, slices[i]...)
	}
	if c.checkpointable {
		c.states = c.capture()
	}
	return ro, nil
}
