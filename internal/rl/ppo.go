// Package rl implements Proximal Policy Optimisation (Schulman et al.,
// 2017) with generalised advantage estimation, clipped surrogate objective,
// value loss, entropy bonus, and a diagonal Gaussian action head with a
// single learned log standard deviation. It is a from-scratch substitute for
// the stable-baselines PPO2 implementation the paper trains with; the shared
// scalar log-std keeps the action distribution well defined when the action
// dimensionality varies across topologies (the generalisation experiments).
//
// Training is a collector/updater pair: parallel rollout workers step
// independent environment clones on deterministic per-worker streams, and
// the update pass consumes the merged rollout in fixed worker order (see
// collector.go for the determinism contract). The synchronous
// advantage-actor-critic trainer (a2c.go) shares the same collector and
// rollout buffer, differing only in the update rule.
package rl

import (
	"context"
	"fmt"
	"math"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/nn"
)

// Config holds the PPO hyperparameters (defaults mirror PPO2).
type Config struct {
	RolloutSteps  int     // environment steps per update batch
	MiniBatch     int     // samples per gradient step
	Epochs        int     // passes over each rollout
	Discount      float64 // reward discount γ
	GAELambda     float64 // GAE λ
	ClipEps       float64 // surrogate clipping ε
	LearningRate  float64
	ValueCoef     float64
	EntropyCoef   float64
	MaxGradNorm   float64
	InitialLogStd float64
	// RewardOffset is added to every reward before it enters GAE and the
	// value targets. GDDR rewards are -U_agent/U_opt <= -1, so an offset of
	// +1 re-centres the return scale near zero without changing the optimal
	// policy (a constant per-step baseline), which keeps the value loss
	// from dominating shared policy/value trunks early in training.
	// Episode statistics always report raw rewards.
	RewardOffset float64
}

// DefaultConfig returns PPO2-style defaults tuned for this problem scale:
// shorter rollouts (more updates per training budget) and a tighter initial
// action standard deviation, because weight noise is amplified
// exponentially by the action-to-weight mapping.
func DefaultConfig() Config {
	return Config{
		RolloutSteps: 256,
		MiniBatch:    32,
		Epochs:       4,
		// The full-action routing environment is a contextual bandit: the
		// demand sequence evolves independently of the agent's actions, so
		// future rewards carry no credit for the current action and a zero
		// discount gives the exact, lowest-variance policy gradient. The
		// iterative policy overrides this (see gddr.DefaultTrainConfig):
		// within one demand matrix its actions do shape later observations.
		Discount:      0,
		GAELambda:     0.95,
		ClipEps:       0.2,
		LearningRate:  5e-4,
		ValueCoef:     0.5,
		EntropyCoef:   0.001,
		MaxGradNorm:   0.5,
		InitialLogStd: -1.5,
		RewardOffset:  1,
	}
}

// Validate rejects unusable hyperparameters.
func (c Config) Validate() error {
	if c.RolloutSteps < 1 || c.MiniBatch < 1 || c.Epochs < 1 {
		return fmt.Errorf("rl: invalid batch config %+v", c)
	}
	if c.Discount < 0 || c.Discount > 1 || c.GAELambda < 0 || c.GAELambda > 1 {
		return fmt.Errorf("rl: invalid discount %g / lambda %g", c.Discount, c.GAELambda)
	}
	if c.ClipEps <= 0 || c.LearningRate <= 0 {
		return fmt.Errorf("rl: invalid clip %g / lr %g", c.ClipEps, c.LearningRate)
	}
	return nil
}

// EpisodeStat summarises one finished episode for learning-curve logging.
type EpisodeStat struct {
	Episode     int     `json:"episode"`      // episode index, from 0
	Timestep    int     `json:"timestep"`     // total environment steps when the episode ended
	Steps       int     `json:"steps"`        // steps in this episode
	TotalReward float64 `json:"total_reward"` // sum of rewards (paper Figure 7's y-axis)
	MeanRatio   float64 `json:"mean_ratio"`   // mean U_agent/U_opt over reward-bearing steps
}

// Forwarder is the policy contract shared by the RL trainers.
type Forwarder interface {
	Forward(t *ad.Tape, obs *env.Observation) (mean, value *ad.Node, err error)
	Params() []*ad.Param
}

// Trainer runs PPO on a policy and environment.
type Trainer struct {
	cfg Config
	*core
}

var _ Algorithm = (*Trainer)(nil)

// NewTrainer builds a PPO trainer. The policy's parameters plus the shared
// log-std are optimised jointly with Adam; seed determines every random
// stream of the run (minibatch shuffles plus the per-worker action and
// episode-sampling streams).
func NewTrainer(pol Forwarder, cfg Config, seed int64) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := newCore(AlgoPPO, pol, cfg.LearningRate, cfg.InitialLogStd, seed)
	if err != nil {
		return nil, err
	}
	return &Trainer{cfg: cfg, core: c}, nil
}

// Train runs PPO with a single rollout worker until the cumulative step
// counter reaches totalSteps. onEpisode, if not nil, is invoked after every
// finished episode (for learning curves). Cancellation is checked once per
// rollout: when ctx is done, Train returns its error before collecting the
// next batch, leaving the parameters at the last completed update.
func (tr *Trainer) Train(ctx context.Context, e env.Interface, totalSteps int, onEpisode func(EpisodeStat)) error {
	return tr.TrainWorkers(ctx, e, totalSteps, 1, Hooks{OnEpisode: onEpisode})
}

// TrainWorkers runs PPO with parallel rollout collection (see collector.go
// for the determinism contract).
func (tr *Trainer) TrainWorkers(ctx context.Context, e env.Interface, totalSteps, workers int, hooks Hooks) error {
	g := gaeParams{discount: tr.cfg.Discount, lambda: tr.cfg.GAELambda, rewardOffset: tr.cfg.RewardOffset}
	return tr.run(ctx, e, totalSteps, workers, tr.cfg.RolloutSteps, g, tr.update, hooks)
}

// MeanAction returns the deterministic (mean) action for evaluation.
func (tr *Trainer) MeanAction(obs *env.Observation) ([]float64, error) {
	return MeanAction(tr.pol, obs)
}

// MeanAction evaluates pol deterministically on obs.
func MeanAction(pol Forwarder, obs *env.Observation) ([]float64, error) {
	t := getTape()
	defer putTape(t)
	mean, _, err := pol.Forward(t, obs)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), mean.Value.Data...), nil
}

// computeGAE fills adv and ret in place.
func computeGAE(batch []*sample, lastValue, discount, lambda float64) {
	adv := 0.0
	nextValue := lastValue
	for i := len(batch) - 1; i >= 0; i-- {
		s := batch[i]
		nonTerminal := 1.0
		if s.done {
			nonTerminal = 0
			adv = 0
		}
		delta := s.reward + discount*nextValue*nonTerminal - s.value
		adv = delta + discount*lambda*nonTerminal*adv
		s.adv = adv
		s.ret = adv + s.value
		nextValue = s.value
	}
}

// normalizeAdvantages returns the rollout's advantage mean and standard
// deviation (plus epsilon), shared by the PPO and A2C updates.
func normalizeAdvantages(batch []*sample) (mean, std float64) {
	for _, s := range batch {
		mean += s.adv
	}
	mean /= float64(len(batch))
	for _, s := range batch {
		d := s.adv - mean
		std += d * d
	}
	return mean, math.Sqrt(std/float64(len(batch))) + 1e-8
}

// update runs the clipped-surrogate optimisation epochs over the rollout.
func (tr *Trainer) update(batch []*sample) error {
	meanAdv, stdAdv := normalizeAdvantages(batch)
	idx := make([]int, len(batch))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < tr.cfg.Epochs; epoch++ {
		tr.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += tr.cfg.MiniBatch {
			end := start + tr.cfg.MiniBatch
			if end > len(idx) {
				end = len(idx)
			}
			if err := tr.minibatch(batch, idx[start:end], meanAdv, stdAdv); err != nil {
				return err
			}
		}
	}
	return nil
}

// minibatch accumulates the PPO loss over the selected samples and applies
// one Adam step.
func (tr *Trainer) minibatch(batch []*sample, idx []int, meanAdv, stdAdv float64) error {
	t := getTape()
	defer putTape(t)
	logStdNode := t.Use(tr.logStd)
	invStd := t.Exp(t.Scale(logStdNode, -1))
	var total *ad.Node
	var pgSum, vSum float64
	for _, i := range idx {
		s := batch[i]
		mean, value, err := tr.pol.Forward(t, s.obs)
		if err != nil {
			return fmt.Errorf("rl: minibatch forward: %w", err)
		}
		k := float64(len(s.action))
		actionNode := t.RowConstant(s.action)
		diff := t.Sub(actionNode, mean)
		z := t.MulScalar(diff, invStd)
		// log π(a|s) = -½Σz² - k·logσ - k/2·log2π
		logp := t.AddScalar(
			t.Add(t.Scale(t.SumAll(t.Square(z)), -0.5), t.Scale(logStdNode, -k)),
			-0.5*k*math.Log(2*math.Pi))
		ratio := t.Exp(t.AddScalar(logp, -s.logp))
		adv := (s.adv - meanAdv) / stdAdv
		surr1 := t.Scale(ratio, adv)
		surr2 := t.Scale(t.ClampConst(ratio, 1-tr.cfg.ClipEps, 1+tr.cfg.ClipEps), adv)
		pgLoss := t.Scale(t.Min(surr1, surr2), -1)
		vLoss := t.Square(t.AddScalar(value, -s.ret))
		pgSum += pgLoss.Value.Data[0]
		vSum += vLoss.Value.Data[0]
		// Gaussian entropy = k(logσ + ½log2πe); only logσ carries gradient.
		entropy := t.Scale(logStdNode, k)
		loss := t.Add(pgLoss, t.Scale(vLoss, tr.cfg.ValueCoef))
		loss = t.Add(loss, t.Scale(entropy, -tr.cfg.EntropyCoef))
		if total == nil {
			total = loss
		} else {
			total = t.Add(total, loss)
		}
	}
	total = t.Scale(total, 1/float64(len(idx)))
	if err := t.Backward(total); err != nil {
		return err
	}
	params := tr.Params()
	if tr.cfg.MaxGradNorm > 0 {
		nn.ClipGradNorm(params, tr.cfg.MaxGradNorm)
	}
	tr.opt.Step()
	tr.clampLogStd()
	tr.recordLosses(pgSum/float64(len(idx)), vSum/float64(len(idx)))
	return nil
}

// Evaluate runs the policy deterministically for episodes full episodes on
// e and returns the mean per-step ratio U_agent/U_opt (lower is better; 1.0
// is LP-optimal). In iterative mode only reward-bearing steps count.
// Cancellation is checked at every episode boundary.
func Evaluate(ctx context.Context, pol Forwarder, e env.Interface, episodes int) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if episodes < 1 {
		return 0, fmt.Errorf("rl: evaluate needs >= 1 episode")
	}
	var sum float64
	var count int
	for ep := 0; ep < episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		obs, err := e.Reset()
		if err != nil {
			return 0, err
		}
		for {
			action, err := MeanAction(pol, obs)
			if err != nil {
				return 0, err
			}
			next, reward, done, err := e.Step(action)
			if err != nil {
				return 0, err
			}
			if reward != 0 {
				sum += -reward
				count++
			}
			if done {
				break
			}
			obs = next
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("rl: evaluation produced no reward-bearing steps")
	}
	return sum / float64(count), nil
}
