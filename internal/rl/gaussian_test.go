package rl

import (
	"context"
	"math"
	"testing"

	"gddr/internal/ad"
	"gddr/internal/mat"
)

func TestLogStdClampedDuringTraining(t *testing.T) {
	// A pathological learning rate must not let the standard deviation
	// collapse (which freezes PPO) or explode.
	q := newQuadraticEnv(t, 0.5)
	pol := &banditPolicy{
		mu: ad.NewParam("mu", mat.New(1, 1)),
		v:  ad.NewParam("v", mat.New(1, 1)),
	}
	cfg := DefaultConfig()
	cfg.RolloutSteps = 32
	cfg.MiniBatch = 16
	cfg.LearningRate = 0.5 // absurd on purpose
	tr, err := NewTrainer(pol, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(context.Background(), q, 640, nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.LogStd(); got < -2.5-1e-9 || got > 0.5+1e-9 {
		t.Fatalf("log-std %g escaped the clamp [-2.5, 0.5]", got)
	}
}

func TestEpisodeStatsReportRawRewards(t *testing.T) {
	// With RewardOffset enabled, episode statistics must still report the
	// raw environment reward (the learning-curve semantics of Figure 7).
	q := newQuadraticEnv(t, 0)
	pol := &banditPolicy{
		mu: ad.NewParam("mu", mat.New(1, 1)),
		v:  ad.NewParam("v", mat.New(1, 1)),
	}
	cfg := DefaultConfig()
	cfg.RolloutSteps = 8
	cfg.MiniBatch = 8
	cfg.RewardOffset = 100 // obvious if it leaks into the stats
	tr, err := NewTrainer(pol, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	var stats []EpisodeStat
	if err := tr.Train(context.Background(), q, 16, func(s EpisodeStat) { stats = append(stats, s) }); err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no stats")
	}
	for _, s := range stats {
		if s.TotalReward > 0 {
			t.Fatalf("offset leaked into episode stats: %+v", s)
		}
	}
}

func TestMeanActionMatchesForward(t *testing.T) {
	pol := &banditPolicy{
		mu: ad.NewParam("mu", mat.FromSlice(1, 3, []float64{0.1, -0.2, 0.3})),
		v:  ad.NewParam("v", mat.New(1, 1)),
	}
	a, err := MeanAction(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, -0.2, 0.3}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("mean action %v want %v", a, want)
		}
	}
	// Mutating the returned slice must not affect the parameter.
	a[0] = 99
	if pol.mu.Value.Data[0] != 0.1 {
		t.Fatal("MeanAction returned an aliased slice")
	}
}

func TestActSamplingLogProbConsistency(t *testing.T) {
	// The logp recorded by act() must equal the analytic Gaussian log
	// density of the sampled action under the current mean and std.
	pol := &banditPolicy{
		mu: ad.NewParam("mu", mat.FromSlice(1, 2, []float64{0.5, -1})),
		v:  ad.NewParam("v", mat.New(1, 1)),
	}
	cfg := DefaultConfig()
	cfg.InitialLogStd = -0.7
	tr, err := NewTrainer(pol, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		action, logp, _, err := tr.act(nil)
		if err != nil {
			t.Fatal(err)
		}
		std := math.Exp(-0.7)
		want := 0.0
		mus := []float64{0.5, -1}
		for i, a := range action {
			z := (a - mus[i]) / std
			want += -0.5*z*z - math.Log(std) - 0.5*math.Log(2*math.Pi)
		}
		if math.Abs(logp-want) > 1e-9 {
			t.Fatalf("trial %d: logp %g want %g", trial, logp, want)
		}
	}
}

func TestComputeGAEMatchesClosedFormGeometricSeries(t *testing.T) {
	// Constant rewards, zero values, no termination: advantage at step 0 is
	// the truncated geometric series sum_{i<n} (γλ)^i · r.
	n := 6
	r, gamma, lambda := 2.0, 0.9, 0.8
	batch := make([]*sample, n)
	for i := range batch {
		batch[i] = &sample{reward: r}
	}
	computeGAE(batch, 0, gamma, lambda)
	want := 0.0
	for i := 0; i < n; i++ {
		want += math.Pow(gamma*lambda, float64(i)) * r
	}
	if math.Abs(batch[0].adv-want) > 1e-9 {
		t.Fatalf("adv=%g want %g", batch[0].adv, want)
	}
}
