package rl

import (
	"context"
	"math/rand"
	"testing"

	"gddr/internal/env"
	"gddr/internal/graph"
	"gddr/internal/nn"
	"gddr/internal/policy"
	"gddr/internal/traffic"
)

// trainEnv builds a small MultiEnv (two ring topologies) suitable for
// cloning across rollout workers, with a shared LP cache.
func trainEnv(t testing.TB, cache *env.OptimalCache) *env.MultiEnv {
	t.Helper()
	cfg := env.DefaultConfig()
	cfg.Memory = 2
	var envs []*env.Env
	for i, n := range []int{4, 5} {
		g, err := graph.Ring(n, 1000)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(20 + i)))
		seq, err := traffic.BimodalCyclical(n, 8, 2, traffic.DefaultBimodal(), rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := env.New(g, seq, cfg, cache)
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, e)
	}
	m, err := env.NewMulti(envs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyGNN(t testing.TB, seed int64) policy.Policy {
	t.Helper()
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 2, Hidden: 4, Steps: 1}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func paramsEqual(t *testing.T, a, b []nn.ParamState) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("param count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("param %d name %q vs %q", i, a[i].Name, b[i].Name)
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatalf("param %q diverges at %d: %v vs %v", a[i].Name, j, a[i].Data[j], b[i].Data[j])
			}
		}
	}
}

// runParallel trains a fresh trainer for totalSteps with the given worker
// count and returns the final parameters and learning curve.
func runParallel(t *testing.T, seed int64, workers, totalSteps int, hookAt int, captured **TrainState, capturedParams *[]nn.ParamState) ([]nn.ParamState, []EpisodeStat) {
	t.Helper()
	cache := env.NewOptimalCache()
	menv := trainEnv(t, cache)
	pol := tinyGNN(t, seed)
	cfg := DefaultConfig()
	cfg.RolloutSteps = 16
	cfg.MiniBatch = 8
	tr, err := NewTrainer(pol, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	var curve []EpisodeStat
	hooks := Hooks{OnEpisode: func(s EpisodeStat) { curve = append(curve, s) }}
	if hookAt > 0 {
		hooks.OnUpdate = func(steps int) error {
			if steps == hookAt && captured != nil && *captured == nil {
				st, err := tr.State()
				if err != nil {
					return err
				}
				*captured = st
				*capturedParams = nn.CaptureParams(tr.Params())
			}
			return nil
		}
	}
	if err := tr.TrainWorkers(context.Background(), menv, totalSteps, workers, hooks); err != nil {
		t.Fatal(err)
	}
	return nn.CaptureParams(tr.Params()), curve
}

// TestParallelTrainingDeterministic is the seed-determinism contract: two
// full runs with the same (seed, workers) pair produce bit-identical final
// parameters and learning curves, regardless of goroutine interleaving.
func TestParallelTrainingDeterministic(t *testing.T) {
	p1, c1 := runParallel(t, 3, 2, 64, 0, nil, nil)
	p2, c2 := runParallel(t, 3, 2, 64, 0, nil, nil)
	paramsEqual(t, p1, p2)
	if len(c1) != len(c2) {
		t.Fatalf("curve length %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("curve diverges at %d: %+v vs %+v", i, c1[i], c2[i])
		}
	}
	if len(c1) == 0 {
		t.Fatal("no episodes reported")
	}
	// Episode numbering must be contiguous in merge order.
	for i, s := range c1 {
		if s.Episode != i {
			t.Fatalf("episode numbering wrong at %d: %+v", i, s)
		}
	}
}

// TestStateRestoreResumesBitIdentical captures the trainer state at an
// update boundary mid-run, restores it into a fresh trainer over a fresh
// environment, and checks the resumed run reproduces the uninterrupted
// run's final parameters exactly.
func TestStateRestoreResumesBitIdentical(t *testing.T) {
	var captured *TrainState
	var capturedParams []nn.ParamState
	full, _ := runParallel(t, 4, 2, 64, 32, &captured, &capturedParams)
	if captured == nil {
		t.Fatal("mid-run state never captured")
	}

	cache := env.NewOptimalCache()
	menv := trainEnv(t, cache)
	pol := tinyGNN(t, 4)
	cfg := DefaultConfig()
	cfg.RolloutSteps = 16
	cfg.MiniBatch = 8
	tr, err := NewTrainer(pol, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.RestoreParams(capturedParams, tr.Params()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Restore(captured, menv); err != nil {
		t.Fatal(err)
	}
	if tr.Timesteps() != 32 {
		t.Fatalf("restored timesteps %d want 32", tr.Timesteps())
	}
	if err := tr.TrainWorkers(context.Background(), menv, 64, 2, Hooks{}); err != nil {
		t.Fatal(err)
	}
	paramsEqual(t, full, nn.CaptureParams(tr.Params()))
}

// TestRestoreValidation exercises the checkpoint guard rails: wrong
// algorithm, wrong worker count, and non-cloneable environments are all
// rejected.
func TestRestoreValidation(t *testing.T) {
	cache := env.NewOptimalCache()
	menv := trainEnv(t, cache)
	pol := tinyGNN(t, 5)
	cfg := DefaultConfig()
	cfg.RolloutSteps = 16
	cfg.MiniBatch = 8
	tr, err := NewTrainer(pol, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.TrainWorkers(context.Background(), menv, 16, 2, Hooks{}); err != nil {
		t.Fatal(err)
	}
	st, err := tr.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.WorkerStates) != 2 {
		t.Fatalf("state has %d workers, want 2", len(st.WorkerStates))
	}

	// Wrong algorithm.
	a2c, err := NewA2CTrainer(tinyGNN(t, 5), DefaultA2CConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2c.Restore(st, trainEnv(t, cache)); err == nil {
		t.Fatal("a2c accepted a ppo state")
	}

	// Wrong worker count at the next training call.
	tr2, err := NewTrainer(tinyGNN(t, 5), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Restore(st, trainEnv(t, cache)); err != nil {
		t.Fatal(err)
	}
	if err := tr2.TrainWorkers(context.Background(), trainEnv(t, cache), 32, 3, Hooks{}); err == nil {
		t.Fatal("worker-count mismatch accepted")
	}

	// Parallel collection over a non-cloneable environment.
	tr3, err := NewTrainer(&banditPolicy{mu: tr.logStd, v: tr.logStd}, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr3.TrainWorkers(context.Background(), newQuadraticEnv(t, 0), 16, 2, Hooks{}); err == nil {
		t.Fatal("parallel collection over a plain env.Interface accepted")
	}
	// A single worker still works, but its state cannot be checkpointed.
	if err := tr3.TrainWorkers(context.Background(), newQuadraticEnv(t, 0), 16, 1, Hooks{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr3.State(); err == nil {
		t.Fatal("non-checkpointable state accepted")
	}
}

// TestA2CSharesCollector trains A2C with parallel workers over the routing
// MultiEnv, exercising the deduped collector path end to end.
func TestA2CSharesCollector(t *testing.T) {
	cache := env.NewOptimalCache()
	cfg := DefaultA2CConfig()
	cfg.RolloutSteps = 16
	run := func() []nn.ParamState {
		tr, err := NewA2CTrainer(tinyGNN(t, 6), cfg, 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.TrainWorkers(context.Background(), trainEnv(t, cache), 48, 2, Hooks{}); err != nil {
			t.Fatal(err)
		}
		return nn.CaptureParams(tr.Params())
	}
	paramsEqual(t, run(), run())
}

// TestTrainAcrossFreshEnvInstances mirrors how the public API calls the
// trainer: every Train call passes a freshly built environment (new
// context, new caches). Splitting a run across calls with fresh env
// instances must match a single uninterrupted run bit-for-bit — the
// collector rebases its workers onto the new environment from the last
// update-boundary snapshot instead of stepping stale clones.
func TestTrainAcrossFreshEnvInstances(t *testing.T) {
	full, _ := runParallel(t, 13, 2, 64, 0, nil, nil)

	cache := env.NewOptimalCache()
	pol := tinyGNN(t, 13)
	cfg := DefaultConfig()
	cfg.RolloutSteps = 16
	cfg.MiniBatch = 8
	tr, err := NewTrainer(pol, cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.TrainWorkers(context.Background(), trainEnv(t, cache), 32, 2, Hooks{}); err != nil {
		t.Fatal(err)
	}
	// Second call with a different env instance of the same scenario.
	if err := tr.TrainWorkers(context.Background(), trainEnv(t, cache), 64, 2, Hooks{}); err != nil {
		t.Fatal(err)
	}
	paramsEqual(t, full, nn.CaptureParams(tr.Params()))
}
