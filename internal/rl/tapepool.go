package rl

import (
	"sync"

	"gddr/internal/ad"
)

// tapePool recycles autodiff tapes across forward-backward passes. Rollout
// workers call sample concurrently, so the pool hands each call a private
// tape; after a few passes every worker holds an arena-warm tape and the
// steady-state forward pass stops allocating (see the internal/ad package
// doc for the ownership rules).
var tapePool = sync.Pool{New: func() any { return ad.NewTape() }}

// getTape pops a tape rewound for reuse. Callers must copy every value they
// need out of the tape's nodes before returning it with putTape.
func getTape() *ad.Tape {
	t := tapePool.Get().(*ad.Tape)
	t.Reset()
	return t
}

func putTape(t *ad.Tape) { tapePool.Put(t) }
