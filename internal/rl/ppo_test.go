package rl

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/graph"
	"gddr/internal/mat"
	"gddr/internal/policy"
	"gddr/internal/traffic"
)

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Discount = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("bad discount accepted")
	}
	bad = cfg
	bad.ClipEps = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero clip accepted")
	}
	bad = cfg
	bad.MiniBatch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero minibatch accepted")
	}
}

func TestGAEKnownValues(t *testing.T) {
	// Two-step episode, γ=1, λ=1: advantages are plain returns minus values.
	batch := []*sample{
		{reward: 1, value: 0.5},
		{reward: 2, value: 0.25, done: true},
	}
	computeGAE(batch, 0, 1, 1)
	// A1 = r1 + V2 - V1 + (r2 - V2) = 1 + 0.25 - 0.5 + 1.75 = 2.5
	if math.Abs(batch[0].adv-2.5) > 1e-12 {
		t.Fatalf("adv0=%g want 2.5", batch[0].adv)
	}
	if math.Abs(batch[1].adv-1.75) > 1e-12 {
		t.Fatalf("adv1=%g want 1.75", batch[1].adv)
	}
	if math.Abs(batch[0].ret-(batch[0].adv+0.5)) > 1e-12 {
		t.Fatal("return != advantage + value")
	}
}

func TestGAEBootstrapsUnfinishedEpisode(t *testing.T) {
	batch := []*sample{{reward: 1, value: 2}}
	computeGAE(batch, 3, 0.5, 1) // delta = 1 + 0.5*3 - 2 = 0.5
	if math.Abs(batch[0].adv-0.5) > 1e-12 {
		t.Fatalf("adv=%g want 0.5", batch[0].adv)
	}
}

func TestGAEResetsAcrossEpisodeBoundary(t *testing.T) {
	batch := []*sample{
		{reward: 1, value: 0, done: true},
		{reward: 1, value: 0},
	}
	computeGAE(batch, 10, 0.9, 0.9)
	// First sample's advantage must not include anything after done.
	if math.Abs(batch[0].adv-1) > 1e-12 {
		t.Fatalf("adv0=%g want 1 (no leak across done)", batch[0].adv)
	}
}

// quadraticEnv is a 1-step bandit: reward = -(a-target)². PPO must move the
// policy mean toward the target. It implements env.Interface directly.
type quadraticEnv struct {
	target float64
	obs    *env.Observation
}

func newQuadraticEnv(t *testing.T, target float64) *quadraticEnv {
	t.Helper()
	g, err := graph.Ring(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	seq, err := traffic.BimodalCyclical(3, 4, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 2
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := e.Reset()
	if err != nil {
		t.Fatal(err)
	}
	return &quadraticEnv{target: target, obs: obs}
}

func (q *quadraticEnv) Reset() (*env.Observation, error) { return q.obs, nil }

func (q *quadraticEnv) Step(action []float64) (*env.Observation, float64, bool, error) {
	var loss float64
	for _, a := range action {
		d := a - q.target
		loss += d * d
	}
	return nil, -loss, true, nil
}

func (q *quadraticEnv) ActionDim() int { return 1 }

// banditPolicy is a minimal trainable policy: constant mean and value.
type banditPolicy struct {
	mu *ad.Param
	v  *ad.Param
}

func (p *banditPolicy) Forward(t *ad.Tape, _ *env.Observation) (*ad.Node, *ad.Node, error) {
	return t.Use(p.mu), t.Use(p.v), nil
}
func (p *banditPolicy) Params() []*ad.Param { return []*ad.Param{p.mu, p.v} }
func (p *banditPolicy) Name() string        { return "bandit" }

func TestPPOSolvesBandit(t *testing.T) {
	q := newQuadraticEnv(t, 0.7)
	pol := &banditPolicy{
		mu: ad.NewParam("mu", mat.New(1, 1)),
		v:  ad.NewParam("v", mat.New(1, 1)),
	}
	cfg := DefaultConfig()
	cfg.RolloutSteps = 64
	cfg.MiniBatch = 16
	cfg.LearningRate = 0.02
	tr, err := NewTrainer(pol, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(context.Background(), q, 4000, nil); err != nil {
		t.Fatal(err)
	}
	got := pol.mu.Value.Data[0]
	if math.Abs(got-0.7) > 0.2 {
		t.Fatalf("PPO did not find bandit optimum: mean=%g want ~0.7", got)
	}
}

func TestTrainerRejectsBadInputs(t *testing.T) {
	pol := &banditPolicy{mu: ad.NewParam("mu", mat.New(1, 1)), v: ad.NewParam("v", mat.New(1, 1))}
	if _, err := NewTrainer(nil, DefaultConfig(), 1); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := DefaultConfig()
	bad.Epochs = 0
	if _, err := NewTrainer(pol, bad, 1); err == nil {
		t.Fatal("bad config accepted")
	}
	tr, err := NewTrainer(pol, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(context.Background(), newQuadraticEnv(t, 0), 0, nil); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestEpisodeStatsReported(t *testing.T) {
	g, err := graph.Ring(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seq, err := traffic.BimodalCyclical(4, 6, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 2
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 2, Hidden: 4, Steps: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultConfig()
	pcfg.RolloutSteps = 16
	pcfg.MiniBatch = 8
	tr, err := NewTrainer(pol, pcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var stats []EpisodeStat
	if err := tr.Train(context.Background(), e, 20, func(s EpisodeStat) { stats = append(stats, s) }); err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no episode stats reported")
	}
	for i, s := range stats {
		if s.Episode != i {
			t.Fatalf("episode numbering wrong: %+v", s)
		}
		if s.Steps != 4 { // 6 DMs - memory 2
			t.Fatalf("episode steps %d want 4", s.Steps)
		}
		if s.MeanRatio < 1 {
			t.Fatalf("mean ratio %g < 1 impossible", s.MeanRatio)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	g, err := graph.Ring(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	seq, err := traffic.BimodalCyclical(4, 6, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 2
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 2, Hidden: 4, Steps: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Evaluate(context.Background(), pol, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(context.Background(), pol, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("evaluation not deterministic: %g vs %g", r1, r2)
	}
	if r1 < 1 {
		t.Fatalf("ratio %g < 1 impossible (LP is optimal)", r1)
	}
	if _, err := Evaluate(context.Background(), pol, e, 0); err == nil {
		t.Fatal("zero episodes accepted")
	}
}

// TestPPOImprovesRouting is the end-to-end learning smoke test: short PPO
// training on a small routing environment must improve the evaluation ratio
// relative to the untrained policy.
func TestPPOImprovesRouting(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	g, err := graph.Ring(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	seq, err := traffic.BimodalCyclical(4, 12, 3, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 2
	cache := env.NewOptimalCache()
	e, err := env.New(g, seq, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 2, Hidden: 8, Steps: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Evaluate(context.Background(), pol, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := DefaultConfig()
	pcfg.RolloutSteps = 128
	pcfg.MiniBatch = 32
	pcfg.LearningRate = 1e-3
	tr, err := NewTrainer(pol, pcfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(context.Background(), e, 1500, nil); err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(context.Background(), pol, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ratio before=%.4f after=%.4f", before, after)
	if after > before+0.05 {
		t.Fatalf("training made the policy clearly worse: %g -> %g", before, after)
	}
}
