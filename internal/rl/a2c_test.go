package rl

import (
	"context"
	"math"
	"testing"

	"gddr/internal/ad"
	"gddr/internal/mat"
)

func TestA2CConfigValidate(t *testing.T) {
	cfg := DefaultA2CConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.RolloutSteps = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rollout accepted")
	}
	bad = cfg
	bad.LearningRate = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero lr accepted")
	}
	bad = cfg
	bad.GAELambda = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("bad lambda accepted")
	}
}

func TestA2CSolvesBandit(t *testing.T) {
	q := newQuadraticEnv(t, -0.4)
	pol := &banditPolicy{
		mu: ad.NewParam("mu", mat.New(1, 1)),
		v:  ad.NewParam("v", mat.New(1, 1)),
	}
	cfg := DefaultA2CConfig()
	cfg.RolloutSteps = 32
	cfg.LearningRate = 0.02
	tr, err := NewA2CTrainer(pol, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(context.Background(), q, 4000, nil); err != nil {
		t.Fatal(err)
	}
	got := pol.mu.Value.Data[0]
	if math.Abs(got-(-0.4)) > 0.25 {
		t.Fatalf("A2C did not find bandit optimum: mean=%g want ~-0.4", got)
	}
}

func TestA2CRejectsBadInputs(t *testing.T) {
	pol := &banditPolicy{mu: ad.NewParam("mu", mat.New(1, 1)), v: ad.NewParam("v", mat.New(1, 1))}
	if _, err := NewA2CTrainer(nil, DefaultA2CConfig(), 1); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := DefaultA2CConfig()
	bad.RolloutSteps = 0
	if _, err := NewA2CTrainer(pol, bad, 1); err == nil {
		t.Fatal("bad config accepted")
	}
	tr, err := NewA2CTrainer(pol, DefaultA2CConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Train(context.Background(), newQuadraticEnv(t, 0), 0, nil); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestA2CEpisodeStats(t *testing.T) {
	q := newQuadraticEnv(t, 0)
	pol := &banditPolicy{mu: ad.NewParam("mu", mat.New(1, 1)), v: ad.NewParam("v", mat.New(1, 1))}
	cfg := DefaultA2CConfig()
	cfg.RolloutSteps = 8
	tr, err := NewA2CTrainer(pol, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var stats []EpisodeStat
	if err := tr.Train(context.Background(), q, 16, func(s EpisodeStat) { stats = append(stats, s) }); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 16 { // 1-step episodes
		t.Fatalf("got %d stats want 16", len(stats))
	}
	if tr.LogStd() < -2.5 || tr.LogStd() > 0.5 {
		t.Fatalf("log std %g outside clamp", tr.LogStd())
	}
}
