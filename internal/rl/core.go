package rl

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/mat"
	"gddr/internal/nn"
	"gddr/internal/rng"
)

// Hooks are the training-loop callbacks. OnEpisode fires once per finished
// episode, in deterministic (worker-order) sequence, before the update that
// consumes the rollout. OnUpdateStat fires after every completed update with
// that update's timing and loss summary — purely informational, it cannot
// abort training. OnUpdate fires last, after every completed update, with
// the cumulative timestep count — the only point where the trainer's state
// is checkpoint-consistent; returning an error aborts training.
type Hooks struct {
	OnEpisode    func(EpisodeStat)
	OnUpdateStat func(UpdateStat)
	OnUpdate     func(timesteps int) error
}

// UpdateStat summarises one completed gradient update for telemetry:
// counters at the update boundary, the rollout/update wall-clock split, and
// the losses of the last minibatch consumed. Losses are raw per-sample
// means as optimised (policy loss includes its sign; value loss is the
// unweighted squared error).
type UpdateStat struct {
	Timesteps      int     // cumulative environment steps after this update
	Steps          int     // environment steps consumed by this update's rollout
	Episodes       int     // cumulative finished episodes after this update
	PolicyLoss     float64 // last minibatch mean policy (surrogate) loss
	ValueLoss      float64 // last minibatch mean value loss
	CollectSeconds float64 // wall-clock spent collecting the rollout
	UpdateSeconds  float64 // wall-clock spent in the gradient update
}

// TrainState is the serialisable training state at an update boundary:
// counters, the update stream, the optimiser moments, and every rollout
// worker's stream and environment state. Together with the parameter
// values it resumes a run bit-identically.
type TrainState struct {
	Algo         string        `json:"algo"`
	Timesteps    int           `json:"timesteps"`
	Episodes     int           `json:"episodes"`
	UpdateRNG    uint64        `json:"update_rng"`
	Opt          nn.AdamState  `json:"opt"`
	WorkerStates []WorkerState `json:"worker_states,omitempty"`
}

// Algorithm is the trainer contract shared by PPO and A2C: both are a
// Gaussian-policy collector/updater pair differing only in the update rule.
type Algorithm interface {
	// Train runs the algorithm with a single rollout worker (the historical
	// entry point).
	Train(ctx context.Context, e env.Interface, totalSteps int, onEpisode func(EpisodeStat)) error
	// TrainWorkers runs the algorithm with parallel rollout collection
	// until the cumulative timestep counter reaches totalSteps.
	TrainWorkers(ctx context.Context, e env.Interface, totalSteps, workers int, hooks Hooks) error
	// Params returns all trained parameters (policy + log-std).
	Params() []*ad.Param
	// LogStd returns the shared Gaussian log standard deviation.
	LogStd() float64
	// Timesteps returns the cumulative environment steps trained so far.
	Timesteps() int
	// State captures the resumable training state at the last update
	// boundary.
	State() (*TrainState, error)
	// Restore rewinds the trainer to a captured state, recreating its
	// rollout workers as clones of e.
	Restore(st *TrainState, e env.Interface) error
}

// Algorithm names as recorded in TrainState.
const (
	AlgoPPO = "ppo"
	AlgoA2C = "a2c"
)

// core is the trainer machinery shared by PPO and A2C: the Gaussian action
// head over a policy, the Adam optimiser, the deterministic streams, the
// rollout collector, and the training loop. The algorithms layer their
// update rules on top.
type core struct {
	algo   string
	pol    Forwarder
	logStd *ad.Param
	opt    *nn.Adam
	seed   int64
	src    *rng.Source // update (minibatch shuffle) stream
	rng    *rand.Rand
	col    *collector

	episodes  int
	timesteps int

	// Last-minibatch losses, recorded by the algorithm's update rule for
	// the OnUpdateStat hook.
	lastPolicyLoss float64
	lastValueLoss  float64
}

// recordLosses stores the losses of the minibatch just optimised so run can
// report them through Hooks.OnUpdateStat.
func (c *core) recordLosses(policy, value float64) {
	c.lastPolicyLoss = policy
	c.lastValueLoss = value
}

func newCore(algo string, pol Forwarder, lr, initialLogStd float64, seed int64) (*core, error) {
	if pol == nil {
		return nil, fmt.Errorf("rl: trainer needs a policy")
	}
	logStd := ad.NewParam(algo+".log_std", mat.FromSlice(1, 1, []float64{initialLogStd}))
	params := append(pol.Params(), logStd)
	src := rng.New(seed).Fork(streamUpdate)
	return &core{
		algo:   algo,
		pol:    pol,
		logStd: logStd,
		opt:    nn.NewAdam(params, lr),
		seed:   seed,
		src:    src,
		rng:    rand.New(src),
	}, nil
}

// Params returns all trained parameters (policy + log-std).
func (c *core) Params() []*ad.Param { return append(c.pol.Params(), c.logStd) }

// LogStd returns the current log standard deviation of the Gaussian head.
func (c *core) LogStd() float64 { return c.logStd.Value.Data[0] }

// Timesteps returns the cumulative environment steps trained so far.
func (c *core) Timesteps() int { return c.timesteps }

// sample draws an action from the current Gaussian policy using r (no
// gradients kept).
func (c *core) sample(obs *env.Observation, r *rand.Rand) (action []float64, logp, value float64, err error) {
	t := getTape()
	defer putTape(t)
	mean, val, err := c.pol.Forward(t, obs)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("rl: policy forward: %w", err)
	}
	std := math.Exp(c.logStd.Value.Data[0])
	k := len(mean.Value.Data)
	action = make([]float64, k)
	logp = -0.5 * float64(k) * math.Log(2*math.Pi)
	logp -= float64(k) * c.logStd.Value.Data[0]
	for i, mu := range mean.Value.Data {
		z := r.NormFloat64()
		action[i] = mu + std*z
		logp -= 0.5 * z * z
	}
	return action, logp, val.Value.Data[0], nil
}

// act is sample drawing from the update stream — a convenience for
// single-stream uses (tests); rollout workers use their own streams.
func (c *core) act(obs *env.Observation) (action []float64, logp, value float64, err error) {
	return c.sample(obs, c.rng)
}

// value returns the deterministic value estimate for obs, consuming no
// randomness (the GAE bootstrap).
func (c *core) value(obs *env.Observation) (float64, error) {
	t := getTape()
	defer putTape(t)
	_, val, err := c.pol.Forward(t, obs)
	if err != nil {
		return 0, fmt.Errorf("rl: value forward: %w", err)
	}
	return val.Value.Data[0], nil
}

// clampLogStd keeps exploration alive: a collapsed (or exploded) standard
// deviation freezes training because identical actions yield zero
// advantages.
func (c *core) clampLogStd() {
	if v := c.logStd.Value.Data[0]; v < -2.5 {
		c.logStd.Value.Data[0] = -2.5
	} else if v > 0.5 {
		c.logStd.Value.Data[0] = 0.5
	}
}

// run is the shared training loop: collect a rollout (in parallel across
// the workers), report its episodes, apply the algorithm's update, repeat
// until the cumulative step counter reaches totalSteps. Cancellation is
// checked once per rollout: when ctx is done, run returns its error before
// collecting the next batch, leaving the parameters at the last completed
// update.
func (c *core) run(ctx context.Context, e env.Interface, totalSteps, workers, rolloutSteps int, g gaeParams, update func([]*sample) error, hooks Hooks) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if totalSteps < 1 {
		return fmt.Errorf("rl: totalSteps must be positive, got %d", totalSteps)
	}
	if workers < 1 {
		workers = 1
	}
	if c.col == nil {
		col, err := newCollector(e, workers, c.seed)
		if err != nil {
			return err
		}
		c.col = col
	} else {
		if len(c.col.workers) != workers {
			return fmt.Errorf("rl: trainer state has %d rollout workers, asked to train with %d (worker count is part of the determinism contract)",
				len(c.col.workers), workers)
		}
		// A later Train call may pass a rebuilt environment (fresh context
		// and caches); move the workers onto it instead of stepping stale
		// clones.
		col, err := c.col.rebase(e, c.seed)
		if err != nil {
			return err
		}
		c.col = col
	}
	c.col.setBudget(totalSteps)
	for c.timesteps < totalSteps {
		if err := ctx.Err(); err != nil {
			return err
		}
		steps := rolloutSteps
		if rem := totalSteps - c.timesteps; rem < steps {
			steps = rem
		}
		//gddr:allow determinism collect wall-clock feeds UpdateStat metrics only, never training results
		collectStart := time.Now()
		ro, err := c.col.collect(steps, c.sample, c.value, g, c.timesteps, c.episodes)
		if err != nil {
			return err
		}
		//gddr:allow determinism collect wall-clock feeds UpdateStat metrics only, never training results
		collectSeconds := time.Since(collectStart).Seconds()
		c.timesteps += steps
		c.episodes += len(ro.stats)
		if hooks.OnEpisode != nil {
			for _, st := range ro.stats {
				hooks.OnEpisode(st)
			}
		}
		//gddr:allow determinism update wall-clock feeds UpdateStat metrics only, never training results
		updateStart := time.Now()
		if err := update(ro.samples); err != nil {
			return err
		}
		//gddr:allow determinism update wall-clock feeds UpdateStat metrics only, never training results
		updateSeconds := time.Since(updateStart).Seconds()
		if err := nn.CheckFinite(c.Params()); err != nil {
			return fmt.Errorf("rl: after update at step %d: %w", c.timesteps, err)
		}
		if hooks.OnUpdateStat != nil {
			hooks.OnUpdateStat(UpdateStat{
				Timesteps:      c.timesteps,
				Steps:          steps,
				Episodes:       c.episodes,
				PolicyLoss:     c.lastPolicyLoss,
				ValueLoss:      c.lastValueLoss,
				CollectSeconds: collectSeconds,
				UpdateSeconds:  updateSeconds,
			})
		}
		if hooks.OnUpdate != nil {
			if err := hooks.OnUpdate(c.timesteps); err != nil {
				return err
			}
		}
	}
	return nil
}

// State implements Algorithm. The returned state describes the last update
// boundary (collections aborted by cancellation are not included), so a
// checkpoint written after a cancelled Train resumes bit-identically with
// the uninterrupted run.
func (c *core) State() (*TrainState, error) {
	st := &TrainState{
		Algo:      c.algo,
		Timesteps: c.timesteps,
		Episodes:  c.episodes,
		UpdateRNG: c.src.State(),
		Opt:       c.opt.State(),
	}
	if c.col != nil {
		if !c.col.checkpointable {
			return nil, fmt.Errorf("rl: environment does not implement env.TrainEnv; training state cannot be checkpointed")
		}
		st.WorkerStates = append([]WorkerState(nil), c.col.states...)
	}
	return st, nil
}

// Restore implements Algorithm: it rewinds counters, streams, optimiser
// moments, and rollout workers (recreated as clones of e) to a captured
// state. The parameter values themselves are restored separately (see
// nn.RestoreParams); algorithm kind and worker count must match the state.
func (c *core) Restore(st *TrainState, e env.Interface) error {
	if st == nil {
		return fmt.Errorf("rl: nil train state")
	}
	if st.Algo != c.algo {
		return fmt.Errorf("rl: train state is for algorithm %q, trainer is %q", st.Algo, c.algo)
	}
	if st.Timesteps < 0 || st.Episodes < 0 {
		return fmt.Errorf("rl: train state has negative counters (%d steps, %d episodes)", st.Timesteps, st.Episodes)
	}
	if err := c.opt.Restore(st.Opt); err != nil {
		return err
	}
	var col *collector
	if len(st.WorkerStates) > 0 {
		var err error
		col, err = newCollector(e, len(st.WorkerStates), c.seed)
		if err != nil {
			return err
		}
		if !col.checkpointable {
			return fmt.Errorf("rl: %T does not implement env.TrainEnv; cannot restore worker state", e)
		}
		for i, ws := range st.WorkerStates {
			if err := col.restoreWorker(i, ws); err != nil {
				return err
			}
		}
		col.states = append([]WorkerState(nil), st.WorkerStates...)
	}
	c.col = col
	c.timesteps = st.Timesteps
	c.episodes = st.Episodes
	c.src.SetState(st.UpdateRNG)
	c.rng = rand.New(c.src)
	return nil
}
