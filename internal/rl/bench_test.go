package rl

import (
	"fmt"
	"math/rand"
	"testing"

	"gddr/internal/env"
	"gddr/internal/policy"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

// BenchmarkTrainRollout measures rollout-collection throughput on Abilene
// with a GNN policy, the training hot path. One op is a 256-step rollout.
// CI gates the 4-worker over 1-worker speedup at >= 2x (the policy forward
// pass dominates and parallelises across worker clones; on a single-core
// machine the ratio degenerates to ~1x, which is why the gate lives in CI
// rather than in a test assertion).
func BenchmarkTrainRollout(b *testing.B) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(1))
	seq, err := traffic.BimodalCyclical(g.NumNodes(), 12, 3, traffic.DefaultBimodal(), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = 3
	cache := env.NewOptimalCache()
	base, err := env.New(g, seq, cfg, cache)
	if err != nil {
		b.Fatal(err)
	}
	// Prewarm the LP cache so collection measures env stepping + policy
	// forward passes, not one-off LP solves.
	for t := cfg.Memory; t < len(seq); t++ {
		if _, err := cache.Get(g, seq[t]); err != nil {
			b.Fatal(err)
		}
	}
	pol, err := policy.NewGNN(policy.GNNConfig{Memory: 3, Hidden: 16, Steps: 2}, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			menv, err := env.NewMulti([]*env.Env{base}, 1)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := NewTrainer(pol, DefaultConfig(), 1)
			if err != nil {
				b.Fatal(err)
			}
			col, err := newCollector(menv, workers, 1)
			if err != nil {
				b.Fatal(err)
			}
			gae := gaeParams{discount: 0, lambda: 0.95, rewardOffset: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := col.collect(256, tr.sample, tr.value, gae, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
