package rl

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/mat"
	"gddr/internal/nn"
)

// A2CConfig holds the hyperparameters of the synchronous advantage
// actor-critic trainer, the alternative learning algorithm the paper's
// further-work section suggests exploring instead of PPO (§IX-A). A2C takes
// exactly one on-policy gradient step per rollout (no surrogate clipping,
// no sample reuse), which makes it simpler but less sample-efficient.
type A2CConfig struct {
	RolloutSteps  int
	Discount      float64
	GAELambda     float64
	LearningRate  float64
	ValueCoef     float64
	EntropyCoef   float64
	MaxGradNorm   float64
	InitialLogStd float64
	RewardOffset  float64
}

// DefaultA2CConfig mirrors the PPO defaults where they overlap.
func DefaultA2CConfig() A2CConfig {
	return A2CConfig{
		RolloutSteps:  64,
		Discount:      0,
		GAELambda:     0.95,
		LearningRate:  5e-4,
		ValueCoef:     0.5,
		EntropyCoef:   0.001,
		MaxGradNorm:   0.5,
		InitialLogStd: -1.5,
		RewardOffset:  1,
	}
}

// Validate rejects unusable hyperparameters.
func (c A2CConfig) Validate() error {
	if c.RolloutSteps < 1 {
		return fmt.Errorf("rl: a2c rollout steps %d < 1", c.RolloutSteps)
	}
	if c.Discount < 0 || c.Discount > 1 || c.GAELambda < 0 || c.GAELambda > 1 {
		return fmt.Errorf("rl: a2c invalid discount %g / lambda %g", c.Discount, c.GAELambda)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("rl: a2c invalid learning rate %g", c.LearningRate)
	}
	return nil
}

// A2CTrainer runs synchronous advantage actor-critic on a policy.
type A2CTrainer struct {
	cfg    A2CConfig
	pol    Forwarder
	logStd *ad.Param
	opt    *nn.Adam
	rng    *rand.Rand

	episodes  int
	timesteps int
}

// Forwarder is the policy contract shared by the RL trainers.
type Forwarder interface {
	Forward(t *ad.Tape, obs *env.Observation) (mean, value *ad.Node, err error)
	Params() []*ad.Param
}

// NewA2CTrainer builds an A2C trainer over the policy.
func NewA2CTrainer(pol Forwarder, cfg A2CConfig, rng *rand.Rand) (*A2CTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("rl: a2c trainer needs a rand source")
	}
	logStd := ad.NewParam("a2c.log_std", mat.FromSlice(1, 1, []float64{cfg.InitialLogStd}))
	params := append(pol.Params(), logStd)
	return &A2CTrainer{
		cfg:    cfg,
		pol:    pol,
		logStd: logStd,
		opt:    nn.NewAdam(params, cfg.LearningRate),
		rng:    rng,
	}, nil
}

// Params returns all trained parameters.
func (tr *A2CTrainer) Params() []*ad.Param { return append(tr.pol.Params(), tr.logStd) }

// LogStd returns the current log standard deviation.
func (tr *A2CTrainer) LogStd() float64 { return tr.logStd.Value.Data[0] }

// Train runs A2C for totalSteps environment steps. Cancellation is checked
// once per rollout, mirroring the PPO trainer.
func (tr *A2CTrainer) Train(ctx context.Context, e env.Interface, totalSteps int, onEpisode func(EpisodeStat)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if totalSteps < 1 {
		return fmt.Errorf("rl: totalSteps must be positive, got %d", totalSteps)
	}
	obs, err := e.Reset()
	if err != nil {
		return fmt.Errorf("rl: reset: %w", err)
	}
	epReward := 0.0
	epSteps := 0
	for done := 0; done < totalSteps; {
		if err := ctx.Err(); err != nil {
			return err
		}
		steps := tr.cfg.RolloutSteps
		if rem := totalSteps - done; rem < steps {
			steps = rem
		}
		batch := make([]*sample, 0, steps)
		for len(batch) < steps {
			action, logp, value, err := tr.act(obs)
			if err != nil {
				return err
			}
			next, reward, isDone, err := e.Step(action)
			if err != nil {
				return fmt.Errorf("rl: env step: %w", err)
			}
			shifted := reward
			if reward != 0 {
				shifted = reward + tr.cfg.RewardOffset
			}
			batch = append(batch, &sample{
				obs: obs, action: action, logp: logp, value: value,
				reward: shifted, done: isDone,
			})
			tr.timesteps++
			epReward += reward
			epSteps++
			if isDone {
				if onEpisode != nil {
					meanRatio := 0.0
					if epSteps > 0 {
						meanRatio = -epReward / float64(epSteps)
					}
					onEpisode(EpisodeStat{
						Episode:     tr.episodes,
						Timestep:    tr.timesteps,
						Steps:       epSteps,
						TotalReward: epReward,
						MeanRatio:   meanRatio,
					})
				}
				tr.episodes++
				epReward, epSteps = 0, 0
				next, err = e.Reset()
				if err != nil {
					return fmt.Errorf("rl: reset: %w", err)
				}
			}
			obs = next
		}
		var lastValue float64
		if !batch[len(batch)-1].done {
			_, _, lastValue, err = tr.act(obs)
			if err != nil {
				return err
			}
		}
		computeGAE(batch, lastValue, tr.cfg.Discount, tr.cfg.GAELambda)
		if err := tr.step(batch); err != nil {
			return err
		}
		done += len(batch)
	}
	return nil
}

// act samples from the Gaussian policy without recording gradients.
func (tr *A2CTrainer) act(obs *env.Observation) (action []float64, logp, value float64, err error) {
	t := ad.NewTape()
	mean, val, err := tr.pol.Forward(t, obs)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("rl: a2c policy forward: %w", err)
	}
	std := math.Exp(tr.logStd.Value.Data[0])
	k := len(mean.Value.Data)
	action = make([]float64, k)
	logp = -0.5*float64(k)*math.Log(2*math.Pi) - float64(k)*tr.logStd.Value.Data[0]
	for i, mu := range mean.Value.Data {
		z := tr.rng.NormFloat64()
		action[i] = mu + std*z
		logp -= 0.5 * z * z
	}
	return action, logp, val.Value.Data[0], nil
}

// step applies one actor-critic gradient step over the whole rollout.
func (tr *A2CTrainer) step(batch []*sample) error {
	// Advantage normalisation.
	meanAdv, stdAdv := 0.0, 0.0
	for _, s := range batch {
		meanAdv += s.adv
	}
	meanAdv /= float64(len(batch))
	for _, s := range batch {
		d := s.adv - meanAdv
		stdAdv += d * d
	}
	stdAdv = math.Sqrt(stdAdv/float64(len(batch))) + 1e-8

	t := ad.NewTape()
	logStdNode := t.Use(tr.logStd)
	invStd := t.Exp(t.Scale(logStdNode, -1))
	var total *ad.Node
	for _, s := range batch {
		mean, value, err := tr.pol.Forward(t, s.obs)
		if err != nil {
			return fmt.Errorf("rl: a2c forward: %w", err)
		}
		k := float64(len(s.action))
		actionNode := t.Constant(mat.RowVector(s.action))
		diff := t.Sub(actionNode, mean)
		z := t.MulScalar(diff, invStd)
		logp := t.AddScalar(
			t.Add(t.Scale(t.SumAll(t.Square(z)), -0.5), t.Scale(logStdNode, -k)),
			-0.5*k*math.Log(2*math.Pi))
		adv := (s.adv - meanAdv) / stdAdv
		pgLoss := t.Scale(logp, -adv)
		vLoss := t.Square(t.AddScalar(value, -s.ret))
		entropy := t.Scale(logStdNode, k)
		loss := t.Add(pgLoss, t.Scale(vLoss, tr.cfg.ValueCoef))
		loss = t.Add(loss, t.Scale(entropy, -tr.cfg.EntropyCoef))
		if total == nil {
			total = loss
		} else {
			total = t.Add(total, loss)
		}
	}
	total = t.Scale(total, 1/float64(len(batch)))
	if err := t.Backward(total); err != nil {
		return err
	}
	params := tr.Params()
	if tr.cfg.MaxGradNorm > 0 {
		nn.ClipGradNorm(params, tr.cfg.MaxGradNorm)
	}
	tr.opt.Step()
	if v := tr.logStd.Value.Data[0]; v < -2.5 {
		tr.logStd.Value.Data[0] = -2.5
	} else if v > 0.5 {
		tr.logStd.Value.Data[0] = 0.5
	}
	if err := nn.CheckFinite(params); err != nil {
		return fmt.Errorf("rl: a2c after update at step %d: %w", tr.timesteps, err)
	}
	return nil
}
