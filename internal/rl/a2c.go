package rl

import (
	"context"
	"fmt"
	"math"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/nn"
)

// A2CConfig holds the hyperparameters of the synchronous advantage
// actor-critic trainer, the alternative learning algorithm the paper's
// further-work section suggests exploring instead of PPO (§IX-A). A2C takes
// exactly one on-policy gradient step per rollout (no surrogate clipping,
// no sample reuse), which makes it simpler but less sample-efficient.
type A2CConfig struct {
	RolloutSteps  int
	Discount      float64
	GAELambda     float64
	LearningRate  float64
	ValueCoef     float64
	EntropyCoef   float64
	MaxGradNorm   float64
	InitialLogStd float64
	RewardOffset  float64
}

// DefaultA2CConfig mirrors the PPO defaults where they overlap.
func DefaultA2CConfig() A2CConfig {
	return A2CConfig{
		RolloutSteps:  64,
		Discount:      0,
		GAELambda:     0.95,
		LearningRate:  5e-4,
		ValueCoef:     0.5,
		EntropyCoef:   0.001,
		MaxGradNorm:   0.5,
		InitialLogStd: -1.5,
		RewardOffset:  1,
	}
}

// Validate rejects unusable hyperparameters.
func (c A2CConfig) Validate() error {
	if c.RolloutSteps < 1 {
		return fmt.Errorf("rl: a2c rollout steps %d < 1", c.RolloutSteps)
	}
	if c.Discount < 0 || c.Discount > 1 || c.GAELambda < 0 || c.GAELambda > 1 {
		return fmt.Errorf("rl: a2c invalid discount %g / lambda %g", c.Discount, c.GAELambda)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("rl: a2c invalid learning rate %g", c.LearningRate)
	}
	return nil
}

// A2CTrainer runs synchronous advantage actor-critic on a policy. It shares
// the PPO trainer's collector and rollout buffer — parallel workers,
// per-worker streams, worker-order merge — and differs only in the update
// rule: one gradient step over the whole rollout.
type A2CTrainer struct {
	cfg A2CConfig
	*core
}

var _ Algorithm = (*A2CTrainer)(nil)

// NewA2CTrainer builds an A2C trainer over the policy; seed determines
// every random stream of the run.
func NewA2CTrainer(pol Forwarder, cfg A2CConfig, seed int64) (*A2CTrainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := newCore(AlgoA2C, pol, cfg.LearningRate, cfg.InitialLogStd, seed)
	if err != nil {
		return nil, err
	}
	return &A2CTrainer{cfg: cfg, core: c}, nil
}

// Train runs A2C with a single rollout worker, mirroring the PPO trainer's
// cancellation semantics.
func (tr *A2CTrainer) Train(ctx context.Context, e env.Interface, totalSteps int, onEpisode func(EpisodeStat)) error {
	return tr.TrainWorkers(ctx, e, totalSteps, 1, Hooks{OnEpisode: onEpisode})
}

// TrainWorkers runs A2C with parallel rollout collection.
func (tr *A2CTrainer) TrainWorkers(ctx context.Context, e env.Interface, totalSteps, workers int, hooks Hooks) error {
	g := gaeParams{discount: tr.cfg.Discount, lambda: tr.cfg.GAELambda, rewardOffset: tr.cfg.RewardOffset}
	return tr.run(ctx, e, totalSteps, workers, tr.cfg.RolloutSteps, g, tr.step, hooks)
}

// step applies one actor-critic gradient step over the whole rollout.
func (tr *A2CTrainer) step(batch []*sample) error {
	meanAdv, stdAdv := normalizeAdvantages(batch)
	t := getTape()
	defer putTape(t)
	logStdNode := t.Use(tr.logStd)
	invStd := t.Exp(t.Scale(logStdNode, -1))
	var total *ad.Node
	var pgSum, vSum float64
	for _, s := range batch {
		mean, value, err := tr.pol.Forward(t, s.obs)
		if err != nil {
			return fmt.Errorf("rl: a2c forward: %w", err)
		}
		k := float64(len(s.action))
		actionNode := t.RowConstant(s.action)
		diff := t.Sub(actionNode, mean)
		z := t.MulScalar(diff, invStd)
		logp := t.AddScalar(
			t.Add(t.Scale(t.SumAll(t.Square(z)), -0.5), t.Scale(logStdNode, -k)),
			-0.5*k*math.Log(2*math.Pi))
		adv := (s.adv - meanAdv) / stdAdv
		pgLoss := t.Scale(logp, -adv)
		vLoss := t.Square(t.AddScalar(value, -s.ret))
		pgSum += pgLoss.Value.Data[0]
		vSum += vLoss.Value.Data[0]
		entropy := t.Scale(logStdNode, k)
		loss := t.Add(pgLoss, t.Scale(vLoss, tr.cfg.ValueCoef))
		loss = t.Add(loss, t.Scale(entropy, -tr.cfg.EntropyCoef))
		if total == nil {
			total = loss
		} else {
			total = t.Add(total, loss)
		}
	}
	total = t.Scale(total, 1/float64(len(batch)))
	if err := t.Backward(total); err != nil {
		return err
	}
	params := tr.Params()
	if tr.cfg.MaxGradNorm > 0 {
		nn.ClipGradNorm(params, tr.cfg.MaxGradNorm)
	}
	tr.opt.Step()
	tr.clampLogStd()
	tr.recordLosses(pgSum/float64(len(batch)), vSum/float64(len(batch)))
	return nil
}
