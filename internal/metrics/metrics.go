// Package metrics is the repo's zero-dependency observability substrate: a
// process-local Registry of named counters, gauges, and fixed-bucket
// histograms with Prometheus text exposition (WritePrometheus) and a JSON /
// CSV snapshot surface. Every instrument is lock-free on the hot path —
// counters and gauges are single atomic words, a histogram observation is
// one bucket scan plus three atomic adds — so serving and training loops
// can stay instrumented without measurable overhead (the CI benchmark gate
// holds the instrumented fast path within 1.1x of the bare one).
//
// Metric names follow the contract pinned in DESIGN.md:
// gddr_<subsystem>_<name>_<unit>, validated at registration. Registration
// is idempotent: asking for an instrument that already exists (same name,
// same labels) returns the existing one, so independent subsystems can
// share one registry without coordinating construction order.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Instrument types as they appear in the Prometheus TYPE line and the JSON
// snapshot.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Label is one constant name=value pair attached to an instrument at
// registration. Values are escaped on exposition; names must be valid
// Prometheus label names.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge value (compare-and-swap loop; gauges are not
// expected on hot paths).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: cumulative-on-exposition bucket
// counts over the configured upper bounds, plus a running sum and count.
// Observe is safe for concurrent use and allocation-free.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); a linear scan beats binary search at this size
	// and keeps the fast path branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid exponential buckets (start=%g factor=%g n=%d)", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n linearly spaced bucket bounds starting at start.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid linear buckets (width=%g n=%d)", width, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// LatencyBuckets spans 1µs to ~8.4s in powers of two: wide enough to hold
// both the ~4µs cached serving fast path and an LP solve, narrow enough to
// separate them.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }

// metricKey identifies one instrument within a family: the canonical
// (sorted, rendered) label string.
type metricKey string

// instrument is one registered time series.
type instrument struct {
	labels []Label
	key    metricKey

	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// family is all instruments sharing one metric name (and therefore one
// HELP/TYPE pair and one instrument type).
type family struct {
	name string
	help string
	typ  string

	mu    sync.Mutex
	order []*instrument             //gddr:guardedby mu
	byKey map[metricKey]*instrument //gddr:guardedby mu
}

// Registry holds named metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family //gddr:guardedby mu
	order    []string           //gddr:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName matches the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels returns the canonical `{a="b",c="d"}` form (sorted by label
// name; empty string for no labels), used both as the instrument key and in
// the exposition.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// getFamily returns (creating if needed) the family for name, enforcing a
// consistent type and the naming contract.
func (r *Registry) getFamily(name, help, typ string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[metricKey]*instrument)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s already registered as %s, asked for %s", name, f.typ, typ))
	}
	return f
}

// get returns (creating if needed) the instrument for the label set within
// the family. build constructs a fresh instrument when none exists.
func (f *family) get(labels []Label, build func() *instrument) *instrument {
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l.Name, f.name))
		}
	}
	key := metricKey(renderLabels(labels))
	f.mu.Lock()
	defer f.mu.Unlock()
	if in, ok := f.byKey[key]; ok {
		return in
	}
	in := build()
	in.labels = append([]Label(nil), labels...)
	in.key = key
	f.byKey[key] = in
	f.order = append(f.order, in)
	return in
}

// Counter returns the counter for (name, labels), registering it on first
// use. help is recorded on first registration of the name.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, TypeCounter)
	return f.get(labels, func() *instrument { return &instrument{counter: &Counter{}} }).counter
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, TypeGauge)
	return f.get(labels, func() *instrument { return &instrument{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — for values another subsystem already owns (uptime, topology
// version, cache sizes). Re-registering the same (name, labels) replaces
// the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, TypeGauge)
	in := f.get(labels, func() *instrument { return &instrument{} })
	f.mu.Lock()
	in.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram returns the histogram for (name, labels), registering it with
// the bucket upper bounds on first use (later calls reuse the existing
// buckets; bounds must be strictly increasing).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.getFamily(name, help, TypeHistogram)
	return f.get(labels, func() *instrument {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: %s bucket bounds not increasing at %d", name, i))
			}
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Int64, len(h.bounds))
		return &instrument{histogram: h}
	}).histogram
}

// formatValue renders a sample value the way Prometheus clients do.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (families in registration order, instruments in
// registration order within a family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		ins := append([]*instrument(nil), f.order...)
		f.mu.Unlock()
		if len(ins) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, in := range ins {
			if err := writeInstrument(w, f, in); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeInstrument(w io.Writer, f *family, in *instrument) error {
	switch {
	case in.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, in.key, in.counter.Value())
		return err
	case in.histogram != nil:
		h := in.histogram
		var cum int64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			le := renderLabels(in.labels, L("le", formatValue(bound)))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
				return err
			}
		}
		le := renderLabels(in.labels, L("le", "+Inf"))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, in.key, formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, in.key, h.Count())
		return err
	default:
		v := 0.0
		if in.gaugeFn != nil {
			v = in.gaugeFn()
		} else if in.gauge != nil {
			v = in.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, in.key, formatValue(v))
		return err
	}
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Point is one metric sample in a snapshot: a counter or gauge value, or a
// histogram's sum/count/buckets.
type Point struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value"`
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns a point-in-time copy of every registered metric, in
// exposition order. For histograms Value holds the observation count and
// Sum/Count/Buckets the full distribution.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	var points []Point
	for _, f := range fams {
		f.mu.Lock()
		ins := append([]*instrument(nil), f.order...)
		f.mu.Unlock()
		for _, in := range ins {
			p := Point{Name: f.name, Type: f.typ, Labels: append([]Label(nil), in.labels...)}
			switch {
			case in.counter != nil:
				p.Value = float64(in.counter.Value())
			case in.histogram != nil:
				h := in.histogram
				p.Count = h.Count()
				p.Sum = h.Sum()
				p.Value = float64(p.Count)
				var cum int64
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					p.Buckets = append(p.Buckets, Bucket{UpperBound: bound, Count: cum})
				}
				p.Buckets = append(p.Buckets, Bucket{UpperBound: math.Inf(1), Count: p.Count})
			case in.gaugeFn != nil:
				p.Value = in.gaugeFn()
			case in.gauge != nil:
				p.Value = in.gauge.Value()
			}
			points = append(points, p)
		}
	}
	return points
}

// WriteJSON writes the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Buckets carry +Inf bounds, which encoding/json rejects; strip them —
	// the count column already is the +Inf bucket.
	points := r.Snapshot()
	for i := range points {
		if n := len(points[i].Buckets); n > 0 && math.IsInf(points[i].Buckets[n-1].UpperBound, 1) {
			points[i].Buckets = points[i].Buckets[:n-1]
		}
	}
	return enc.Encode(points)
}

// WriteCSV writes the snapshot as name,labels,value,sum,count rows with a
// header — the flat form training scripts ingest.
func (r *Registry) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name,labels,value,sum,count"); err != nil {
		return err
	}
	for _, p := range r.Snapshot() {
		labels := strings.Trim(renderLabels(p.Labels), "{}")
		if _, err := fmt.Fprintf(w, "%s,%q,%s,%s,%d\n",
			p.Name, labels, formatValue(p.Value), formatValue(p.Sum), p.Count); err != nil {
			return err
		}
	}
	return nil
}
