package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte for byte:
// HELP/TYPE lines, registration order, label rendering and escaping, and
// the cumulative histogram _bucket/_sum/_count contract. Observed values
// are exactly representable in binary so the golden text is stable.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("gddr_test_requests_total", "Requests served.")
	c.Add(3)
	c.Inc()

	// Label values exercise every escape: backslash, quote, newline. Labels
	// render sorted by name regardless of registration order.
	lc := r.Counter("gddr_test_labeled_total", "Labeled counter.",
		L("zpath", `/a"b\c`+"\n"), L("method", "GET"))
	lc.Inc()

	g := r.Gauge("gddr_test_temperature", "A gauge.")
	g.Set(1.5)
	g.Add(-0.25)

	r.GaugeFunc("gddr_test_uptime_seconds", "A callback gauge.", func() float64 { return 42 })

	h := r.Histogram("gddr_test_latency_seconds", "A histogram.", []float64{0.5, 1, 2})
	h.Observe(0.25) // le=0.5
	h.Observe(0.75) // le=1
	h.Observe(4)    // +Inf only
	h.Observe(0.5)  // boundary lands in its own bucket (le is inclusive)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP gddr_test_requests_total Requests served.`,
		`# TYPE gddr_test_requests_total counter`,
		`gddr_test_requests_total 4`,
		`# HELP gddr_test_labeled_total Labeled counter.`,
		`# TYPE gddr_test_labeled_total counter`,
		`gddr_test_labeled_total{method="GET",zpath="/a\"b\\c\n"} 1`,
		`# HELP gddr_test_temperature A gauge.`,
		`# TYPE gddr_test_temperature gauge`,
		`gddr_test_temperature 1.25`,
		`# HELP gddr_test_uptime_seconds A callback gauge.`,
		`# TYPE gddr_test_uptime_seconds gauge`,
		`gddr_test_uptime_seconds 42`,
		`# HELP gddr_test_latency_seconds A histogram.`,
		`# TYPE gddr_test_latency_seconds histogram`,
		`gddr_test_latency_seconds_bucket{le="0.5"} 2`,
		`gddr_test_latency_seconds_bucket{le="1"} 3`,
		`gddr_test_latency_seconds_bucket{le="2"} 3`,
		`gddr_test_latency_seconds_bucket{le="+Inf"} 4`,
		`gddr_test_latency_seconds_sum 5.5`,
		`gddr_test_latency_seconds_count 4`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramLabeledBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gddr_test_seconds", "", []float64{1}, L("path", "/route"))
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`gddr_test_seconds_bucket{le="1",path="/route"} 1`,
		`gddr_test_seconds_bucket{le="+Inf",path="/route"} 1`,
		`gddr_test_seconds_sum{path="/route"} 0.5`,
		`gddr_test_seconds_count{path="/route"} 1`,
	} {
		if !strings.Contains(buf.String(), line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, buf.String())
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("gddr_x_total", "first help")
	b := r.Counter("gddr_x_total", "second help ignored")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	l1 := r.Counter("gddr_y_total", "", L("k", "1"))
	l2 := r.Counter("gddr_y_total", "", L("k", "2"))
	if l1 == l2 {
		t.Fatal("distinct label sets share a counter")
	}
	h1 := r.Histogram("gddr_z_seconds", "", []float64{1, 2})
	h2 := r.Histogram("gddr_z_seconds", "", []float64{5, 6, 7})
	if h1 != h2 {
		t.Fatal("re-registration must reuse the first histogram (bounds included)")
	}
	if got := h2.Bounds(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("bounds changed on re-registration: %v", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("gddr_m_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("gddr_m_total", "")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"", "9leading", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must be rejected", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid label name must be rejected")
		}
	}()
	NewRegistry().Counter("gddr_ok_total", "", L("bad-label", "v"))
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5 (negative deltas ignored)", c.Value())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("gddr_a_total", "").Add(2)
	r.Gauge("gddr_b", "").Set(0.5)
	h := r.Histogram("gddr_c_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(10)

	points := r.Snapshot()
	if len(points) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(points))
	}
	if points[2].Count != 2 || points[2].Sum != 10.5 {
		t.Fatalf("histogram point = %+v", points[2])
	}
	// Snapshot buckets are cumulative and end with +Inf.
	last := points[2].Buckets[len(points[2].Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 2 {
		t.Fatalf("last bucket = %+v, want +Inf count 2", last)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Point
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d points, want 3", len(decoded))
	}
	for _, p := range decoded {
		for _, b := range p.Buckets {
			if math.IsInf(b.UpperBound, 0) {
				t.Fatalf("JSON output carries an infinite bound: %+v", p)
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("gddr_a_total", "", L("k", "v")).Inc()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "name,labels,value,sum,count" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "gddr_a_total,") {
		t.Fatalf("csv body = %q", lines[1:])
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — mixed
// registration, increments, observations, and expositions — and relies on
// the -race run in CI to surface unsynchronised access.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("gddr_conc_total", "").Inc()
				r.Counter("gddr_conc_labeled_total", "", L("worker", string(rune('a'+w)))).Inc()
				r.Gauge("gddr_conc_gauge", "").Set(float64(i))
				r.Histogram("gddr_conc_seconds", "", LatencyBuckets()).Observe(float64(i) * 1e-6)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("gddr_conc_total", "").Value(); got != workers*iters {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*iters)
	}
	h := r.Histogram("gddr_conc_seconds", "", LatencyBuckets())
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
}
