// Package traffic generates the synthetic demand workloads of the paper's
// evaluation (§VIII-B): bimodal demand matrices simulating occasional
// elephant flows, composed into cyclical sequences that exhibit the temporal
// regularity the data-driven routing approach exploits. A gravity model and
// sparsified variants are provided for additional workloads.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// DemandMatrix holds an N×N traffic demand matrix; entry (s,t) is the
// traffic demand from source s to destination t. The diagonal is zero.
type DemandMatrix struct {
	N    int
	Data []float64 // row-major, len N*N
}

// NewDemandMatrix returns a zero N×N demand matrix.
func NewDemandMatrix(n int) *DemandMatrix {
	return &DemandMatrix{N: n, Data: make([]float64, n*n)}
}

// At returns the demand from s to t.
func (d *DemandMatrix) At(s, t int) float64 { return d.Data[s*d.N+t] }

// Set assigns the demand from s to t.
func (d *DemandMatrix) Set(s, t int, v float64) { d.Data[s*d.N+t] = v }

// Clone returns a deep copy.
func (d *DemandMatrix) Clone() *DemandMatrix {
	c := NewDemandMatrix(d.N)
	copy(c.Data, d.Data)
	return c
}

// Scale multiplies every demand by f in place and returns the matrix.
func (d *DemandMatrix) Scale(f float64) *DemandMatrix {
	for i := range d.Data {
		d.Data[i] *= f
	}
	return d
}

// Total returns the sum of all demands.
func (d *DemandMatrix) Total() float64 {
	var s float64
	for _, v := range d.Data {
		s += v
	}
	return s
}

// OutSum returns the total demand originating at node v.
func (d *DemandMatrix) OutSum(v int) float64 {
	var s float64
	for t := 0; t < d.N; t++ {
		s += d.Data[v*d.N+t]
	}
	return s
}

// InSum returns the total demand destined for node v.
func (d *DemandMatrix) InSum(v int) float64 {
	var s float64
	for src := 0; src < d.N; src++ {
		s += d.Data[src*d.N+v]
	}
	return s
}

// InSums fills dst (len N) with the total demand destined for every node:
// dst[v] = InSum(v). One row-major pass over the matrix replaces N
// column-stride scans, so per-request serving code can precompute all sink
// in-sums at once. dst is overwritten, not accumulated into.
func (d *DemandMatrix) InSums(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for s := 0; s < d.N; s++ {
		row := d.Data[s*d.N : (s+1)*d.N]
		for t, v := range row {
			dst[t] += v
		}
	}
}

// Equal reports whether two demand matrices have the same size and entries.
func (d *DemandMatrix) Equal(o *DemandMatrix) bool {
	if d == o {
		return true
	}
	if d == nil || o == nil || d.N != o.N || len(d.Data) != len(o.Data) {
		return false
	}
	for i, v := range d.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// WithoutNode returns an (N-1)×(N-1) copy with node v's row and column
// deleted, renumbering nodes above v down by one — the demand-side mirror
// of graph.RemoveNode, so histories stay index-aligned after a node-removal
// topology event. Traffic to and from the removed node is dropped.
func (d *DemandMatrix) WithoutNode(v int) (*DemandMatrix, error) {
	if v < 0 || v >= d.N {
		return nil, fmt.Errorf("traffic: node %d out of range [0,%d)", v, d.N)
	}
	if d.N < 2 {
		return nil, fmt.Errorf("traffic: cannot shrink a %d-node demand matrix", d.N)
	}
	out := NewDemandMatrix(d.N - 1)
	for s := 0; s < d.N; s++ {
		if s == v {
			continue
		}
		ns := s
		if s > v {
			ns--
		}
		for t := 0; t < d.N; t++ {
			if t == v {
				continue
			}
			nt := t
			if t > v {
				nt--
			}
			out.Set(ns, nt, d.At(s, t))
		}
	}
	return out, nil
}

// WithNode returns an (N+1)×(N+1) copy with a zero-demand node appended as
// the highest id — the demand-side mirror of graph.AddNode: a node that
// just joined the network has no observed demand history yet.
func (d *DemandMatrix) WithNode() *DemandMatrix {
	out := NewDemandMatrix(d.N + 1)
	for s := 0; s < d.N; s++ {
		for t := 0; t < d.N; t++ {
			out.Set(s, t, d.At(s, t))
		}
	}
	return out
}

// MaxEntry returns the largest single demand.
func (d *DemandMatrix) MaxEntry() float64 {
	var m float64
	for _, v := range d.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Validate checks invariants (non-negative entries, zero diagonal).
func (d *DemandMatrix) Validate() error {
	if len(d.Data) != d.N*d.N {
		return fmt.Errorf("traffic: demand matrix length %d != %d^2", len(d.Data), d.N)
	}
	for s := 0; s < d.N; s++ {
		for t := 0; t < d.N; t++ {
			v := d.At(s, t)
			if v < 0 {
				return fmt.Errorf("traffic: negative demand %g at (%d,%d)", v, s, t)
			}
			if s == t && v != 0 {
				return fmt.Errorf("traffic: non-zero diagonal %g at node %d", v, s)
			}
		}
	}
	return nil
}

// BimodalParams configures the paper's bimodal demand generator:
// D_ij = p if s > ElephantProb-complement else q, with p ~ N(LowMean,
// LowStd), q ~ N(HighMean, HighStd), s ~ U(0,1). The paper's example values
// are LowMean 400, HighMean 800, both Std 100, elephant probability 0.2.
type BimodalParams struct {
	LowMean, LowStd   float64
	HighMean, HighStd float64
	ElephantProb      float64
}

// DefaultBimodal returns the paper's example parameters.
func DefaultBimodal() BimodalParams {
	return BimodalParams{
		LowMean: 400, LowStd: 100,
		HighMean: 800, HighStd: 100,
		ElephantProb: 0.2,
	}
}

// Bimodal draws one bimodal demand matrix. Negative Gaussian samples are
// clamped to zero so demands stay valid.
func Bimodal(n int, p BimodalParams, rng *rand.Rand) *DemandMatrix {
	d := NewDemandMatrix(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			var v float64
			if rng.Float64() < p.ElephantProb {
				v = rng.NormFloat64()*p.HighStd + p.HighMean
			} else {
				v = rng.NormFloat64()*p.LowStd + p.LowMean
			}
			if v < 0 {
				v = 0
			}
			d.Set(s, t, v)
		}
	}
	return d
}

// Gravity draws a gravity-model demand matrix: node masses m_i ~ Exp(1)
// scaled so the matrix total matches total; D_ij ∝ m_i·m_j.
func Gravity(n int, total float64, rng *rand.Rand) *DemandMatrix {
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = rng.ExpFloat64()
	}
	d := NewDemandMatrix(n)
	var raw float64
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			v := masses[s] * masses[t]
			d.Set(s, t, v)
			raw += v
		}
	}
	if raw > 0 {
		d.Scale(total / raw)
	}
	return d
}

// Sparsify zeroes each off-diagonal entry independently with probability
// 1-keepProb, modelling sparse traffic, and returns a new matrix.
func Sparsify(d *DemandMatrix, keepProb float64, rng *rand.Rand) *DemandMatrix {
	out := d.Clone()
	for s := 0; s < d.N; s++ {
		for t := 0; t < d.N; t++ {
			if s == t {
				continue
			}
			if rng.Float64() >= keepProb {
				out.Set(s, t, 0)
			}
		}
	}
	return out
}

// CyclicalSequence builds the paper's cyclical sequence: q base matrices
// drawn from gen, repeated to the requested length (x_i = D_{i mod q}).
func CyclicalSequence(length, cycle int, gen func() *DemandMatrix) ([]*DemandMatrix, error) {
	if cycle <= 0 || length <= 0 {
		return nil, fmt.Errorf("traffic: invalid sequence dims length=%d cycle=%d", length, cycle)
	}
	base := make([]*DemandMatrix, cycle)
	for i := range base {
		base[i] = gen()
	}
	seq := make([]*DemandMatrix, length)
	for i := range seq {
		seq[i] = base[i%cycle]
	}
	return seq, nil
}

// BimodalCyclical is the paper's main workload: a cyclical sequence of
// bimodal demand matrices. It is deterministic given the rng state.
func BimodalCyclical(n, length, cycle int, p BimodalParams, rng *rand.Rand) ([]*DemandMatrix, error) {
	return CyclicalSequence(length, cycle, func() *DemandMatrix {
		return Bimodal(n, p, rng)
	})
}

// Sequences draws count independent cyclical bimodal sequences, as used for
// the paper's 7-train/3-test split.
func Sequences(count, n, length, cycle int, p BimodalParams, rng *rand.Rand) ([][]*DemandMatrix, error) {
	out := make([][]*DemandMatrix, count)
	for i := range out {
		seq, err := BimodalCyclical(n, length, cycle, p, rng)
		if err != nil {
			return nil, err
		}
		out[i] = seq
	}
	return out, nil
}

// DiurnalParams configures a day-cycle modulated workload: a base gravity
// demand scaled by a sinusoid with one peak per period, modelling the
// diurnal regularity the paper's premise relies on (§III: traffic patterns
// reoccur because people live by cyclic patterns).
type DiurnalParams struct {
	Period    int     // timesteps per simulated day
	PeakRatio float64 // peak-to-trough demand ratio (>1)
	BaseTotal float64 // total demand at the trough
}

// DefaultDiurnal returns a 24-step day with a 3x peak.
func DefaultDiurnal() DiurnalParams {
	return DiurnalParams{Period: 24, PeakRatio: 3, BaseTotal: 4000}
}

// DiurnalSequence generates length demand matrices following the diurnal
// pattern: one fixed gravity structure whose total is modulated over the
// period. The structure is drawn once so temporal regularity is exact.
func DiurnalSequence(n, length int, p DiurnalParams, rng *rand.Rand) ([]*DemandMatrix, error) {
	if p.Period < 2 || p.PeakRatio <= 1 || p.BaseTotal <= 0 {
		return nil, fmt.Errorf("traffic: invalid diurnal params %+v", p)
	}
	if length <= 0 {
		return nil, fmt.Errorf("traffic: invalid diurnal length %d", length)
	}
	base := Gravity(n, 1, rng)
	seq := make([]*DemandMatrix, length)
	for i := range seq {
		phase := 2 * math.Pi * float64(i%p.Period) / float64(p.Period)
		// Scale oscillates in [BaseTotal, BaseTotal*PeakRatio].
		scale := p.BaseTotal * (1 + (p.PeakRatio-1)*(1-math.Cos(phase))/2)
		seq[i] = base.Clone().Scale(scale)
	}
	return seq, nil
}
