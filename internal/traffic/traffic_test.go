package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDemandMatrixBasics(t *testing.T) {
	d := NewDemandMatrix(3)
	d.Set(0, 1, 5)
	d.Set(1, 2, 7)
	if d.At(0, 1) != 5 || d.At(1, 2) != 7 || d.At(2, 0) != 0 {
		t.Fatal("at/set wrong")
	}
	if d.Total() != 12 {
		t.Fatalf("total=%g", d.Total())
	}
	if d.OutSum(1) != 7 || d.InSum(2) != 7 || d.InSum(1) != 5 {
		t.Fatal("in/out sums wrong")
	}
	if d.MaxEntry() != 7 {
		t.Fatalf("max=%g", d.MaxEntry())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadMatrices(t *testing.T) {
	d := NewDemandMatrix(2)
	d.Set(0, 0, 1)
	if err := d.Validate(); err == nil {
		t.Fatal("non-zero diagonal accepted")
	}
	d2 := NewDemandMatrix(2)
	d2.Set(0, 1, -1)
	if err := d2.Validate(); err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestCloneAndScale(t *testing.T) {
	d := NewDemandMatrix(2)
	d.Set(0, 1, 4)
	c := d.Clone().Scale(0.5)
	if c.At(0, 1) != 2 || d.At(0, 1) != 4 {
		t.Fatal("clone/scale aliasing")
	}
}

func TestBimodalProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Bimodal(6, DefaultBimodal(), rng)
		return d.Validate() == nil && d.Total() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBimodalMeanInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := DefaultBimodal()
	var sum float64
	var count int
	for trial := 0; trial < 50; trial++ {
		d := Bimodal(8, p, rng)
		for s := 0; s < 8; s++ {
			for dst := 0; dst < 8; dst++ {
				if s != dst {
					sum += d.At(s, dst)
					count++
				}
			}
		}
	}
	mean := sum / float64(count)
	// Expected mean = 0.8*400 + 0.2*800 = 480.
	if mean < 440 || mean > 520 {
		t.Fatalf("bimodal empirical mean %g outside [440,520]", mean)
	}
}

func TestBimodalDeterministicGivenSeed(t *testing.T) {
	a := Bimodal(5, DefaultBimodal(), rand.New(rand.NewSource(3)))
	b := Bimodal(5, DefaultBimodal(), rand.New(rand.NewSource(3)))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("bimodal not deterministic for equal seeds")
		}
	}
}

func TestGravityTotalMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Gravity(7, 1000, rng)
	if math.Abs(d.Total()-1000) > 1e-6 {
		t.Fatalf("gravity total %g want 1000", d.Total())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparsify(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Bimodal(10, DefaultBimodal(), rng)
	s := Sparsify(d, 0.3, rng)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range s.Data {
		if v == 0 {
			zeros++
		}
	}
	// 90 off-diagonal entries; ~63 should be zeroed plus 10 diagonal.
	if zeros < 40 {
		t.Fatalf("sparsify kept too much: %d zero entries", zeros)
	}
	if s.Total() >= d.Total() {
		t.Fatal("sparsify did not reduce total")
	}
}

func TestCyclicalSequenceRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seq, err := BimodalCyclical(4, 10, 3, DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 10 {
		t.Fatalf("len=%d want 10", len(seq))
	}
	// x_i == x_{i mod q} — same pointer by construction.
	for i := range seq {
		if seq[i] != seq[i%3] {
			t.Fatalf("cyclical property violated at %d", i)
		}
	}
	if seq[0] == seq[1] {
		t.Fatal("distinct base matrices expected")
	}
}

func TestCyclicalSequenceRejectsBadDims(t *testing.T) {
	if _, err := CyclicalSequence(0, 3, nil); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := CyclicalSequence(5, 0, nil); err == nil {
		t.Fatal("zero cycle accepted")
	}
}

func TestSequencesIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs, err := Sequences(3, 4, 6, 2, DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("count=%d", len(seqs))
	}
	if seqs[0][0] == seqs[1][0] {
		t.Fatal("sequences share base matrices")
	}
}

func TestDiurnalSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := DefaultDiurnal()
	seq, err := DiurnalSequence(6, 48, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 48 {
		t.Fatalf("len=%d", len(seq))
	}
	// Trough at phase 0, peak at phase Period/2; totals oscillate within
	// [BaseTotal, BaseTotal*PeakRatio].
	if math.Abs(seq[0].Total()-p.BaseTotal) > 1e-6*p.BaseTotal {
		t.Fatalf("trough total %g want %g", seq[0].Total(), p.BaseTotal)
	}
	peak := seq[p.Period/2].Total()
	if math.Abs(peak-p.BaseTotal*p.PeakRatio) > 1e-6*peak {
		t.Fatalf("peak total %g want %g", peak, p.BaseTotal*p.PeakRatio)
	}
	// Exact periodicity.
	for i := 0; i+p.Period < len(seq); i++ {
		if math.Abs(seq[i].Total()-seq[i+p.Period].Total()) > 1e-9*seq[i].Total() {
			t.Fatalf("period violated at %d", i)
		}
	}
	for _, dm := range seq {
		if err := dm.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := DiurnalSequence(4, 10, DiurnalParams{Period: 1, PeakRatio: 2, BaseTotal: 1}, rng); err == nil {
		t.Fatal("period 1 accepted")
	}
	if _, err := DiurnalSequence(4, 10, DiurnalParams{Period: 4, PeakRatio: 1, BaseTotal: 1}, rng); err == nil {
		t.Fatal("flat peak ratio accepted")
	}
	if _, err := DiurnalSequence(4, 0, DefaultDiurnal(), rng); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestWithoutNodeRenumbers(t *testing.T) {
	d := NewDemandMatrix(4)
	for s := 0; s < 4; s++ {
		for u := 0; u < 4; u++ {
			if s != u {
				d.Set(s, u, float64(10*s+u))
			}
		}
	}
	out, err := d.WithoutNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 3 {
		t.Fatalf("N=%d want 3", out.N)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Old ids {0,2,3} map to new ids {0,1,2}.
	old := []int{0, 2, 3}
	for ns, s := range old {
		for nt, u := range old {
			if s == u {
				continue
			}
			if got, want := out.At(ns, nt), d.At(s, u); got != want {
				t.Fatalf("entry (%d,%d)=%g want %g (old (%d,%d))", ns, nt, got, want, s, u)
			}
		}
	}
	if _, err := d.WithoutNode(4); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	one := NewDemandMatrix(1)
	if _, err := one.WithoutNode(0); err == nil {
		t.Fatal("shrinking a 1-node matrix accepted")
	}
}

func TestWithNodeGrowsWithZeroDemand(t *testing.T) {
	d := NewDemandMatrix(3)
	d.Set(0, 2, 5)
	d.Set(2, 1, 7)
	out := d.WithNode()
	if out.N != 4 {
		t.Fatalf("N=%d want 4", out.N)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.At(0, 2) != 5 || out.At(2, 1) != 7 {
		t.Fatal("existing demands not preserved")
	}
	if out.OutSum(3) != 0 || out.InSum(3) != 0 {
		t.Fatal("new node has non-zero demand")
	}
	if d.N != 3 {
		t.Fatal("original matrix modified")
	}
}

func TestInSumsMatchesInSum(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	d := Bimodal(9, DefaultBimodal(), rng)
	sums := make([]float64, d.N)
	d.InSums(sums)
	for v := 0; v < d.N; v++ {
		if sums[v] != d.InSum(v) {
			t.Fatalf("node %d: InSums %g != InSum %g", v, sums[v], d.InSum(v))
		}
	}
	// The buffer is overwritten, not accumulated into.
	d.InSums(sums)
	for v := 0; v < d.N; v++ {
		if sums[v] != d.InSum(v) {
			t.Fatalf("node %d double-counted on InSums reuse: %g", v, sums[v])
		}
	}
}

func TestDemandMatrixEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	a := Bimodal(5, DefaultBimodal(), rng)
	if !a.Equal(a) {
		t.Fatal("matrix not equal to itself")
	}
	b := a.Clone()
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("clone not equal")
	}
	b.Set(1, 2, b.At(1, 2)+1)
	if a.Equal(b) {
		t.Fatal("differing matrices equal")
	}
	if a.Equal(NewDemandMatrix(4)) {
		t.Fatal("differently sized matrices equal")
	}
	if a.Equal(nil) {
		t.Fatal("nil matrix equal")
	}
}
