package policy

import (
	"math/rand"
	"testing"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/graph"
	"gddr/internal/nn"
	"gddr/internal/traffic"
)

func makeObs(t *testing.T, n int, mode env.Mode, memory int) *env.Observation {
	t.Helper()
	g, err := graph.Ring(n, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	seq, err := traffic.BimodalCyclical(n, memory+3, 2, traffic.DefaultBimodal(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := env.DefaultConfig()
	cfg.Memory = memory
	cfg.Mode = mode
	e, err := env.New(g, seq, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := e.Reset()
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func TestMLPForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := NewMLP(3, 4, 8, []int{16}, rng)
	if err != nil {
		t.Fatal(err)
	}
	obs := makeObs(t, 4, env.FullAction, 3)
	tape := ad.NewTape()
	mean, value, err := p.Forward(tape, obs)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Value.Rows != 1 || mean.Value.Cols != 8 {
		t.Fatalf("mean %dx%d want 1x8", mean.Value.Rows, mean.Value.Cols)
	}
	if value.Value.Rows != 1 || value.Value.Cols != 1 {
		t.Fatalf("value %dx%d want 1x1", value.Value.Rows, value.Value.Cols)
	}
}

func TestMLPRejectsDifferentTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := NewMLP(3, 4, 8, []int{16}, rng)
	if err != nil {
		t.Fatal(err)
	}
	obs := makeObs(t, 5, env.FullAction, 3) // 5-node ring: flat obs bigger
	tape := ad.NewTape()
	if _, _, err := p.Forward(tape, obs); err == nil {
		t.Fatal("MLP accepted a different topology — it must not generalise")
	}
}

func TestGNNForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := NewGNN(GNNConfig{Memory: 3, Hidden: 8, Steps: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	obs := makeObs(t, 4, env.FullAction, 3)
	tape := ad.NewTape()
	mean, value, err := p.Forward(tape, obs)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Value.Cols != obs.G.NumEdges() {
		t.Fatalf("mean cols %d want %d", mean.Value.Cols, obs.G.NumEdges())
	}
	if value.Value.Cols != 1 {
		t.Fatalf("value cols %d", value.Value.Cols)
	}
}

// TestGNNGeneralisesAcrossSizes is the paper's headline property: the same
// GNN policy instance must produce correctly-sized actions on different
// topologies with an unchanged parameter count.
func TestGNNGeneralisesAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := NewGNN(GNNConfig{Memory: 3, Hidden: 8, Steps: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := nn.CountParams(p.Params())
	for _, n := range []int{4, 6, 9} {
		obs := makeObs(t, n, env.FullAction, 3)
		tape := ad.NewTape()
		mean, _, err := p.Forward(tape, obs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if mean.Value.Cols != obs.G.NumEdges() {
			t.Fatalf("n=%d: mean cols %d want %d", n, mean.Value.Cols, obs.G.NumEdges())
		}
	}
	if nn.CountParams(p.Params()) != before {
		t.Fatal("parameter count changed across topologies")
	}
}

func TestGNNIterativeForward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, err := NewGNNIterative(GNNConfig{Memory: 3, Hidden: 8, Steps: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	obs := makeObs(t, 4, env.IterativeAction, 3)
	tape := ad.NewTape()
	mean, value, err := p.Forward(tape, obs)
	if err != nil {
		t.Fatal(err)
	}
	if mean.Value.Cols != 2 {
		t.Fatalf("iterative mean cols %d want 2 (weight, gamma)", mean.Value.Cols)
	}
	if value.Value.Cols != 1 {
		t.Fatalf("value cols %d", value.Value.Cols)
	}
}

func TestGNNIterativeRejectsFullModeObs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, err := NewGNNIterative(GNNConfig{Memory: 3, Hidden: 8, Steps: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	obs := makeObs(t, 4, env.FullAction, 3)
	tape := ad.NewTape()
	if _, _, err := p.Forward(tape, obs); err == nil {
		t.Fatal("iterative policy accepted a full-mode observation")
	}
}

func TestMemoryMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p, err := NewGNN(GNNConfig{Memory: 5, Hidden: 8, Steps: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	obs := makeObs(t, 4, env.FullAction, 3) // memory 3, policy expects 5
	tape := ad.NewTape()
	if _, _, err := p.Forward(tape, obs); err == nil {
		t.Fatal("memory mismatch accepted")
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"mlp": MLPKind, "gnn": GNNKind, "gnn-iterative": GNNIterativeKind, "iterative": GNNIterativeKind,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q)=%v,%v want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if GNNIterativeKind.String() != "gnn-iterative" {
		t.Fatal("kind string wrong")
	}
}

func TestPolicyNames(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mlp, _ := NewMLP(2, 4, 8, []int{8}, rng)
	gnnPol, _ := NewGNN(GNNConfig{Memory: 2, Hidden: 4, Steps: 1}, rng)
	it, _ := NewGNNIterative(GNNConfig{Memory: 2, Hidden: 4, Steps: 1}, rng)
	if mlp.Name() != "mlp" || gnnPol.Name() != "gnn" || it.Name() != "gnn-iterative" {
		t.Fatal("policy names wrong")
	}
}
