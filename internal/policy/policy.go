// Package policy implements the three agent policy architectures of the
// paper's §VII: the MLP baseline of Valadarsky et al., the GNN policy that
// reads a whole routing from edge outputs, and the iterative GNN policy that
// sets one edge weight per action and also emits the softmin γ. All policies
// expose a common interface producing a Gaussian action mean and a state
// value for the PPO trainer.
package policy

import (
	"fmt"
	"math/rand"

	"gddr/internal/ad"
	"gddr/internal/env"
	"gddr/internal/gnn"
	"gddr/internal/nn"
)

// Policy builds, for one observation, the action-mean vector (1×actionDim)
// and the state-value estimate (1×1) on the given tape.
type Policy interface {
	Forward(t *ad.Tape, obs *env.Observation) (mean, value *ad.Node, err error)
	Params() []*ad.Param
	Name() string
}

// Kind enumerates the built-in policy architectures.
type Kind int

// Policy kinds.
const (
	MLPKind Kind = iota + 1
	GNNKind
	GNNIterativeKind
)

func (k Kind) String() string {
	switch k {
	case MLPKind:
		return "mlp"
	case GNNKind:
		return "gnn"
	case GNNIterativeKind:
		return "gnn-iterative"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind parses a policy-kind name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "mlp":
		return MLPKind, nil
	case "gnn":
		return GNNKind, nil
	case "gnn-iterative", "gnn_iterative", "iterative":
		return GNNIterativeKind, nil
	default:
		return 0, fmt.Errorf("policy: unknown kind %q", s)
	}
}

// scaleFinalLayer shrinks the last layer of an MLP by f — the standard PPO
// small-policy-head initialisation, which makes the untrained policy emit
// near-zero action means (here: the capacity-aware warm-start routing).
func scaleFinalLayer(m *nn.MLP, f float64) {
	last := m.Layers[len(m.Layers)-1]
	for i := range last.W.Value.Data {
		last.W.Value.Data[i] *= f
	}
	for i := range last.B.Value.Data {
		last.B.Value.Data[i] *= f
	}
}

// MLP is the fixed-size baseline: two fully-connected trunks over the
// flattened demand history, one producing per-edge action means and one the
// state value. Its input and output sizes are bound to one topology, which
// is exactly the limitation the paper's GNN policies remove.
type MLP struct {
	inDim, outDim int
	pi            *nn.MLP
	vf            *nn.MLP
}

var _ Policy = (*MLP)(nil)

// NewMLP builds the baseline for a fixed memory length and topology size.
func NewMLP(memory, numNodes, numEdges int, hidden []int, rng *rand.Rand) (*MLP, error) {
	if memory < 1 || numNodes < 2 || numEdges < 1 {
		return nil, fmt.Errorf("policy: invalid MLP dims memory=%d nodes=%d edges=%d", memory, numNodes, numEdges)
	}
	inDim := memory * numNodes * numNodes
	piSizes := append(append([]int{inDim}, hidden...), numEdges)
	vfSizes := append(append([]int{inDim}, hidden...), 1)
	pi, err := nn.NewMLP("mlp.pi", piSizes, nn.Tanh, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	vf, err := nn.NewMLP("mlp.vf", vfSizes, nn.Tanh, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	scaleFinalLayer(pi, 0.01)
	return &MLP{inDim: inDim, outDim: numEdges, pi: pi, vf: vf}, nil
}

// Forward implements Policy.
func (p *MLP) Forward(t *ad.Tape, obs *env.Observation) (*ad.Node, *ad.Node, error) {
	if len(obs.Flat) != p.inDim {
		return nil, nil, fmt.Errorf("policy: mlp expects flat obs of %d values, got %d (mlp cannot generalise across topologies)", p.inDim, len(obs.Flat))
	}
	x := t.RowConstant(obs.Flat)
	mean := p.pi.Apply(t, x)
	value := p.vf.Apply(t, x)
	return mean, value, nil
}

// Params implements Policy.
func (p *MLP) Params() []*ad.Param {
	return append(p.pi.Params(), p.vf.Params()...)
}

// Name implements Policy.
func (p *MLP) Name() string { return "mlp" }

// GNN is the paper's full graph-network policy (§VII-A): an encode-process-
// decode model whose decoded edge attributes are the per-edge action means
// and whose decoded global attribute is the state value. Parameter count is
// independent of topology size, enabling generalisation.
type GNN struct {
	memory int
	model  *gnn.EncodeProcessDecode
}

var _ Policy = (*GNN)(nil)

// GNNConfig sizes a GNN policy.
type GNNConfig struct {
	Memory int // demand history length (node feature width = 2*Memory)
	Hidden int // latent width of the GN blocks
	Steps  int // message-passing steps
}

// DefaultGNNConfig mirrors the paper's small encode-process-decode setup.
func DefaultGNNConfig(memory int) GNNConfig {
	return GNNConfig{Memory: memory, Hidden: 24, Steps: 3}
}

// NewGNN builds the full-action GNN policy.
func NewGNN(cfg GNNConfig, rng *rand.Rand) (*GNN, error) {
	model, err := gnn.NewEncodeProcessDecode("gnn", gnn.Config{
		In:     gnn.GraphSignature{NodeDim: 2 * cfg.Memory, EdgeDim: 4, GlobalDim: 1},
		Out:    gnn.GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 1},
		Hidden: cfg.Hidden,
		Steps:  cfg.Steps,
	}, rng)
	if err != nil {
		return nil, err
	}
	scaleFinalLayer(model.EdgeDec, 0.01)
	return &GNN{memory: cfg.Memory, model: model}, nil
}

// Forward implements Policy: means are the decoded edge attributes
// transposed into a row, value is the decoded global attribute.
func (p *GNN) Forward(t *ad.Tape, obs *env.Observation) (*ad.Node, *ad.Node, error) {
	if obs.NodeFeat.Cols != 2*p.memory {
		return nil, nil, fmt.Errorf("policy: gnn expects node features of width %d, got %d", 2*p.memory, obs.NodeFeat.Cols)
	}
	state := gnn.Lift(t, &gnn.Graphs{
		Nodes:     obs.NodeFeat,
		Edges:     obs.EdgeFeat,
		Globals:   obs.Global,
		Senders:   obs.Senders,
		Receivers: obs.Receivers,
	})
	out := p.model.Apply(t, state)
	mean := t.Reshape(out.Edges, 1, out.Edges.Value.Rows)
	return mean, out.Globals, nil
}

// Params implements Policy.
func (p *GNN) Params() []*ad.Param { return p.model.Params() }

// Name implements Policy.
func (p *GNN) Name() string { return "gnn" }

// GNNIterative is the paper's iterative policy (§VII-B): the same encode-
// process-decode structure, but the action (the weight for the single target
// edge plus the softmin γ) is read from the global output, so the action
// space is fixed-size regardless of topology — the property that allows
// training across different graphs. The global decoder emits three values:
// (weight, γ, value).
type GNNIterative struct {
	memory int
	model  *gnn.EncodeProcessDecode
}

var _ Policy = (*GNNIterative)(nil)

// NewGNNIterative builds the iterative GNN policy.
func NewGNNIterative(cfg GNNConfig, rng *rand.Rand) (*GNNIterative, error) {
	model, err := gnn.NewEncodeProcessDecode("gnni", gnn.Config{
		In:     gnn.GraphSignature{NodeDim: 2 * cfg.Memory, EdgeDim: 4, GlobalDim: 1},
		Out:    gnn.GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 3},
		Hidden: cfg.Hidden,
		Steps:  cfg.Steps,
	}, rng)
	if err != nil {
		return nil, err
	}
	scaleFinalLayer(model.GlobalDec, 0.01)
	return &GNNIterative{memory: cfg.Memory, model: model}, nil
}

// Forward implements Policy: the first two decoded global channels are the
// action mean (weight, γ), the third is the value estimate.
func (p *GNNIterative) Forward(t *ad.Tape, obs *env.Observation) (*ad.Node, *ad.Node, error) {
	if obs.NodeFeat.Cols != 2*p.memory {
		return nil, nil, fmt.Errorf("policy: gnn-iterative expects node features of width %d, got %d", 2*p.memory, obs.NodeFeat.Cols)
	}
	if obs.TargetEdge < 0 {
		return nil, nil, fmt.Errorf("policy: gnn-iterative needs iterative-mode observations (no target edge set)")
	}
	state := gnn.Lift(t, &gnn.Graphs{
		Nodes:     obs.NodeFeat,
		Edges:     obs.EdgeFeat,
		Globals:   obs.Global,
		Senders:   obs.Senders,
		Receivers: obs.Receivers,
	})
	out := p.model.Apply(t, state)
	mean := t.GatherCols(out.Globals, []int{0, 1})
	value := t.GatherCols(out.Globals, []int{2})
	return mean, value, nil
}

// Params implements Policy.
func (p *GNNIterative) Params() []*ad.Param { return p.model.Params() }

// Name implements Policy.
func (p *GNNIterative) Name() string { return "gnn-iterative" }
