// Package ad implements a reverse-mode automatic differentiation tape over
// dense matrices. It provides every operation the GDDR policies need: affine
// layers, activations, concatenation, row gathering, unsorted segment sums
// (the ρ pooling functions of the graph-network blocks), broadcasts,
// reductions, and the pointwise arithmetic used by the PPO losses. It is a
// from-scratch substitute for TensorFlow's gradient machinery (DESIGN.md
// substitution #2).
//
// The tape is arena-backed: nodes, value/gradient matrices, and the index
// slices recorded by gather/segment ops all come from pools owned by the
// tape, and Reset rewinds the pools without freeing them. A serving or
// training loop that calls Reset between forward-backward passes therefore
// reaches a steady state where recording and differentiating a graph of the
// same shape performs no heap allocation. The price is an ownership rule:
// every Node, Value and Grad handed out by a tape is valid only until that
// tape's next Reset — callers that retain results (PPO rollouts retain
// observations, MeanAction returns an action vector) must copy out before
// resetting.
package ad

import (
	"fmt"
	"math"

	"gddr/internal/mat"
)

// opcode identifies the operation that produced a node; Backward dispatches
// on it instead of invoking per-node closures (closures force a heap
// allocation per recorded op, which is exactly what the arena avoids).
type opcode uint8

const (
	opConst opcode = iota
	opParam
	opMatMul
	opAdd
	opSub
	opMul
	opDiv
	opScale
	opAddScalar
	opAddRowBroadcast
	opBroadcastRow
	opReLU
	opTanh
	opSigmoid
	opExp
	opLog
	opSquare
	opSoftplus
	opClamp
	opMin
	opConcatCols
	opConcatRows
	opGatherRows
	opSegmentSum
	opSumRows
	opSumAll
	opMean
	opRowSums
	opReshape
	opMulScalar
	opAddScalarNode
	opGatherCols
)

// Node is a value in the computation graph with an accumulated gradient.
// Nodes are owned by their tape and recycled on Reset.
type Node struct {
	Value *mat.Matrix
	Grad  *mat.Matrix

	tape  *Tape
	op    opcode
	a, b  *Node   // unary/binary operands
	ins   []*Node // concat operands (arena-backed)
	idx   []int   // gather/segment indices (arena-backed)
	s, s2 float64 // scalar attributes (scale factor, clamp bounds, …)
	param *Param  // opParam only
}

// Tape records operations so that gradients can be propagated in reverse.
// All recording state lives in rewindable arenas; see Reset. A tape is not
// safe for concurrent use.
type Tape struct {
	nodes []*Node // node pool; nodes[:used] is the recorded tape, in order
	used  int

	mats    []*mat.Matrix // matrix pool for values and gradients
	matUsed int

	intSlab []int // backing storage for Node.idx slices
	intOff  int

	nodeSlab []*Node // backing storage for Node.ins slices
	nodeOff  int
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset rewinds the tape for reuse, keeping every arena at its high-water
// capacity. All nodes, values and gradients previously handed out by this
// tape are invalidated: their backing buffers will be overwritten by the
// next recording. Replaying an identical op sequence after Reset produces
// bit-identical values (the kernels' summation order depends only on
// shapes), which the checkpoint bit-identity tests rely on.
func (t *Tape) Reset() {
	t.used = 0
	t.matUsed = 0
	t.intOff = 0
	t.nodeOff = 0
}

// newNode pops a recycled node (or grows the pool) and records it.
func (t *Tape) newNode(op opcode, v *mat.Matrix) *Node {
	var n *Node
	if t.used < len(t.nodes) {
		n = t.nodes[t.used]
		*n = Node{}
	} else {
		n = new(Node)
		t.nodes = append(t.nodes, n)
	}
	t.used++
	n.Value = v
	n.Grad = t.allocZero(v.Rows, v.Cols)
	n.tape = t
	n.op = op
	return n
}

// alloc hands out a rows×cols matrix from the arena without clearing it;
// callers must fully overwrite Data. The matrix header is pooled too, so
// the same *mat.Matrix is re-handed-out after Reset.
func (t *Tape) alloc(rows, cols int) *mat.Matrix {
	need := rows * cols
	if t.matUsed < len(t.mats) {
		m := t.mats[t.matUsed]
		t.matUsed++
		if cap(m.Data) < need {
			m.Data = make([]float64, need)
		}
		m.Data = m.Data[:need]
		m.Rows, m.Cols = rows, cols
		return m
	}
	m := mat.New(rows, cols)
	t.mats = append(t.mats, m)
	t.matUsed++
	return m
}

// allocZero is alloc plus clearing — for gradients and accumulated sums.
func (t *Tape) allocZero(rows, cols int) *mat.Matrix {
	m := t.alloc(rows, cols)
	m.Zero()
	return m
}

// allocInts hands out an n-int slice from the slab. When the slab is
// exhausted a fresh, larger one replaces it; slices handed out earlier keep
// the old backing array (still referenced by their nodes), so the swap is
// invisible to them.
func (t *Tape) allocInts(n int) []int {
	if t.intOff+n > len(t.intSlab) {
		size := 2 * len(t.intSlab)
		if size < t.intOff+n+64 {
			size = t.intOff + n + 64
		}
		t.intSlab = make([]int, size)
		t.intOff = 0
	}
	s := t.intSlab[t.intOff : t.intOff+n : t.intOff+n]
	t.intOff += n
	return s
}

// allocNodes is allocInts for []*Node (concat operand lists).
func (t *Tape) allocNodes(n int) []*Node {
	if t.nodeOff+n > len(t.nodeSlab) {
		size := 2 * len(t.nodeSlab)
		if size < t.nodeOff+n+16 {
			size = t.nodeOff + n + 16
		}
		t.nodeSlab = make([]*Node, size)
		t.nodeOff = 0
	}
	s := t.nodeSlab[t.nodeOff : t.nodeOff+n : t.nodeOff+n]
	t.nodeOff += n
	return s
}

// Constant introduces a matrix that requires no gradient. The matrix is
// used directly (not copied); the caller must not mutate it while the tape
// is live.
func (t *Tape) Constant(v *mat.Matrix) *Node { return t.newNode(opConst, v) }

// ConstantScalar introduces a 1×1 constant.
func (t *Tape) ConstantScalar(v float64) *Node {
	m := t.alloc(1, 1)
	m.Data[0] = v
	return t.newNode(opConst, m)
}

// RowConstant introduces a 1×len(v) constant copying v into the arena, so
// hot loops can feed plain slices to the tape without building a matrix
// (the allocation-free replacement for Constant(mat.RowVector(v))).
func (t *Tape) RowConstant(v []float64) *Node {
	m := t.alloc(1, len(v))
	copy(m.Data, v)
	return t.newNode(opConst, m)
}

// Param is a trainable parameter: a value plus its persistent gradient
// accumulator, living outside any single tape.
type Param struct {
	Name  string
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// NewParam wraps a value matrix as a named parameter.
func NewParam(name string, v *mat.Matrix) *Param {
	return &Param{Name: name, Value: v, Grad: mat.New(v.Rows, v.Cols)}
}

// ZeroGrad clears the parameter gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Use introduces a parameter onto the tape; backward accumulates into the
// parameter's persistent gradient.
func (t *Tape) Use(p *Param) *Node {
	n := t.newNode(opParam, p.Value)
	n.param = p
	return n
}

// Backward runs reverse-mode differentiation seeding d(loss)=1. The loss
// node must be 1×1.
func (t *Tape) Backward(loss *Node) error {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		return fmt.Errorf("ad: backward needs a scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols)
	}
	if loss.tape != t {
		return fmt.Errorf("ad: loss node belongs to a different tape")
	}
	loss.Grad.Data[0] = 1
	for i := t.used - 1; i >= 0; i-- {
		t.nodes[i].backstep()
	}
	return nil
}

// backstep propagates n's gradient into its operands.
func (n *Node) backstep() {
	g := n.Grad
	switch n.op {
	case opConst:
	case opParam:
		mat.AddInPlace(n.param.Grad, g)
	case opMatMul:
		mat.MatMulTransBAccum(n.a.Grad, g, n.b.Value)
		mat.MatMulTransAAccum(n.b.Grad, n.a.Value, g)
	case opAdd:
		mat.AddInPlace(n.a.Grad, g)
		mat.AddInPlace(n.b.Grad, g)
	case opSub:
		mat.AddInPlace(n.a.Grad, g)
		bg := n.b.Grad.Data
		for i := range bg {
			bg[i] -= g.Data[i]
		}
	case opMul:
		ag, bg := n.a.Grad.Data, n.b.Grad.Data
		av, bv := n.a.Value.Data, n.b.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] * bv[i]
			bg[i] += g.Data[i] * av[i]
		}
	case opDiv:
		ag, bg := n.a.Grad.Data, n.b.Grad.Data
		av, bv := n.a.Value.Data, n.b.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] / bv[i]
			bg[i] -= g.Data[i] * av[i] / (bv[i] * bv[i])
		}
	case opScale:
		ag := n.a.Grad.Data
		for i := range g.Data {
			ag[i] += n.s * g.Data[i]
		}
	case opAddScalar:
		mat.AddInPlace(n.a.Grad, g)
	case opAddRowBroadcast:
		mat.AddInPlace(n.a.Grad, g)
		bias := n.b.Grad.Data
		for i := 0; i < g.Rows; i++ {
			row := g.Row(i)
			for j, x := range row {
				bias[j] += x
			}
		}
	case opBroadcastRow:
		ag := n.a.Grad.Data
		for i := 0; i < g.Rows; i++ {
			row := g.Row(i)
			for j, x := range row {
				ag[j] += x
			}
		}
	case opReLU:
		ag, av := n.a.Grad.Data, n.a.Value.Data
		for i := range g.Data {
			if av[i] > 0 {
				ag[i] += g.Data[i]
			}
		}
	case opTanh:
		ag, y := n.a.Grad.Data, n.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] * (1 - y[i]*y[i])
		}
	case opSigmoid:
		ag, y := n.a.Grad.Data, n.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] * y[i] * (1 - y[i])
		}
	case opExp:
		ag, y := n.a.Grad.Data, n.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] * y[i]
		}
	case opLog:
		ag, av := n.a.Grad.Data, n.a.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] / av[i]
		}
	case opSquare:
		ag, av := n.a.Grad.Data, n.a.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] * 2 * av[i]
		}
	case opSoftplus:
		ag, av := n.a.Grad.Data, n.a.Value.Data
		for i := range g.Data {
			ag[i] += g.Data[i] / (1 + math.Exp(-av[i]))
		}
	case opClamp:
		ag, av := n.a.Grad.Data, n.a.Value.Data
		for i := range g.Data {
			if av[i] > n.s && av[i] < n.s2 {
				ag[i] += g.Data[i]
			}
		}
	case opMin:
		ag, bg := n.a.Grad.Data, n.b.Grad.Data
		av, bv := n.a.Value.Data, n.b.Value.Data
		for i := range g.Data {
			if av[i] <= bv[i] {
				ag[i] += g.Data[i]
			} else {
				bg[i] += g.Data[i]
			}
		}
	case opConcatCols:
		off := 0
		for _, nd := range n.ins {
			for i := 0; i < nd.Grad.Rows; i++ {
				src := g.Row(i)[off : off+nd.Grad.Cols]
				dst := nd.Grad.Row(i)
				for j, x := range src {
					dst[j] += x
				}
			}
			off += nd.Grad.Cols
		}
	case opConcatRows:
		off := 0
		for _, nd := range n.ins {
			cnt := len(nd.Grad.Data)
			src := g.Data[off : off+cnt]
			for j, x := range src {
				nd.Grad.Data[j] += x
			}
			off += cnt
		}
	case opGatherRows:
		for i, r := range n.idx {
			src := g.Row(i)
			dst := n.a.Grad.Row(r)
			for j, x := range src {
				dst[j] += x
			}
		}
	case opSegmentSum:
		for i, s := range n.idx {
			src := g.Row(s)
			dst := n.a.Grad.Row(i)
			for j, x := range src {
				dst[j] += x
			}
		}
	case opSumRows:
		for i := 0; i < n.a.Grad.Rows; i++ {
			dst := n.a.Grad.Row(i)
			for j := range dst {
				dst[j] += g.Data[j]
			}
		}
	case opSumAll:
		gv := g.Data[0]
		ag := n.a.Grad.Data
		for i := range ag {
			ag[i] += gv
		}
	case opMean:
		gv := g.Data[0] / n.s
		ag := n.a.Grad.Data
		for i := range ag {
			ag[i] += gv
		}
	case opRowSums:
		for i := 0; i < n.a.Grad.Rows; i++ {
			gv := g.Data[i]
			dst := n.a.Grad.Row(i)
			for j := range dst {
				dst[j] += gv
			}
		}
	case opReshape:
		ag := n.a.Grad.Data
		for i := range ag {
			ag[i] += g.Data[i]
		}
	case opMulScalar:
		ag, av := n.a.Grad.Data, n.a.Value.Data
		var acc float64
		for i := range g.Data {
			ag[i] += g.Data[i] * n.s
			acc += g.Data[i] * av[i]
		}
		n.b.Grad.Data[0] += acc
	case opAddScalarNode:
		ag := n.a.Grad.Data
		var acc float64
		for i := range g.Data {
			ag[i] += g.Data[i]
			acc += g.Data[i]
		}
		n.b.Grad.Data[0] += acc
	case opGatherCols:
		for i := 0; i < g.Rows; i++ {
			src := g.Row(i)
			dst := n.a.Grad.Row(i)
			for j, c := range n.idx {
				dst[c] += src[j]
			}
		}
	default:
		panic(fmt.Sprintf("ad: unknown opcode %d", n.op))
	}
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, b.Value.Cols)
	mat.MatMulInto(v, a.Value, b.Value)
	n := t.newNode(opMatMul, v)
	n.a, n.b = a, b
	return n
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	mat.AddInto(v, a.Value, b.Value)
	n := t.newNode(opAdd, v)
	n.a, n.b = a, b
	return n
}

// Sub returns a−b (same shape).
func (t *Tape) Sub(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	mat.SubInto(v, a.Value, b.Value)
	n := t.newNode(opSub, v)
	n.a, n.b = a, b
	return n
}

// Mul returns the elementwise product a⊙b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	mat.MulInto(v, a.Value, b.Value)
	n := t.newNode(opMul, v)
	n.a, n.b = a, b
	return n
}

// Div returns the elementwise quotient a/b.
func (t *Tape) Div(a, b *Node) *Node {
	if !a.Value.SameShape(b.Value) {
		panic(fmt.Sprintf("ad: div shape mismatch %dx%d vs %dx%d",
			a.Value.Rows, a.Value.Cols, b.Value.Rows, b.Value.Cols))
	}
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := range v.Data {
		v.Data[i] = a.Value.Data[i] / b.Value.Data[i]
	}
	n := t.newNode(opDiv, v)
	n.a, n.b = a, b
	return n
}

// Scale returns s·a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	mat.ScaleInto(v, a.Value, s)
	n := t.newNode(opScale, v)
	n.a, n.s = a, s
	return n
}

// AddScalar returns a + s elementwise for a constant s.
func (t *Tape) AddScalar(a *Node, s float64) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = x + s
	}
	n := t.newNode(opAddScalar, v)
	n.a, n.s = a, s
	return n
}

// AddRowBroadcast returns a + bias, where bias is 1×cols broadcast over the
// rows of a (the affine-layer bias pattern).
func (t *Tape) AddRowBroadcast(a, bias *Node) *Node {
	if bias.Value.Rows != 1 || bias.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("ad: row broadcast shape mismatch %dx%d + %dx%d",
			a.Value.Rows, a.Value.Cols, bias.Value.Rows, bias.Value.Cols))
	}
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		out := v.Row(i)
		for j, x := range row {
			out[j] = x + bias.Value.Data[j]
		}
	}
	n := t.newNode(opAddRowBroadcast, v)
	n.a, n.b = a, bias
	return n
}

// BroadcastRow tiles a 1×cols node into rows copies (used to append the
// global attribute to every node/edge row in a GN block).
func (t *Tape) BroadcastRow(a *Node, rows int) *Node {
	if a.Value.Rows != 1 {
		panic(fmt.Sprintf("ad: broadcast-row needs a 1xN node, got %dx%d", a.Value.Rows, a.Value.Cols))
	}
	v := t.alloc(rows, a.Value.Cols)
	for i := 0; i < rows; i++ {
		copy(v.Row(i), a.Value.Data)
	}
	n := t.newNode(opBroadcastRow, v)
	n.a = a
	return n
}

// unary records op with value f(a) elementwise; the backward rule lives in
// backstep, keyed by op.
func (t *Tape) unary(op opcode, a *Node, f func(float64) float64) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = f(x)
	}
	n := t.newNode(op, v)
	n.a = a
	return n
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(opReLU, a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node { return t.unary(opTanh, a, math.Tanh) }

// Sigmoid applies 1/(1+e^{-x}) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.unary(opSigmoid, a, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// Exp applies e^x elementwise.
func (t *Tape) Exp(a *Node) *Node { return t.unary(opExp, a, math.Exp) }

// Log applies the natural logarithm elementwise.
func (t *Tape) Log(a *Node) *Node { return t.unary(opLog, a, math.Log) }

// Square applies x² elementwise.
func (t *Tape) Square(a *Node) *Node {
	return t.unary(opSquare, a, func(x float64) float64 { return x * x })
}

// Softplus applies log(1+e^x) elementwise (numerically stabilised).
func (t *Tape) Softplus(a *Node) *Node {
	return t.unary(opSoftplus, a, func(x float64) float64 {
		if x > 30 {
			return x
		}
		return math.Log1p(math.Exp(x))
	})
}

// ClampConst clamps values into [lo,hi]; gradients pass through only inside
// the interval (the PPO clip operator).
func (t *Tape) ClampConst(a *Node, lo, hi float64) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = math.Min(hi, math.Max(lo, x))
	}
	n := t.newNode(opClamp, v)
	n.a, n.s, n.s2 = a, lo, hi
	return n
}

// Min returns the elementwise minimum of a and b; gradient flows to the
// smaller argument (ties favour a).
func (t *Tape) Min(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i := range v.Data {
		v.Data[i] = math.Min(a.Value.Data[i], b.Value.Data[i])
	}
	n := t.newNode(opMin, v)
	n.a, n.b = a, b
	return n
}

// ConcatCols concatenates nodes horizontally.
func (t *Tape) ConcatCols(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		return t.newNode(opConcatCols, t.alloc(0, 0))
	}
	rows := nodes[0].Value.Rows
	cols := 0
	for _, nd := range nodes {
		if nd.Value.Rows != rows {
			panic(fmt.Sprintf("mat: concat-cols row mismatch %d vs %d", nd.Value.Rows, rows))
		}
		cols += nd.Value.Cols
	}
	v := t.alloc(rows, cols)
	for i := 0; i < rows; i++ {
		off := 0
		orow := v.Row(i)
		for _, nd := range nodes {
			copy(orow[off:off+nd.Value.Cols], nd.Value.Row(i))
			off += nd.Value.Cols
		}
	}
	n := t.newNode(opConcatCols, v)
	n.ins = t.allocNodes(len(nodes))
	copy(n.ins, nodes)
	return n
}

// ConcatRows concatenates nodes vertically.
func (t *Tape) ConcatRows(nodes ...*Node) *Node {
	if len(nodes) == 0 {
		return t.newNode(opConcatRows, t.alloc(0, 0))
	}
	cols := nodes[0].Value.Cols
	rows := 0
	for _, nd := range nodes {
		if nd.Value.Cols != cols {
			panic(fmt.Sprintf("mat: concat-rows col mismatch %d vs %d", nd.Value.Cols, cols))
		}
		rows += nd.Value.Rows
	}
	v := t.alloc(rows, cols)
	off := 0
	for _, nd := range nodes {
		copy(v.Data[off:off+len(nd.Value.Data)], nd.Value.Data)
		off += len(nd.Value.Data)
	}
	n := t.newNode(opConcatRows, v)
	n.ins = t.allocNodes(len(nodes))
	copy(n.ins, nodes)
	return n
}

// GatherRows selects rows of a by index (duplicates allowed); the backward
// pass scatter-adds. idx is copied; the caller's slice is not retained.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	cols := a.Value.Cols
	v := t.alloc(len(idx), cols)
	for i, r := range idx {
		copy(v.Row(i), a.Value.Row(r))
	}
	n := t.newNode(opGatherRows, v)
	n.a = a
	n.idx = t.allocInts(len(idx))
	copy(n.idx, idx)
	return n
}

// SegmentSum sums rows of a into numSegments buckets; the graph-network ρ
// pooling (tf.unsorted_segment_sum equivalent). segments is copied.
func (t *Tape) SegmentSum(a *Node, segments []int, numSegments int) *Node {
	if len(segments) != a.Value.Rows {
		panic(fmt.Sprintf("mat: segment-sum needs %d segment ids, got %d", a.Value.Rows, len(segments)))
	}
	v := t.allocZero(numSegments, a.Value.Cols)
	for i, s := range segments {
		if s < 0 || s >= numSegments {
			panic(fmt.Sprintf("mat: segment id %d out of range [0,%d)", s, numSegments))
		}
		orow := v.Row(s)
		arow := a.Value.Row(i)
		for j, x := range arow {
			orow[j] += x
		}
	}
	n := t.newNode(opSegmentSum, v)
	n.a = a
	n.idx = t.allocInts(len(segments))
	copy(n.idx, segments)
	return n
}

// SumRows returns the 1×cols column-sum of a.
func (t *Tape) SumRows(a *Node) *Node {
	v := t.allocZero(1, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		for j, x := range row {
			v.Data[j] += x
		}
	}
	n := t.newNode(opSumRows, v)
	n.a = a
	return n
}

// SumAll returns the 1×1 sum over all elements.
func (t *Tape) SumAll(a *Node) *Node {
	v := t.alloc(1, 1)
	v.Data[0] = mat.Sum(a.Value)
	n := t.newNode(opSumAll, v)
	n.a = a
	return n
}

// Mean returns the 1×1 mean over all elements.
func (t *Tape) Mean(a *Node) *Node {
	count := float64(len(a.Value.Data))
	v := t.alloc(1, 1)
	v.Data[0] = mat.Sum(a.Value) / count
	n := t.newNode(opMean, v)
	n.a, n.s = a, count
	return n
}

// RowSums returns the rows×1 per-row sums of a.
func (t *Tape) RowSums(a *Node) *Node {
	v := t.alloc(a.Value.Rows, 1)
	for i := 0; i < a.Value.Rows; i++ {
		var s float64
		for _, x := range a.Value.Row(i) {
			s += x
		}
		v.Data[i] = s
	}
	n := t.newNode(opRowSums, v)
	n.a = a
	return n
}

// Reshape reinterprets a as rows×cols (same element count, row-major order).
func (t *Tape) Reshape(a *Node, rows, cols int) *Node {
	if rows*cols != len(a.Value.Data) {
		panic(fmt.Sprintf("ad: reshape %dx%d incompatible with %d elements", rows, cols, len(a.Value.Data)))
	}
	v := t.alloc(rows, cols)
	copy(v.Data, a.Value.Data)
	n := t.newNode(opReshape, v)
	n.a = a
	return n
}

// MulScalar multiplies every element of a by the 1×1 node s.
func (t *Tape) MulScalar(a, s *Node) *Node {
	if s.Value.Rows != 1 || s.Value.Cols != 1 {
		panic(fmt.Sprintf("ad: mul-scalar needs a 1x1 scalar, got %dx%d", s.Value.Rows, s.Value.Cols))
	}
	sv := s.Value.Data[0]
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	mat.ScaleInto(v, a.Value, sv)
	n := t.newNode(opMulScalar, v)
	n.a, n.b, n.s = a, s, sv
	return n
}

// AddScalarNode adds the 1×1 node s to every element of a.
func (t *Tape) AddScalarNode(a, s *Node) *Node {
	if s.Value.Rows != 1 || s.Value.Cols != 1 {
		panic(fmt.Sprintf("ad: add-scalar needs a 1x1 scalar, got %dx%d", s.Value.Rows, s.Value.Cols))
	}
	sv := s.Value.Data[0]
	v := t.alloc(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = x + sv
	}
	n := t.newNode(opAddScalarNode, v)
	n.a, n.b = a, s
	return n
}

// GatherCols selects columns of a by index. idx is copied.
func (t *Tape) GatherCols(a *Node, idx []int) *Node {
	v := t.alloc(a.Value.Rows, len(idx))
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		out := v.Row(i)
		for j, c := range idx {
			out[j] = row[c]
		}
	}
	n := t.newNode(opGatherCols, v)
	n.a = a
	n.idx = t.allocInts(len(idx))
	copy(n.idx, idx)
	return n
}
