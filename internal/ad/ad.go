// Package ad implements a reverse-mode automatic differentiation tape over
// dense matrices. It provides every operation the GDDR policies need: affine
// layers, activations, concatenation, row gathering, unsorted segment sums
// (the ρ pooling functions of the graph-network blocks), broadcasts,
// reductions, and the pointwise arithmetic used by the PPO losses. It is a
// from-scratch substitute for TensorFlow's gradient machinery (DESIGN.md
// substitution #2).
package ad

import (
	"fmt"
	"math"

	"gddr/internal/mat"
)

// Node is a value in the computation graph with an accumulated gradient.
type Node struct {
	Value *mat.Matrix
	Grad  *mat.Matrix

	tape     *Tape
	backward func()
}

// Tape records operations so that gradients can be propagated in reverse.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

func (t *Tape) node(v *mat.Matrix, backward func()) *Node {
	n := &Node{Value: v, Grad: mat.New(v.Rows, v.Cols), tape: t, backward: backward}
	t.nodes = append(t.nodes, n)
	return n
}

// Constant introduces a matrix that requires no gradient.
func (t *Tape) Constant(v *mat.Matrix) *Node { return t.node(v, nil) }

// ConstantScalar introduces a 1×1 constant.
func (t *Tape) ConstantScalar(v float64) *Node {
	m := mat.New(1, 1)
	m.Data[0] = v
	return t.Constant(m)
}

// Param is a trainable parameter: a value plus its persistent gradient
// accumulator, living outside any single tape.
type Param struct {
	Name  string
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// NewParam wraps a value matrix as a named parameter.
func NewParam(name string, v *mat.Matrix) *Param {
	return &Param{Name: name, Value: v, Grad: mat.New(v.Rows, v.Cols)}
}

// ZeroGrad clears the parameter gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Use introduces a parameter onto the tape; backward accumulates into the
// parameter's persistent gradient.
func (t *Tape) Use(p *Param) *Node {
	var n *Node
	n = t.node(p.Value, func() {
		mat.AddInPlace(p.Grad, n.Grad)
	})
	return n
}

// Backward runs reverse-mode differentiation seeding d(loss)=1. The loss
// node must be 1×1.
func (t *Tape) Backward(loss *Node) error {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		return fmt.Errorf("ad: backward needs a scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols)
	}
	if loss.tape != t {
		return fmt.Errorf("ad: loss node belongs to a different tape")
	}
	loss.Grad.Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].backward != nil {
			t.nodes[i].backward()
		}
	}
	return nil
}

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := mat.MatMul(a.Value, b.Value)
	var n *Node
	n = t.node(v, func() {
		mat.AddInPlace(a.Grad, mat.MatMulTransB(n.Grad, b.Value))
		mat.AddInPlace(b.Grad, mat.MatMulTransA(a.Value, n.Grad))
	})
	return n
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := mat.Add(a.Value, b.Value)
	var n *Node
	n = t.node(v, func() {
		mat.AddInPlace(a.Grad, n.Grad)
		mat.AddInPlace(b.Grad, n.Grad)
	})
	return n
}

// Sub returns a−b (same shape).
func (t *Tape) Sub(a, b *Node) *Node {
	v := mat.Sub(a.Value, b.Value)
	var n *Node
	n = t.node(v, func() {
		mat.AddInPlace(a.Grad, n.Grad)
		for i := range b.Grad.Data {
			b.Grad.Data[i] -= n.Grad.Data[i]
		}
	})
	return n
}

// Mul returns the elementwise product a⊙b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := mat.Mul(a.Value, b.Value)
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			a.Grad.Data[i] += n.Grad.Data[i] * b.Value.Data[i]
			b.Grad.Data[i] += n.Grad.Data[i] * a.Value.Data[i]
		}
	})
	return n
}

// Div returns the elementwise quotient a/b.
func (t *Tape) Div(a, b *Node) *Node {
	v := mat.New(a.Value.Rows, a.Value.Cols)
	for i := range v.Data {
		v.Data[i] = a.Value.Data[i] / b.Value.Data[i]
	}
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			bv := b.Value.Data[i]
			a.Grad.Data[i] += n.Grad.Data[i] / bv
			b.Grad.Data[i] -= n.Grad.Data[i] * a.Value.Data[i] / (bv * bv)
		}
	})
	return n
}

// Scale returns s·a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := mat.Scale(a.Value, s)
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			a.Grad.Data[i] += s * n.Grad.Data[i]
		}
	})
	return n
}

// AddScalar returns a + s elementwise for a constant s.
func (t *Tape) AddScalar(a *Node, s float64) *Node {
	v := mat.Apply(a.Value, func(x float64) float64 { return x + s })
	var n *Node
	n = t.node(v, func() {
		mat.AddInPlace(a.Grad, n.Grad)
	})
	return n
}

// AddRowBroadcast returns a + bias, where bias is 1×cols broadcast over the
// rows of a (the affine-layer bias pattern).
func (t *Tape) AddRowBroadcast(a, bias *Node) *Node {
	if bias.Value.Rows != 1 || bias.Value.Cols != a.Value.Cols {
		panic(fmt.Sprintf("ad: row broadcast shape mismatch %dx%d + %dx%d",
			a.Value.Rows, a.Value.Cols, bias.Value.Rows, bias.Value.Cols))
	}
	v := mat.New(a.Value.Rows, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		out := v.Row(i)
		for j, x := range row {
			out[j] = x + bias.Value.Data[j]
		}
	}
	var n *Node
	n = t.node(v, func() {
		mat.AddInPlace(a.Grad, n.Grad)
		for i := 0; i < n.Grad.Rows; i++ {
			g := n.Grad.Row(i)
			for j, x := range g {
				bias.Grad.Data[j] += x
			}
		}
	})
	return n
}

// BroadcastRow tiles a 1×cols node into rows copies (used to append the
// global attribute to every node/edge row in a GN block).
func (t *Tape) BroadcastRow(a *Node, rows int) *Node {
	if a.Value.Rows != 1 {
		panic(fmt.Sprintf("ad: broadcast-row needs a 1xN node, got %dx%d", a.Value.Rows, a.Value.Cols))
	}
	v := mat.New(rows, a.Value.Cols)
	for i := 0; i < rows; i++ {
		copy(v.Row(i), a.Value.Data)
	}
	var n *Node
	n = t.node(v, func() {
		for i := 0; i < rows; i++ {
			g := n.Grad.Row(i)
			for j, x := range g {
				a.Grad.Data[j] += x
			}
		}
	})
	return n
}

func (t *Tape) unary(a *Node, f, df func(float64) float64) *Node {
	v := mat.Apply(a.Value, f)
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			a.Grad.Data[i] += n.Grad.Data[i] * df(a.Value.Data[i])
		}
	})
	return n
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	v := mat.Apply(a.Value, math.Tanh)
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			y := n.Value.Data[i]
			a.Grad.Data[i] += n.Grad.Data[i] * (1 - y*y)
		}
	})
	return n
}

// Sigmoid applies 1/(1+e^{-x}) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := mat.Apply(a.Value, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			y := n.Value.Data[i]
			a.Grad.Data[i] += n.Grad.Data[i] * y * (1 - y)
		}
	})
	return n
}

// Exp applies e^x elementwise.
func (t *Tape) Exp(a *Node) *Node {
	v := mat.Apply(a.Value, math.Exp)
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			a.Grad.Data[i] += n.Grad.Data[i] * n.Value.Data[i]
		}
	})
	return n
}

// Log applies the natural logarithm elementwise.
func (t *Tape) Log(a *Node) *Node {
	return t.unary(a, math.Log, func(x float64) float64 { return 1 / x })
}

// Square applies x² elementwise.
func (t *Tape) Square(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 { return x * x },
		func(x float64) float64 { return 2 * x })
}

// Softplus applies log(1+e^x) elementwise (numerically stabilised).
func (t *Tape) Softplus(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 {
			if x > 30 {
				return x
			}
			return math.Log1p(math.Exp(x))
		},
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
}

// ClampConst clamps values into [lo,hi]; gradients pass through only inside
// the interval (the PPO clip operator).
func (t *Tape) ClampConst(a *Node, lo, hi float64) *Node {
	v := mat.Apply(a.Value, func(x float64) float64 { return math.Min(hi, math.Max(lo, x)) })
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			x := a.Value.Data[i]
			if x > lo && x < hi {
				a.Grad.Data[i] += n.Grad.Data[i]
			}
		}
	})
	return n
}

// Min returns the elementwise minimum of a and b; gradient flows to the
// smaller argument (ties favour a).
func (t *Tape) Min(a, b *Node) *Node {
	v := mat.New(a.Value.Rows, a.Value.Cols)
	for i := range v.Data {
		v.Data[i] = math.Min(a.Value.Data[i], b.Value.Data[i])
	}
	var n *Node
	n = t.node(v, func() {
		for i := range n.Grad.Data {
			if a.Value.Data[i] <= b.Value.Data[i] {
				a.Grad.Data[i] += n.Grad.Data[i]
			} else {
				b.Grad.Data[i] += n.Grad.Data[i]
			}
		}
	})
	return n
}

// ConcatCols concatenates nodes horizontally.
func (t *Tape) ConcatCols(nodes ...*Node) *Node {
	vals := make([]*mat.Matrix, len(nodes))
	for i, nd := range nodes {
		vals[i] = nd.Value
	}
	v := mat.ConcatCols(vals...)
	var n *Node
	n = t.node(v, func() {
		off := 0
		for _, nd := range nodes {
			for i := 0; i < nd.Grad.Rows; i++ {
				src := n.Grad.Row(i)[off : off+nd.Grad.Cols]
				dst := nd.Grad.Row(i)
				for j, x := range src {
					dst[j] += x
				}
			}
			off += nd.Grad.Cols
		}
	})
	return n
}

// ConcatRows concatenates nodes vertically.
func (t *Tape) ConcatRows(nodes ...*Node) *Node {
	vals := make([]*mat.Matrix, len(nodes))
	for i, nd := range nodes {
		vals[i] = nd.Value
	}
	v := mat.ConcatRows(vals...)
	var n *Node
	n = t.node(v, func() {
		off := 0
		for _, nd := range nodes {
			cnt := len(nd.Grad.Data)
			src := n.Grad.Data[off : off+cnt]
			for j, x := range src {
				nd.Grad.Data[j] += x
			}
			off += cnt
		}
	})
	return n
}

// GatherRows selects rows of a by index (duplicates allowed); the backward
// pass scatter-adds.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	v := mat.GatherRows(a.Value, idx)
	own := append([]int(nil), idx...)
	var n *Node
	n = t.node(v, func() {
		for i, r := range own {
			src := n.Grad.Row(i)
			dst := a.Grad.Row(r)
			for j, x := range src {
				dst[j] += x
			}
		}
	})
	return n
}

// SegmentSum sums rows of a into numSegments buckets; the graph-network ρ
// pooling (tf.unsorted_segment_sum equivalent).
func (t *Tape) SegmentSum(a *Node, segments []int, numSegments int) *Node {
	v := mat.SegmentSum(a.Value, segments, numSegments)
	own := append([]int(nil), segments...)
	var n *Node
	n = t.node(v, func() {
		for i, s := range own {
			src := n.Grad.Row(s)
			dst := a.Grad.Row(i)
			for j, x := range src {
				dst[j] += x
			}
		}
	})
	return n
}

// SumRows returns the 1×cols column-sum of a.
func (t *Tape) SumRows(a *Node) *Node {
	v := mat.SumRows(a.Value)
	var n *Node
	n = t.node(v, func() {
		for i := 0; i < a.Grad.Rows; i++ {
			dst := a.Grad.Row(i)
			for j := range dst {
				dst[j] += n.Grad.Data[j]
			}
		}
	})
	return n
}

// SumAll returns the 1×1 sum over all elements.
func (t *Tape) SumAll(a *Node) *Node {
	v := mat.New(1, 1)
	v.Data[0] = mat.Sum(a.Value)
	var n *Node
	n = t.node(v, func() {
		g := n.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	})
	return n
}

// Mean returns the 1×1 mean over all elements.
func (t *Tape) Mean(a *Node) *Node {
	count := float64(len(a.Value.Data))
	v := mat.New(1, 1)
	v.Data[0] = mat.Sum(a.Value) / count
	var n *Node
	n = t.node(v, func() {
		g := n.Grad.Data[0] / count
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	})
	return n
}

// RowSums returns the rows×1 per-row sums of a.
func (t *Tape) RowSums(a *Node) *Node {
	v := mat.New(a.Value.Rows, 1)
	for i := 0; i < a.Value.Rows; i++ {
		var s float64
		for _, x := range a.Value.Row(i) {
			s += x
		}
		v.Data[i] = s
	}
	var n *Node
	n = t.node(v, func() {
		for i := 0; i < a.Grad.Rows; i++ {
			g := n.Grad.Data[i]
			dst := a.Grad.Row(i)
			for j := range dst {
				dst[j] += g
			}
		}
	})
	return n
}

// Reshape reinterprets a as rows×cols (same element count, row-major order).
func (t *Tape) Reshape(a *Node, rows, cols int) *Node {
	if rows*cols != len(a.Value.Data) {
		panic(fmt.Sprintf("ad: reshape %dx%d incompatible with %d elements", rows, cols, len(a.Value.Data)))
	}
	v := mat.FromSlice(rows, cols, append([]float64(nil), a.Value.Data...))
	var n *Node
	n = t.node(v, func() {
		for i := range a.Grad.Data {
			a.Grad.Data[i] += n.Grad.Data[i]
		}
	})
	return n
}

// MulScalar multiplies every element of a by the 1×1 node s.
func (t *Tape) MulScalar(a, s *Node) *Node {
	if s.Value.Rows != 1 || s.Value.Cols != 1 {
		panic(fmt.Sprintf("ad: mul-scalar needs a 1x1 scalar, got %dx%d", s.Value.Rows, s.Value.Cols))
	}
	sv := s.Value.Data[0]
	v := mat.Scale(a.Value, sv)
	var n *Node
	n = t.node(v, func() {
		var acc float64
		for i := range n.Grad.Data {
			a.Grad.Data[i] += n.Grad.Data[i] * sv
			acc += n.Grad.Data[i] * a.Value.Data[i]
		}
		s.Grad.Data[0] += acc
	})
	return n
}

// AddScalarNode adds the 1×1 node s to every element of a.
func (t *Tape) AddScalarNode(a, s *Node) *Node {
	if s.Value.Rows != 1 || s.Value.Cols != 1 {
		panic(fmt.Sprintf("ad: add-scalar needs a 1x1 scalar, got %dx%d", s.Value.Rows, s.Value.Cols))
	}
	sv := s.Value.Data[0]
	v := mat.Apply(a.Value, func(x float64) float64 { return x + sv })
	var n *Node
	n = t.node(v, func() {
		var acc float64
		for i := range n.Grad.Data {
			a.Grad.Data[i] += n.Grad.Data[i]
			acc += n.Grad.Data[i]
		}
		s.Grad.Data[0] += acc
	})
	return n
}

// GatherCols selects columns of a by index.
func (t *Tape) GatherCols(a *Node, idx []int) *Node {
	v := mat.New(a.Value.Rows, len(idx))
	for i := 0; i < a.Value.Rows; i++ {
		row := a.Value.Row(i)
		out := v.Row(i)
		for j, c := range idx {
			out[j] = row[c]
		}
	}
	own := append([]int(nil), idx...)
	var n *Node
	n = t.node(v, func() {
		for i := 0; i < n.Grad.Rows; i++ {
			g := n.Grad.Row(i)
			dst := a.Grad.Row(i)
			for j, c := range own {
				dst[c] += g[j]
			}
		}
	})
	return n
}
