package ad

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/mat"
)

// numericalGrad estimates d(loss)/d(param[idx]) by central differences,
// where loss is rebuilt from scratch by build().
func numericalGrad(p *Param, idx int, build func() float64) float64 {
	const h = 1e-6
	orig := p.Value.Data[idx]
	p.Value.Data[idx] = orig + h
	up := build()
	p.Value.Data[idx] = orig - h
	down := build()
	p.Value.Data[idx] = orig
	return (up - down) / (2 * h)
}

// checkGradients compares analytic vs numerical gradients for every element
// of every parameter.
func checkGradients(t *testing.T, params []*Param, build func(tape *Tape) *Node) {
	t.Helper()
	tape := NewTape()
	loss := build(tape)
	if err := tape.Backward(loss); err != nil {
		t.Fatalf("backward: %v", err)
	}
	value := func() float64 {
		tt := NewTape()
		return build(tt).Value.Data[0]
	}
	for _, p := range params {
		for i := range p.Value.Data {
			want := numericalGrad(p, i, value)
			got := p.Grad.Data[i]
			tol := 1e-4 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("param %s[%d]: analytic %g numerical %g", p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func randParam(name string, rows, cols int, rng *rand.Rand) *Param {
	return NewParam(name, mat.RandNormal(rows, cols, 0.7, rng))
}

func TestMatMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam("a", 3, 4, rng)
	b := randParam("b", 4, 2, rng)
	checkGradients(t, []*Param{a, b}, func(tape *Tape) *Node {
		return tape.SumAll(tape.MatMul(tape.Use(a), tape.Use(b)))
	})
}

func TestAddSubMulDivGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam("a", 2, 3, rng)
	b := NewParam("b", mat.RandUniform(2, 3, 0.5, 2.0, rng)) // keep away from 0 for Div
	checkGradients(t, []*Param{a, b}, func(tape *Tape) *Node {
		an, bn := tape.Use(a), tape.Use(b)
		s := tape.Add(tape.Sub(tape.Mul(an, bn), an), tape.Div(an, bn))
		return tape.SumAll(s)
	})
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name string
		f    func(tape *Tape, x *Node) *Node
	}{
		{"tanh", func(tp *Tape, x *Node) *Node { return tp.Tanh(x) }},
		{"sigmoid", func(tp *Tape, x *Node) *Node { return tp.Sigmoid(x) }},
		{"exp", func(tp *Tape, x *Node) *Node { return tp.Exp(x) }},
		{"square", func(tp *Tape, x *Node) *Node { return tp.Square(x) }},
		{"softplus", func(tp *Tape, x *Node) *Node { return tp.Softplus(x) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := randParam("a", 2, 2, rng)
			checkGradients(t, []*Param{a}, func(tape *Tape) *Node {
				return tape.SumAll(tc.f(tape, tape.Use(a)))
			})
		})
	}
}

func TestReLUGradientAwayFromKink(t *testing.T) {
	// Use values far from 0 so finite differences are exact.
	vals := mat.FromRows([][]float64{{1.5, -2.5}, {3.0, -0.5}})
	a := NewParam("a", vals)
	checkGradients(t, []*Param{a}, func(tape *Tape) *Node {
		return tape.SumAll(tape.ReLU(tape.Use(a)))
	})
}

func TestLogGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewParam("a", mat.RandUniform(2, 3, 0.5, 3, rng))
	checkGradients(t, []*Param{a}, func(tape *Tape) *Node {
		return tape.SumAll(tape.Log(tape.Use(a)))
	})
}

func TestConcatGatherSegmentGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam("a", 3, 2, rng)
	b := randParam("b", 3, 4, rng)
	checkGradients(t, []*Param{a, b}, func(tape *Tape) *Node {
		an, bn := tape.Use(a), tape.Use(b)
		c := tape.ConcatCols(an, bn)               // 3x6
		g := tape.GatherRows(c, []int{0, 2, 2, 1}) // 4x6
		s := tape.SegmentSum(g, []int{1, 0, 1, 1}, 2)
		w := tape.Square(s) // make gradient non-uniform
		return tape.SumAll(w)
	})
}

func TestConcatRowsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam("a", 2, 3, rng)
	b := randParam("b", 1, 3, rng)
	checkGradients(t, []*Param{a, b}, func(tape *Tape) *Node {
		c := tape.ConcatRows(tape.Use(a), tape.Use(b))
		return tape.SumAll(tape.Square(c))
	})
}

func TestBroadcastAndBiasGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam("a", 4, 3, rng)
	bias := randParam("bias", 1, 3, rng)
	checkGradients(t, []*Param{a, bias}, func(tape *Tape) *Node {
		y := tape.AddRowBroadcast(tape.Use(a), tape.Use(bias))
		z := tape.Mul(y, tape.BroadcastRow(tape.Use(bias), 4))
		return tape.SumAll(z)
	})
}

func TestReductionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam("a", 3, 4, rng)
	checkGradients(t, []*Param{a}, func(tape *Tape) *Node {
		an := tape.Use(a)
		r := tape.Add(tape.SumRows(tape.Square(an)), tape.Scale(tape.SumRows(an), 0.5))
		m := tape.Mean(tape.Square(r))
		rs := tape.SumAll(tape.Square(tape.RowSums(an)))
		return tape.Add(m, tape.Scale(rs, 0.1))
	})
}

func TestScalarBroadcastGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randParam("a", 2, 3, rng)
	s := randParam("s", 1, 1, rng)
	checkGradients(t, []*Param{a, s}, func(tape *Tape) *Node {
		an := tape.Use(a)
		sn := tape.Use(s)
		y := tape.AddScalarNode(tape.MulScalar(an, sn), sn)
		return tape.SumAll(tape.Square(y))
	})
}

func TestMinClampGradients(t *testing.T) {
	// Values chosen away from the clamp boundaries and ties.
	a := NewParam("a", mat.FromRows([][]float64{{0.3, 1.8}, {-1.6, 0.9}}))
	b := NewParam("b", mat.FromRows([][]float64{{0.5, 1.2}, {-0.2, 0.1}}))
	checkGradients(t, []*Param{a, b}, func(tape *Tape) *Node {
		an, bn := tape.Use(a), tape.Use(b)
		m := tape.Min(tape.Square(an), bn)
		c := tape.ClampConst(an, -1, 1)
		return tape.SumAll(tape.Add(m, tape.Square(c)))
	})
}

func TestGatherColsReshapeGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam("a", 2, 4, rng)
	checkGradients(t, []*Param{a}, func(tape *Tape) *Node {
		an := tape.Use(a)
		g := tape.GatherCols(an, []int{3, 1})
		r := tape.Reshape(tape.Square(g), 1, 4)
		return tape.SumAll(r)
	})
}

func TestBackwardRequiresScalar(t *testing.T) {
	tape := NewTape()
	n := tape.Constant(mat.New(2, 2))
	if err := tape.Backward(n); err == nil {
		t.Fatal("expected error for non-scalar loss")
	}
}

func TestBackwardRejectsForeignTape(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	n := t1.ConstantScalar(1)
	if err := t2.Backward(n); err == nil {
		t.Fatal("expected error for foreign-tape loss")
	}
}

func TestGradientAccumulationAcrossUses(t *testing.T) {
	// A parameter used twice must accumulate both contributions.
	a := NewParam("a", mat.FromRows([][]float64{{2}}))
	tape := NewTape()
	x := tape.Use(a)
	y := tape.Use(a)
	loss := tape.SumAll(tape.Mul(x, y)) // a², d/da = 2a = 4
	if err := tape.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Grad.Data[0]-4) > 1e-12 {
		t.Fatalf("grad=%g want 4", a.Grad.Data[0])
	}
}

func TestDeepChainGradient(t *testing.T) {
	// A longer composite resembling one GN-block edge update.
	rng := rand.New(rand.NewSource(11))
	w1 := randParam("w1", 6, 5, rng)
	b1 := randParam("b1", 1, 5, rng)
	w2 := randParam("w2", 5, 2, rng)
	x := mat.RandNormal(4, 6, 1, rng)
	checkGradients(t, []*Param{w1, b1, w2}, func(tape *Tape) *Node {
		xn := tape.Constant(x)
		h := tape.Tanh(tape.AddRowBroadcast(tape.MatMul(xn, tape.Use(w1)), tape.Use(b1)))
		out := tape.MatMul(h, tape.Use(w2))
		return tape.Mean(tape.Square(out))
	})
}
