package ad

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/mat"
)

// buildMLPStep runs a representative forward-backward pass on t: a two-layer
// network over x with a scalar loss, touching matmul, bias broadcast,
// activations, gather, segment-sum, concat and reductions — the op mix the
// GNN policies record every step.
func buildMLPStep(t *Tape, w1, b1, w2, b2 *Param, x []float64) float64 {
	in := t.RowConstant(x)
	h := t.Tanh(t.AddRowBroadcast(t.MatMul(in, t.Use(w1)), t.Use(b1)))
	h2 := t.ConcatCols(h, t.Square(h))
	g := t.GatherCols(h2, []int{0, 2, 1, 3})
	out := t.AddRowBroadcast(t.MatMul(g, t.Use(w2)), t.Use(b2))
	loss := t.Mean(t.Square(out))
	if err := t.Backward(loss); err != nil {
		panic(err)
	}
	return loss.Value.Data[0]
}

// TestResetReplayBitIdentical pins the arena determinism contract: replaying
// the same op sequence on a Reset tape reproduces values and parameter
// gradients bit for bit. The checkpoint bit-identity CI gates depend on
// this holding through the blocked kernels and buffer reuse.
func TestResetReplayBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w1 := randParam("w1", 3, 4, rng)
	b1 := randParam("b1", 1, 4, rng)
	w2 := randParam("w2", 4, 2, rng)
	b2 := randParam("b2", 1, 2, rng)
	x := []float64{0.3, -1.2, 0.8}

	tape := NewTape()
	first := buildMLPStep(tape, w1, b1, w2, b2, x)
	firstGrads := [][]float64{
		append([]float64(nil), w1.Grad.Data...),
		append([]float64(nil), b1.Grad.Data...),
		append([]float64(nil), w2.Grad.Data...),
		append([]float64(nil), b2.Grad.Data...),
	}
	for rep := 0; rep < 10; rep++ {
		tape.Reset()
		for _, p := range []*Param{w1, b1, w2, b2} {
			p.ZeroGrad()
		}
		if again := buildMLPStep(tape, w1, b1, w2, b2, x); math.Float64bits(again) != math.Float64bits(first) {
			t.Fatalf("rep %d: loss %v differs bitwise from first %v", rep, again, first)
		}
		for pi, p := range []*Param{w1, b1, w2, b2} {
			for i, g := range p.Grad.Data {
				if math.Float64bits(g) != math.Float64bits(firstGrads[pi][i]) {
					t.Fatalf("rep %d: param %d grad[%d] %v differs bitwise from %v", rep, pi, i, g, firstGrads[pi][i])
				}
			}
		}
	}
}

// TestResetReuseNoAllocations verifies the steady-state contract from the
// package doc: once the arenas reach their high-water mark, an identical
// forward-backward pass performs zero heap allocations.
func TestResetReuseNoAllocations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w1 := randParam("w1", 3, 4, rng)
	b1 := randParam("b1", 1, 4, rng)
	w2 := randParam("w2", 4, 2, rng)
	b2 := randParam("b2", 1, 2, rng)
	x := []float64{0.3, -1.2, 0.8}

	tape := NewTape()
	for i := 0; i < 3; i++ { // reach the arena high-water mark
		tape.Reset()
		buildMLPStep(tape, w1, b1, w2, b2, x)
	}
	allocs := testing.AllocsPerRun(50, func() {
		tape.Reset()
		buildMLPStep(tape, w1, b1, w2, b2, x)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pass allocated %.1f times per run, want 0", allocs)
	}
}

// TestResetMatchesFreshTape checks a Reset tape computes the same gradients
// as a brand-new one even when the replayed graph has a different shape
// than the one recorded before the Reset.
func TestResetMatchesFreshTape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := randParam("w", 5, 3, rng)
	big := mat.RandNormal(7, 5, 1, rng)
	small := mat.RandNormal(2, 5, 1, rng)

	run := func(tape *Tape, in *mat.Matrix) []float64 {
		w.ZeroGrad()
		loss := tape.Mean(tape.Square(tape.MatMul(tape.Constant(in), tape.Use(w))))
		if err := tape.Backward(loss); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), w.Grad.Data...)
	}

	reused := NewTape()
	run(reused, big) // record a larger graph first, then shrink
	reused.Reset()
	got := run(reused, small)
	want := run(NewTape(), small)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("grad[%d]: reused tape %v vs fresh tape %v", i, got[i], want[i])
		}
	}
}

// TestRowConstant checks RowConstant matches Constant(RowVector) and does
// not retain the caller's slice.
func TestRowConstant(t *testing.T) {
	tape := NewTape()
	v := []float64{1, 2, 3}
	n := tape.RowConstant(v)
	v[0] = 99 // mutate after recording: the tape must hold a copy
	want := mat.RowVector([]float64{1, 2, 3})
	if n.Value.Rows != 1 || n.Value.Cols != 3 {
		t.Fatalf("RowConstant shape %dx%d", n.Value.Rows, n.Value.Cols)
	}
	for i := range want.Data {
		if n.Value.Data[i] != want.Data[i] {
			t.Fatalf("RowConstant[%d] = %v, want %v", i, n.Value.Data[i], want.Data[i])
		}
	}
}
