package topo

import (
	"testing"
)

func TestAbileneShape(t *testing.T) {
	g := Abilene()
	if g.NumNodes() != 11 {
		t.Fatalf("abilene nodes=%d want 11", g.NumNodes())
	}
	if g.NumEdges() != 28 { // 14 bidirectional links
		t.Fatalf("abilene edges=%d want 28", g.NumEdges())
	}
	if !g.StronglyConnected() {
		t.Fatal("abilene must be strongly connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllTopologiesValid(t *testing.T) {
	for _, name := range Names() {
		g, err := Named(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.StronglyConnected() {
			t.Fatalf("%s not strongly connected", name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// All real topologies here have symmetric links.
		for _, e := range g.Edges() {
			if _, err := g.EdgeBetween(e.To, e.From); err != nil {
				t.Fatalf("%s: link %d->%d has no reverse", name, e.From, e.To)
			}
		}
	}
}

func TestNamedUnknown(t *testing.T) {
	if _, err := Named("not-a-topology"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestTopologySizes(t *testing.T) {
	cases := map[string][2]int{ // name -> nodes, bidirectional links
		"nsfnet": {14, 21},
		"b4":     {12, 19},
		"geant":  {22, 37},
	}
	for name, want := range cases {
		g, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != want[0] || g.NumEdges() != 2*want[1] {
			t.Fatalf("%s: %d nodes %d edges, want %d nodes %d edges",
				name, g.NumNodes(), g.NumEdges(), want[0], 2*want[1])
		}
	}
}

func TestEvaluationSetWithinSizeBand(t *testing.T) {
	graphs, err := EvaluationSet(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) < 5 {
		t.Fatalf("evaluation set too small: %d", len(graphs))
	}
	for i, g := range graphs {
		if g.NumNodes() < 5 || g.NumNodes() > 22 {
			t.Fatalf("graph %d has %d nodes, outside the half-to-double-Abilene band", i, g.NumNodes())
		}
		if !g.StronglyConnected() {
			t.Fatalf("graph %d not strongly connected", i)
		}
	}
}

func TestEvaluationSetDeterministic(t *testing.T) {
	a, err := EvaluationSet(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluationSet(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic set size")
	}
	for i := range a {
		if a[i].NumNodes() != b[i].NumNodes() || a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("graph %d differs across same-seed calls", i)
		}
	}
}
