// Package topo embeds the real-world network topologies used in the paper's
// evaluation. The paper draws graphs from The Internet Topology Zoo; because
// this reproduction is offline, the relevant topologies are embedded as code
// from their public descriptions (see DESIGN.md substitution #3). All links
// are bidirectional with symmetric capacities, as in the Zoo data.
package topo

import (
	"fmt"
	"math/rand"
	"sort"

	"gddr/internal/graph"
	"gddr/internal/rng"
)

// Capacity units are Mbit/s-like abstract units; only ratios matter because
// the evaluation metric is relative link utilisation.
const (
	oc192 = 9920 // OC-192 trunk
	oc48  = 2480 // OC-48 trunk
)

type link struct {
	a, b     string
	capacity float64
}

func build(name string, nodes []string, links []link) *graph.Graph {
	g := graph.New(len(nodes))
	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		g.SetName(i, n)
		index[n] = i
	}
	for _, l := range links {
		ai, ok := index[l.a]
		if !ok {
			panic(fmt.Sprintf("topo %s: unknown node %q", name, l.a))
		}
		bi, ok := index[l.b]
		if !ok {
			panic(fmt.Sprintf("topo %s: unknown node %q", name, l.b))
		}
		if err := g.AddBidirectional(ai, bi, l.capacity); err != nil {
			panic(fmt.Sprintf("topo %s: %v", name, err))
		}
	}
	return g
}

// Abilene returns the Internet2 Abilene backbone: 11 PoPs, 14 bidirectional
// links (OC-192 trunks; the Atlanta–Indianapolis link was OC-48). This is
// the fixed graph of the paper's Figure 6 experiment.
func Abilene() *graph.Graph {
	nodes := []string{
		"Seattle", "Sunnyvale", "LosAngeles", "Denver", "KansasCity",
		"Houston", "Chicago", "Indianapolis", "Atlanta", "WashingtonDC",
		"NewYork",
	}
	links := []link{
		{"Seattle", "Sunnyvale", oc192},
		{"Seattle", "Denver", oc192},
		{"Sunnyvale", "LosAngeles", oc192},
		{"Sunnyvale", "Denver", oc192},
		{"LosAngeles", "Houston", oc192},
		{"Denver", "KansasCity", oc192},
		{"KansasCity", "Houston", oc192},
		{"KansasCity", "Indianapolis", oc192},
		{"Houston", "Atlanta", oc192},
		{"Chicago", "Indianapolis", oc192},
		{"Chicago", "NewYork", oc192},
		{"Indianapolis", "Atlanta", oc48},
		{"Atlanta", "WashingtonDC", oc192},
		{"WashingtonDC", "NewYork", oc192},
	}
	return build("abilene", nodes, links)
}

// NSFNet returns the classic 14-node, 21-link NSFNET T1 backbone.
func NSFNet() *graph.Graph {
	nodes := []string{
		"WA", "CA1", "CA2", "UT", "CO", "TX", "NE", "IL", "PA", "GA",
		"MI", "NY", "NJ", "DC",
	}
	links := []link{
		{"WA", "CA1", oc48}, {"WA", "CA2", oc48}, {"WA", "IL", oc48},
		{"CA1", "CA2", oc48}, {"CA1", "UT", oc48},
		{"CA2", "TX", oc48},
		{"UT", "CO", oc48}, {"UT", "MI", oc48},
		{"CO", "TX", oc48}, {"CO", "NE", oc48},
		{"TX", "GA", oc48}, {"TX", "DC", oc48},
		{"NE", "IL", oc48}, {"NE", "DC", oc48},
		{"IL", "PA", oc48},
		{"PA", "GA", oc48}, {"PA", "NY", oc48},
		{"GA", "NJ", oc48},
		{"MI", "NY", oc48}, {"MI", "NJ", oc48},
		{"NY", "DC", oc48},
	}
	return build("nsfnet", nodes, links)
}

// B4 returns Google's 12-site, 19-link B4 inter-datacenter WAN.
func B4() *graph.Graph {
	nodes := []string{
		"b4_1", "b4_2", "b4_3", "b4_4", "b4_5", "b4_6", "b4_7", "b4_8",
		"b4_9", "b4_10", "b4_11", "b4_12",
	}
	links := []link{
		{"b4_1", "b4_2", oc192}, {"b4_1", "b4_3", oc192},
		{"b4_2", "b4_3", oc192}, {"b4_2", "b4_5", oc192},
		{"b4_3", "b4_4", oc192}, {"b4_4", "b4_5", oc192},
		{"b4_4", "b4_6", oc192}, {"b4_5", "b4_7", oc192},
		{"b4_6", "b4_7", oc192}, {"b4_6", "b4_8", oc192},
		{"b4_7", "b4_9", oc192}, {"b4_8", "b4_9", oc192},
		{"b4_8", "b4_10", oc192}, {"b4_9", "b4_11", oc192},
		{"b4_10", "b4_11", oc192}, {"b4_10", "b4_12", oc192},
		{"b4_11", "b4_12", oc192}, {"b4_2", "b4_4", oc192},
		{"b4_6", "b4_9", oc192},
	}
	return build("b4", nodes, links)
}

// Geant returns a 22-node GÉANT-like pan-European research backbone.
func Geant() *graph.Graph {
	nodes := []string{
		"AT", "BE", "CH", "CZ", "DE", "DK", "ES", "FI", "FR", "GR", "HR",
		"HU", "IE", "IL", "IT", "LU", "NL", "NO", "PL", "PT", "SE", "UK",
	}
	links := []link{
		{"AT", "CH", oc192}, {"AT", "CZ", oc192}, {"AT", "DE", oc192},
		{"AT", "HU", oc192}, {"AT", "IT", oc48}, {"AT", "HR", oc48},
		{"BE", "FR", oc192}, {"BE", "NL", oc192}, {"BE", "LU", oc48},
		{"CH", "DE", oc192}, {"CH", "FR", oc192}, {"CH", "IT", oc192},
		{"CZ", "DE", oc192}, {"CZ", "PL", oc192},
		{"DE", "DK", oc192}, {"DE", "FR", oc192}, {"DE", "NL", oc192},
		{"DE", "PL", oc48}, {"DE", "IL", oc48},
		{"DK", "NO", oc192}, {"DK", "SE", oc192},
		{"ES", "FR", oc192}, {"ES", "PT", oc192}, {"ES", "IT", oc48},
		{"FI", "SE", oc192},
		{"FR", "UK", oc192}, {"FR", "LU", oc48},
		{"GR", "IT", oc48}, {"GR", "IL", oc48},
		{"HR", "HU", oc48},
		{"IE", "UK", oc192},
		{"IT", "IL", oc48},
		{"NL", "UK", oc192},
		{"NO", "SE", oc192},
		{"PL", "SE", oc48},
		{"PT", "UK", oc48},
		{"SE", "UK", oc192},
	}
	return build("geant", nodes, links)
}

// Named returns the embedded topology with the given name.
func Named(name string) (*graph.Graph, error) {
	switch name {
	case "abilene":
		return Abilene(), nil
	case "nsfnet":
		return NSFNet(), nil
	case "b4":
		return B4(), nil
	case "geant":
		return Geant(), nil
	default:
		return nil, fmt.Errorf("topo: unknown topology %q (have %v)", name, Names())
	}
}

// Names lists the embedded topology names in sorted order.
func Names() []string {
	names := []string{"abilene", "nsfnet", "b4", "geant"}
	sort.Strings(names)
	return names
}

// EvaluationSet returns the "different graphs" set of the paper's Figure 8:
// topologies between half and double the size of Abilene (11 nodes), i.e.
// 5–22 nodes. It mixes the embedded real topologies in that range with
// deterministic synthetic graphs derived from the seed.
func EvaluationSet(seed int64) ([]*graph.Graph, error) {
	rnd := rand.New(rng.New(seed))
	graphs := []*graph.Graph{NSFNet(), B4(), Geant()}
	ring, err := graph.Ring(8, oc192)
	if err != nil {
		return nil, err
	}
	grid, err := graph.Grid(3, 4, oc192)
	if err != nil {
		return nil, err
	}
	graphs = append(graphs, ring, grid)
	for _, n := range []int{6, 9, 14, 18} {
		g, err := graph.RandomConnected(n, 3.0, oc48, oc192, rnd)
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, g)
	}
	return graphs, nil
}
