// Package stats provides the summary statistics used to render learning
// curves the way the paper's Figure 7 does: windowed smoothing of episode
// rewards with a confidence band.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CurvePoint is one smoothed point of a learning curve.
type CurvePoint struct {
	X     float64 // window-centre x value (e.g. timestep)
	Mean  float64
	Lower float64 // mean - 1.96·stderr
	Upper float64 // mean + 1.96·stderr
}

// SmoothCurve buckets (x, y) observations into windows of the given width
// along x and returns, per window, the mean with a 95% normal-approximation
// confidence band — the solid line and pale block of the paper's Figure 7.
func SmoothCurve(xs, ys []float64, window float64) ([]CurvePoint, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: empty curve")
	}
	if window <= 0 {
		return nil, fmt.Errorf("stats: window must be positive, got %g", window)
	}
	type bucket struct {
		ys []float64
	}
	buckets := make(map[int]*bucket)
	for i, x := range xs {
		k := int(math.Floor(x / window))
		b, ok := buckets[k]
		if !ok {
			b = &bucket{}
			buckets[k] = b
		}
		b.ys = append(b.ys, ys[i])
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]CurvePoint, 0, len(keys))
	for _, k := range keys {
		b := buckets[k]
		m := Mean(b.ys)
		stderr := 0.0
		if len(b.ys) > 1 {
			stderr = StdDev(b.ys) / math.Sqrt(float64(len(b.ys)))
		}
		out = append(out, CurvePoint{
			X:     (float64(k) + 0.5) * window,
			Mean:  m,
			Lower: m - 1.96*stderr,
			Upper: m + 1.96*stderr,
		})
	}
	return out, nil
}
