package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean=%g want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935299395) > 1e-12 {
		t.Fatalf("stddev=%g", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/degenerate cases wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	for _, tc := range []struct {
		q, want float64
	}{{0, 1}, {0.5, 2}, {1, 3}, {0.25, 1.5}} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("q=%g got %g want %g", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty quantile accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range q accepted")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothCurve(t *testing.T) {
	xs := []float64{0, 1, 2, 10, 11, 12}
	ys := []float64{1, 2, 3, 10, 11, 12}
	pts, err := SmoothCurve(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d windows want 2", len(pts))
	}
	if pts[0].Mean != 2 || pts[1].Mean != 11 {
		t.Fatalf("means %g %g want 2 11", pts[0].Mean, pts[1].Mean)
	}
	if pts[0].Lower > pts[0].Mean || pts[0].Upper < pts[0].Mean {
		t.Fatal("confidence band does not bracket mean")
	}
	if pts[0].X >= pts[1].X {
		t.Fatal("windows not ordered")
	}
}

func TestSmoothCurveValidation(t *testing.T) {
	if _, err := SmoothCurve([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SmoothCurve(nil, nil, 1); err == nil {
		t.Fatal("empty curve accepted")
	}
	if _, err := SmoothCurve([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestSmoothCurveBandShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	xsSmall := make([]float64, len(small))
	xsLarge := make([]float64, len(large))
	ptsSmall, err := SmoothCurve(xsSmall, small, 1)
	if err != nil {
		t.Fatal(err)
	}
	ptsLarge, err := SmoothCurve(xsLarge, large, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ptsLarge[0].Upper-ptsLarge[0].Lower >= ptsSmall[0].Upper-ptsSmall[0].Lower {
		t.Fatal("confidence band did not shrink with more samples")
	}
}
