// Package gnn implements the graph-network formalism of Battaglia et al.
// ("Relational inductive biases, deep learning, and graph networks", 2018)
// that the paper builds its policies on: a graph is the 3-tuple (u, V, E) of
// global, vertex, and edge attributes; a GN block updates them with three
// learned φ functions (MLPs here, as in the paper) and aggregates with three
// ρ pooling functions (unsorted segment sums, matching the paper's use of
// tf.unsorted_segment_sum). The encode-process-decode composite of the
// paper's Figure 5 is provided as well.
package gnn

import (
	"fmt"
	"math/rand"

	"gddr/internal/ad"
	"gddr/internal/mat"
	"gddr/internal/nn"
)

// GraphSignature describes the attribute widths of a graphs tuple.
type GraphSignature struct {
	NodeDim, EdgeDim, GlobalDim int
}

// Graphs is a single attributed graph in graphs-tuple form: row i of Nodes
// holds the attribute vector of vertex i; row k of Edges the attributes of
// edge k, whose endpoints are Senders[k] → Receivers[k]; Globals is 1×g.
type Graphs struct {
	Nodes     *mat.Matrix
	Edges     *mat.Matrix
	Globals   *mat.Matrix
	Senders   []int
	Receivers []int
}

// Validate checks structural consistency of the tuple.
func (g *Graphs) Validate() error {
	if len(g.Senders) != g.Edges.Rows || len(g.Receivers) != g.Edges.Rows {
		return fmt.Errorf("gnn: %d edges but %d senders / %d receivers",
			g.Edges.Rows, len(g.Senders), len(g.Receivers))
	}
	for i := range g.Senders {
		if g.Senders[i] < 0 || g.Senders[i] >= g.Nodes.Rows ||
			g.Receivers[i] < 0 || g.Receivers[i] >= g.Nodes.Rows {
			return fmt.Errorf("gnn: edge %d endpoints (%d,%d) out of range [0,%d)",
				i, g.Senders[i], g.Receivers[i], g.Nodes.Rows)
		}
	}
	if g.Globals.Rows != 1 {
		return fmt.Errorf("gnn: globals must be a single row, got %d", g.Globals.Rows)
	}
	return nil
}

// State carries the tuple attributes as tape nodes during a forward pass.
// It is a plain value — blocks return fresh States by value so the
// per-message-passing-step tuple never touches the heap.
type State struct {
	Nodes, Edges, Globals *ad.Node
	Senders, Receivers    []int
}

// Lift places a graphs tuple onto the tape as constants.
func Lift(t *ad.Tape, g *Graphs) State {
	return State{
		Nodes:     t.Constant(g.Nodes),
		Edges:     t.Constant(g.Edges),
		Globals:   t.Constant(g.Globals),
		Senders:   g.Senders,
		Receivers: g.Receivers,
	}
}

// Block is a full graph-network block: edge, node, and global update MLPs
// with segment-sum pooling, wired exactly as in Battaglia et al. §3.2:
//
//	e'_k = φ_e(e_k, v_sk, v_rk, u)
//	v'_i = φ_v(ρ_{e→v}(E'_i), v_i, u)         (sum over incoming edges)
//	u'   = φ_u(ρ_{e→u}(E'), ρ_{v→u}(V'), u)   (sums over all edges/nodes)
type Block struct {
	EdgeFn   *nn.MLP
	NodeFn   *nn.MLP
	GlobalFn *nn.MLP
}

// NewBlock builds a GN block mapping the in signature to the out signature
// using single-hidden-layer MLPs of the given width.
func NewBlock(name string, in, out GraphSignature, hidden int, rng *rand.Rand) (*Block, error) {
	edgeIn := in.EdgeDim + 2*in.NodeDim + in.GlobalDim
	edgeFn, err := nn.NewMLP(name+".edge", []int{edgeIn, hidden, out.EdgeDim}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	nodeIn := out.EdgeDim + in.NodeDim + in.GlobalDim
	nodeFn, err := nn.NewMLP(name+".node", []int{nodeIn, hidden, out.NodeDim}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	globalIn := out.EdgeDim + out.NodeDim + in.GlobalDim
	globalFn, err := nn.NewMLP(name+".global", []int{globalIn, hidden, out.GlobalDim}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	return &Block{EdgeFn: edgeFn, NodeFn: nodeFn, GlobalFn: globalFn}, nil
}

// Apply runs one message-passing step.
func (b *Block) Apply(t *ad.Tape, s State) State {
	numNodes := s.Nodes.Value.Rows
	numEdges := s.Edges.Value.Rows

	// Edge update: concat(edge, sender node, receiver node, global).
	senderFeat := t.GatherRows(s.Nodes, s.Senders)
	receiverFeat := t.GatherRows(s.Nodes, s.Receivers)
	globalPerEdge := t.BroadcastRow(s.Globals, numEdges)
	edgeIn := t.ConcatCols(s.Edges, senderFeat, receiverFeat, globalPerEdge)
	edgesOut := b.EdgeFn.Apply(t, edgeIn)

	// Node update: concat(sum of incoming updated edges, node, global).
	incoming := t.SegmentSum(edgesOut, s.Receivers, numNodes)
	globalPerNode := t.BroadcastRow(s.Globals, numNodes)
	nodeIn := t.ConcatCols(incoming, s.Nodes, globalPerNode)
	nodesOut := b.NodeFn.Apply(t, nodeIn)

	// Global update: concat(sum of edges, sum of nodes, global).
	globalIn := t.ConcatCols(t.SumRows(edgesOut), t.SumRows(nodesOut), s.Globals)
	globalsOut := b.GlobalFn.Apply(t, globalIn)

	return State{
		Nodes:     nodesOut,
		Edges:     edgesOut,
		Globals:   globalsOut,
		Senders:   s.Senders,
		Receivers: s.Receivers,
	}
}

// Params returns the block's trainable parameters.
func (b *Block) Params() []*ad.Param {
	var ps []*ad.Param
	ps = append(ps, b.EdgeFn.Params()...)
	ps = append(ps, b.NodeFn.Params()...)
	ps = append(ps, b.GlobalFn.Params()...)
	return ps
}

// EncodeProcessDecode is the composite of the paper's Figure 5: independent
// encoders lift raw attributes to a hidden width, a core block runs several
// message-passing steps (its input concatenated with the encoded state, as
// in Battaglia et al.'s recurrent arrangement), and independent decoders map
// to the output widths.
type EncodeProcessDecode struct {
	NodeEnc, EdgeEnc, GlobalEnc *nn.MLP
	Core                        *Block
	NodeDec, EdgeDec, GlobalDec *nn.MLP
	Steps                       int
	Hidden                      GraphSignature
}

// Config sizes an encode-process-decode model.
type Config struct {
	In, Out GraphSignature
	Hidden  int // latent width for nodes, edges, and globals
	Steps   int // message-passing steps of the core block
}

// NewEncodeProcessDecode builds the model.
func NewEncodeProcessDecode(name string, cfg Config, rng *rand.Rand) (*EncodeProcessDecode, error) {
	if cfg.Hidden <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("gnn: invalid config hidden=%d steps=%d", cfg.Hidden, cfg.Steps)
	}
	h := cfg.Hidden
	hid := GraphSignature{NodeDim: h, EdgeDim: h, GlobalDim: h}
	nodeEnc, err := nn.NewMLP(name+".enc.node", []int{cfg.In.NodeDim, h, h}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	edgeEnc, err := nn.NewMLP(name+".enc.edge", []int{cfg.In.EdgeDim, h, h}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	globalEnc, err := nn.NewMLP(name+".enc.global", []int{cfg.In.GlobalDim, h, h}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	// Core consumes concat(encoded, current) on every attribute.
	core, err := NewBlock(name+".core",
		GraphSignature{NodeDim: 2 * h, EdgeDim: 2 * h, GlobalDim: 2 * h}, hid, h, rng)
	if err != nil {
		return nil, err
	}
	nodeDec, err := nn.NewMLP(name+".dec.node", []int{h, h, cfg.Out.NodeDim}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	edgeDec, err := nn.NewMLP(name+".dec.edge", []int{h, h, cfg.Out.EdgeDim}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	globalDec, err := nn.NewMLP(name+".dec.global", []int{h, h, cfg.Out.GlobalDim}, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	return &EncodeProcessDecode{
		NodeEnc: nodeEnc, EdgeEnc: edgeEnc, GlobalEnc: globalEnc,
		Core:    core,
		NodeDec: nodeDec, EdgeDec: edgeDec, GlobalDec: globalDec,
		Steps:  cfg.Steps,
		Hidden: hid,
	}, nil
}

// Apply runs the full encode-process-decode forward pass.
func (m *EncodeProcessDecode) Apply(t *ad.Tape, s State) State {
	encoded := State{
		Nodes:     m.NodeEnc.Apply(t, s.Nodes),
		Edges:     m.EdgeEnc.Apply(t, s.Edges),
		Globals:   m.GlobalEnc.Apply(t, s.Globals),
		Senders:   s.Senders,
		Receivers: s.Receivers,
	}
	cur := encoded
	for i := 0; i < m.Steps; i++ {
		coreIn := State{
			Nodes:     t.ConcatCols(encoded.Nodes, cur.Nodes),
			Edges:     t.ConcatCols(encoded.Edges, cur.Edges),
			Globals:   t.ConcatCols(encoded.Globals, cur.Globals),
			Senders:   s.Senders,
			Receivers: s.Receivers,
		}
		cur = m.Core.Apply(t, coreIn)
	}
	return State{
		Nodes:     m.NodeDec.Apply(t, cur.Nodes),
		Edges:     m.EdgeDec.Apply(t, cur.Edges),
		Globals:   m.GlobalDec.Apply(t, cur.Globals),
		Senders:   s.Senders,
		Receivers: s.Receivers,
	}
}

// Params returns all trainable parameters of the model.
func (m *EncodeProcessDecode) Params() []*ad.Param {
	var ps []*ad.Param
	for _, mlp := range []*nn.MLP{m.NodeEnc, m.EdgeEnc, m.GlobalEnc} {
		ps = append(ps, mlp.Params()...)
	}
	ps = append(ps, m.Core.Params()...)
	for _, mlp := range []*nn.MLP{m.NodeDec, m.EdgeDec, m.GlobalDec} {
		ps = append(ps, mlp.Params()...)
	}
	return ps
}
