package gnn

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/ad"
	"gddr/internal/mat"
	"gddr/internal/nn"
)

// triangleGraphs returns a 3-node, 3-edge test tuple.
func triangleGraphs(rng *rand.Rand, nodeDim, edgeDim, globalDim int) *Graphs {
	return &Graphs{
		Nodes:     mat.RandNormal(3, nodeDim, 1, rng),
		Edges:     mat.RandNormal(3, edgeDim, 1, rng),
		Globals:   mat.RandNormal(1, globalDim, 1, rng),
		Senders:   []int{0, 1, 2},
		Receivers: []int{1, 2, 0},
	}
}

func TestGraphsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := triangleGraphs(rng, 2, 3, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := triangleGraphs(rng, 2, 3, 1)
	bad.Senders = []int{0, 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched senders accepted")
	}
	bad2 := triangleGraphs(rng, 2, 3, 1)
	bad2.Receivers[0] = 9
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range receiver accepted")
	}
}

func TestBlockShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := GraphSignature{NodeDim: 2, EdgeDim: 3, GlobalDim: 1}
	out := GraphSignature{NodeDim: 5, EdgeDim: 4, GlobalDim: 6}
	b, err := NewBlock("b", in, out, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	tape := ad.NewTape()
	s := Lift(tape, triangleGraphs(rng, 2, 3, 1))
	o := b.Apply(tape, s)
	if o.Nodes.Value.Rows != 3 || o.Nodes.Value.Cols != 5 {
		t.Fatalf("nodes %dx%d", o.Nodes.Value.Rows, o.Nodes.Value.Cols)
	}
	if o.Edges.Value.Rows != 3 || o.Edges.Value.Cols != 4 {
		t.Fatalf("edges %dx%d", o.Edges.Value.Rows, o.Edges.Value.Cols)
	}
	if o.Globals.Value.Rows != 1 || o.Globals.Value.Cols != 6 {
		t.Fatalf("globals %dx%d", o.Globals.Value.Rows, o.Globals.Value.Cols)
	}
}

// TestBlockGradients verifies end-to-end analytic gradients of a full GN
// block against numerical differentiation.
func TestBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := GraphSignature{NodeDim: 2, EdgeDim: 2, GlobalDim: 1}
	out := GraphSignature{NodeDim: 2, EdgeDim: 2, GlobalDim: 2}
	b, err := NewBlock("b", in, out, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := triangleGraphs(rng, 2, 2, 1)
	build := func(tape *ad.Tape) *ad.Node {
		s := b.Apply(tape, Lift(tape, g))
		sum := tape.Add(tape.SumAll(tape.Square(s.Nodes)), tape.SumAll(tape.Square(s.Edges)))
		return tape.Add(sum, tape.SumAll(tape.Square(s.Globals)))
	}
	tape := ad.NewTape()
	loss := build(tape)
	if err := tape.Backward(loss); err != nil {
		t.Fatal(err)
	}
	value := func() float64 {
		tt := ad.NewTape()
		return build(tt).Value.Data[0]
	}
	const h = 1e-6
	for _, p := range b.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			up := value()
			p.Value.Data[i] = orig - h
			down := value()
			p.Value.Data[i] = orig
			want := (up - down) / (2 * h)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %g numerical %g", p.Name, i, got, want)
			}
		}
	}
}

func TestEncodeProcessDecodeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{
		In:     GraphSignature{NodeDim: 6, EdgeDim: 3, GlobalDim: 1},
		Out:    GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 3},
		Hidden: 8,
		Steps:  3,
	}
	m, err := NewEncodeProcessDecode("epd", cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	tape := ad.NewTape()
	s := Lift(tape, triangleGraphs(rng, 6, 3, 1))
	o := m.Apply(tape, s)
	if o.Edges.Value.Cols != 1 || o.Globals.Value.Cols != 3 || o.Nodes.Value.Cols != 1 {
		t.Fatalf("output dims wrong: edges %d globals %d nodes %d",
			o.Edges.Value.Cols, o.Globals.Value.Cols, o.Nodes.Value.Cols)
	}
}

// TestSizeInvariance: the same model must run on graphs of different sizes —
// the paper's central generalisation property.
func TestSizeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := Config{
		In:     GraphSignature{NodeDim: 2, EdgeDim: 3, GlobalDim: 1},
		Out:    GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 1},
		Hidden: 6,
		Steps:  2,
	}
	m, err := NewEncodeProcessDecode("epd", cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := nn.CountParams(m.Params())
	for _, n := range []int{3, 7, 15} {
		senders := make([]int, 2*n)
		receivers := make([]int, 2*n)
		for i := 0; i < n; i++ {
			senders[2*i], receivers[2*i] = i, (i+1)%n
			senders[2*i+1], receivers[2*i+1] = (i+1)%n, i
		}
		g := &Graphs{
			Nodes:     mat.RandNormal(n, 2, 1, rng),
			Edges:     mat.RandNormal(2*n, 3, 1, rng),
			Globals:   mat.RandNormal(1, 1, 1, rng),
			Senders:   senders,
			Receivers: receivers,
		}
		tape := ad.NewTape()
		o := m.Apply(tape, Lift(tape, g))
		if o.Edges.Value.Rows != 2*n {
			t.Fatalf("n=%d: edge rows %d", n, o.Edges.Value.Rows)
		}
	}
	if nn.CountParams(m.Params()) != before {
		t.Fatal("parameter count changed with graph size")
	}
}

// TestMessagePassingReach: with enough steps, information from one node must
// influence a distant node's output (here across a 4-ring).
func TestMessagePassingReach(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := Config{
		In:     GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 1},
		Out:    GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 1},
		Hidden: 6,
		Steps:  3,
	}
	m, err := NewEncodeProcessDecode("epd", cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := 4
	senders := []int{0, 1, 2, 3}
	receivers := []int{1, 2, 3, 0}
	base := &Graphs{
		Nodes:     mat.New(n, 1),
		Edges:     mat.New(n, 1),
		Globals:   mat.FromSlice(1, 1, []float64{1}),
		Senders:   senders,
		Receivers: receivers,
	}
	run := func(g *Graphs) float64 {
		tape := ad.NewTape()
		o := m.Apply(tape, Lift(tape, g))
		return o.Nodes.Value.At(2, 0) // output at node 2
	}
	baseline := run(base)
	perturbed := &Graphs{
		Nodes:     base.Nodes.Clone(),
		Edges:     base.Edges.Clone(),
		Globals:   base.Globals.Clone(),
		Senders:   senders,
		Receivers: receivers,
	}
	perturbed.Nodes.Set(0, 0, 5) // perturb node 0, two hops away
	if math.Abs(run(perturbed)-baseline) < 1e-9 {
		t.Fatal("perturbation at node 0 did not reach node 2 after 3 message-passing steps")
	}
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NewEncodeProcessDecode("bad", Config{Hidden: 0, Steps: 1}, rng); err == nil {
		t.Fatal("zero hidden accepted")
	}
	if _, err := NewEncodeProcessDecode("bad", Config{
		In:     GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 1},
		Out:    GraphSignature{NodeDim: 1, EdgeDim: 1, GlobalDim: 1},
		Hidden: 4, Steps: 0,
	}, rng); err == nil {
		t.Fatal("zero steps accepted")
	}
}
