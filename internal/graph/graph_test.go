package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustRing(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := Ring(n, 10)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	ei, err := g.AddEdge(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Edge(ei); got.From != 0 || got.To != 1 || got.Capacity != 5 {
		t.Fatalf("edge=%+v", got)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("num edges %d", g.NumEdges())
	}
	if _, err := g.EdgeBetween(0, 1); err != nil {
		t.Fatalf("edge lookup: %v", err)
	}
	if _, err := g.EdgeBetween(1, 0); !errors.Is(err, ErrNoEdge) {
		t.Fatalf("reverse lookup err=%v want ErrNoEdge", err)
	}
}

func TestAddEdgeRejectsInvalid(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := g.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	g.MustAddEdge(0, 1, 1)
	if _, err := g.AddEdge(0, 1, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if len(g.OutEdges(0)) != 2 || len(g.InEdges(3)) != 1 {
		t.Fatalf("adjacency wrong: out(0)=%v in(3)=%v", g.OutEdges(0), g.InEdges(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mustRing(t, 4)
	c := g.Clone()
	c.MustAddEdge(0, 2, 1)
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("clone shares edge storage")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeReindexes(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 0, 3)
	if err := g.RemoveEdge(0); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges=%d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.EdgeBetween(0, 1); !errors.Is(err, ErrNoEdge) {
		t.Fatal("removed edge still present")
	}
}

func TestRemoveNodeReindexes(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	if err := g.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Old node 2 is now node 1, old 3 is 2; edge 2→3 must survive as 1→2.
	if _, err := g.EdgeBetween(1, 2); err != nil {
		t.Fatalf("renumbered edge missing: %v", err)
	}
}

func TestStronglyConnected(t *testing.T) {
	g := mustRing(t, 5)
	if !g.StronglyConnected() {
		t.Fatal("ring must be strongly connected")
	}
	d := New(3)
	d.MustAddEdge(0, 1, 1)
	d.MustAddEdge(1, 2, 1)
	if d.StronglyConnected() {
		t.Fatal("one-way path is not strongly connected")
	}
}

func TestGenerators(t *testing.T) {
	ring := mustRing(t, 6)
	if ring.NumEdges() != 12 {
		t.Fatalf("ring edges=%d want 12", ring.NumEdges())
	}
	star, err := Star(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if star.NumEdges() != 8 || !star.StronglyConnected() {
		t.Fatalf("star edges=%d connected=%v", star.NumEdges(), star.StronglyConnected())
	}
	grid, err := Grid(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if grid.NumNodes() != 9 || grid.NumEdges() != 24 || !grid.StronglyConnected() {
		t.Fatalf("grid %d nodes %d edges", grid.NumNodes(), grid.NumEdges())
	}
	if _, err := Ring(2, 1); err == nil {
		t.Fatal("tiny ring accepted")
	}
}

func TestRandomConnectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15)
		g, err := RandomConnected(n, 3, 1, 10, rng)
		if err != nil {
			return false
		}
		return g.StronglyConnected() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacities(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 7)
	caps := g.Capacities()
	if len(caps) != 1 || caps[0] != 7 {
		t.Fatalf("caps=%v", caps)
	}
	if err := g.SetCapacity(0, 3); err != nil {
		t.Fatal(err)
	}
	if g.Edge(0).Capacity != 3 {
		t.Fatal("capacity not updated")
	}
	if err := g.SetCapacity(0, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}
