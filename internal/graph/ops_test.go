package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func TestRemoveLink(t *testing.T) {
	g := mustRing(t, 6)
	if err := g.AddBidirectional(0, 3, 10); err != nil {
		t.Fatal(err)
	}
	m, err := RemoveLink(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != g.NumEdges()-2 {
		t.Fatalf("edges %d want %d", m.NumEdges(), g.NumEdges()-2)
	}
	if _, err := m.EdgeBetween(0, 3); !errors.Is(err, ErrNoEdge) {
		t.Fatal("edge 0->3 survived removal")
	}
	if _, err := m.EdgeBetween(3, 0); !errors.Is(err, ErrNoEdge) {
		t.Fatal("edge 3->0 survived removal")
	}
	if g.NumEdges() != 14 {
		t.Fatal("original graph modified")
	}
	// Every star link is a bridge: removal must be refused.
	star, err := Star(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RemoveLink(star, 0, 1); err == nil {
		t.Fatal("disconnecting removal accepted")
	}
	if _, err := RemoveLink(g, 0, 2); !errors.Is(err, ErrNoEdge) {
		t.Fatalf("absent link: got %v, want ErrNoEdge", err)
	}
	if _, err := RemoveLink(g, 0, 0); err == nil {
		t.Fatal("self-link accepted")
	}
	if _, err := RemoveLink(g, 0, 99); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestAddLink(t *testing.T) {
	g := mustRing(t, 5)
	m, err := AddLink(g, 0, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	ei, err := m.EdgeBetween(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Edge(ei).Capacity != 7 {
		t.Fatalf("capacity %g want 7", m.Edge(ei).Capacity)
	}
	if _, err := m.EdgeBetween(2, 0); err != nil {
		t.Fatal("reverse direction missing")
	}
	if _, err := AddLink(g, 0, 1, 7); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if _, err := AddLink(g, 0, 2, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSetLinkCapacity(t *testing.T) {
	g := mustRing(t, 4)
	m, err := SetLinkCapacity(g, 1, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{1, 2}, {2, 1}} {
		ei, err := m.EdgeBetween(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if m.Edge(ei).Capacity != 42 {
			t.Fatalf("capacity %g want 42", m.Edge(ei).Capacity)
		}
	}
	// Original untouched.
	ei, _ := g.EdgeBetween(1, 2)
	if g.Edge(ei).Capacity == 42 {
		t.Fatal("original graph modified")
	}
	if _, err := SetLinkCapacity(g, 0, 2, 5); !errors.Is(err, ErrNoEdge) {
		t.Fatalf("absent link: got %v, want ErrNoEdge", err)
	}
	if _, err := SetLinkCapacity(g, 1, 2, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestAttachNode(t *testing.T) {
	g := mustRing(t, 4)
	m, id, err := AttachNode(g, "pop", []int{0, 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Fatalf("new node id %d want 4", id)
	}
	if m.Name(id) != "pop" {
		t.Fatalf("name %q want pop", m.Name(id))
	}
	if !m.StronglyConnected() {
		t.Fatal("attach broke connectivity")
	}
	if len(m.OutEdges(id)) != 2 {
		t.Fatalf("degree %d want 2", len(m.OutEdges(id)))
	}
	if _, _, err := AttachNode(g, "x", nil, 9); err == nil {
		t.Fatal("peerless attach accepted")
	}
	if _, _, err := AttachNode(g, "x", []int{0, 0}, 9); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, _, err := AttachNode(g, "x", []int{9}, 9); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

func TestDeleteNode(t *testing.T) {
	// Bidirectional ring: removing any node leaves a bidirectional path,
	// still strongly connected.
	g := mustRing(t, 5)
	m, err := DeleteNode(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 4 {
		t.Fatalf("nodes %d want 4", m.NumNodes())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.StronglyConnected() {
		t.Fatal("delete broke connectivity")
	}
	if _, err := DeleteNode(g, 9); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	small := mustRing(t, 3)
	if _, err := DeleteNode(small, 0); err == nil {
		t.Fatal("shrinking below 3 nodes accepted")
	}
	// A hub whose removal disconnects the graph is refused.
	star, err := Star(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeleteNode(star, 0); err == nil {
		t.Fatal("disconnecting delete accepted")
	}
}

// TestMutateTracedRemoveNodeRenumbering is the regression test for the
// node-removal renumbering hazard: Mutate used to hide which node id was
// deleted, so demand matrices built for the original graph could not be
// renumbered and silently misindexed the mutated graph.
func TestMutateTracedRemoveNodeRenumbering(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := mustRing(t, 6)
	if err := g.AddBidirectional(0, 3, 10); err != nil {
		t.Fatal(err)
	}
	m, trace, err := MutateTraced(g, RemoveNodeMutation, rng)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Kind != RemoveNodeMutation {
		t.Fatalf("trace kind %v", trace.Kind)
	}
	v := trace.RemovedNode
	if v < 0 || v >= g.NumNodes() {
		t.Fatalf("removed node %d out of range", v)
	}
	if m.NumNodes() != g.NumNodes()-1 {
		t.Fatalf("nodes %d want %d", m.NumNodes(), g.NumNodes()-1)
	}
	// Names above the removed id shifted down by one — the renumbering any
	// node-indexed data must mirror.
	for w := 0; w < m.NumNodes(); w++ {
		old := w
		if w >= v {
			old = w + 1
		}
		if m.Name(w) != g.Name(old) {
			t.Fatalf("node %d named %q, want %q (old id %d)", w, m.Name(w), g.Name(old), old)
		}
	}

	// Non-node mutations report no renumbering.
	_, trace, err = MutateTraced(g, AddEdgeMutation, rng)
	if err != nil {
		t.Fatal(err)
	}
	if trace.RemovedNode != -1 || trace.AddedNode != -1 {
		t.Fatalf("edge mutation reported node renumbering: %+v", trace)
	}
	madd, trace, err := MutateTraced(g, AddNodeMutation, rng)
	if err != nil {
		t.Fatal(err)
	}
	if trace.AddedNode != madd.NumNodes()-1 {
		t.Fatalf("added node %d want %d", trace.AddedNode, madd.NumNodes()-1)
	}
}
