package graph

import (
	"fmt"
	"math/rand"
)

// Ring returns a bidirectional ring of n nodes with uniform capacity.
func Ring(n int, capacity float64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs >= 3 nodes, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		if err := g.AddBidirectional(i, (i+1)%n, capacity); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Star returns a star with node 0 as hub and n-1 leaves.
func Star(n int, capacity float64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: star needs >= 3 nodes, got %d", n)
	}
	g := New(n)
	for i := 1; i < n; i++ {
		if err := g.AddBidirectional(0, i, capacity); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns a rows×cols lattice with bidirectional links.
func Grid(rows, cols int, capacity float64) (*Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("graph: grid needs >= 2x2, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.SetName(id(r, c), fmt.Sprintf("g%d_%d", r, c))
			if c+1 < cols {
				if err := g.AddBidirectional(id(r, c), id(r, c+1), capacity); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddBidirectional(id(r, c), id(r+1, c), capacity); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomConnected returns a random strongly connected graph: a random
// spanning tree made bidirectional plus extra random bidirectional edges
// until the average node degree reaches approximately avgDegree. Capacities
// are drawn uniformly from [capLo, capHi].
func RandomConnected(n int, avgDegree, capLo, capHi float64, rng *rand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: random graph needs >= 3 nodes, got %d", n)
	}
	if avgDegree < 2 {
		return nil, fmt.Errorf("graph: average degree %g < 2 cannot be connected", avgDegree)
	}
	g := New(n)
	randomCap := func() float64 { return capLo + rng.Float64()*(capHi-capLo) }
	// Random spanning tree: attach each node to a uniformly random earlier
	// node (a random recursive tree), using a random permutation so that
	// node ids carry no structure.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		parent := perm[rng.Intn(i)]
		if err := g.AddBidirectional(perm[i], parent, randomCap()); err != nil {
			return nil, err
		}
	}
	// Extra edges: avgDegree counts undirected incident links per node, so
	// the undirected edge target is n*avgDegree/2.
	target := int(float64(n) * avgDegree / 2)
	maxUndirected := n * (n - 1) / 2
	if target > maxUndirected {
		target = maxUndirected
	}
	undirected := n - 1
	attempts := 0
	for undirected < target && attempts < 50*n*n {
		attempts++
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if _, err := g.EdgeBetween(u, v); err == nil {
			continue
		}
		if err := g.AddBidirectional(u, v, randomCap()); err != nil {
			return nil, err
		}
		undirected++
	}
	return g, nil
}
