// Package graph implements the directed capacitated graph substrate used
// throughout the GDDR reproduction: adjacency storage, shortest paths,
// topological operations, random generators, and the topology mutations of
// the paper's generalisation experiments. It is a from-scratch substitute
// for the NetworkX functionality the original implementation relied on.
package graph

import (
	"errors"
	"fmt"
)

// Edge is a directed link with a positive capacity.
type Edge struct {
	From, To int
	Capacity float64
}

// Graph is a directed multigraph-free graph with per-edge capacities. Nodes
// are dense integer ids [0, NumNodes). The zero value is an empty graph.
type Graph struct {
	names []string
	edges []Edge
	out   [][]int // node -> indices into edges
	in    [][]int
}

// ErrNoEdge is returned when looking up an edge that does not exist.
var ErrNoEdge = errors.New("graph: no such edge")

// New returns a graph with n isolated nodes named "n0".."n<n-1>".
func New(n int) *Graph {
	g := &Graph{
		names: make([]string, n),
		out:   make([][]int, n),
		in:    make([][]int, n),
	}
	for i := range g.names {
		g.names[i] = fmt.Sprintf("n%d", i)
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node with the given name and returns its id.
func (g *Graph) AddNode(name string) int {
	id := len(g.out)
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// Name returns the display name of node v.
func (g *Graph) Name(v int) string { return g.names[v] }

// SetName sets the display name of node v.
func (g *Graph) SetName(v int, name string) { g.names[v] = name }

// AddEdge adds a directed edge and returns its index. Duplicate parallel
// edges are rejected so that splitting ratios stay well defined.
func (g *Graph) AddEdge(from, to int, capacity float64) (int, error) {
	if from < 0 || from >= g.NumNodes() || to < 0 || to >= g.NumNodes() {
		return 0, fmt.Errorf("graph: edge endpoints (%d,%d) out of range [0,%d)", from, to, g.NumNodes())
	}
	if from == to {
		return 0, fmt.Errorf("graph: self-loop at node %d rejected", from)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("graph: edge (%d,%d) needs positive capacity, got %g", from, to, capacity)
	}
	if _, err := g.EdgeBetween(from, to); err == nil {
		return 0, fmt.Errorf("graph: duplicate edge (%d,%d)", from, to)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Capacity: capacity})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id, nil
}

// MustAddEdge is AddEdge for static topology construction; it panics on
// error, which is acceptable only during program initialisation.
func (g *Graph) MustAddEdge(from, to int, capacity float64) int {
	id, err := g.AddEdge(from, to, capacity)
	if err != nil {
		panic(err)
	}
	return id
}

// AddBidirectional adds both directions with the same capacity.
func (g *Graph) AddBidirectional(u, v int, capacity float64) error {
	if _, err := g.AddEdge(u, v, capacity); err != nil {
		return err
	}
	_, err := g.AddEdge(v, u, capacity)
	return err
}

// Edge returns edge metadata by index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgeBetween returns the index of the edge from→to, or ErrNoEdge.
func (g *Graph) EdgeBetween(from, to int) (int, error) {
	for _, ei := range g.out[from] {
		if g.edges[ei].To == to {
			return ei, nil
		}
	}
	return 0, ErrNoEdge
}

// OutEdges returns the edge indices leaving v. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) OutEdges(v int) []int { return g.out[v] }

// InEdges returns the edge indices entering v. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) InEdges(v int) []int { return g.in[v] }

// SetCapacity updates the capacity of edge i.
func (g *Graph) SetCapacity(i int, capacity float64) error {
	if capacity <= 0 {
		return fmt.Errorf("graph: capacity must be positive, got %g", capacity)
	}
	g.edges[i].Capacity = capacity
	return nil
}

// Capacities returns the per-edge capacity vector.
func (g *Graph) Capacities() []float64 {
	caps := make([]float64, len(g.edges))
	for i, e := range g.edges {
		caps[i] = e.Capacity
	}
	return caps
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names: append([]string(nil), g.names...),
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]int, len(g.out)),
		in:    make([][]int, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]int(nil), g.out[i]...)
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	return c
}

// RemoveEdge deletes edge index ei, re-indexing subsequent edges.
func (g *Graph) RemoveEdge(ei int) error {
	if ei < 0 || ei >= len(g.edges) {
		return fmt.Errorf("graph: edge index %d out of range", ei)
	}
	g.edges = append(g.edges[:ei], g.edges[ei+1:]...)
	g.rebuildAdjacency()
	return nil
}

// RemoveNode deletes node v and all incident edges, re-indexing nodes above
// v down by one.
func (g *Graph) RemoveNode(v int) error {
	if v < 0 || v >= g.NumNodes() {
		return fmt.Errorf("graph: node %d out of range", v)
	}
	kept := g.edges[:0]
	for _, e := range g.edges {
		if e.From == v || e.To == v {
			continue
		}
		if e.From > v {
			e.From--
		}
		if e.To > v {
			e.To--
		}
		kept = append(kept, e)
	}
	g.edges = kept
	g.names = append(g.names[:v], g.names[v+1:]...)
	g.out = make([][]int, len(g.names))
	g.in = make([][]int, len(g.names))
	g.rebuildAdjacency()
	return nil
}

func (g *Graph) rebuildAdjacency() {
	for i := range g.out {
		g.out[i] = g.out[i][:0]
		g.in[i] = g.in[i][:0]
	}
	for ei, e := range g.edges {
		g.out[e.From] = append(g.out[e.From], ei)
		g.in[e.To] = append(g.in[e.To], ei)
	}
}

// StronglyConnected reports whether every node can reach every other node.
// For the symmetric-link topologies used here this coincides with weak
// connectivity, but the check is exact for general digraphs.
func (g *Graph) StronglyConnected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	return g.reachCount(0, false) == n && g.reachCount(0, true) == n
}

// reachCount counts nodes reachable from src, following reversed edges when
// reversed is true.
func (g *Graph) reachCount(src int, reversed bool) int {
	seen := make([]bool, g.NumNodes())
	stack := []int{src}
	seen[src] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		adj := g.out[v]
		if reversed {
			adj = g.in[v]
		}
		for _, ei := range adj {
			next := g.edges[ei].To
			if reversed {
				next = g.edges[ei].From
			}
			if !seen[next] {
				seen[next] = true
				count++
				stack = append(stack, next)
			}
		}
	}
	return count
}

// Validate checks structural invariants; it is used in tests and after
// mutations.
func (g *Graph) Validate() error {
	if len(g.names) != len(g.out) || len(g.names) != len(g.in) {
		return errors.New("graph: adjacency/name length mismatch")
	}
	degreeOut := make([]int, g.NumNodes())
	degreeIn := make([]int, g.NumNodes())
	for ei, e := range g.edges {
		if e.From < 0 || e.From >= g.NumNodes() || e.To < 0 || e.To >= g.NumNodes() {
			return fmt.Errorf("graph: edge %d endpoints out of range", ei)
		}
		if e.Capacity <= 0 {
			return fmt.Errorf("graph: edge %d has non-positive capacity", ei)
		}
		degreeOut[e.From]++
		degreeIn[e.To]++
	}
	for v := 0; v < g.NumNodes(); v++ {
		if len(g.out[v]) != degreeOut[v] || len(g.in[v]) != degreeIn[v] {
			return fmt.Errorf("graph: stale adjacency at node %d", v)
		}
		for _, ei := range g.out[v] {
			if g.edges[ei].From != v {
				return fmt.Errorf("graph: out list of node %d references foreign edge %d", v, ei)
			}
		}
		for _, ei := range g.in[v] {
			if g.edges[ei].To != v {
				return fmt.Errorf("graph: in list of node %d references foreign edge %d", v, ei)
			}
		}
	}
	return nil
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(%d nodes, %d edges)", g.NumNodes(), g.NumEdges())
}
