package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomConnected(8, 3, 5, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	g.SetName(0, "origin")
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %v vs %v", back, g)
	}
	if back.Name(0) != "origin" {
		t.Fatal("names lost")
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i) != back.Edge(i) {
			t.Fatalf("edge %d differs: %+v vs %+v", i, g.Edge(i), back.Edge(i))
		}
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"format":2,"names":[],"edges":[]}`)); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"format":1,"names":["a","b"],"edges":[{"from":0,"to":5,"capacity":1}]}`)); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"format":1,"names":["a","b"],"edges":[{"from":0,"to":1,"capacity":-1}]}`)); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestDOTRendering(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 0, 10)
	g.MustAddEdge(1, 2, 5)
	dot := g.DOT("test")
	if !strings.Contains(dot, `digraph "test"`) {
		t.Fatalf("missing header: %s", dot)
	}
	if !strings.Contains(dot, "dir=both") {
		t.Fatal("symmetric pair not collapsed")
	}
	if strings.Count(dot, "->") != 2 { // one both-dir pair + one single
		t.Fatalf("unexpected edge rendering:\n%s", dot)
	}
	if !strings.Contains(dot, `label="5"`) {
		t.Fatal("capacity label missing")
	}
}
