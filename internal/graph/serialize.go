package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// graphJSON is the wire form of a Graph.
type graphJSON struct {
	Format int        `json:"format"`
	Names  []string   `json:"names"`
	Edges  []edgeJSON `json:"edges"`
}

type edgeJSON struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
}

// WriteJSON serialises the graph as JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := graphJSON{
		Format: 1,
		Names:  append([]string(nil), g.names...),
		Edges:  make([]edgeJSON, len(g.edges)),
	}
	for i, e := range g.edges {
		out.Edges[i] = edgeJSON{From: e.From, To: e.To, Capacity: e.Capacity}
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadJSON deserialises a graph written by WriteJSON, validating structure.
func ReadJSON(r io.Reader) (*Graph, error) {
	var in graphJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	if in.Format != 1 {
		return nil, fmt.Errorf("graph: unsupported format %d", in.Format)
	}
	g := New(len(in.Names))
	for i, n := range in.Names {
		g.SetName(i, n)
	}
	for i, e := range in.Edges {
		if _, err := g.AddEdge(e.From, e.To, e.Capacity); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// DOT renders the graph in Graphviz DOT format (symmetric link pairs are
// rendered once as undirected-looking edges for readability).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [shape=ellipse];\n")
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(&b, "  %d [label=%q];\n", v, g.names[v])
	}
	rendered := make(map[[2]int]bool)
	for _, e := range g.edges {
		key := [2]int{e.From, e.To}
		if rendered[key] {
			continue
		}
		if _, err := g.EdgeBetween(e.To, e.From); err == nil {
			// Symmetric pair: render once, both directions marked.
			rendered[[2]int{e.To, e.From}] = true
			fmt.Fprintf(&b, "  %d -> %d [dir=both, label=\"%.0f\"];\n", e.From, e.To, e.Capacity)
		} else {
			fmt.Fprintf(&b, "  %d -> %d [label=\"%.0f\"];\n", e.From, e.To, e.Capacity)
		}
		rendered[key] = true
	}
	b.WriteString("}\n")
	return b.String()
}
