package graph

import "fmt"

// This file holds the deterministic, connectivity-preserving topology
// operations behind the public events API (gddr.LinkDown, gddr.LinkUp, ...).
// Unlike the random Mutate variants above, these target a specific link or
// node: the "operator pushed a change" counterpart to the paper's random
// generalisation mutations. All operations return a mutated clone; the
// input graph is never modified, so serving snapshots stay immutable.

// RemoveLink returns a copy of g without the link between u and v (both
// directions, matching the symmetric topologies used throughout). It fails
// if no edge exists in either direction or if the removal would disconnect
// the graph — routing needs strong connectivity, so a disconnecting failure
// must be rejected rather than half-applied.
func RemoveLink(g *Graph, u, v int) (*Graph, error) {
	if err := checkNodes(g, u, v); err != nil {
		return nil, err
	}
	c := g.Clone()
	removed := 0
	for _, pair := range [][2]int{{u, v}, {v, u}} {
		if ei, err := c.EdgeBetween(pair[0], pair[1]); err == nil {
			if err := c.RemoveEdge(ei); err != nil {
				return nil, err
			}
			removed++
		}
	}
	if removed == 0 {
		return nil, fmt.Errorf("graph: no link between %d and %d: %w", u, v, ErrNoEdge)
	}
	if !c.StronglyConnected() {
		return nil, fmt.Errorf("graph: removing link (%d,%d) disconnects the graph", u, v)
	}
	return c, nil
}

// AddLink returns a copy of g with a bidirectional link of the given
// capacity between u and v. It fails if either direction already exists.
func AddLink(g *Graph, u, v int, capacity float64) (*Graph, error) {
	if err := checkNodes(g, u, v); err != nil {
		return nil, err
	}
	c := g.Clone()
	if err := c.AddBidirectional(u, v, capacity); err != nil {
		return nil, err
	}
	return c, nil
}

// SetLinkCapacity returns a copy of g with the capacity of the link between
// u and v set to capacity in every direction that exists. It fails if no
// direction exists or the capacity is not positive.
func SetLinkCapacity(g *Graph, u, v int, capacity float64) (*Graph, error) {
	if err := checkNodes(g, u, v); err != nil {
		return nil, err
	}
	c := g.Clone()
	set := 0
	for _, pair := range [][2]int{{u, v}, {v, u}} {
		if ei, err := c.EdgeBetween(pair[0], pair[1]); err == nil {
			if err := c.SetCapacity(ei, capacity); err != nil {
				return nil, err
			}
			set++
		}
	}
	if set == 0 {
		return nil, fmt.Errorf("graph: no link between %d and %d: %w", u, v, ErrNoEdge)
	}
	return c, nil
}

// AttachNode returns a copy of g with a new node (the highest id, so
// existing ids are unchanged) bidirectionally linked to each peer with the
// given capacity. At least one peer is required to keep the graph strongly
// connected; duplicate peers are rejected by the duplicate-edge check.
func AttachNode(g *Graph, name string, peers []int, capacity float64) (*Graph, int, error) {
	if len(peers) == 0 {
		return nil, -1, fmt.Errorf("graph: attaching a node needs at least one peer")
	}
	for _, p := range peers {
		if p < 0 || p >= g.NumNodes() {
			return nil, -1, fmt.Errorf("graph: peer %d out of range [0,%d)", p, g.NumNodes())
		}
	}
	c := g.Clone()
	id := c.AddNode(name)
	for _, p := range peers {
		if err := c.AddBidirectional(id, p, capacity); err != nil {
			return nil, -1, err
		}
	}
	return c, id, nil
}

// DeleteNode returns a copy of g without node v and its incident edges,
// renumbering ids above v down by one (the caller must renumber any
// node-indexed data the same way — see Trace). It fails if the remaining
// graph would be smaller than 3 nodes or not strongly connected.
func DeleteNode(g *Graph, v int) (*Graph, error) {
	if v < 0 || v >= g.NumNodes() {
		return nil, fmt.Errorf("graph: node %d out of range [0,%d)", v, g.NumNodes())
	}
	if g.NumNodes() <= 3 {
		return nil, fmt.Errorf("graph: cannot remove node %d from a %d-node graph", v, g.NumNodes())
	}
	c := g.Clone()
	if err := c.RemoveNode(v); err != nil {
		return nil, err
	}
	if !c.StronglyConnected() {
		return nil, fmt.Errorf("graph: removing node %d disconnects the graph", v)
	}
	return c, nil
}

func checkNodes(g *Graph, u, v int) error {
	if u < 0 || u >= g.NumNodes() || v < 0 || v >= g.NumNodes() {
		return fmt.Errorf("graph: link endpoints (%d,%d) out of range [0,%d)", u, v, g.NumNodes())
	}
	if u == v {
		return fmt.Errorf("graph: link endpoints must differ, got %d twice", u)
	}
	return nil
}
