package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDijkstraLine(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	w := []float64{1, 2, 3}
	dist, err := g.DistancesTo(3, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 5, 3, 0}
	for i := range want {
		if math.Abs(dist[i]-want[i]) > 1e-12 {
			t.Fatalf("dist=%v want %v", dist, want)
		}
	}
	fromDist, err := g.DistancesFrom(0, w)
	if err != nil {
		t.Fatal(err)
	}
	if fromDist[3] != 6 {
		t.Fatalf("fromDist=%v", fromDist)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	dist, err := g.DistancesTo(1, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("node 2 should be unreachable, dist=%v", dist)
	}
}

func TestDijkstraRejectsBadWeights(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	if _, err := g.DistancesTo(1, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := g.DistancesTo(1, []float64{1, 2}); err == nil {
		t.Fatal("wrong weight count accepted")
	}
	if _, err := g.DistancesTo(5, []float64{1}); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestDijkstraPicksCheaperMultiHop(t *testing.T) {
	// Direct edge costs 10, two-hop path costs 3.
	g := New(3)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	w := []float64{10, 1, 2}
	dist, err := g.DistancesTo(2, w)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 3 {
		t.Fatalf("dist[0]=%g want 3", dist[0])
	}
}

func TestShortestPathReconstruction(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	// Equal-cost paths: deterministic tie-break takes the smaller node id.
	path, err := g.ShortestPath(0, 3, g.UnitWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 3 {
		t.Fatalf("path=%v want [0 1 3]", path)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	if _, err := g.ShortestPath(2, 1, g.UnitWeights()); err == nil {
		t.Fatal("expected unreachable error")
	}
}

// TestDijkstraTriangleInequality: for random graphs and random weights,
// d(u) <= w(u,v) + d(v) for every edge, and equality holds along some edge
// for every reachable non-sink node.
func TestDijkstraTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := RandomConnected(5+rng.Intn(10), 3, 1, 5, rng)
		if err != nil {
			return false
		}
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = 0.1 + rng.Float64()*5
		}
		sink := rng.Intn(g.NumNodes())
		dist, err := g.DistancesTo(sink, w)
		if err != nil {
			return false
		}
		for ei, e := range g.Edges() {
			if dist[e.From] > w[ei]+dist[e.To]+1e-9 {
				return false
			}
		}
		for v := 0; v < g.NumNodes(); v++ {
			if v == sink {
				continue
			}
			tight := false
			for _, ei := range g.OutEdges(v) {
				e := g.Edge(ei)
				if math.Abs(dist[v]-(w[ei]+dist[e.To])) < 1e-9 {
					tight = true
					break
				}
			}
			if !tight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := New(4)
	e01 := g.MustAddEdge(0, 1, 1)
	e12 := g.MustAddEdge(1, 2, 1)
	e23 := g.MustAddEdge(2, 3, 1)
	e30 := g.MustAddEdge(3, 0, 1)
	keep := make([]bool, g.NumEdges())
	keep[e01], keep[e12], keep[e23] = true, true, true
	order, err := g.TopologicalOrder(keep)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2] && pos[2] < pos[3]) {
		t.Fatalf("order=%v not topological", order)
	}
	keep[e30] = true // closes the cycle
	if _, err := g.TopologicalOrder(keep); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestInverseCapacityWeights(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 5)
	w := g.InverseCapacityWeights()
	if w[0] != 1 || w[1] != 2 {
		t.Fatalf("weights=%v want [1 2]", w)
	}
}
