package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMutateAddEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := mustRing(t, 6)
	m, err := Mutate(g, AddEdgeMutation, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != g.NumEdges()+2 {
		t.Fatalf("edges %d want %d (bidirectional add)", m.NumEdges(), g.NumEdges()+2)
	}
	if !m.StronglyConnected() {
		t.Fatal("mutation broke connectivity")
	}
	if g.NumEdges() != 12 {
		t.Fatal("original graph modified")
	}
}

func TestMutateRemoveEdgeKeepsConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Ring plus a chord: chord (or a ring pair adjacent to redundancy) is removable.
	g := mustRing(t, 6)
	if err := g.AddBidirectional(0, 3, 10); err != nil {
		t.Fatal(err)
	}
	m, err := Mutate(g, RemoveEdgeMutation, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !m.StronglyConnected() {
		t.Fatal("remove-edge broke connectivity")
	}
	if m.NumEdges() != g.NumEdges()-2 {
		t.Fatalf("edges %d want %d", m.NumEdges(), g.NumEdges()-2)
	}
}

func TestMutateRemoveEdgeOnTreeFails(t *testing.T) {
	// A bidirectional star has no removable link pair.
	g, err := Star(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := Mutate(g, RemoveEdgeMutation, rng); err == nil {
		t.Fatal("expected ErrNoMutation on a tree")
	}
}

func TestMutateAddNode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := mustRing(t, 5)
	m, err := Mutate(g, AddNodeMutation, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 6 {
		t.Fatalf("nodes=%d want 6", m.NumNodes())
	}
	if !m.StronglyConnected() {
		t.Fatal("add-node broke connectivity")
	}
	// New node must be dual-homed.
	if len(m.OutEdges(5)) != 2 {
		t.Fatalf("new node degree %d want 2", len(m.OutEdges(5)))
	}
}

func TestMutateRemoveNode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := mustRing(t, 6)
	m, err := Mutate(g, RemoveNodeMutation, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 5 {
		t.Fatalf("nodes=%d want 5", m.NumNodes())
	}
	if !m.StronglyConnected() {
		t.Fatal("remove-node broke connectivity")
	}
}

func TestRandomMutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := RandomConnected(8, 3, 5, 15, rng)
		if err != nil {
			return false
		}
		m, err := RandomMutation(g, 1+rng.Intn(2), rng)
		if err != nil {
			return false
		}
		return m.StronglyConnected() && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMutationKindString(t *testing.T) {
	if AddEdgeMutation.String() != "add-edge" || RemoveNodeMutation.String() != "remove-node" {
		t.Fatal("mutation kind names wrong")
	}
}
