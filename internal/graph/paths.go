package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// DistancesTo computes, for every node v, the shortest-path distance from v
// to sink under the given per-edge weights (len = NumEdges, all weights must
// be non-negative). Unreachable nodes get Inf. This runs a single Dijkstra
// over the reversed graph in O(E log V).
func (g *Graph) DistancesTo(sink int, weights []float64) ([]float64, error) {
	return g.dijkstra(sink, weights, true)
}

// DistancesFrom computes shortest-path distances from source to every node.
func (g *Graph) DistancesFrom(source int, weights []float64) ([]float64, error) {
	return g.dijkstra(source, weights, false)
}

func (g *Graph) dijkstra(root int, weights []float64, reversed bool) ([]float64, error) {
	if len(weights) != g.NumEdges() {
		return nil, fmt.Errorf("graph: dijkstra needs %d weights, got %d", g.NumEdges(), len(weights))
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("graph: dijkstra weight %d is %g, want >= 0", i, w)
		}
	}
	if root < 0 || root >= g.NumNodes() {
		return nil, fmt.Errorf("graph: dijkstra root %d out of range", root)
	}
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = Inf
	}
	dist[root] = 0
	pq := &nodeHeap{{node: root, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		adj := g.out[item.node]
		if reversed {
			adj = g.in[item.node]
		}
		for _, ei := range adj {
			e := g.edges[ei]
			next := e.To
			if reversed {
				next = e.From
			}
			nd := item.dist + weights[ei]
			if nd < dist[next] {
				dist[next] = nd
				heap.Push(pq, nodeItem{node: next, dist: nd})
			}
		}
	}
	return dist, nil
}

// ShortestPath returns the node sequence of one shortest path from source to
// sink under weights, breaking ties deterministically by smallest node id.
// It returns an error if sink is unreachable.
func (g *Graph) ShortestPath(source, sink int, weights []float64) ([]int, error) {
	dist, err := g.DistancesTo(sink, weights)
	if err != nil {
		return nil, err
	}
	if math.IsInf(dist[source], 1) {
		return nil, fmt.Errorf("graph: node %d cannot reach %d", source, sink)
	}
	const eps = 1e-12
	path := []int{source}
	cur := source
	for cur != sink {
		next := -1
		var nextEdge int
		for _, ei := range g.out[cur] {
			e := g.edges[ei]
			if math.Abs(weights[ei]+dist[e.To]-dist[cur]) <= eps*(1+math.Abs(dist[cur])) {
				if next == -1 || e.To < next {
					next = e.To
					nextEdge = ei
				}
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("graph: shortest-path reconstruction stuck at node %d", cur)
		}
		_ = nextEdge
		path = append(path, next)
		cur = next
		if len(path) > g.NumNodes()+1 {
			return nil, fmt.Errorf("graph: shortest-path reconstruction cycled")
		}
	}
	return path, nil
}

// UnitWeights returns the all-ones weight vector (hop-count metric).
func (g *Graph) UnitWeights() []float64 {
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 1
	}
	return w
}

// InverseCapacityWeights returns weights proportional to 1/capacity, the
// classic OSPF-recommended metric, used as an oblivious baseline.
func (g *Graph) InverseCapacityWeights() []float64 {
	w := make([]float64, g.NumEdges())
	var maxCap float64
	for _, e := range g.edges {
		if e.Capacity > maxCap {
			maxCap = e.Capacity
		}
	}
	for i, e := range g.edges {
		w[i] = maxCap / e.Capacity
	}
	return w
}

// TopologicalOrder returns a topological ordering of the subgraph induced by
// keeping only edges where keep[ei] is true. It returns an error if that
// subgraph contains a cycle.
func (g *Graph) TopologicalOrder(keep []bool) ([]int, error) {
	if len(keep) != g.NumEdges() {
		return nil, fmt.Errorf("graph: topological order needs %d keep flags, got %d", g.NumEdges(), len(keep))
	}
	indeg := make([]int, g.NumNodes())
	for ei, e := range g.edges {
		if keep[ei] {
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, g.NumNodes())
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.NumNodes())
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.out[v] {
			if !keep[ei] {
				continue
			}
			to := g.edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != g.NumNodes() {
		return nil, fmt.Errorf("graph: kept subgraph contains a cycle (%d of %d ordered)", len(order), g.NumNodes())
	}
	return order, nil
}

type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
