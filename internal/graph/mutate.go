package graph

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrNoMutation is returned when no connectivity-preserving mutation of the
// requested kind exists.
var ErrNoMutation = errors.New("graph: no valid mutation found")

// MutationKind enumerates the topology modifications used by the paper's
// generalisation experiment (§VIII-D): "addition or deletion of one or two
// edges or nodes (chosen randomly)".
type MutationKind int

// Mutation kinds. They start at one so that the zero value is invalid.
const (
	AddEdgeMutation MutationKind = iota + 1
	RemoveEdgeMutation
	AddNodeMutation
	RemoveNodeMutation
)

func (k MutationKind) String() string {
	switch k {
	case AddEdgeMutation:
		return "add-edge"
	case RemoveEdgeMutation:
		return "remove-edge"
	case AddNodeMutation:
		return "add-node"
	case RemoveNodeMutation:
		return "remove-node"
	default:
		return fmt.Sprintf("mutation(%d)", int(k))
	}
}

// Trace records the node-id consequences of a mutation so that callers can
// renumber node-indexed data consistently. RemoveNode deletes a node id and
// shifts every id above it down by one, which silently misaligns any demand
// matrix (or other node-indexed structure) built for the original graph;
// the trace exposes which id vanished (or appeared) so the caller can apply
// the matching renumbering — e.g. traffic.DemandMatrix.WithoutNode.
type Trace struct {
	Kind MutationKind
	// RemovedNode is the deleted node id for RemoveNodeMutation (-1
	// otherwise). Ids above it shifted down by one.
	RemovedNode int
	// AddedNode is the new node id for AddNodeMutation (-1 otherwise); it is
	// always the highest id, so existing ids are unchanged.
	AddedNode int
}

// Mutate returns a copy of g with one random connectivity-preserving
// modification of the given kind applied. Edge mutations treat links as
// bidirectional pairs, matching the symmetric topologies used in the paper.
//
// RemoveNodeMutation renumbers node ids above the removed node down by one;
// demand matrices generated for g do NOT index the mutated graph correctly.
// Use MutateTraced to learn which node was removed and renumber, or generate
// fresh demand matrices for the mutated graph (as the figure-8 experiment
// does).
func Mutate(g *Graph, kind MutationKind, rng *rand.Rand) (*Graph, error) {
	m, _, err := MutateTraced(g, kind, rng)
	return m, err
}

// MutateTraced is Mutate, additionally reporting the node-renumbering
// consequences of the mutation.
func MutateTraced(g *Graph, kind MutationKind, rng *rand.Rand) (*Graph, Trace, error) {
	trace := Trace{Kind: kind, RemovedNode: -1, AddedNode: -1}
	var m *Graph
	var err error
	switch kind {
	case AddEdgeMutation:
		m, err = mutateAddEdge(g, rng)
	case RemoveEdgeMutation:
		m, err = mutateRemoveEdge(g, rng)
	case AddNodeMutation:
		m, err = mutateAddNode(g, rng)
		if err == nil {
			trace.AddedNode = m.NumNodes() - 1
		}
	case RemoveNodeMutation:
		var removed int
		m, removed, err = mutateRemoveNode(g, rng)
		if err == nil {
			trace.RemovedNode = removed
		}
	default:
		return nil, trace, fmt.Errorf("graph: unknown mutation kind %d", int(kind))
	}
	return m, trace, err
}

// RandomMutation applies count random mutations (1 or 2 in the paper),
// sampling kinds uniformly and retrying until a valid mutation is found.
func RandomMutation(g *Graph, count int, rng *rand.Rand) (*Graph, error) {
	kinds := []MutationKind{AddEdgeMutation, RemoveEdgeMutation, AddNodeMutation, RemoveNodeMutation}
	cur := g
	for i := 0; i < count; i++ {
		var mutated *Graph
		var err error
		for attempt := 0; attempt < 16; attempt++ {
			kind := kinds[rng.Intn(len(kinds))]
			mutated, err = Mutate(cur, kind, rng)
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("graph: mutation %d: %w", i, err)
		}
		cur = mutated
	}
	return cur, nil
}

func meanCapacity(g *Graph) float64 {
	if g.NumEdges() == 0 {
		return 1
	}
	var sum float64
	for _, e := range g.Edges() {
		sum += e.Capacity
	}
	return sum / float64(g.NumEdges())
}

func mutateAddEdge(g *Graph, rng *rand.Rand) (*Graph, error) {
	n := g.NumNodes()
	capacity := meanCapacity(g)
	// Collect absent unordered pairs.
	var candidates [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_, errUV := g.EdgeBetween(u, v)
			_, errVU := g.EdgeBetween(v, u)
			if errUV != nil && errVU != nil {
				candidates = append(candidates, [2]int{u, v})
			}
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoMutation
	}
	pick := candidates[rng.Intn(len(candidates))]
	c := g.Clone()
	if err := c.AddBidirectional(pick[0], pick[1], capacity); err != nil {
		return nil, err
	}
	return c, nil
}

func mutateRemoveEdge(g *Graph, rng *rand.Rand) (*Graph, error) {
	// Candidate unordered pairs whose removal keeps the graph strongly
	// connected.
	type pair struct{ u, v int }
	var candidates []pair
	seen := make(map[pair]bool)
	for _, e := range g.Edges() {
		u, v := e.From, e.To
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if seen[p] {
			continue
		}
		seen[p] = true
		c := g.Clone()
		if ei, err := c.EdgeBetween(p.u, p.v); err == nil {
			if err := c.RemoveEdge(ei); err != nil {
				return nil, err
			}
		}
		if ei, err := c.EdgeBetween(p.v, p.u); err == nil {
			if err := c.RemoveEdge(ei); err != nil {
				return nil, err
			}
		}
		if c.StronglyConnected() {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoMutation
	}
	p := candidates[rng.Intn(len(candidates))]
	c := g.Clone()
	if ei, err := c.EdgeBetween(p.u, p.v); err == nil {
		if err := c.RemoveEdge(ei); err != nil {
			return nil, err
		}
	}
	if ei, err := c.EdgeBetween(p.v, p.u); err == nil {
		if err := c.RemoveEdge(ei); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func mutateAddNode(g *Graph, rng *rand.Rand) (*Graph, error) {
	if g.NumNodes() < 2 {
		return nil, ErrNoMutation
	}
	c := g.Clone()
	capacity := meanCapacity(g)
	id := c.AddNode(fmt.Sprintf("added%d", c.NumNodes()))
	// Attach to two distinct existing nodes so the new node is not a
	// single-homed stub (keeps multipath interesting and the graph 2-edge
	// reachable from the new node).
	a := rng.Intn(id)
	b := rng.Intn(id)
	for b == a {
		b = rng.Intn(id)
	}
	if err := c.AddBidirectional(id, a, capacity); err != nil {
		return nil, err
	}
	if err := c.AddBidirectional(id, b, capacity); err != nil {
		return nil, err
	}
	return c, nil
}

func mutateRemoveNode(g *Graph, rng *rand.Rand) (*Graph, int, error) {
	if g.NumNodes() <= 3 {
		return nil, -1, ErrNoMutation
	}
	var candidates []int
	for v := 0; v < g.NumNodes(); v++ {
		c := g.Clone()
		if err := c.RemoveNode(v); err != nil {
			return nil, -1, err
		}
		if c.NumNodes() >= 3 && c.StronglyConnected() {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return nil, -1, ErrNoMutation
	}
	v := candidates[rng.Intn(len(candidates))]
	c := g.Clone()
	if err := c.RemoveNode(v); err != nil {
		return nil, -1, err
	}
	return c, v, nil
}
