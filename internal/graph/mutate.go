package graph

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrNoMutation is returned when no connectivity-preserving mutation of the
// requested kind exists.
var ErrNoMutation = errors.New("graph: no valid mutation found")

// MutationKind enumerates the topology modifications used by the paper's
// generalisation experiment (§VIII-D): "addition or deletion of one or two
// edges or nodes (chosen randomly)".
type MutationKind int

// Mutation kinds. They start at one so that the zero value is invalid.
const (
	AddEdgeMutation MutationKind = iota + 1
	RemoveEdgeMutation
	AddNodeMutation
	RemoveNodeMutation
)

func (k MutationKind) String() string {
	switch k {
	case AddEdgeMutation:
		return "add-edge"
	case RemoveEdgeMutation:
		return "remove-edge"
	case AddNodeMutation:
		return "add-node"
	case RemoveNodeMutation:
		return "remove-node"
	default:
		return fmt.Sprintf("mutation(%d)", int(k))
	}
}

// Mutate returns a copy of g with one random connectivity-preserving
// modification of the given kind applied. Edge mutations treat links as
// bidirectional pairs, matching the symmetric topologies used in the paper.
func Mutate(g *Graph, kind MutationKind, rng *rand.Rand) (*Graph, error) {
	switch kind {
	case AddEdgeMutation:
		return mutateAddEdge(g, rng)
	case RemoveEdgeMutation:
		return mutateRemoveEdge(g, rng)
	case AddNodeMutation:
		return mutateAddNode(g, rng)
	case RemoveNodeMutation:
		return mutateRemoveNode(g, rng)
	default:
		return nil, fmt.Errorf("graph: unknown mutation kind %d", int(kind))
	}
}

// RandomMutation applies count random mutations (1 or 2 in the paper),
// sampling kinds uniformly and retrying until a valid mutation is found.
func RandomMutation(g *Graph, count int, rng *rand.Rand) (*Graph, error) {
	kinds := []MutationKind{AddEdgeMutation, RemoveEdgeMutation, AddNodeMutation, RemoveNodeMutation}
	cur := g
	for i := 0; i < count; i++ {
		var mutated *Graph
		var err error
		for attempt := 0; attempt < 16; attempt++ {
			kind := kinds[rng.Intn(len(kinds))]
			mutated, err = Mutate(cur, kind, rng)
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("graph: mutation %d: %w", i, err)
		}
		cur = mutated
	}
	return cur, nil
}

func meanCapacity(g *Graph) float64 {
	if g.NumEdges() == 0 {
		return 1
	}
	var sum float64
	for _, e := range g.Edges() {
		sum += e.Capacity
	}
	return sum / float64(g.NumEdges())
}

func mutateAddEdge(g *Graph, rng *rand.Rand) (*Graph, error) {
	n := g.NumNodes()
	capacity := meanCapacity(g)
	// Collect absent unordered pairs.
	var candidates [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_, errUV := g.EdgeBetween(u, v)
			_, errVU := g.EdgeBetween(v, u)
			if errUV != nil && errVU != nil {
				candidates = append(candidates, [2]int{u, v})
			}
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoMutation
	}
	pick := candidates[rng.Intn(len(candidates))]
	c := g.Clone()
	if err := c.AddBidirectional(pick[0], pick[1], capacity); err != nil {
		return nil, err
	}
	return c, nil
}

func mutateRemoveEdge(g *Graph, rng *rand.Rand) (*Graph, error) {
	// Candidate unordered pairs whose removal keeps the graph strongly
	// connected.
	type pair struct{ u, v int }
	var candidates []pair
	seen := make(map[pair]bool)
	for _, e := range g.Edges() {
		u, v := e.From, e.To
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if seen[p] {
			continue
		}
		seen[p] = true
		c := g.Clone()
		if ei, err := c.EdgeBetween(p.u, p.v); err == nil {
			if err := c.RemoveEdge(ei); err != nil {
				return nil, err
			}
		}
		if ei, err := c.EdgeBetween(p.v, p.u); err == nil {
			if err := c.RemoveEdge(ei); err != nil {
				return nil, err
			}
		}
		if c.StronglyConnected() {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoMutation
	}
	p := candidates[rng.Intn(len(candidates))]
	c := g.Clone()
	if ei, err := c.EdgeBetween(p.u, p.v); err == nil {
		if err := c.RemoveEdge(ei); err != nil {
			return nil, err
		}
	}
	if ei, err := c.EdgeBetween(p.v, p.u); err == nil {
		if err := c.RemoveEdge(ei); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func mutateAddNode(g *Graph, rng *rand.Rand) (*Graph, error) {
	if g.NumNodes() < 2 {
		return nil, ErrNoMutation
	}
	c := g.Clone()
	capacity := meanCapacity(g)
	id := c.AddNode(fmt.Sprintf("added%d", c.NumNodes()))
	// Attach to two distinct existing nodes so the new node is not a
	// single-homed stub (keeps multipath interesting and the graph 2-edge
	// reachable from the new node).
	a := rng.Intn(id)
	b := rng.Intn(id)
	for b == a {
		b = rng.Intn(id)
	}
	if err := c.AddBidirectional(id, a, capacity); err != nil {
		return nil, err
	}
	if err := c.AddBidirectional(id, b, capacity); err != nil {
		return nil, err
	}
	return c, nil
}

func mutateRemoveNode(g *Graph, rng *rand.Rand) (*Graph, error) {
	if g.NumNodes() <= 3 {
		return nil, ErrNoMutation
	}
	var candidates []int
	for v := 0; v < g.NumNodes(); v++ {
		c := g.Clone()
		if err := c.RemoveNode(v); err != nil {
			return nil, err
		}
		if c.NumNodes() >= 3 && c.StronglyConnected() {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return nil, ErrNoMutation
	}
	v := candidates[rng.Intn(len(candidates))]
	c := g.Clone()
	if err := c.RemoveNode(v); err != nil {
		return nil, err
	}
	return c, nil
}
