package env

import (
	"gddr/internal/routing"
	"gddr/internal/traffic"
)

// evalWeightsForTest exposes the internal routing evaluation so tests can
// verify the reward computation against a direct calculation.
func evalWeightsForTest(e *Env, dm *traffic.DemandMatrix, weights []float64) (float64, error) {
	res, err := routing.EvaluateWeights(e.g, dm, weights, e.cfg.Gamma)
	if err != nil {
		return 0, err
	}
	return res.MaxUtilization, nil
}
