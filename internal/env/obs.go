package env

import (
	"fmt"

	"gddr/internal/graph"
	"gddr/internal/mat"
	"gddr/internal/traffic"
)

// Observe builds the full-action observation for a demand history on g: the
// per-node in/out demand sums of §V-B, the capacity edge feature, and the
// flattened raw history for the MLP baseline. hist must hold the m most
// recent demand matrices, oldest first. The iterative-mode edge-feature
// columns are zero; use SetIterativeState to fill them.
//
// Every call allocates a fresh Observation the caller owns indefinitely —
// the training path stores observations across rollout steps. A serving
// loop that discards each observation after the forward pass should hold an
// Observer instead and reuse its buffers.
func Observe(g *graph.Graph, hist []*traffic.DemandMatrix) (*Observation, error) {
	return new(Observer).Observe(g, hist)
}

// Observer builds observations into reusable buffers: node/edge feature
// matrices, the flattened history, and the in/out-sum scratch are allocated
// once and overwritten by each Observe call, so a steady serving loop
// observes without allocating.
//
// The returned Observation (and everything it references) is only valid
// until the next Observe call on the same Observer; callers that retain
// observations — PPO rollouts do — must use the package-level Observe. An
// Observer is not safe for concurrent use; pool one per serving worker.
type Observer struct {
	g    *graph.Graph // buffers below are sized for this topology
	m    int
	obs  Observation
	outs []float64
	ins  []float64
}

// Observe fills the observer's buffers with the observation for hist on g
// and returns it. See Observe (package-level) for the feature layout.
func (o *Observer) Observe(g *graph.Graph, hist []*traffic.DemandMatrix) (*Observation, error) {
	m := len(hist)
	if m < 1 {
		return nil, fmt.Errorf("env: observe needs at least one demand matrix")
	}
	n := g.NumNodes()
	ne := g.NumEdges()
	for i, dm := range hist {
		if dm == nil {
			return nil, fmt.Errorf("env: history matrix %d is nil", i)
		}
		if dm.N != n {
			return nil, fmt.Errorf("env: history matrix %d has size %d, graph has %d nodes", i, dm.N, n)
		}
	}

	if o.g != g || o.m != m {
		// First use, or a different topology/memory: size fresh buffers.
		o.g, o.m = g, m
		o.obs = Observation{
			G:        g,
			NodeFeat: mat.New(n, 2*m),
			EdgeFeat: mat.New(ne, 4),
			Global:   mat.New(1, 1),
			Flat:     make([]float64, 0, m*n*n),
		}
		o.obs.Senders = make([]int, ne)
		o.obs.Receivers = make([]int, ne)
		for ei := 0; ei < ne; ei++ {
			edge := g.Edge(ei)
			o.obs.Senders[ei] = edge.From
			o.obs.Receivers[ei] = edge.To
		}
		o.outs = make([]float64, n)
		o.ins = make([]float64, n)
	}
	nodeFeat := o.obs.NodeFeat
	flat := o.obs.Flat[:0]
	for h, dm := range hist {
		// Per-node in/out sums, normalised by the largest node sum of this
		// DM so features stay comparable across graph sizes (§V-B).
		outs, ins := o.outs, o.ins
		maxSum := 0.0
		for v := 0; v < n; v++ {
			outs[v] = dm.OutSum(v)
			ins[v] = dm.InSum(v)
			if outs[v] > maxSum {
				maxSum = outs[v]
			}
			if ins[v] > maxSum {
				maxSum = ins[v]
			}
		}
		if maxSum == 0 {
			maxSum = 1
		}
		for v := 0; v < n; v++ {
			nodeFeat.Set(v, 2*h, outs[v]/maxSum)
			nodeFeat.Set(v, 2*h+1, ins[v]/maxSum)
		}
		// Raw flattened history for the MLP baseline, normalised by the
		// largest entry of the DM (Valadarsky et al. feed the raw history).
		maxEntry := dm.MaxEntry()
		if maxEntry == 0 {
			maxEntry = 1
		}
		for _, v := range dm.Data {
			flat = append(flat, v/maxEntry)
		}
	}
	o.obs.Flat = flat

	// Edge features: column 0 carries the normalised link capacity (the
	// agent cannot avoid low-capacity links it cannot see); columns 1-3
	// are the iterative-mode triple (value, set?, target?) of Eq. 6, zero
	// until SetIterativeState fills them (cleared here on buffer reuse).
	edgeFeat := o.obs.EdgeFeat
	for i := range edgeFeat.Data {
		edgeFeat.Data[i] = 0
	}
	maxCap := 0.0
	for ei := 0; ei < ne; ei++ {
		if c := g.Edge(ei).Capacity; c > maxCap {
			maxCap = c
		}
	}
	for ei := 0; ei < ne; ei++ {
		edgeFeat.Set(ei, 0, g.Edge(ei).Capacity/maxCap)
	}

	o.obs.Global.Data[0] = 1 // constant bias channel
	o.obs.TargetEdge = -1
	return &o.obs, nil
}

// HistoryWindow returns the memory most recent matrices of hist (oldest
// first), padding a cold-start history by repeating fallback. It is the
// single definition of the serving-time history contract — the Router fast
// path and the Engine's topology rebuilds both window histories through it,
// matching the training-time rule that a decision for time t observes the m
// demands up to t-1.
func HistoryWindow(hist []*traffic.DemandMatrix, memory int, fallback *traffic.DemandMatrix) []*traffic.DemandMatrix {
	if len(hist) > memory {
		hist = hist[len(hist)-memory:]
	}
	// The window must be a stable snapshot (hist keeps mutating once the
	// caller's lock is released), so one small allocation per batch — not
	// per request — is the contract here.
	//gddr:allow hotpath per-batch window snapshot; hist mutates after the caller unlocks
	out := make([]*traffic.DemandMatrix, memory)
	pad := memory - len(hist)
	for i := 0; i < pad; i++ {
		out[i] = fallback
	}
	copy(out[pad:], hist)
	return out
}

// SetIterativeState overwrites the iterative-mode edge features in place:
// column 1 holds the pending action value per edge, column 2 marks edges
// whose weight has been set this round, column 3 marks the edge the next
// action will set (Eq. 6). target may be -1 to clear.
func (o *Observation) SetIterativeState(pending []float64, set []bool, target int) {
	ne := o.EdgeFeat.Rows
	for ei := 0; ei < ne; ei++ {
		v, s, tg := 0.0, 0.0, 0.0
		if pending != nil {
			v = pending[ei]
		}
		if set != nil && set[ei] {
			s = 1
		}
		if ei == target {
			tg = 1
		}
		o.EdgeFeat.Set(ei, 1, v)
		o.EdgeFeat.Set(ei, 2, s)
		o.EdgeFeat.Set(ei, 3, tg)
	}
	o.TargetEdge = target
}

// observe builds the observation for the demand history seq[t-m : t].
func (e *Env) observe() (*Observation, error) {
	m := e.cfg.Memory
	obs, err := Observe(e.g, e.seq[e.t-m:e.t])
	if err != nil {
		return nil, err
	}
	if e.cfg.Mode == IterativeAction {
		obs.SetIterativeState(e.pendingWeights, e.pendingSet, e.iterEdge)
	}
	return obs, nil
}
