package env

import (
	"gddr/internal/mat"
)

// observe builds the observation for the demand history seq[t-m : t].
func (e *Env) observe() (*Observation, error) {
	m := e.cfg.Memory
	n := e.g.NumNodes()
	ne := e.g.NumEdges()

	nodeFeat := mat.New(n, 2*m)
	flat := make([]float64, 0, m*n*n)
	for h := 0; h < m; h++ {
		dm := e.seq[e.t-m+h]
		// Per-node in/out sums, normalised by the largest node sum of this
		// DM so features stay comparable across graph sizes (§V-B).
		outs := make([]float64, n)
		ins := make([]float64, n)
		maxSum := 0.0
		for v := 0; v < n; v++ {
			outs[v] = dm.OutSum(v)
			ins[v] = dm.InSum(v)
			if outs[v] > maxSum {
				maxSum = outs[v]
			}
			if ins[v] > maxSum {
				maxSum = ins[v]
			}
		}
		if maxSum == 0 {
			maxSum = 1
		}
		for v := 0; v < n; v++ {
			nodeFeat.Set(v, 2*h, outs[v]/maxSum)
			nodeFeat.Set(v, 2*h+1, ins[v]/maxSum)
		}
		// Raw flattened history for the MLP baseline, normalised by the
		// largest entry of the DM (Valadarsky et al. feed the raw history).
		maxEntry := dm.MaxEntry()
		if maxEntry == 0 {
			maxEntry = 1
		}
		for _, v := range dm.Data {
			flat = append(flat, v/maxEntry)
		}
	}

	// Edge features: column 0 carries the normalised link capacity (the
	// agent cannot avoid low-capacity links it cannot see); columns 1-3
	// are the iterative-mode triple (value, set?, target?) of Eq. 6.
	edgeFeat := mat.New(ne, 4)
	maxCap := 0.0
	for ei := 0; ei < ne; ei++ {
		if c := e.g.Edge(ei).Capacity; c > maxCap {
			maxCap = c
		}
	}
	for ei := 0; ei < ne; ei++ {
		edgeFeat.Set(ei, 0, e.g.Edge(ei).Capacity/maxCap)
	}
	target := -1
	if e.cfg.Mode == IterativeAction {
		target = e.iterEdge
		for ei := 0; ei < ne; ei++ {
			edgeFeat.Set(ei, 1, e.pendingWeights[ei])
			if e.pendingSet[ei] {
				edgeFeat.Set(ei, 2, 1)
			}
			if ei == target {
				edgeFeat.Set(ei, 3, 1)
			}
		}
	}

	senders := make([]int, ne)
	receivers := make([]int, ne)
	for ei := 0; ei < ne; ei++ {
		edge := e.g.Edge(ei)
		senders[ei] = edge.From
		receivers[ei] = edge.To
	}

	global := mat.New(1, 1)
	global.Data[0] = 1 // constant bias channel

	return &Observation{
		G:          e.g,
		NodeFeat:   nodeFeat,
		EdgeFeat:   edgeFeat,
		Global:     global,
		Senders:    senders,
		Receivers:  receivers,
		Flat:       flat,
		TargetEdge: target,
	}, nil
}
