package env

import (
	"fmt"
	"math/rand"
)

// Task is one (graph, demand sequence) pair available to a MultiEnv.
type Task struct {
	Env *Env
}

// MultiEnv samples a member environment per episode, implementing the mixed
// training regime of the paper's generalisation experiment (§VIII-D): the
// agent trains across different topologies and sequences, which only the
// GNN policies support because their parameter count is topology-independent.
type MultiEnv struct {
	envs []*Env
	rng  *rand.Rand
	cur  *Env
}

var _ Interface = (*MultiEnv)(nil)

// NewMulti wraps the environments; episodes sample uniformly using rng.
func NewMulti(envs []*Env, rng *rand.Rand) (*MultiEnv, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("env: multi-env needs at least one environment")
	}
	if rng == nil {
		return nil, fmt.Errorf("env: multi-env needs a rand source")
	}
	return &MultiEnv{envs: envs, rng: rng}, nil
}

// Reset samples a member environment and starts an episode on it.
func (m *MultiEnv) Reset() (*Observation, error) {
	m.cur = m.envs[m.rng.Intn(len(m.envs))]
	return m.cur.Reset()
}

// Step forwards to the current member environment.
func (m *MultiEnv) Step(action []float64) (*Observation, float64, bool, error) {
	if m.cur == nil {
		return nil, 0, false, fmt.Errorf("env: multi-env stepped before reset")
	}
	return m.cur.Step(action)
}

// ActionDim returns the action dimension of the current episode's member.
func (m *MultiEnv) ActionDim() int {
	if m.cur == nil {
		return m.envs[0].ActionDim()
	}
	return m.cur.ActionDim()
}

// Current returns the member environment of the running episode.
func (m *MultiEnv) Current() *Env { return m.cur }

// Members returns the wrapped environments.
func (m *MultiEnv) Members() []*Env { return m.envs }
