package env

import (
	"context"
	"fmt"
	"math/rand"

	"gddr/internal/rng"
)

// MultiEnv samples a member environment per episode, implementing the mixed
// training regime of the paper's generalisation experiment (§VIII-D): the
// agent trains across different topologies and sequences, which only the
// GNN policies support because their parameter count is topology-independent.
//
// Member selection is delegated to a Sampler (uniform by default; weighted
// and curriculum schedules let generalisation runs anneal from small to
// large graphs), drawing from a serialisable random stream so a
// checkpointed run resumes the exact episode sequence.
type MultiEnv struct {
	envs    []*Env
	sampler Sampler
	src     *rng.Source
	r       *rand.Rand
	cur     int // member of the running episode; -1 before the first Reset

	episodes int // episodes started
	steps    int // successful Step calls
	budget   int // total Step calls this run will serve (0: unknown)
}

var _ TrainEnv = (*MultiEnv)(nil)

// NewMulti wraps the environments; episodes sample uniformly from a stream
// seeded with seed.
func NewMulti(envs []*Env, seed int64) (*MultiEnv, error) {
	return NewMultiSampled(envs, UniformSampler{}, seed)
}

// NewMultiSampled wraps the environments with an explicit episode sampler.
func NewMultiSampled(envs []*Env, sampler Sampler, seed int64) (*MultiEnv, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("env: multi-env needs at least one environment")
	}
	if sampler == nil {
		return nil, fmt.Errorf("env: multi-env needs a sampler")
	}
	m := &MultiEnv{envs: envs, sampler: sampler, cur: -1}
	m.Reseed(seed)
	return m, nil
}

// Reseed implements TrainEnv: it resets the episode-sampling stream.
func (m *MultiEnv) Reseed(seed int64) {
	m.src = rng.New(seed)
	m.r = rand.New(m.src)
}

// SetBudget implements TrainEnv: it declares the total number of Step calls
// this environment will serve, which defines the curriculum progress passed
// to the sampler.
func (m *MultiEnv) SetBudget(steps int) { m.budget = steps }

// SetContext binds ctx to every member (see Env.SetContext).
func (m *MultiEnv) SetContext(ctx context.Context) {
	for _, e := range m.envs {
		e.SetContext(ctx)
	}
}

// progress returns the fraction of the training budget consumed.
func (m *MultiEnv) progress() float64 {
	if m.budget <= 0 {
		return 0
	}
	p := float64(m.steps) / float64(m.budget)
	if p > 1 {
		p = 1
	}
	return p
}

// Reset samples a member environment and starts an episode on it.
func (m *MultiEnv) Reset() (*Observation, error) {
	idx := m.sampler.Pick(m.r, len(m.envs), m.progress())
	if idx < 0 || idx >= len(m.envs) {
		return nil, fmt.Errorf("env: sampler picked member %d of %d", idx, len(m.envs))
	}
	m.cur = idx
	m.episodes++
	return m.envs[idx].Reset()
}

// Step forwards to the current member environment.
func (m *MultiEnv) Step(action []float64) (*Observation, float64, bool, error) {
	if m.cur < 0 {
		return nil, 0, false, fmt.Errorf("env: multi-env stepped before reset")
	}
	obs, reward, done, err := m.envs[m.cur].Step(action)
	if err == nil {
		m.steps++
	}
	return obs, reward, done, err
}

// ActionDim returns the action dimension of the current episode's member.
func (m *MultiEnv) ActionDim() int {
	if m.cur < 0 {
		return m.envs[0].ActionDim()
	}
	return m.envs[m.cur].ActionDim()
}

// Current returns the member environment of the running episode (nil before
// the first Reset).
func (m *MultiEnv) Current() *Env {
	if m.cur < 0 {
		return nil
	}
	return m.envs[m.cur]
}

// Members returns the wrapped environments.
func (m *MultiEnv) Members() []*Env { return m.envs }

// Clone implements TrainEnv: members are cloned (sharing graphs, sequences,
// and the LP cache), the sampler is shared (samplers are stateless), and
// the clone starts with fresh counters and the same stream state — callers
// normally Reseed the clone with a per-worker stream.
func (m *MultiEnv) Clone() TrainEnv {
	envs := make([]*Env, len(m.envs))
	for i, e := range m.envs {
		envs[i] = e.Clone().(*Env)
	}
	c := &MultiEnv{envs: envs, sampler: m.sampler, cur: -1, budget: m.budget}
	c.src = rng.New(0)
	c.src.SetState(m.src.State())
	c.r = rand.New(c.src)
	return c
}

// State implements TrainEnv.
func (m *MultiEnv) State() State {
	st := State{Member: m.cur, Episodes: m.episodes, Steps: m.steps, RNG: m.src.State()}
	if m.cur >= 0 {
		member := m.envs[m.cur].State()
		st.T = member.T
		st.IterEdge = member.IterEdge
		st.Pending = member.Pending
		st.PendingSet = member.PendingSet
	}
	return st
}

// Restore implements TrainEnv.
func (m *MultiEnv) Restore(st State) error {
	if st.Member < -1 || st.Member >= len(m.envs) {
		return fmt.Errorf("env: restore member %d outside [-1,%d)", st.Member, len(m.envs))
	}
	if st.Episodes < 0 || st.Steps < 0 {
		return fmt.Errorf("env: restore has negative counters (%d episodes, %d steps)", st.Episodes, st.Steps)
	}
	if st.Member >= 0 {
		member := st
		member.Member = -1
		if err := m.envs[st.Member].Restore(member); err != nil {
			return err
		}
	}
	m.cur = st.Member
	m.episodes = st.Episodes
	m.steps = st.Steps
	m.src.SetState(st.RNG)
	m.r = rand.New(m.src)
	return nil
}

// Observation implements TrainEnv.
func (m *MultiEnv) Observation() (*Observation, error) {
	if m.cur < 0 {
		return nil, fmt.Errorf("env: multi-env has no episode in progress")
	}
	return m.envs[m.cur].Observation()
}
