package env

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sampler decides which member environment a MultiEnv runs its next episode
// on. progress is the fraction of the training budget already consumed (in
// [0,1]; 0 when no budget is known), which lets curriculum samplers anneal
// the member distribution over a run.
//
// Implementations must be stateless and safe to share between the cloned
// environments of parallel rollout workers: all variation must come from the
// rand source and the (n, progress) arguments, so a restored run resamples
// identically.
type Sampler interface {
	Pick(r *rand.Rand, n int, progress float64) int
}

// UniformSampler picks members uniformly — the paper's mixed training
// regime (§VIII-D) and the historical MultiEnv behaviour.
type UniformSampler struct{}

// Pick implements Sampler.
func (UniformSampler) Pick(r *rand.Rand, n int, _ float64) int { return r.Intn(n) }

// WeightedSampler picks member i with probability proportional to its
// weight.
type WeightedSampler struct {
	cum []float64 // strictly increasing cumulative weights
}

// NewWeighted builds a weighted sampler. Weights must be non-negative with
// a positive sum.
func NewWeighted(weights []float64) (*WeightedSampler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("env: weighted sampler needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("env: invalid sampler weight %g at %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("env: sampler weights sum to %g, need > 0", total)
	}
	return &WeightedSampler{cum: cum}, nil
}

// Pick implements Sampler.
func (s *WeightedSampler) Pick(r *rand.Rand, n int, _ float64) int {
	if n != len(s.cum) {
		// Defensive: a mis-sized sampler must not silently skew training.
		panic(fmt.Sprintf("env: weighted sampler has %d weights for %d members", len(s.cum), n))
	}
	x := r.Float64() * s.cum[len(s.cum)-1]
	i := sort.SearchFloat64s(s.cum, x)
	if i >= len(s.cum) {
		i = len(s.cum) - 1
	}
	// Skip zero-weight members SearchFloat64s can land on when x falls
	// exactly on a repeated cumulative value.
	for i > 0 && s.cum[i] == s.cum[i-1] {
		i--
	}
	return i
}

// CurriculumStage is one phase of a curriculum schedule: the member
// distribution used while progress <= UpTo. Nil weights mean uniform.
type CurriculumStage struct {
	UpTo    float64
	Weights []float64
}

// CurriculumSampler anneals the member distribution over training progress:
// the first stage whose UpTo bound is >= progress is used (the final stage
// catches everything beyond its bound, so late training keeps its
// distribution even if progress estimates overshoot 1).
type CurriculumSampler struct {
	stages   []CurriculumStage
	samplers []Sampler // parallel to stages
}

// NewCurriculum builds a curriculum sampler. Stages must be non-empty with
// strictly increasing UpTo bounds.
func NewCurriculum(stages []CurriculumStage) (*CurriculumSampler, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("env: curriculum needs at least one stage")
	}
	samplers := make([]Sampler, len(stages))
	prev := math.Inf(-1)
	for i, st := range stages {
		if st.UpTo <= prev {
			return nil, fmt.Errorf("env: curriculum stage %d bound %g not increasing", i, st.UpTo)
		}
		prev = st.UpTo
		if st.Weights == nil {
			samplers[i] = UniformSampler{}
			continue
		}
		w, err := NewWeighted(st.Weights)
		if err != nil {
			return nil, fmt.Errorf("env: curriculum stage %d: %w", i, err)
		}
		samplers[i] = w
	}
	return &CurriculumSampler{stages: stages, samplers: samplers}, nil
}

// Pick implements Sampler.
func (s *CurriculumSampler) Pick(r *rand.Rand, n int, progress float64) int {
	idx := len(s.stages) - 1
	for i, st := range s.stages {
		if progress <= st.UpTo {
			idx = i
			break
		}
	}
	return s.samplers[idx].Pick(r, n, progress)
}

// SamplerSpec is the JSON-serialisable description of a sampling strategy,
// carried inside training configs and checkpoints so a resumed run rebuilds
// the exact sampler. The zero value means uniform.
type SamplerSpec struct {
	// Kind selects the strategy: "" or "uniform", "weighted" (explicit
	// Weights), "size" (members weighted by node count ^ Alpha),
	// "curriculum" (explicit Stages), or "size-curriculum" (StageCount
	// stages annealing uniformly from the smallest graphs to all of them).
	Kind    string             `json:"kind,omitempty"`
	Weights []float64          `json:"weights,omitempty"`
	Alpha   float64            `json:"alpha,omitempty"`
	Stages  []SamplerSpecStage `json:"stages,omitempty"`
	// StageCount is the number of size-curriculum stages (default 3).
	StageCount int `json:"stage_count,omitempty"`
}

// SamplerSpecStage is the wire form of one curriculum stage.
type SamplerSpecStage struct {
	UpTo    float64   `json:"up_to"`
	Weights []float64 `json:"weights,omitempty"`
}

// Build materialises the spec for a concrete member set.
func (s SamplerSpec) Build(members []*Env) (Sampler, error) {
	n := len(members)
	if n == 0 {
		return nil, fmt.Errorf("env: sampler spec needs at least one member")
	}
	switch s.Kind {
	case "", "uniform":
		return UniformSampler{}, nil
	case "weighted":
		if len(s.Weights) != n {
			return nil, fmt.Errorf("env: weighted sampler spec has %d weights for %d members", len(s.Weights), n)
		}
		return NewWeighted(s.Weights)
	case "size":
		alpha := s.Alpha
		if alpha == 0 {
			alpha = 1
		}
		w := make([]float64, n)
		for i, e := range members {
			w[i] = math.Pow(float64(e.Graph().NumNodes()), alpha)
		}
		return NewWeighted(w)
	case "curriculum":
		stages := make([]CurriculumStage, len(s.Stages))
		for i, st := range s.Stages {
			if st.Weights != nil && len(st.Weights) != n {
				return nil, fmt.Errorf("env: curriculum spec stage %d has %d weights for %d members", i, len(st.Weights), n)
			}
			stages[i] = CurriculumStage{UpTo: st.UpTo, Weights: st.Weights}
		}
		return NewCurriculum(stages)
	case "size-curriculum":
		count := s.StageCount
		if count <= 0 {
			count = 3
		}
		sizes := make([]int, n)
		for i, e := range members {
			sizes[i] = e.Graph().NumNodes()
		}
		return NewCurriculum(SizeCurriculumStages(sizes, count))
	default:
		return nil, fmt.Errorf("env: unknown sampler kind %q", s.Kind)
	}
}

// SizeCurriculumStages builds a small-to-large annealing schedule over
// members with the given graph sizes: stage k (of count) samples uniformly
// among the members whose size is at or below the k-th size quantile, so
// early training sees only the smallest graphs and the final stage sees all
// of them. Useful for the generalisation experiments, where small graphs
// give denser reward signal per wall-clock second.
func SizeCurriculumStages(sizes []int, count int) []CurriculumStage {
	if count < 1 {
		count = 1
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	stages := make([]CurriculumStage, count)
	for k := 0; k < count; k++ {
		// Threshold at the ((k+1)/count) quantile of member sizes.
		qi := (k + 1) * len(sorted) / count
		if qi < 1 {
			qi = 1
		}
		thr := sorted[qi-1]
		w := make([]float64, len(sizes))
		any := false
		for i, sz := range sizes {
			if sz <= thr {
				w[i] = 1
				any = true
			}
		}
		if !any { // unreachable with qi >= 1, but keep the stage valid
			for i := range w {
				w[i] = 1
			}
		}
		stages[k] = CurriculumStage{UpTo: float64(k+1) / float64(count), Weights: w}
	}
	// The last stage must cover every member so training never starves the
	// largest graphs.
	last := stages[count-1].Weights
	for i := range last {
		last[i] = 1
	}
	return stages
}
