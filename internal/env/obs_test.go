package env

import (
	"testing"

	"gddr/internal/topo"
)

// TestObserverReuseMatchesObserve: an Observer reusing its buffers across
// histories must produce observations bit-identical to fresh package-level
// Observe calls, including clearing the iterative edge-feature columns a
// previous SetIterativeState wrote.
func TestObserverReuseMatchesObserve(t *testing.T) {
	g := topo.Abilene()
	seq := testSequence(t, g.NumNodes(), 6, 3, 77)
	ob := new(Observer)
	for step := 0; step < 4; step++ {
		hist := seq[step : step+3]
		want, err := Observe(g, hist)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ob.Observe(g, hist)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range want.NodeFeat.Data {
			if got.NodeFeat.Data[i] != v {
				t.Fatalf("step %d node feature %d: %g != %g", step, i, got.NodeFeat.Data[i], v)
			}
		}
		for i, v := range want.EdgeFeat.Data {
			if got.EdgeFeat.Data[i] != v {
				t.Fatalf("step %d edge feature %d: %g != %g", step, i, got.EdgeFeat.Data[i], v)
			}
		}
		if len(got.Flat) != len(want.Flat) {
			t.Fatalf("step %d flat length %d != %d", step, len(got.Flat), len(want.Flat))
		}
		for i, v := range want.Flat {
			if got.Flat[i] != v {
				t.Fatalf("step %d flat %d: %g != %g", step, i, got.Flat[i], v)
			}
		}
		if got.TargetEdge != -1 {
			t.Fatalf("step %d target edge %d, want -1", step, got.TargetEdge)
		}
		// Dirty the iterative columns; the next reuse must clear them.
		pending := make([]float64, g.NumEdges())
		for i := range pending {
			pending[i] = 0.5
		}
		got.SetIterativeState(pending, make([]bool, g.NumEdges()), 2)
	}
}

// TestObserverResizesAcrossTopologies: switching graphs mid-stream must
// resize the buffers, not observe through stale ones.
func TestObserverResizesAcrossTopologies(t *testing.T) {
	ob := new(Observer)
	ga := topo.Abilene()
	gn := topo.NSFNet()
	histA := testSequence(t, ga.NumNodes(), 3, 3, 5)
	histN := testSequence(t, gn.NumNodes(), 3, 3, 5)
	for i := 0; i < 2; i++ {
		oa, err := ob.Observe(ga, histA)
		if err != nil {
			t.Fatal(err)
		}
		if oa.NodeFeat.Rows != ga.NumNodes() || oa.EdgeFeat.Rows != ga.NumEdges() {
			t.Fatalf("abilene observation sized %dx%d", oa.NodeFeat.Rows, oa.EdgeFeat.Rows)
		}
		on, err := ob.Observe(gn, histN)
		if err != nil {
			t.Fatal(err)
		}
		if on.NodeFeat.Rows != gn.NumNodes() || on.EdgeFeat.Rows != gn.NumEdges() {
			t.Fatalf("nsfnet observation sized %dx%d", on.NodeFeat.Rows, on.EdgeFeat.Rows)
		}
	}
}
