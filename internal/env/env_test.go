package env

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/graph"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func testSequence(t *testing.T, n, length, cycle int, seed int64) []*traffic.DemandMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seq, err := traffic.BimodalCyclical(n, length, cycle, traffic.BimodalParams{
		LowMean: 40, LowStd: 10, HighMean: 80, HighStd: 10, ElephantProb: 0.2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func smallEnv(t *testing.T, mode Mode) *Env {
	t.Helper()
	g, err := graph.Ring(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Memory = 2
	cfg.Mode = mode
	e, err := New(g, testSequence(t, 4, 8, 3, 1), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnvValidation(t *testing.T) {
	g, err := graph.Ring(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	seq := testSequence(t, 4, 8, 3, 1)
	if _, err := New(g, seq, Config{Memory: 0, Gamma: 2, Mode: FullAction, WeightScale: 2}, nil); err == nil {
		t.Fatal("memory 0 accepted")
	}
	if _, err := New(g, seq[:2], DefaultConfig(), nil); err == nil {
		t.Fatal("too-short sequence accepted")
	}
	if _, err := New(g, testSequence(t, 5, 8, 3, 1), DefaultConfig(), nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	bad := Config{Memory: 2, Gamma: -1, Mode: FullAction, WeightScale: 2}
	if _, err := New(g, seq, bad, nil); err == nil {
		t.Fatal("negative gamma accepted")
	}
	// Non-strongly-connected graph rejected.
	d := graph.New(4)
	d.MustAddEdge(0, 1, 1)
	d.MustAddEdge(1, 2, 1)
	d.MustAddEdge(2, 3, 1)
	if _, err := New(d, seq, DefaultConfig(), nil); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestFullEpisodeWalk(t *testing.T) {
	e := smallEnv(t, FullAction)
	obs, err := e.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if e.ActionDim() != e.Graph().NumEdges() {
		t.Fatalf("action dim %d want %d", e.ActionDim(), e.Graph().NumEdges())
	}
	steps := 0
	for {
		if obs != nil {
			if obs.NodeFeat.Rows != 4 || obs.NodeFeat.Cols != 4 {
				t.Fatalf("node feat %dx%d want 4x4", obs.NodeFeat.Rows, obs.NodeFeat.Cols)
			}
			if len(obs.Flat) != 2*16 {
				t.Fatalf("flat len %d want 32", len(obs.Flat))
			}
			if obs.TargetEdge != -1 {
				t.Fatal("full mode must not set a target edge")
			}
		}
		action := make([]float64, e.ActionDim())
		next, reward, done, err := e.Step(action)
		if err != nil {
			t.Fatal(err)
		}
		if reward > -1+1e-9 {
			t.Fatalf("reward %g must be <= -1 (ratio >= 1)", reward)
		}
		steps++
		if done {
			if next != nil {
				t.Fatal("done step returned an observation")
			}
			break
		}
		obs = next
	}
	if steps != e.EpisodeSteps() {
		t.Fatalf("episode steps %d want %d", steps, e.EpisodeSteps())
	}
	// Stepping after done errors until reset.
	if _, _, _, err := e.Step(make([]float64, e.ActionDim())); err == nil {
		t.Fatal("step after done accepted")
	}
	if _, err := e.Reset(); err != nil {
		t.Fatal(err)
	}
}

func TestObservationNormalised(t *testing.T) {
	e := smallEnv(t, FullAction)
	obs, err := e.Reset()
	if err != nil {
		t.Fatal(err)
	}
	maxFeat := 0.0
	for _, v := range obs.NodeFeat.Data {
		if v < 0 {
			t.Fatal("negative node feature")
		}
		if v > maxFeat {
			maxFeat = v
		}
	}
	if maxFeat > 1+1e-9 || maxFeat < 0.999 {
		t.Fatalf("node features not normalised to max 1: max=%g", maxFeat)
	}
	for _, v := range obs.Flat {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("flat obs value %g outside [0,1]", v)
		}
	}
}

func TestRewardMatchesDirectComputation(t *testing.T) {
	e := smallEnv(t, FullAction)
	if _, err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	// The first step routes seq[memory]; verify against a direct evaluation.
	dm := e.seq[e.cfg.Memory]
	action := make([]float64, e.ActionDim())
	for i := range action {
		action[i] = 0.3
	}
	_, reward, _, err := e.Step(action)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, len(action))
	for i := range weights {
		weights[i] = e.base[i] * math.Exp(e.cfg.WeightScale*0.3)
	}
	wantOpt, err := e.opt.Get(e.g, dm)
	if err != nil {
		t.Fatal(err)
	}
	res := mustEval(t, e, dm, weights)
	want := -res / wantOpt
	if math.Abs(reward-want) > 1e-9 {
		t.Fatalf("reward %g want %g", reward, want)
	}
}

func mustEval(t *testing.T, e *Env, dm *traffic.DemandMatrix, weights []float64) float64 {
	t.Helper()
	r, err := evalWeightsForTest(e, dm, weights)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIterativeEpisodeWalk(t *testing.T) {
	e := smallEnv(t, IterativeAction)
	obs, err := e.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if e.ActionDim() != 2 {
		t.Fatalf("iterative action dim %d want 2", e.ActionDim())
	}
	numEdges := e.Graph().NumEdges()
	steps := 0
	rewardBearing := 0
	for {
		if obs != nil {
			if obs.TargetEdge != steps%numEdges {
				t.Fatalf("step %d: target edge %d want %d", steps, obs.TargetEdge, steps%numEdges)
			}
			// Set-flags must match progress within the DM.
			wantSet := steps % numEdges
			gotSet := 0
			for ei := 0; ei < numEdges; ei++ {
				if obs.EdgeFeat.At(ei, 2) == 1 {
					gotSet++
				}
			}
			if gotSet != wantSet {
				t.Fatalf("step %d: %d set flags want %d", steps, gotSet, wantSet)
			}
		}
		next, reward, done, err := e.Step([]float64{0.5, 0})
		if err != nil {
			t.Fatal(err)
		}
		if reward != 0 {
			rewardBearing++
			if (steps+1)%numEdges != 0 {
				t.Fatalf("reward at non-final iteration step %d", steps)
			}
		}
		steps++
		if done {
			break
		}
		obs = next
	}
	wantSteps := (8 - 2) * numEdges
	if steps != wantSteps {
		t.Fatalf("steps %d want %d", steps, wantSteps)
	}
	if rewardBearing != 6 {
		t.Fatalf("reward-bearing steps %d want 6", rewardBearing)
	}
}

func TestOptimalCacheHits(t *testing.T) {
	e := smallEnv(t, FullAction)
	if _, err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	for {
		_, _, done, err := e.Step(make([]float64, e.ActionDim()))
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	// Cyclical sequence with cycle 3 → only 3 unique DMs → 3 LP solves.
	if e.opt.Len() != 3 {
		t.Fatalf("cache has %d entries, want 3", e.opt.Len())
	}
}

func TestSharedCacheAcrossEnvs(t *testing.T) {
	g := topo.Abilene()
	cache := NewOptimalCache()
	seq := testSequence(t, g.NumNodes(), 6, 2, 5)
	cfg := DefaultConfig()
	cfg.Memory = 2
	e1, err := New(g, seq, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(g, seq, cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e1.Step(make([]float64, e1.ActionDim())); err != nil {
		t.Fatal(err)
	}
	before := cache.Len()
	if _, err := e2.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e2.Step(make([]float64, e2.ActionDim())); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != before {
		t.Fatal("second env re-solved a cached DM")
	}
}

func TestMultiEnvSamplesMembers(t *testing.T) {
	e1 := smallEnv(t, FullAction)
	g2, err := graph.Ring(5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Memory = 2
	e2, err := New(g2, testSequence(t, 5, 8, 3, 2), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti([]*Env{e1, e2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*Env]bool{}
	for i := 0; i < 20; i++ {
		if _, err := m.Reset(); err != nil {
			t.Fatal(err)
		}
		seen[m.Current()] = true
	}
	if len(seen) != 2 {
		t.Fatalf("multi-env sampled %d members, want 2", len(seen))
	}
	if _, err := NewMulti(nil, 3); err == nil {
		t.Fatal("empty multi-env accepted")
	}
}

func TestMultiEnvActionDimTracksCurrent(t *testing.T) {
	e1 := smallEnv(t, FullAction) // ring-4: 8 edges
	g2, err := graph.Ring(6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Memory = 2
	e2, err := New(g2, testSequence(t, 6, 8, 3, 2), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti([]*Env{e1, e2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Reset(); err != nil {
			t.Fatal(err)
		}
		if m.ActionDim() != m.Current().ActionDim() {
			t.Fatal("action dim does not track current member")
		}
	}
}

func TestMeanUtilizationObjective(t *testing.T) {
	g, err := graph.Ring(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Memory = 2
	cfg.Objective = MeanUtilization
	e, err := New(g, testSequence(t, 4, 8, 3, 9), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	_, reward, _, err := e.Step(make([]float64, e.ActionDim()))
	if err != nil {
		t.Fatal(err)
	}
	if reward > -1+1e-9 {
		t.Fatalf("mean-utilisation reward %g must be <= -1", reward)
	}
	// The two objectives must actually differ on the same action.
	cfgMax := DefaultConfig()
	cfgMax.Memory = 2
	eMax, err := New(g, testSequence(t, 4, 8, 3, 9), cfgMax, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eMax.Reset(); err != nil {
		t.Fatal(err)
	}
	_, rewardMax, _, err := eMax.Step(make([]float64, eMax.ActionDim()))
	if err != nil {
		t.Fatal(err)
	}
	if reward == rewardMax {
		t.Fatalf("objectives indistinguishable: both %g", reward)
	}
}

func TestObjectiveString(t *testing.T) {
	if MaxUtilization.String() != "max-utilisation" || MeanUtilization.String() != "mean-utilisation" {
		t.Fatal("objective names wrong")
	}
}
