package env

import "fmt"

// TrainEnv is the contract the parallel training pipeline needs on top of
// the Gym-like Interface: cloning (one independent copy per rollout worker),
// deterministic reseeding of any internal randomness, a training budget for
// curriculum progress, and a serialisable episode state so a checkpointed
// run resumes bit-identically. Env and MultiEnv both implement it.
type TrainEnv interface {
	Interface
	// Clone returns an independent copy sharing the immutable pieces
	// (graphs, demand sequences, LP cache) with fresh episode state.
	Clone() TrainEnv
	// Reseed re-seeds the environment's internal random stream (episode
	// sampling); a no-op for environments without one.
	Reseed(seed int64)
	// SetBudget declares how many Step calls this environment will serve
	// over the whole training run, driving curriculum progress; a no-op for
	// environments without samplers.
	SetBudget(steps int)
	// State captures the resumable episode state.
	State() State
	// Restore rewinds to a state captured with State.
	Restore(State) error
	// Observation rebuilds the current observation from the episode state.
	// It errors when no episode is in progress.
	Observation() (*Observation, error)
}

// State is the JSON-serialisable episode state of a training environment:
// enough to rebuild the exact observation stream of an interrupted run.
// For a bare Env, Member is -1 and the MultiEnv fields are zero.
type State struct {
	Member   int    `json:"member"`             // MultiEnv member of the running episode; -1 if none
	Episodes int    `json:"episodes,omitempty"` // MultiEnv episodes started
	Steps    int    `json:"steps,omitempty"`    // MultiEnv steps taken
	RNG      uint64 `json:"rng,omitempty"`      // MultiEnv sampler stream state

	T          int       `json:"t"` // index of the DM routed next
	IterEdge   int       `json:"iter_edge,omitempty"`
	Pending    []float64 `json:"pending,omitempty"`
	PendingSet []bool    `json:"pending_set,omitempty"`
}

var _ TrainEnv = (*Env)(nil)

// Clone returns an independent environment over the same graph, sequence,
// and shared LP cache (the cache is concurrency-safe), with fresh episode
// state. Parallel rollout workers each step their own clone.
func (e *Env) Clone() TrainEnv {
	return &Env{g: e.g, seq: e.seq, cfg: e.cfg, opt: e.opt, ctx: e.ctx, base: e.base}
}

// Reseed implements TrainEnv; a bare Env draws no randomness.
func (e *Env) Reseed(int64) {}

// SetBudget implements TrainEnv; a bare Env tracks no curriculum progress.
func (e *Env) SetBudget(int) {}

// inEpisode reports whether an episode is in progress (Reset has run and
// the sequence is not exhausted).
func (e *Env) inEpisode() bool { return e.t >= e.cfg.Memory && e.t < len(e.seq) }

// State implements TrainEnv.
func (e *Env) State() State {
	return State{
		Member:     -1,
		T:          e.t,
		IterEdge:   e.iterEdge,
		Pending:    append([]float64(nil), e.pendingWeights...),
		PendingSet: append([]bool(nil), e.pendingSet...),
	}
}

// Restore implements TrainEnv.
func (e *Env) Restore(st State) error {
	if st.T < 0 || st.T > len(e.seq) {
		return fmt.Errorf("env: restore t=%d outside [0,%d]", st.T, len(e.seq))
	}
	ne := e.g.NumEdges()
	if st.Pending != nil && len(st.Pending) != ne {
		return fmt.Errorf("env: restore has %d pending weights, graph has %d edges", len(st.Pending), ne)
	}
	if st.PendingSet != nil && len(st.PendingSet) != ne {
		return fmt.Errorf("env: restore has %d pending flags, graph has %d edges", len(st.PendingSet), ne)
	}
	if st.IterEdge < 0 || st.IterEdge >= max(1, ne) {
		return fmt.Errorf("env: restore iter edge %d outside [0,%d)", st.IterEdge, ne)
	}
	e.t = st.T
	e.iterEdge = st.IterEdge
	e.pendingWeights = append([]float64(nil), st.Pending...)
	e.pendingSet = append([]bool(nil), st.PendingSet...)
	if e.pendingWeights == nil {
		e.pendingWeights = make([]float64, ne)
	}
	if e.pendingSet == nil {
		e.pendingSet = make([]bool, ne)
	}
	return nil
}

// Observation implements TrainEnv: it rebuilds the observation the next
// Step expects, a pure function of the restored episode state.
func (e *Env) Observation() (*Observation, error) {
	if !e.inEpisode() {
		return nil, fmt.Errorf("env: no episode in progress (t=%d)", e.t)
	}
	return e.observe()
}
