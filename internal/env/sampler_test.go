package env

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/graph"
)

func pickCounts(t *testing.T, s Sampler, n, draws int, progress float64) []int {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		idx := s.Pick(r, n, progress)
		if idx < 0 || idx >= n {
			t.Fatalf("pick %d outside [0,%d)", idx, n)
		}
		counts[idx]++
	}
	return counts
}

func TestUniformSamplerDistribution(t *testing.T) {
	counts := pickCounts(t, UniformSampler{}, 4, 8000, 0)
	for i, c := range counts {
		if math.Abs(float64(c)/8000-0.25) > 0.03 {
			t.Fatalf("member %d picked %d of 8000, want ~2000", i, c)
		}
	}
}

func TestWeightedSamplerDistribution(t *testing.T) {
	s, err := NewWeighted([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := pickCounts(t, s, 3, 8000, 0)
	if counts[1] != 0 {
		t.Fatalf("zero-weight member picked %d times", counts[1])
	}
	if math.Abs(float64(counts[0])/8000-0.25) > 0.03 {
		t.Fatalf("member 0 picked %d of 8000, want ~2000", counts[0])
	}
	if math.Abs(float64(counts[2])/8000-0.75) > 0.03 {
		t.Fatalf("member 2 picked %d of 8000, want ~6000", counts[2])
	}
}

func TestWeightedSamplerRejectsBadWeights(t *testing.T) {
	if _, err := NewWeighted(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewWeighted([]float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewWeighted([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewWeighted([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestCurriculumSamplerStagesByProgress(t *testing.T) {
	s, err := NewCurriculum([]CurriculumStage{
		{UpTo: 0.5, Weights: []float64{1, 0}},
		{UpTo: 1.0, Weights: []float64{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	early := pickCounts(t, s, 2, 200, 0.2)
	if early[1] != 0 {
		t.Fatalf("early stage leaked member 1: %v", early)
	}
	late := pickCounts(t, s, 2, 200, 0.9)
	if late[0] != 0 {
		t.Fatalf("late stage leaked member 0: %v", late)
	}
	// Progress beyond the last bound must fall back to the final stage.
	over := pickCounts(t, s, 2, 50, 1.5)
	if over[0] != 0 {
		t.Fatalf("overshoot progress left the final stage: %v", over)
	}
}

func TestCurriculumRejectsBadStages(t *testing.T) {
	if _, err := NewCurriculum(nil); err == nil {
		t.Fatal("empty curriculum accepted")
	}
	if _, err := NewCurriculum([]CurriculumStage{{UpTo: 0.5}, {UpTo: 0.5}}); err == nil {
		t.Fatal("non-increasing stage bounds accepted")
	}
	if _, err := NewCurriculum([]CurriculumStage{{UpTo: 1, Weights: []float64{0}}}); err == nil {
		t.Fatal("all-zero stage weights accepted")
	}
}

func TestSizeCurriculumStagesAnnealSmallToLarge(t *testing.T) {
	sizes := []int{12, 4, 8}
	stages := SizeCurriculumStages(sizes, 3)
	if len(stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(stages))
	}
	// First stage: only the smallest member (size 4, index 1).
	if w := stages[0].Weights; w[1] == 0 || w[0] != 0 || w[2] != 0 {
		t.Fatalf("first stage weights %v, want only the smallest member", w)
	}
	// Last stage: everyone.
	for i, w := range stages[2].Weights {
		if w == 0 {
			t.Fatalf("final stage excludes member %d", i)
		}
	}
	if stages[2].UpTo != 1 {
		t.Fatalf("final stage bound %g, want 1", stages[2].UpTo)
	}
}

func TestSamplerSpecBuild(t *testing.T) {
	e1 := smallEnv(t, FullAction) // ring-4
	g2, err := graph.Ring(6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Memory = 2
	e2, err := New(g2, testSequence(t, 6, 8, 3, 2), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	members := []*Env{e1, e2}

	if _, err := (SamplerSpec{}).Build(members); err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if _, err := (SamplerSpec{Kind: "weighted", Weights: []float64{1, 2}}).Build(members); err != nil {
		t.Fatalf("weighted spec: %v", err)
	}
	if _, err := (SamplerSpec{Kind: "weighted", Weights: []float64{1}}).Build(members); err == nil {
		t.Fatal("mis-sized weighted spec accepted")
	}
	s, err := (SamplerSpec{Kind: "size", Alpha: 2}).Build(members)
	if err != nil {
		t.Fatal(err)
	}
	counts := pickCounts(t, s, 2, 4000, 0)
	// Weights 16 vs 36 -> member 1 share ~0.69.
	if math.Abs(float64(counts[1])/4000-36.0/52.0) > 0.04 {
		t.Fatalf("size-weighted share off: %v", counts)
	}
	if _, err := (SamplerSpec{Kind: "size-curriculum", StageCount: 2}).Build(members); err != nil {
		t.Fatalf("size-curriculum spec: %v", err)
	}
	if _, err := (SamplerSpec{Kind: "bogus"}).Build(members); err == nil {
		t.Fatal("unknown sampler kind accepted")
	}
	if _, err := (SamplerSpec{}).Build(nil); err == nil {
		t.Fatal("empty member set accepted")
	}
}

func TestMultiEnvCloneRestoreRoundTrip(t *testing.T) {
	e1 := smallEnv(t, FullAction)
	e2 := smallEnv(t, FullAction)
	m, err := NewMulti([]*Env{e1, e2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	m.SetBudget(100)
	if _, err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Step(make([]float64, m.ActionDim())); err != nil {
		t.Fatal(err)
	}
	st := m.State()

	c := m.Clone().(*MultiEnv)
	if err := c.Restore(st); err != nil {
		t.Fatal(err)
	}
	// The restored clone must replay the identical episode/member sequence.
	wantObs, err := m.Observation()
	if err != nil {
		t.Fatal(err)
	}
	gotObs, err := c.Observation()
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantObs.Flat {
		if wantObs.Flat[i] != gotObs.Flat[i] {
			t.Fatal("restored observation differs")
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Reset(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Reset(); err != nil {
			t.Fatal(err)
		}
		if m.cur != c.cur {
			t.Fatalf("member sequence diverged at episode %d: %d vs %d", i, m.cur, c.cur)
		}
	}
	if err := m.Restore(State{Member: 5}); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestEnvRestoreValidates(t *testing.T) {
	e := smallEnv(t, FullAction)
	if err := e.Restore(State{Member: -1, T: 999}); err == nil {
		t.Fatal("out-of-range t accepted")
	}
	if err := e.Restore(State{Member: -1, T: 2, Pending: []float64{1}}); err == nil {
		t.Fatal("mis-sized pending accepted")
	}
	if _, err := e.Observation(); err == nil {
		t.Fatal("observation outside an episode accepted")
	}
}
