// Package env implements the paper's OpenAI-Gym-style reinforcement-learning
// environment for data-driven routing (§V): observations are histories of
// traffic demands summarised per node, actions are edge weights (all at once
// or one edge per iteration), and the reward compares the agent's routing
// against the LP-optimal routing, r = -U_max(agent)/U_max(optimal) (Eq. 2).
package env

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gddr/internal/graph"
	"gddr/internal/lp"
	"gddr/internal/mat"
	"gddr/internal/metrics"
	"gddr/internal/routing"
	"gddr/internal/traffic"
)

// Mode selects the action space.
type Mode int

// Action-space modes. FullAction emits every edge weight in one action
// (paper §VII-A); IterativeAction sets one edge per step and reads γ from
// the final action (paper §VII-B).
const (
	FullAction Mode = iota + 1
	IterativeAction
)

// Objective selects the utility function the reward compares against — the
// paper's primary max-utilisation objective, or the mean-utilisation
// alternative from its further-work section (§IX-A).
type Objective int

// Objectives. The zero value behaves as MaxUtilization so existing configs
// keep the paper's primary objective.
const (
	MaxUtilization Objective = iota
	MeanUtilization
)

func (o Objective) String() string {
	switch o {
	case MaxUtilization:
		return "max-utilisation"
	case MeanUtilization:
		return "mean-utilisation"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

func (m Mode) String() string {
	switch m {
	case FullAction:
		return "full"
	case IterativeAction:
		return "iterative"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises the environment.
type Config struct {
	Memory      int     // demand history length m (paper uses 5)
	Gamma       float64 // softmin γ for FullAction mode
	Mode        Mode
	WeightScale float64 // edge weight = base(e) * exp(WeightScale * action)
	// Objective selects the utility function (default: MaxUtilization).
	Objective Objective
	// CapacityAware makes the action-to-weight mapping multiplicative
	// around inverse-capacity base weights instead of uniform ones, so the
	// untrained policy starts from the classic capacity-aware ECMP routing
	// rather than uniform splitting. This warm start compensates for the
	// scaled-down training budgets of this reproduction (DESIGN.md
	// substitution #5); the action space and its semantics are unchanged.
	CapacityAware bool
}

// DefaultConfig returns the paper's main experimental settings.
func DefaultConfig() Config {
	return Config{
		Memory:        5,
		Gamma:         routing.DefaultGamma,
		Mode:          FullAction,
		WeightScale:   2,
		CapacityAware: true,
	}
}

// Observation is one environment state. Node features are the normalised
// outgoing/incoming demand sums per history step (§V-B); edge features are
// the iterative-mode triple (value, set?, target?) of Eq. 6 (zeros in full
// mode); Flat is the raw normalised m·N² history for the MLP baseline.
type Observation struct {
	G          *graph.Graph
	NodeFeat   *mat.Matrix // N x 2m
	EdgeFeat   *mat.Matrix // E x 3
	Global     *mat.Matrix // 1 x 1 (constant bias input)
	Senders    []int
	Receivers  []int
	Flat       []float64 // m*N*N
	TargetEdge int       // iterative mode: edge set by the next action; -1 in full mode
}

// Interface is the Gym-like contract consumed by the PPO trainer.
type Interface interface {
	// Reset starts a new episode and returns the first observation.
	Reset() (*Observation, error)
	// Step applies an action, returning the next observation (nil when the
	// episode ended), the reward, and the done flag.
	Step(action []float64) (*Observation, float64, bool, error)
	// ActionDim returns the action dimensionality for the current episode.
	ActionDim() int
}

// OptimalCache memoises LP optimal max-utilisation per (graph, demand
// matrix). Cyclical sequences reuse base matrices by pointer, so each
// sequence costs only cycle-many LP solves. The cache is safe for
// concurrent use.
//
// Sequence-aware lookups (GetSeqContext and friends) additionally chain LP
// solves along a demand sequence: the solve for seq[i] warm-starts from the
// final simplex basis of seq[i-1], which is near-incremental because
// consecutive matrices differ only slightly. To keep cached values
// deterministic regardless of worker interleaving, every chained value is
// produced by the same canonical computation — solve seq[0] cold, then each
// later step warm from its predecessor — serialised per sequence; the basis
// map is populated only by these chain solves, and a sequence is identified
// by (graph, first matrix, objective), so a demand matrix must not head two
// different sequences on the same graph.
type OptimalCache struct {
	mu    sync.Mutex
	m     map[cacheKey]float64     //gddr:guardedby mu
	basis map[cacheKey]*lp.Basis   //gddr:guardedby mu
	chain map[chainKey]*sync.Mutex //gddr:guardedby mu

	hits   atomic.Int64
	misses atomic.Int64

	// Registry instruments, nil until Instrument is called. Readers copy
	// them into locals under mu and use the copies after unlocking.
	metHits   *metrics.Counter   //gddr:guardedby mu
	metMisses *metrics.Counter   //gddr:guardedby mu
	metSolve  *metrics.Histogram //gddr:guardedby mu
	metWarm   *metrics.Counter   //gddr:guardedby mu
	metCold   *metrics.Counter   //gddr:guardedby mu
	metPivots *metrics.Histogram //gddr:guardedby mu
}

type cacheKey struct {
	g   *graph.Graph
	dm  *traffic.DemandMatrix
	obj Objective
}

// chainKey identifies one canonical warm-start chain: a sequence is its
// graph, its first demand matrix, and the objective.
type chainKey struct {
	g    *graph.Graph
	head *traffic.DemandMatrix
	obj  Objective
}

// NewOptimalCache returns an empty cache.
func NewOptimalCache() *OptimalCache {
	return &OptimalCache{
		m:     make(map[cacheKey]float64),
		basis: make(map[cacheKey]*lp.Basis),
		chain: make(map[chainKey]*sync.Mutex),
	}
}

// CacheStats is a point-in-time summary of an OptimalCache.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int   `json:"size"`
}

// Stats returns the cache's cumulative hit/miss counters and current size.
func (c *OptimalCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Size: c.Len()}
}

// Instrument registers the cache's telemetry on reg: cumulative hit/miss
// counters, a solve-latency histogram, and a size gauge. Safe to call
// concurrently with lookups; calling it again with the same registry is a
// no-op (registration is idempotent).
func (c *OptimalCache) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	hits := reg.Counter("gddr_lp_cache_hits_total", "LP optimal-cache hits.")
	misses := reg.Counter("gddr_lp_cache_misses_total", "LP optimal-cache misses (each one paid for an LP solve).")
	solve := reg.Histogram("gddr_lp_solve_seconds", "LP solve latency on cache misses.", metrics.LatencyBuckets())
	warm := reg.Counter("gddr_lp_warm_start_total", "LP solves that reused the previous basis in a sequence chain.")
	cold := reg.Counter("gddr_lp_cold_start_total", "LP solves started from the slack/artificial basis.")
	pivots := reg.Histogram("gddr_lp_solve_pivots", "Simplex pivots per LP solve.", metrics.ExpBuckets(1, 2, 16))
	reg.GaugeFunc("gddr_lp_cache_entries", "Number of memoised LP optima.", func() float64 {
		return float64(c.Len())
	})
	c.mu.Lock()
	c.metHits, c.metMisses, c.metSolve = hits, misses, solve
	c.metWarm, c.metCold, c.metPivots = warm, cold, pivots
	c.mu.Unlock()
}

// Get returns the optimal max utilisation for dm on g, solving the LP on a
// cache miss.
func (c *OptimalCache) Get(g *graph.Graph, dm *traffic.DemandMatrix) (float64, error) {
	return c.get(context.Background(), g, dm, MaxUtilization)
}

// GetContext is Get with cancellation: on a cache miss the context is
// checked before the LP solve starts and polled between simplex pivots
// during it, so a cancelled caller stops promptly even mid-solve.
func (c *OptimalCache) GetContext(ctx context.Context, g *graph.Graph, dm *traffic.DemandMatrix) (float64, error) {
	return c.get(ctx, g, dm, MaxUtilization)
}

// GetMean returns the optimal mean utilisation for dm on g.
func (c *OptimalCache) GetMean(g *graph.Graph, dm *traffic.DemandMatrix) (float64, error) {
	return c.get(context.Background(), g, dm, MeanUtilization)
}

// GetMeanContext is GetMean with cancellation checked before a miss-solve.
func (c *OptimalCache) GetMeanContext(ctx context.Context, g *graph.Graph, dm *traffic.DemandMatrix) (float64, error) {
	return c.get(ctx, g, dm, MeanUtilization)
}

func (c *OptimalCache) get(ctx context.Context, g *graph.Graph, dm *traffic.DemandMatrix, obj Objective) (float64, error) {
	key := cacheKey{g: g, dm: dm, obj: obj}
	c.mu.Lock()
	v, ok := c.m[key]
	metHits, metMisses := c.metHits, c.metMisses
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if metHits != nil {
			metHits.Inc()
		}
		return v, nil
	}
	c.misses.Add(1)
	if metMisses != nil {
		metMisses.Inc()
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	// Plain lookups always solve cold and never store a basis: only the
	// canonical chain solves (chainTo) may populate the basis map, which is
	// what keeps chained values deterministic.
	opt, _, err := c.solveOne(ctx, g, dm, obj, nil)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	if prev, ok := c.m[key]; ok {
		opt = prev // first write wins
	} else {
		c.m[key] = opt
	}
	c.mu.Unlock()
	return opt, nil
}

// solveOne runs one instrumented LP solve, optionally warm-started.
func (c *OptimalCache) solveOne(ctx context.Context, g *graph.Graph, dm *traffic.DemandMatrix, obj Objective, warm *lp.Basis) (float64, *lp.Basis, error) {
	c.mu.Lock()
	metSolve, metWarm, metCold, metPivots := c.metSolve, c.metWarm, c.metCold, c.metPivots
	c.mu.Unlock()
	var opt float64
	var stats lp.MCFStats
	var err error
	//gddr:allow determinism LP solve wall-clock feeds the latency histogram only, never the optimum
	solveStart := time.Now()
	switch obj {
	case MeanUtilization:
		opt, _, stats, err = lp.OptimalMeanUtilizationCtx(ctx, g, dm, warm)
	default:
		opt, _, stats, err = lp.OptimalMaxUtilizationCtx(ctx, g, dm, warm)
	}
	if metSolve != nil {
		//gddr:allow determinism LP solve wall-clock feeds the latency histogram only, never the optimum
		metSolve.Observe(time.Since(solveStart).Seconds())
	}
	if err != nil {
		return 0, nil, err
	}
	if stats.WarmStarted {
		if metWarm != nil {
			metWarm.Inc()
		}
	} else if metCold != nil {
		metCold.Inc()
	}
	if metPivots != nil {
		metPivots.Observe(float64(stats.Pivots))
	}
	return opt, stats.Basis, nil
}

// GetSeqContext returns the optimal max utilisation for seq[t] on g,
// warm-chaining LP solves along the sequence on a miss: seq[0] is solved
// cold and each later matrix warm-starts from its predecessor's final
// basis. Values are identical across lookup orders because the chain is the
// single canonical computation (see the OptimalCache doc).
func (c *OptimalCache) GetSeqContext(ctx context.Context, g *graph.Graph, seq []*traffic.DemandMatrix, t int) (float64, error) {
	return c.getSeq(ctx, g, seq, t, MaxUtilization)
}

// GetMeanSeqContext is GetSeqContext for the mean-utilisation objective.
func (c *OptimalCache) GetMeanSeqContext(ctx context.Context, g *graph.Graph, seq []*traffic.DemandMatrix, t int) (float64, error) {
	return c.getSeq(ctx, g, seq, t, MeanUtilization)
}

func (c *OptimalCache) getSeq(ctx context.Context, g *graph.Graph, seq []*traffic.DemandMatrix, t int, obj Objective) (float64, error) {
	if t < 0 || t >= len(seq) {
		return 0, fmt.Errorf("env: sequence index %d out of range [0,%d)", t, len(seq))
	}
	key := cacheKey{g: g, dm: seq[t], obj: obj}
	c.mu.Lock()
	v, ok := c.m[key]
	metHits := c.metHits
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if metHits != nil {
			metHits.Inc()
		}
		return v, nil
	}
	if err := c.chainTo(ctx, g, seq, t, obj, nil); err != nil {
		return 0, err
	}
	c.mu.Lock()
	v, ok = c.m[key]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("env: chain solve left seq[%d] unsolved", t)
	}
	return v, nil
}

// WarmSequence fills the cache for an entire demand sequence in canonical
// chain order, warm-starting each solve from the previous basis. onSolve,
// when non-nil, is invoked after every LP actually solved (already-cached
// steps are skipped), for progress reporting.
func (c *OptimalCache) WarmSequence(ctx context.Context, g *graph.Graph, seq []*traffic.DemandMatrix, obj Objective, onSolve func(i int)) error {
	if len(seq) == 0 {
		return nil
	}
	return c.chainTo(ctx, g, seq, len(seq)-1, obj, onSolve)
}

// chainTo runs the canonical chain computation for seq[0..upTo] under the
// per-sequence mutex. Steps whose value and basis are both cached are
// skipped (their basis still feeds the chain); a step with a cached value
// but no basis — a plain Get raced ahead of the chain — keeps its cached
// value and only contributes its re-solved basis.
func (c *OptimalCache) chainTo(ctx context.Context, g *graph.Graph, seq []*traffic.DemandMatrix, upTo int, obj Objective, onSolve func(i int)) error {
	mu := c.chainMutex(chainKey{g: g, head: seq[0], obj: obj})
	mu.Lock()
	defer mu.Unlock()
	var warm *lp.Basis
	for i := 0; i <= upTo; i++ {
		key := cacheKey{g: g, dm: seq[i], obj: obj}
		c.mu.Lock()
		_, haveVal := c.m[key]
		b, haveBasis := c.basis[key]
		metMisses := c.metMisses
		c.mu.Unlock()
		if haveVal && haveBasis {
			warm = b
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		opt, nb, err := c.solveOne(ctx, g, seq[i], obj, warm)
		if err != nil {
			return err
		}
		c.mu.Lock()
		if !haveVal {
			c.m[key] = opt
		}
		c.basis[key] = nb
		c.mu.Unlock()
		if !haveVal {
			c.misses.Add(1)
			if metMisses != nil {
				metMisses.Inc()
			}
		}
		warm = nb
		if onSolve != nil {
			onSolve(i)
		}
	}
	return nil
}

// chainMutex returns (creating if needed) the mutex serialising one
// sequence's canonical chain.
func (c *OptimalCache) chainMutex(k chainKey) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	mu, ok := c.chain[k]
	if !ok {
		mu = new(sync.Mutex)
		c.chain[k] = mu
	}
	return mu
}

// Len returns the number of cached optima.
func (c *OptimalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Env simulates routing one demand sequence on one graph.
type Env struct {
	g    *graph.Graph
	seq  []*traffic.DemandMatrix
	cfg  Config
	opt  *OptimalCache
	ctx  context.Context // bound per run; cancels cache-miss LP solves
	base []float64       // per-edge base weights of the action mapping

	// Episode state.
	t int // index of the DM being routed next (starts at cfg.Memory)

	// Iterative-mode state.
	pendingWeights []float64 // action values per edge, in [-1,1]
	pendingSet     []bool
	iterEdge       int
}

var _ Interface = (*Env)(nil)

// New creates an environment for the sequence on g. The optimal cache may
// be shared between environments; pass nil for a private cache.
func New(g *graph.Graph, seq []*traffic.DemandMatrix, cfg Config, opt *OptimalCache) (*Env, error) {
	if cfg.Memory < 1 {
		return nil, fmt.Errorf("env: memory must be >= 1, got %d", cfg.Memory)
	}
	if len(seq) <= cfg.Memory {
		return nil, fmt.Errorf("env: sequence length %d too short for memory %d", len(seq), cfg.Memory)
	}
	if cfg.Gamma <= 0 {
		return nil, fmt.Errorf("env: gamma must be positive, got %g", cfg.Gamma)
	}
	if cfg.WeightScale <= 0 {
		return nil, fmt.Errorf("env: weight scale must be positive, got %g", cfg.WeightScale)
	}
	if cfg.Mode != FullAction && cfg.Mode != IterativeAction {
		return nil, fmt.Errorf("env: invalid mode %d", int(cfg.Mode))
	}
	for i, dm := range seq {
		if dm.N != g.NumNodes() {
			return nil, fmt.Errorf("env: demand matrix %d has size %d, graph has %d nodes", i, dm.N, g.NumNodes())
		}
	}
	if !g.StronglyConnected() {
		return nil, fmt.Errorf("env: graph must be strongly connected")
	}
	if opt == nil {
		opt = NewOptimalCache()
	}
	base := g.UnitWeights()
	if cfg.CapacityAware {
		base = g.InverseCapacityWeights()
	}
	return &Env{g: g, seq: seq, cfg: cfg, opt: opt, ctx: context.Background(), base: base}, nil
}

// Graph returns the environment's topology.
func (e *Env) Graph() *graph.Graph { return e.g }

// SetContext binds ctx to the environment: reward computations consult it
// before solving an LP on a cache miss, so cancelling the context stops a
// training or evaluation run at the next solve. A nil ctx resets to the
// background context.
func (e *Env) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
}

// ActionDim returns |E| in full mode, 2 (weight, γ) in iterative mode.
func (e *Env) ActionDim() int {
	if e.cfg.Mode == IterativeAction {
		return 2
	}
	return e.g.NumEdges()
}

// EpisodeSteps returns the number of environment steps per episode.
func (e *Env) EpisodeSteps() int {
	dms := len(e.seq) - e.cfg.Memory
	if e.cfg.Mode == IterativeAction {
		return dms * e.g.NumEdges()
	}
	return dms
}

// Reset starts a new episode.
func (e *Env) Reset() (*Observation, error) {
	e.t = e.cfg.Memory
	e.pendingWeights = make([]float64, e.g.NumEdges())
	e.pendingSet = make([]bool, e.g.NumEdges())
	e.iterEdge = 0
	return e.observe()
}

// Step applies an action.
func (e *Env) Step(action []float64) (*Observation, float64, bool, error) {
	if e.t < e.cfg.Memory || e.t >= len(e.seq) {
		return nil, 0, false, fmt.Errorf("env: step called outside an episode (t=%d)", e.t)
	}
	switch e.cfg.Mode {
	case FullAction:
		return e.stepFull(action)
	case IterativeAction:
		return e.stepIterative(action)
	default:
		return nil, 0, false, fmt.Errorf("env: invalid mode %d", int(e.cfg.Mode))
	}
}

func (e *Env) stepFull(action []float64) (*Observation, float64, bool, error) {
	if len(action) != e.g.NumEdges() {
		return nil, 0, false, fmt.Errorf("env: action has %d values, want %d", len(action), e.g.NumEdges())
	}
	weights := make([]float64, len(action))
	for i, a := range action {
		weights[i] = e.weightFromAction(i, a)
	}
	reward, err := e.rewardFor(weights, e.cfg.Gamma)
	if err != nil {
		return nil, 0, false, err
	}
	e.t++
	if e.t >= len(e.seq) {
		return nil, reward, true, nil
	}
	obs, err := e.observe()
	return obs, reward, false, err
}

func (e *Env) stepIterative(action []float64) (*Observation, float64, bool, error) {
	if len(action) != 2 {
		return nil, 0, false, fmt.Errorf("env: iterative action has %d values, want 2", len(action))
	}
	v := clamp(action[0], -1, 1)
	e.pendingWeights[e.iterEdge] = v
	e.pendingSet[e.iterEdge] = true
	e.iterEdge++
	if e.iterEdge < e.g.NumEdges() {
		obs, err := e.observe()
		return obs, 0, false, err
	}
	// Final iteration for this DM: γ comes from the last action (Eq. 7).
	gamma := gammaFromAction(action[1])
	weights := make([]float64, e.g.NumEdges())
	for i, a := range e.pendingWeights {
		weights[i] = e.weightFromAction(i, a)
	}
	reward, err := e.rewardFor(weights, gamma)
	if err != nil {
		return nil, 0, false, err
	}
	e.t++
	e.iterEdge = 0
	for i := range e.pendingSet {
		e.pendingWeights[i] = 0
		e.pendingSet[i] = false
	}
	if e.t >= len(e.seq) {
		return nil, reward, true, nil
	}
	obs, err := e.observe()
	return obs, reward, false, err
}

// weightFromAction maps an action value to a strictly positive edge weight,
// multiplicative around the per-edge base weight.
func (e *Env) weightFromAction(edge int, a float64) float64 {
	return WeightFromAction(e.base[edge], e.cfg.WeightScale, a)
}

// WeightFromAction maps one action value to a strictly positive edge
// weight, multiplicative around the edge's base weight. It is the single
// definition of the action-to-weight mapping, shared by the training
// environment and the serving Router.
func WeightFromAction(base, scale, a float64) float64 {
	return base * math.Exp(scale*clamp(a, -1, 1))
}

// gammaFromAction maps the γ action channel to a positive softmin spread.
func gammaFromAction(a float64) float64 {
	return GammaFromAction(a)
}

// GammaFromAction maps the iterative policy's γ action channel (Eq. 7) to
// a positive softmin spread, shared with the serving Router.
func GammaFromAction(a float64) float64 {
	return routing.DefaultGamma * math.Exp(clamp(a, -1, 1))
}

// rewardFor evaluates the routing implied by weights against the LP optimum
// for the demand matrix of the current timestep, under the configured
// utility function.
func (e *Env) rewardFor(weights []float64, gamma float64) (float64, error) {
	dm := e.seq[e.t]
	res, err := routing.EvaluateWeights(e.g, dm, weights, gamma)
	if err != nil {
		return 0, err
	}
	var achieved, opt float64
	switch e.cfg.Objective {
	case MeanUtilization:
		achieved = res.MeanUtilization()
		opt, err = e.opt.GetMeanSeqContext(e.ctx, e.g, e.seq, e.t)
	default:
		achieved = res.MaxUtilization
		opt, err = e.opt.GetSeqContext(e.ctx, e.g, e.seq, e.t)
	}
	if err != nil {
		return 0, err
	}
	if opt <= 1e-12 {
		if achieved <= 1e-12 {
			return -1, nil // both trivially optimal on an empty matrix
		}
		return 0, fmt.Errorf("env: optimal utilisation is zero but agent's is %g", achieved)
	}
	return -achieved / opt, nil
}

func clamp(x, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, x))
}
