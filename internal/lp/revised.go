// Revised simplex: the production solver behind Problem.Solve. Instead of
// carrying the full dense tableau through every pivot (O(m·n) per pivot,
// with n ≈ nodes²·edges for the MCF formulation), it keeps an explicit
// m×m basis inverse and prices candidate columns against the original
// sparse constraint columns. The MCF constraint matrix is extremely sparse
// (a flow variable appears in at most two conservation rows and one
// capacity row), so pricing is cheap and each pivot costs O(m²) regardless
// of n.
//
// The solver also exposes its final Basis and accepts one as a warm start:
// sequential demand matrices in a GDDR episode differ slightly, so
// re-solving from the previous optimum usually needs a handful of
// dual-simplex repair pivots plus a short primal cleanup instead of
// hundreds of cold pivots. A warm start is only attempted when the
// structural hash of the new problem matches the basis (same rows, same
// sparsity, same costs — only RHS magnitudes may differ); any warm-path
// failure falls back to a cold solve, so warm starting never changes
// feasibility or error behaviour.
//
// The dense tableau implementation (simplex.go) remains available as
// SolveDense and serves as the cross-check oracle in equivalence_test.go.

package lp

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// SolveOptions controls a SolveOpts run.
type SolveOptions struct {
	// Warm, when non-nil and structurally compatible with the problem,
	// seeds the solver with a previous solve's basis (see Solution.Basis).
	// Incompatible or unusable bases are ignored.
	Warm *Basis
	// CheckCancelEvery is the number of pivots between context-cancellation
	// polls; 0 means the default (64). The context is also checked before
	// the first pivot, so an already-cancelled context returns immediately.
	CheckCancelEvery int
}

const defaultCheckCancelEvery = 64

// Basis is an opaque snapshot of a revised-simplex optimal basis: the basic
// column of every row plus the factorized basis inverse, tagged with the
// structural hash of the problem it solves. It warm-starts later solves of
// structurally identical problems (same constraint pattern and objective,
// different RHS). A Basis is immutable once returned and safe to share.
type Basis struct {
	cols []int     // basic column per row
	binv []float64 // row-major m×m basis inverse
	m, n int
	hash uint64
}

// Columns returns a copy of the basic column index of every constraint row.
func (b *Basis) Columns() []int { return append([]int(nil), b.cols...) }

// spEntry is one nonzero of a standard-form constraint column.
type spEntry struct {
	row   int
	coeff float64
}

// standardForm is the problem in computational standard form: the exact
// column layout of the dense tableau (structural, then slack/surplus in row
// order, then artificials in row order), but stored column-major and
// sparse. hash fingerprints everything except RHS magnitudes.
type standardForm struct {
	m, n      int
	numStruct int
	artStart  int
	cols      [][]spEntry
	b         []float64
	c         []float64 // phase-2 costs, length n (zero beyond numStruct)
	initBasis []int     // slack/artificial basis from construction
	hash      uint64
}

// newStandardForm mirrors newTableau's normalisation exactly: rows with a
// negative RHS are sign-flipped (LE↔GE), slack/surplus and artificial
// columns are assigned in row order, and the column space is shrunk to the
// columns actually used.
func newStandardForm(p *Problem) *standardForm {
	m := len(p.rows)
	numSlack := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			numSlack++
		}
	}
	artStart := p.numVars + numSlack
	sf := &standardForm{
		m:         m,
		numStruct: p.numVars,
		artStart:  artStart,
		cols:      make([][]spEntry, artStart+m),
		b:         make([]float64, m),
		initBasis: make([]int, m),
	}
	h := fnv.New64a()
	var hb [8]byte
	hashInt := func(v int) {
		for i := 0; i < 8; i++ {
			hb[i] = byte(v >> (8 * i))
		}
		h.Write(hb[:])
	}
	hashFloat := func(v float64) { hashInt(int(math.Float64bits(v))) }
	hashInt(p.numVars)
	hashInt(m)

	// Merge duplicate structural terms per row with a dense scratch, the
	// way the tableau's += accumulation does.
	scratch := make([]float64, p.numVars)
	touched := make([]int, 0, 16)
	slack := p.numVars
	art := artStart
	for i, r := range p.rows {
		sign := 1.0
		if r.rhs < 0 {
			sign = -1.0
		}
		touched = touched[:0]
		for _, term := range r.terms {
			if scratch[term.Var] == 0 {
				touched = append(touched, term.Var)
			}
			scratch[term.Var] += sign * term.Coeff
		}
		sense := r.sense
		if sign < 0 {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		hashInt(int(sense))
		hashFloat(sign)
		for _, v := range touched {
			sf.cols[v] = append(sf.cols[v], spEntry{row: i, coeff: scratch[v]})
			hashInt(v)
			hashFloat(scratch[v])
			scratch[v] = 0
		}
		sf.b[i] = sign * r.rhs
		switch sense {
		case LE:
			sf.cols[slack] = append(sf.cols[slack], spEntry{row: i, coeff: 1})
			sf.initBasis[i] = slack
			slack++
		case GE:
			sf.cols[slack] = append(sf.cols[slack], spEntry{row: i, coeff: -1})
			slack++
			sf.cols[art] = append(sf.cols[art], spEntry{row: i, coeff: 1})
			sf.initBasis[i] = art
			art++
		case EQ:
			sf.cols[art] = append(sf.cols[art], spEntry{row: i, coeff: 1})
			sf.initBasis[i] = art
			art++
		}
	}
	sf.n = art
	sf.cols = sf.cols[:art]
	sf.c = make([]float64, sf.n)
	copy(sf.c, p.obj)
	for _, cv := range p.obj {
		hashFloat(cv)
	}
	sf.hash = h.Sum64()
	return sf
}

// revised is the working state of one revised-simplex solve.
type revised struct {
	sf      *standardForm
	binv    []float64 // row-major m×m basis inverse
	xb      []float64 // basic variable values, binv·b
	basis   []int     // basic column per row
	isBasic []bool    // length n
	y       []float64 // dual scratch, length m
	w       []float64 // entering column in basis coordinates, length m
	pivots  int

	ctx        context.Context
	checkEvery int
}

func newRevised(sf *standardForm, ctx context.Context, checkEvery int) *revised {
	if checkEvery <= 0 {
		checkEvery = defaultCheckCancelEvery
	}
	return &revised{
		sf:         sf,
		binv:       make([]float64, sf.m*sf.m),
		xb:         make([]float64, sf.m),
		basis:      make([]int, sf.m),
		isBasic:    make([]bool, sf.n),
		y:          make([]float64, sf.m),
		w:          make([]float64, sf.m),
		ctx:        ctx,
		checkEvery: checkEvery,
	}
}

// loadInitialBasis installs the construction-time slack/artificial basis:
// binv = I (every initial basic column is ±1 in exactly its own row; the
// sign is +1 by construction), xb = b.
func (r *revised) loadInitialBasis() {
	m := r.sf.m
	for i := range r.binv {
		r.binv[i] = 0
	}
	for i := 0; i < m; i++ {
		r.binv[i*m+i] = 1
		r.basis[i] = r.sf.initBasis[i]
	}
	for j := range r.isBasic {
		r.isBasic[j] = false
	}
	for _, bcol := range r.basis {
		r.isBasic[bcol] = true
	}
	copy(r.xb, r.sf.b)
}

// checkCancel polls the context; called every checkEvery pivots.
func (r *revised) checkCancel() error {
	if r.ctx == nil {
		return nil
	}
	select {
	case <-r.ctx.Done():
		return r.ctx.Err()
	default:
		return nil
	}
}

// computeDuals fills y = c_Bᵀ·B⁻¹ for the given cost vector, skipping
// zero-cost basic rows (for max-utilisation MCF only U_max carries cost, so
// this is nearly free).
func (r *revised) computeDuals(costs []float64) {
	m := r.sf.m
	for i := range r.y {
		r.y[i] = 0
	}
	for i := 0; i < m; i++ {
		cb := costs[r.basis[i]]
		if cb == 0 {
			continue
		}
		row := r.binv[i*m : (i+1)*m]
		for k, v := range row {
			if v != 0 {
				r.y[k] += cb * v
			}
		}
	}
}

// reducedCost returns d_j = c_j − y·A_j for column j.
func (r *revised) reducedCost(costs []float64, j int) float64 {
	d := costs[j]
	for _, e := range r.sf.cols[j] {
		d -= r.y[e.row] * e.coeff
	}
	return d
}

// computeColumn fills w = B⁻¹·A_j.
func (r *revised) computeColumn(j int) {
	m := r.sf.m
	col := r.sf.cols[j]
	for i := 0; i < m; i++ {
		var s float64
		row := r.binv[i*m:]
		for _, e := range col {
			s += row[e.row] * e.coeff
		}
		r.w[i] = s
	}
}

// pivot makes column col basic in row prow via an eta update of B⁻¹ and xb,
// using the already-computed w = B⁻¹·A_col. O(m²).
func (r *revised) pivot(prow, col int) {
	m := r.sf.m
	inv := 1.0 / r.w[prow]
	prowData := r.binv[prow*m : (prow+1)*m]
	for k := range prowData {
		prowData[k] *= inv
	}
	r.xb[prow] *= inv
	for i := 0; i < m; i++ {
		if i == prow {
			continue
		}
		f := r.w[i]
		if f == 0 {
			continue
		}
		row := r.binv[i*m : (i+1)*m]
		for k := range row {
			row[k] -= f * prowData[k]
		}
		r.xb[i] -= f * r.xb[prow]
	}
	r.isBasic[r.basis[prow]] = false
	r.basis[prow] = col
	r.isBasic[col] = true
	r.pivots++
}

// iterate runs primal simplex pivots for the given cost vector until
// optimality. Candidate entering columns are the nonbasic columns below
// colLimit (artificials never re-enter). Pricing is Dantzig with a switch
// to Bland's rule for anti-cycling, and the ratio test tie-breaks on the
// smallest basis index — both matching the dense tableau's rules exactly.
func (r *revised) iterate(costs []float64, colLimit int) error {
	maxIter := 200 * (r.sf.m + r.sf.n + 16)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		if iter%r.checkEvery == 0 {
			if err := r.checkCancel(); err != nil {
				return err
			}
		}
		r.computeDuals(costs)
		col := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < colLimit; j++ {
				if r.isBasic[j] {
					continue
				}
				if d := r.reducedCost(costs, j); d < best {
					best = d
					col = j
				}
			}
		} else {
			for j := 0; j < colLimit; j++ {
				if r.isBasic[j] {
					continue
				}
				if r.reducedCost(costs, j) < -eps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return nil // optimal
		}
		r.computeColumn(col)
		prow := -1
		var bestRatio float64
		for i := 0; i < r.sf.m; i++ {
			wi := r.w[i]
			if wi <= eps {
				continue
			}
			ratio := r.xb[i] / wi
			if prow < 0 || ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && r.basis[i] < r.basis[prow]) {
				prow = i
				bestRatio = ratio
			}
		}
		if prow < 0 {
			return ErrUnbounded
		}
		r.pivot(prow, col)
	}
	return ErrIterations
}

// phase1 finds a basic feasible solution by minimising the artificial sum.
func (r *revised) phase1() error {
	if r.sf.artStart == r.sf.n {
		return nil // slack basis already feasible
	}
	costs := make([]float64, r.sf.n)
	for j := r.sf.artStart; j < r.sf.n; j++ {
		costs[j] = 1
	}
	if err := r.iterate(costs, r.sf.artStart); err != nil {
		if errors.Is(err, ErrUnbounded) {
			return fmt.Errorf("lp: phase-1 numerical failure: %w", err)
		}
		return err
	}
	var artSum float64
	for i, bcol := range r.basis {
		if bcol >= r.sf.artStart {
			artSum += r.xb[i]
		}
	}
	if artSum > 1e-7 {
		return ErrInfeasible
	}
	// Drive remaining artificial basics out where possible. A row whose
	// B⁻¹-transformed coefficients are all ~0 is redundant; its artificial
	// stays basic at level zero and is simply never allowed to re-enter
	// elsewhere (it can still leave during phase 2).
	for i, bcol := range r.basis {
		if bcol < r.sf.artStart {
			continue
		}
		for j := 0; j < r.sf.artStart; j++ {
			if r.isBasic[j] {
				continue
			}
			var alpha float64
			row := r.binv[i*r.sf.m:]
			for _, e := range r.sf.cols[j] {
				alpha += row[e.row] * e.coeff
			}
			if math.Abs(alpha) > eps {
				r.computeColumn(j)
				r.pivot(i, j)
				break
			}
		}
	}
	return nil
}

// warmStart installs the given basis and repairs primal feasibility with
// dual simplex pivots. The structural hash guarantees the cost vector
// matches the one the basis was optimal for, so the basis is dual-feasible
// (all reduced costs ≥ 0) and dual pivots preserve that invariant. Returns
// an error when the basis cannot be repaired; callers fall back to a cold
// solve.
func (r *revised) warmStart(warm *Basis) error {
	sf := r.sf
	if warm.hash != sf.hash || warm.m != sf.m || warm.n != sf.n {
		return fmt.Errorf("lp: warm basis is structurally incompatible")
	}
	m := sf.m
	copy(r.basis, warm.cols)
	copy(r.binv, warm.binv)
	for j := range r.isBasic {
		r.isBasic[j] = false
	}
	for _, bcol := range r.basis {
		r.isBasic[bcol] = true
	}
	// xb = B⁻¹·b for the new RHS.
	for i := 0; i < m; i++ {
		var s float64
		row := r.binv[i*m : (i+1)*m]
		for k, v := range row {
			s += v * sf.b[k]
		}
		r.xb[i] = s
	}
	// Dual simplex: repeatedly drive the most negative basic value out.
	maxIter := 200 * (m + sf.n + 16)
	for iter := 0; iter < maxIter; iter++ {
		if iter%r.checkEvery == 0 {
			if err := r.checkCancel(); err != nil {
				return err
			}
		}
		prow := -1
		worst := -1e-7
		for i := 0; i < m; i++ {
			if r.xb[i] < worst {
				worst = r.xb[i]
				prow = i
			}
		}
		if prow < 0 {
			return nil // primal feasible
		}
		r.computeDuals(sf.c)
		rowData := r.binv[prow*m : (prow+1)*m]
		col := -1
		var bestRatio float64
		for j := 0; j < sf.artStart; j++ {
			if r.isBasic[j] {
				continue
			}
			var alpha float64
			for _, e := range sf.cols[j] {
				alpha += rowData[e.row] * e.coeff
			}
			if alpha >= -eps {
				continue
			}
			ratio := r.reducedCost(sf.c, j) / (-alpha)
			if col < 0 || ratio < bestRatio-eps || (ratio < bestRatio+eps && j < col) {
				col = j
				bestRatio = ratio
			}
		}
		if col < 0 {
			// No entering column: the new RHS is infeasible along this row,
			// or the basis is numerically unusable. Let the caller re-solve
			// cold (which reports ErrInfeasible properly if warranted).
			return fmt.Errorf("lp: dual simplex found no entering column")
		}
		r.computeColumn(col)
		if math.Abs(r.w[prow]) <= eps {
			return fmt.Errorf("lp: dual pivot element too small")
		}
		r.pivot(prow, col)
	}
	return fmt.Errorf("lp: dual simplex iteration limit")
}

// snapshot captures the current basis for future warm starts.
func (r *revised) snapshot() *Basis {
	return &Basis{
		cols: append([]int(nil), r.basis...),
		binv: append([]float64(nil), r.binv...),
		m:    r.sf.m,
		n:    r.sf.n,
		hash: r.sf.hash,
	}
}

// extract reads structural values and the objective off the basis.
func (r *revised) extract(p *Problem) *Solution {
	x := make([]float64, p.numVars)
	for i, bcol := range r.basis {
		if bcol < p.numVars {
			v := r.xb[i]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[bcol] = v
		}
	}
	var obj float64
	for i, c := range p.obj {
		obj += c * x[i]
	}
	return &Solution{X: x, Objective: obj, Basis: r.snapshot(), Pivots: r.pivots}
}

// SolveOpts runs the revised simplex with warm-start and cancellation
// control. ctx may be nil, which disables cancellation checks.
func (p *Problem) SolveOpts(ctx context.Context, opts SolveOptions) (*Solution, error) {
	sf := newStandardForm(p)
	if opts.Warm != nil {
		r := newRevised(sf, ctx, opts.CheckCancelEvery)
		err := r.warmStart(opts.Warm)
		if err == nil {
			if err = r.iterate(sf.c, sf.artStart); err == nil {
				sol := r.extract(p)
				sol.WarmStarted = true
				return sol, nil
			}
			if errors.Is(err, ErrUnbounded) {
				// Unboundedness is structural; a cold solve would only
				// rediscover it.
				return nil, err
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Any other warm-path failure: re-solve cold below.
	}
	r := newRevised(sf, ctx, opts.CheckCancelEvery)
	r.loadInitialBasis()
	if err := r.phase1(); err != nil {
		return nil, err
	}
	if err := r.iterate(sf.c, sf.artStart); err != nil {
		return nil, err
	}
	return r.extract(p), nil
}
