package lp

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/graph"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func TestMeanUtilizationSingleCheapPath(t *testing.T) {
	// Two paths 0→3: direct-ish via 1 (2 hops, caps 10) and via 2 (2 hops,
	// caps 40). Min mean-utilisation puts everything on the high-capacity
	// path: cost per unit is lower.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(0, 2, 40)
	g.MustAddEdge(2, 3, 40)
	dm := traffic.NewDemandMatrix(4)
	dm.Set(0, 3, 8)
	mean, flows, err := OptimalMeanUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	// All 8 units on edges 2 and 3: utilisations {0,0,0.2,0.2}, mean 0.1.
	if math.Abs(mean-0.1) > 1e-6 {
		t.Fatalf("mean=%g want 0.1", mean)
	}
	if flows[3][0] > 1e-6 {
		t.Fatalf("low-capacity path used: %v", flows[3])
	}
}

func TestMeanUtilizationConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := topo.B4()
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	mean, flows, err := OptimalMeanUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatalf("mean=%g", mean)
	}
	if err := VerifyFlowConservation(g, dm, flows, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestMeanNeverExceedsMeanOfMaxSolution(t *testing.T) {
	// The mean-optimal solution's mean utilisation is a lower bound on the
	// mean utilisation of any feasible routing, in particular the
	// max-utilisation-optimal one.
	rng := rand.New(rand.NewSource(8))
	g, err := graph.RandomConnected(7, 3, 10, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	dm := traffic.Bimodal(7, traffic.BimodalParams{
		LowMean: 5, LowStd: 1, HighMean: 12, HighStd: 2, ElephantProb: 0.2,
	}, rng)
	meanOpt, _, err := OptimalMeanUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	_, maxFlows, err := OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	var meanOfMax float64
	for e := 0; e < g.NumEdges(); e++ {
		var load float64
		for tt := range maxFlows {
			load += maxFlows[tt][e]
		}
		meanOfMax += load / g.Edge(e).Capacity
	}
	meanOfMax /= float64(g.NumEdges())
	if meanOpt > meanOfMax+1e-6 {
		t.Fatalf("mean-optimal %g exceeds mean of max-optimal routing %g", meanOpt, meanOfMax)
	}
}

func TestMeanUtilizationValidation(t *testing.T) {
	g := topo.Abilene()
	if _, _, err := OptimalMeanUtilization(g, traffic.NewDemandMatrix(3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	empty := graph.New(3)
	if _, _, err := OptimalMeanUtilization(empty, traffic.NewDemandMatrix(3)); err == nil {
		t.Fatal("edgeless graph accepted")
	}
}
