package lp

import (
	"context"
	"fmt"
	"math"

	"gddr/internal/graph"
	"gddr/internal/traffic"
)

// MCFStats reports the solver work behind one MCF solve, for warm-start
// chaining and instrumentation.
type MCFStats struct {
	Pivots      int
	WarmStarted bool
	Basis       *Basis // final basis, reusable as the next solve's warm start
}

// addConservationRows adds the per-destination flow-conservation rows of
// the destination-aggregated MCF formulation. Destinations with no demand
// contribute no rows (their flow variables stay zero for free), which means
// the constraint structure — and therefore warm-start compatibility —
// depends on the demand pattern, not only on the graph.
func addConservationRows(p *Problem, g *graph.Graph, dm *traffic.DemandMatrix) error {
	n := g.NumNodes()
	ne := g.NumEdges()
	for t := 0; t < n; t++ {
		hasDemand := false
		for v := 0; v < n; v++ {
			if dm.At(v, t) > 0 {
				hasDemand = true
				break
			}
		}
		if !hasDemand {
			continue // no variables for this destination will be forced non-zero
		}
		for v := 0; v < n; v++ {
			if v == t {
				continue
			}
			terms := make([]Term, 0, len(g.OutEdges(v))+len(g.InEdges(v)))
			for _, ei := range g.OutEdges(v) {
				terms = append(terms, Term{Var: t*ne + ei, Coeff: 1})
			}
			for _, ei := range g.InEdges(v) {
				terms = append(terms, Term{Var: t*ne + ei, Coeff: -1})
			}
			if err := p.AddConstraint(terms, EQ, dm.At(v, t)); err != nil {
				return err
			}
		}
	}
	return nil
}

// OptimalMaxUtilization solves the multicommodity-flow linear program of the
// paper's §II-A and returns the minimum achievable maximum link utilisation
// U_max for the demand matrix on the graph, together with the optimal
// per-destination edge flows.
//
// The formulation is destination-aggregated, which is equivalent for
// fractional min-max-utilisation routing and much smaller than the per-
// commodity formulation: for every destination t and edge e there is a flow
// variable f_t(e) >= 0, plus the scalar U_max, subject to
//
//	flow conservation  Σ_out f_t(v) − Σ_in f_t(v) = D[v][t]   (v ≠ t)
//	capacity           Σ_t f_t(e) − c(e)·U_max <= 0           (every e)
//
// minimising U_max. Flows destined for t are absorbed at t (no conservation
// row at the destination), matching routing constraint 2 of §IV-A.
func OptimalMaxUtilization(g *graph.Graph, dm *traffic.DemandMatrix) (float64, [][]float64, error) {
	u, flows, _, err := OptimalMaxUtilizationCtx(context.Background(), g, dm, nil)
	return u, flows, err
}

// OptimalMaxUtilizationCtx is OptimalMaxUtilization with cooperative
// cancellation (checked between pivots) and an optional warm-start basis
// from a previous solve of the same graph under a structurally identical
// demand pattern. An incompatible warm basis is ignored.
func OptimalMaxUtilizationCtx(ctx context.Context, g *graph.Graph, dm *traffic.DemandMatrix, warm *Basis) (float64, [][]float64, MCFStats, error) {
	n := g.NumNodes()
	ne := g.NumEdges()
	if dm.N != n {
		return 0, nil, MCFStats{}, fmt.Errorf("lp: demand matrix size %d != graph nodes %d", dm.N, n)
	}
	if ne == 0 {
		return 0, nil, MCFStats{}, fmt.Errorf("lp: graph has no edges")
	}

	// Variable layout: f_t(e) at index t*ne + e, then U_max last.
	numVars := n*ne + 1
	uMaxVar := n * ne
	p := NewProblem(numVars)
	if err := p.SetObjectiveCoeff(uMaxVar, 1); err != nil {
		return 0, nil, MCFStats{}, err
	}
	if err := addConservationRows(p, g, dm); err != nil {
		return 0, nil, MCFStats{}, err
	}

	// Capacity constraints.
	for e := 0; e < ne; e++ {
		terms := make([]Term, 0, n+1)
		for t := 0; t < n; t++ {
			terms = append(terms, Term{Var: t*ne + e, Coeff: 1})
		}
		terms = append(terms, Term{Var: uMaxVar, Coeff: -g.Edge(e).Capacity})
		if err := p.AddConstraint(terms, LE, 0); err != nil {
			return 0, nil, MCFStats{}, err
		}
	}

	sol, err := p.SolveOpts(ctx, SolveOptions{Warm: warm})
	if err != nil {
		return 0, nil, MCFStats{}, fmt.Errorf("lp: multicommodity flow: %w", err)
	}
	flows := make([][]float64, n)
	for t := 0; t < n; t++ {
		flows[t] = sol.X[t*ne : (t+1)*ne]
	}
	stats := MCFStats{Pivots: sol.Pivots, WarmStarted: sol.WarmStarted, Basis: sol.Basis}
	return sol.X[uMaxVar], flows, stats, nil
}

// MaxUtilizationOfFlows computes max_e (Σ_t f_t(e))/c(e) for a per-
// destination flow assignment, used to cross-check LP results.
func MaxUtilizationOfFlows(g *graph.Graph, flows [][]float64) float64 {
	uMax := 0.0
	for e := 0; e < g.NumEdges(); e++ {
		var load float64
		for t := range flows {
			load += flows[t][e]
		}
		u := load / g.Edge(e).Capacity
		if u > uMax {
			uMax = u
		}
	}
	return uMax
}

// VerifyFlowConservation checks that flows satisfy conservation and
// absorption for the demand matrix up to tol, returning the first violation.
func VerifyFlowConservation(g *graph.Graph, dm *traffic.DemandMatrix, flows [][]float64, tol float64) error {
	n := g.NumNodes()
	for t := 0; t < n; t++ {
		for v := 0; v < n; v++ {
			if v == t {
				continue
			}
			var net float64
			for _, ei := range g.OutEdges(v) {
				net += flows[t][ei]
			}
			for _, ei := range g.InEdges(v) {
				net -= flows[t][ei]
			}
			if math.Abs(net-dm.At(v, t)) > tol {
				return fmt.Errorf("lp: conservation violated at v=%d t=%d: net %g want %g", v, t, net, dm.At(v, t))
			}
		}
	}
	return nil
}
